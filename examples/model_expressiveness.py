"""PXDB constraints versus probabilistic trees (Section 7.3 / Conclusion).

The paper positions PXDBs against the probabilistic-tree model
(PrXML^{cie}), which attaches shared Boolean events to nodes: cie can
state arbitrary cross-tree correlations *explicitly*, but pays for it —
query evaluation there is #P-complete, and bolting cie features onto the
PXDB model destroys even approximability.  PXDBs instead express the
dependencies *declaratively through constraints*, keeping everything
polynomial.

This example shows the same real-world dependency stated both ways:

    "the two mirrors of a replicated record are either both present
     or both absent"

1. In PrXML^{cie}: one shared event guards both mirrors (exponential
   evaluation is all the model offers).
2. As a PXDB: an unconstrained p-document plus the constraint
   "#mirrors ≠ 1", conditioned — evaluated by the polynomial algorithm,
   and still exactly the same document distribution.

It then shows the 3-SAT reduction behind the §7.3 hardness claim.

Run:  python examples/model_expressiveness.py
"""

from __future__ import annotations

from fractions import Fraction

from repro import CountAtom, SFormula, negation, parse_selector, pdocument, probability
from repro.baseline.naive import conditional_world_distribution
from repro.pdoc.cie import (
    CieDocument,
    CieNode,
    cie_probability,
    cie_world_distribution,
    every_a_has_a_child_formula,
    three_sat_reduction,
)


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


def mirrors_via_cie(p: Fraction) -> CieDocument:
    """Both mirrors guarded by one event e with Pr(e) = p."""
    root = CieNode("ord", "record")
    site_a = root.ordinary("site-a")
    site_b = root.ordinary("site-b")
    site_a.cie().add_child("mirror", [("e", True)])
    site_b.cie().add_child("mirror", [("e", True)])
    return CieDocument(root, {"e": p})


def mirrors_via_pxdb(p: Fraction):
    """Independent mirrors + the constraint CNT(mirror) ≠ 1, conditioned.

    Choosing the right edge probability q makes the conditional
    distribution match the cie model exactly: we need
    Pr(both | not exactly one) = p, i.e. q²/(q² + (1-q)²) = p.
    For p = 1/2 that is q = 1/2.
    """
    pd, root = pdocument("record")
    site_a = root.ordinary("site-a")
    site_b = root.ordinary("site-b")
    site_a.ind().add_edge("mirror", Fraction(1, 2))
    site_b.ind().add_edge("mirror", Fraction(1, 2))
    pd.validate()
    constraint = negation(CountAtom([sel("record/*/$mirror")], "=", 1))
    return pd, constraint


def main() -> None:
    p = Fraction(1, 2)
    print("dependency: the two mirrors are both present or both absent\n")

    cdoc = mirrors_via_cie(p)
    cie_dist = cie_world_distribution(cdoc)
    print(f"PrXML^cie (shared event, Pr(e) = {p}):")
    for uids, prob in sorted(cie_dist.items(), key=lambda kv: -kv[1]):
        print(f"  world of {len(uids)} nodes: Pr = {prob}")

    pdoc, constraint = mirrors_via_pxdb(p)
    print(f"\nPXDB (independent mirrors + constraint CNT(mirror) ≠ 1):")
    print(f"  Pr(P |= C) = {probability(pdoc, constraint)}  (poly-time evaluator)")
    pxdb_dist = conditional_world_distribution(pdoc, constraint)
    for uids, prob in sorted(pxdb_dist.items(), key=lambda kv: -kv[1]):
        print(f"  world of {len(uids)} nodes: Pr = {prob}")

    sizes_cie = sorted(len(u) for u in cie_dist)
    sizes_pxdb = sorted(len(u) for u in pxdb_dist)
    assert sizes_cie == sizes_pxdb
    print("\n→ identical document distributions; only the PXDB route is tractable.")

    print("\nWhy cie features break tractability (the §7.3 reduction):")
    clauses = [
        [("x", True), ("y", True)],
        [("x", False), ("z", True)],
        [("y", False), ("z", False)],
    ]
    cdoc = three_sat_reduction(clauses)
    formula = every_a_has_a_child_formula()
    prob = cie_probability(cdoc, formula)
    print(f"  3-SAT instance with 3 clauses → Pr('every A has a child') = {prob}")
    print("  positivity of this probability decides satisfiability, so no")
    print("  polynomial (or even approximate) evaluator can exist for the")
    print("  combined model unless P = NP.")


if __name__ == "__main__":
    main()
