"""Data-quality triage for screen-scraped data — the full pipeline.

The paper's motivating scenario, end to end:

1. simulate a screen-scraper over a ground-truth real-estate listing
   (per-node confidences, OCR-style label ambiguity, spurious nodes);
2. state domain knowledge as constraints ("every flat lists a price",
   "a listing never shows the same flat twice", ...);
3. diagnose: is the constrained space well-defined?  Which constraints
   would the most likely raw world violate?
4. repair probabilistically: the PXDB conditions the scraper's output on
   the constraints; compare how the *true* world ranks before and after,
   and read off cleaned per-answer probabilities and expected counts;
5. show the k most probable cleaned documents.

Run:  python examples/data_quality_report.py
"""

from __future__ import annotations

import random

from repro import (
    PXDB,
    expected_count,
    explain_violations,
    selector,
    templates,
    top_k_worlds,
)
from repro.pdoc.enumerate import world_distribution, world_probability
from repro.workloads.scraping import ScrapeModel, scrape, truth_world
from repro.xmltree.document import Document, doc
from repro.xmltree.serialize import document_to_xml


def ground_truth() -> Document:
    return Document(
        doc(
            "listing",
            doc("flat", doc("rooms", 3), doc("price", 1200)),
            doc("flat", doc("rooms", 2), doc("price", 900)),
            doc("agent", doc("name", "Iris")),
        )
    )


def main() -> None:
    truth = ground_truth()
    rng = random.Random(11)
    model = ScrapeModel(ambiguity=0.3, spurious=0.4, sure_depth=1)
    pdoc = scrape(truth, model, rng)
    print(f"scraped p-document: {pdoc}")

    constraints = [
        templates.at_least("listing/$flat", "*/$price", 1, name="flat-has-price"),
        templates.at_least("listing/$flat", "*/$rooms", 1, name="flat-has-rooms"),
        templates.at_most("$listing", "*/$agent", 1, name="single-agent"),
        templates.unique("listing/$flat", "*/$spurious", name="tolerate-one-glitch"),
    ]
    db = PXDB(pdoc, constraints)
    p_c = db.constraint_probability()
    print(f"Pr(P |= C) = {p_c} ≈ {float(p_c):.4f}")

    # What would the scraper's most likely raw world violate?
    raw_best_uids = max(world_distribution(pdoc).items(), key=lambda kv: kv[1])[0]
    raw_best = pdoc.document_from_uids(raw_best_uids)
    violations = explain_violations(raw_best, constraints)
    print(f"\nmost likely RAW world violates {len(violations)} constraint instance(s):")
    for violation in violations:
        print("  -", violation.describe())

    # How does conditioning move the true world?
    world = truth_world(truth, pdoc)
    prior = world_probability(pdoc, world)
    posterior = db.document_probability(pdoc.document_from_uids(world))
    print(f"\ntrue world:  prior Pr = {float(prior):.5f}   "
          f"conditioned Pr = {float(posterior):.5f}   "
          f"(lift ×{float(posterior / prior):.2f})")

    # Cleaned per-answer probabilities and expected counts.
    print("\nconditional price answers:")
    price_table = db.query_labels("listing/flat/price/$*")
    for labels, prob in sorted(price_table.items(), key=lambda kv: str(kv[0])):
        print(f"  price={str(labels[0]):<6} Pr ≈ {float(prob):.4f}")
    flats = expected_count(selector("listing/$flat"), pdoc, db.condition)
    print(f"expected #flats | C = {flats} ≈ {float(flats):.3f}")

    print("\ntop-3 cleaned documents:")
    for document, prob in top_k_worlds(pdoc, 3, db.condition):
        print(f"  Pr = {float(prob):.4f}")
        for line in document_to_xml(document, style="tags").splitlines()[:6]:
            print("   ", line)
        print("    ...")


if __name__ == "__main__":
    main()
