"""Aggregate constraints on uncertain medical data (Sections 7.2 and 7.4).

The paper's introduction motivates probabilistic XML with medical
information "based on statistics and (imprecise) examinations".  This
example models a clinic's screen-scraped trial registry: each trial's
cohorts and lab readings were extracted with some confidence, and
published statistics supply aggregate constraints:

* a CNT constraint   — every trial has at least one cohort;
* a MAX constraint   — no lab reading exceeds the assay's ceiling of 100;
* a RATIO constraint — at least half of the trials carry an audit marker;
* a probabilistic constraint under WNC — with probability 0.9, every
  audited trial has at least two cohorts.

Run:  python examples/clinical_trials_audit.py
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro import (
    PXDB,
    CountAtom,
    MaxAtom,
    ProbabilisticConstraint,
    ProbabilisticPXDB,
    SFormula,
    WNC,
    always,
    parse_selector,
    pdocument,
)
from repro.aggregates.ratio import at_least_fraction
from repro.pdoc.pdocument import PNode


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


def build_registry():
    """registry -> 4 trials, each with two uncertain cohorts (each cohort
    holding two uncertain numeric lab readings) and an uncertain audit
    marker."""
    rng = random.Random(7)
    pd, root = pdocument("registry")
    for index in range(4):
        trial = root.ordinary("trial")
        trial.ordinary("name").ordinary(f"trial-{index}")
        parts = trial.ind()
        for _ in range(2):
            cohort = PNode("ord", "cohort")
            readings = cohort.ind()
            for _ in range(2):
                readings.add_edge(rng.randint(40, 95), Fraction(4, 5))
            parts.add_edge(cohort, Fraction(3, 4))
        parts.add_edge("audited", Fraction(3, 5))
    pd.validate()
    return pd


def main() -> None:
    pdoc = build_registry()

    # CNT (Definition 2.2): every trial has at least one cohort.
    c_cohort = always(
        sel("registry/$trial"), sel("*/$cohort"), ">=", 1, name="trial-has-cohort"
    )

    # MAX (Theorem 7.1): no reading anywhere exceeds the assay ceiling.
    c_ceiling = MaxAtom([sel("$*"), sel("*//$*")], "<=", 100)

    # RATIO (Theorem 7.1): at least half of the trials are audited.
    is_audited = CountAtom([sel("*/$audited")], ">=", 1)
    c_ratio = at_least_fraction(sel("registry/$trial"), is_audited, Fraction(1, 2))

    db = PXDB(pdoc, [c_cohort, c_ceiling, c_ratio])
    p_c = db.constraint_probability()
    print(f"Pr(P |= C)  = {p_c} ≈ {float(p_c):.4f}")

    print("\nconditional probability that each trial is audited:")
    table = db.query_labels("registry/trial/name/$*")
    audited_table = db.query("registry/$1:trial/$2:audited")
    for (trial_uid, _), prob in sorted(audited_table.items()):
        name_node = pdoc.node_by_uid(trial_uid).children[0].children[0]
        print(f"  {name_node.label}: ≈ {float(prob):.4f}")

    # Probabilistic constraint under WNC (Section 7.4).
    strict_audit = ProbabilisticConstraint(
        always(sel("*//$trial[audited]"), sel("*/$cohort"), ">=", 2),
        Fraction(9, 10),
        name="audited-trials-fully-enrolled",
    )
    space = ProbabilisticPXDB(pdoc, [strict_audit], WNC)
    print("\nWNC space well-defined?", space.is_well_defined())
    event = CountAtom([sel("*//$cohort")], ">=", 6)
    print("Pr(>= 6 cohorts overall under WNC) ≈",
          f"{float(space.event_probability(event)):.4f}")

    rng = random.Random(3)
    document = space.sample(rng)
    cohorts = sum(1 for n in document.nodes() if n.label == "cohort")
    audited = sum(1 for n in document.nodes() if n.label == "audited")
    print(f"one WNC sample: {cohorts} cohorts, {audited} audited trials")


if __name__ == "__main__":
    main()
