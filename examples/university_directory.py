"""The paper's running example, end to end.

Rebuilds the Figure 1 PXDB (a university directory obtained by
screen-scraping, so every extracted fact carries a probability), states
the constraints C1-C4 of Example 2.3 in the textual constraint syntax,
and walks through each worked example of the paper:

* Example 3.1 — Mary's chair/rank probabilities;
* Example 3.2 — Pr(Amy) = 0.54 unconditioned;
* Example 3.4 — Pr(Amy | C) under the constraint-induced dependencies;
* conditioned sampling (Figure 3) and query evaluation over the PXDB.

Run:  python examples/university_directory.py
"""

from __future__ import annotations

import random

from repro import PXDB, exists, node_probability, parse_constraints
from repro.core.constraints import satisfies_all
from repro.pdoc.serialize import pdocument_to_xml
from repro.workloads.university import Figure1, figure2_document
from repro.xmltree.pattern import Pattern, PatternNode
from repro.xmltree.predicates import ANY, NodeIs

CONSTRAINTS_TEXT = """
# C1: a department cannot have more than one chair.
C1: forall university/$department : count(*//$member[position/~'professor'][position/chair]) <= 1
# C2: a department with 3 or more professors must have a chair.
C2: forall university/$department : count(*//$member[//~'professor']) >= 3 -> count(*//$member[position/~'professor'][position/chair]) >= 1
# C3: a member must be a full professor in order to be a chair.
C3: forall *//$member[position/~'professor'][position/chair] : count($*[position/'full professor']) >= 1
# C4: an assistant professor supervises at most one Ph.D. student.
C4: forall *//$member[position/'assistant professor'] : count(*/$'ph.d. st.') <= 1
"""


def node_event(uid: int):
    """'The node with this uid appears in the random document.'"""
    root = PatternNode(ANY)
    root.descendant(NodeIs(uid))
    return exists(Pattern(root))


def main() -> None:
    fig = Figure1()
    constraints = parse_constraints(CONSTRAINTS_TEXT)
    db = PXDB(fig.pdoc, constraints)

    print("The Figure 1 p-document (ProTDB-style XML):\n")
    print(pdocument_to_xml(fig.pdoc)[:600], "...\n")

    print("Example 3.1 — Mary:")
    print("  Pr(chair)     =", node_probability(fig.pdoc, fig.mary_chair.uid))
    print("  Pr(full)      =", node_probability(fig.pdoc, fig.mary_full.uid))
    print("  Pr(assistant) =", node_probability(fig.pdoc, fig.mary_assistant.uid))

    print("\nExample 3.2 — Amy, unconditioned:")
    print("  Pr(Amy) =", node_probability(fig.pdoc, fig.amy.uid), "(the paper: 0.54)")

    print("\nConstraint satisfaction (Theorem 5.3):")
    print("  Pr(P |= C1..C4) =", db.constraint_probability(),
          f"≈ {float(db.constraint_probability()):.4f}")

    print("\nExample 3.4 — Amy, conditioned on the constraints:")
    amy_cond = db.event_probability(node_event(fig.amy.uid))
    print(f"  Pr(Amy | C) = {amy_cond} ≈ {float(amy_cond):.4f}  (≠ 0.54: the")
    print("  constraints couple Amy to Lisa's rank, Lisa's chair, Mary's")
    print("  chair and Paul's existence — Example 3.4's dependency chain)")

    print("\nQuery: Ph.D. student names with conditional probabilities:")
    for labels, prob in sorted(db.query_labels("*//'ph.d. st.'/name/$*").items()):
        print(f"  {labels[0]:<8} {prob}  (≈ {float(prob):.4f})")

    print("\nFigure 2 is a random instance of this PXDB:")
    world = fig.pdoc.document_from_uids(fig.figure2_uids())
    print("  satisfies C1..C4:", satisfies_all(world, constraints))
    print("  Pr(D = figure-2) =", db.document_probability(world))
    assert figure2_document() == world  # structurally identical

    print("\nThree conditioned samples (Figure 3's algorithm):")
    rng = random.Random(1)
    for _ in range(3):
        document = db.sample(rng)
        members = sum(1 for n in document.nodes() if n.label == "member")
        chairs = sum(1 for n in document.nodes() if n.label == "chair")
        students = sum(1 for n in document.nodes() if n.label == "ph.d. st.")
        print(f"  members={members} chairs={chairs} students={students} "
              f"(satisfies C: {satisfies_all(document, constraints)})")


if __name__ == "__main__":
    main()
