"""The tractability boundary: SUM makes probabilistic XML NP-hard.

Proposition 7.2 shows that deciding Pr(P ⊨ SUM(all nodes) = R) > 0 is
NP-complete, by reduction from Subset-Sum.  This example makes the
boundary tangible:

1. builds the reduction gadget for a concrete Subset-Sum instance and
   shows that formula positivity tracks solvability;
2. times the generic (world-enumeration) decision procedure as the
   instance grows — the exponential wall;
3. contrasts it with the pseudo-polynomial sum DP, which is fast for
   small item magnitudes (and is no contradiction: NP-hard instances
   carry exponentially large values);
4. shows that the *same* probability question with CNT/MAX/MIN/RATIO
   instead of SUM is answered by the polynomial evaluator instantly
   (Theorem 7.1's side of the boundary).

Run:  python examples/subset_sum_boundary.py
"""

from __future__ import annotations

import random
import time

from repro import CountAtom, MaxAtom, SFormula, parse_selector, probability
from repro.aggregates.hardness import (
    decide_by_dp,
    decide_by_enumeration,
    reduction,
    solving_subsets,
    subset_sum_pdocument,
)
from repro.baseline.naive import naive_probability


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


def main() -> None:
    items, target = [3, 5, 7, 11], 15
    pdoc, formula = reduction(items, target)
    print(f"Subset-Sum instance: items={items}, target={target}")
    print("  solving subsets:", solving_subsets(items, target))
    p = naive_probability(pdoc, formula)
    print(f"  Pr(P |= SUM(all) = {target}) = {p}  (> 0 iff solvable)")
    print(f"  pseudo-poly DP agrees: {decide_by_dp(items, target)}")

    print("\nThe exponential wall (world enumeration):")
    rng = random.Random(0)
    for size in (8, 10, 12, 14):
        instance = [rng.randint(1, 30) for _ in range(size)]
        goal = sum(instance) // 2
        start = time.perf_counter()
        solvable = decide_by_enumeration(instance, goal)
        elapsed = time.perf_counter() - start
        print(f"  n={size:>2}: 2^{size} worlds, {elapsed:7.3f}s, solvable={solvable}")

    print("\nThe pseudo-polynomial DP on much larger instances:")
    for size in (50, 200, 800):
        instance = [rng.randint(1, 30) for _ in range(size)]
        goal = sum(instance) // 2
        start = time.perf_counter()
        solvable = decide_by_dp(instance, goal)
        elapsed = time.perf_counter() - start
        print(f"  n={size:>3}: {elapsed:7.3f}s, solvable={solvable}")

    print("\nThe tractable side of the boundary (Theorem 7.1):")
    big = subset_sum_pdocument([rng.randint(1, 30) for _ in range(60)])
    start = time.perf_counter()
    count_p = probability(big, CountAtom([sel("items/$*")], ">=", 30))
    max_p = probability(big, MaxAtom([sel("$*"), sel("*//$*")], ">=", 25))
    elapsed = time.perf_counter() - start
    print(f"  CNT >= 30 of 60 items: Pr ≈ {float(count_p):.4f}")
    print(f"  MAX >= 25:             Pr ≈ {float(max_p):.4f}")
    print(f"  both in {elapsed:.3f}s over 2^60 worlds — polynomial, per the paper")


if __name__ == "__main__":
    main()
