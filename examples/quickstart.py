"""Quickstart: a PXDB in ~40 lines.

Builds a tiny probabilistic XML document (a screen-scraped book catalog
where extraction is uncertain), adds one constraint, and runs the three
computational problems of the paper: constraint satisfaction, query
evaluation and conditional sampling.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro import PXDB, PNode, parse_constraint, pdocument


def build_catalog():
    """catalog -> shelf -> {two uncertain books, one uncertain lamp}."""
    pd, root = pdocument("catalog")
    shelf = root.ordinary("shelf")
    scraped = shelf.ind()  # each extraction succeeded independently

    dune = PNode("ord", "book")
    dune.ordinary("title").ordinary("Dune")
    scraped.add_edge(dune, Fraction(9, 10))

    solaris = PNode("ord", "book")
    solaris.ordinary("title").ordinary("Solaris")
    scraped.add_edge(solaris, Fraction(3, 5))

    scraped.add_edge("lamp", Fraction(1, 2))
    pd.validate()
    return pd


def main() -> None:
    pdoc = build_catalog()

    # Real-world knowledge as a constraint: a shelf in this library is
    # never empty — every shelf holds at least one book.
    constraint = parse_constraint(
        "forall catalog/$shelf : count(*/$book) >= 1", name="nonempty-shelf"
    )
    db = PXDB(pdoc, [constraint])

    print("Pr(P |= C)            =", db.constraint_probability())
    print("well-defined PXDB?    ", db.is_well_defined())

    # Query: which titles exist, and with what (conditional) probability?
    print("\nQ = catalog/shelf/book/title/$*   over the PXDB:")
    for labels, prob in sorted(db.query_labels("catalog/shelf/book/title/$*").items()):
        print(f"  {labels[0]:<10} {prob}  (≈ {float(prob):.4f})")

    # Sample documents with exactly the conditional probability Pr(D = d).
    rng = random.Random(0)
    print("\nthree samples from the PXDB:")
    for _ in range(3):
        document = db.sample(rng)
        titles = sorted(
            node.children[0].label
            for node in document.nodes()
            if node.label == "title"
        )
        lamps = sum(1 for node in document.nodes() if node.label == "lamp")
        print(f"  books={titles} lamps={lamps}")


if __name__ == "__main__":
    main()
