"""Legacy setup shim: the offline environment lacks `wheel`, so editable
installs must go through `setup.py develop`; metadata lives in pyproject.toml."""

from setuptools import setup

setup()
