"""E12 — arithmetic-circuit compilation: re-bind + forward sweep vs. a
full DP re-run after probability-only edits.

The serving scenario: a stored p-document whose *structure* is fixed but
whose probability annotations keep being re-estimated (data cleaning,
confidence updates).  The DP must re-traverse the document per edit; the
compiled circuit re-binds its parameter vector and replays one forward
sweep over the (dead-code-eliminated) gate program.

Two claims:

* **Exactness** — on every edited binding, the circuit's forward pass
  returns ``Fraction``s identical to a fresh evaluator run, and one
  backward sweep matches exact central finite differences (the outputs
  are multilinear in the parameters, so the differences are exact).
* **Speedup** — re-bind + forward must be ≥ 5× faster than the full DP
  re-run (fresh :class:`~repro.core.evaluator.Evaluation` over an
  already-compiled registry — the steelman: no parsing, no constraint
  compilation, no automata construction in the measured region).
"""

from __future__ import annotations

import time
from fractions import Fraction

from repro.aggregates.minmax import rewrite
from repro.circuit import compile_formulas
from repro.core.compiler import Registry
from repro.core.constraints import constraints_formula
from repro.core.evaluator import Evaluation
from repro.obs.benchrec import benchmark_mean
from repro.pdoc.parameters import apply_parameters, parameter_slots
from repro.workloads.university import figure1_constraints, scaled_university

EDIT_ROUNDS = 6
SPEEDUP_FLOOR = 5.0


def _edited_values(slots, round_index: int) -> list[Fraction]:
    """A deterministic per-round probability jitter: scale every ind/mux
    edge probability by a round-dependent factor < 1 (keeps values in
    [0, 1] and mux sums ≤ 1; exp subset weights — which must sum to
    exactly 1 — are left untouched)."""
    factor = Fraction(17 + round_index, 20 + round_index)
    values = []
    for slot in slots:
        if slot.field == "edge":
            values.append(slot.value * factor)
        else:
            values.append(slot.value)
    return values


def test_bench_circuit_rebind_vs_dp(report, benchmark, record):
    pdoc = scaled_university(departments=4, members=4, students=2)
    condition = rewrite(constraints_formula(figure1_constraints()))
    registry = Registry([condition])

    start = time.perf_counter()
    circuit = compile_formulas(pdoc, [condition])
    compile_elapsed = time.perf_counter() - start
    stats = circuit.stats()

    slots = parameter_slots(pdoc)
    dp_elapsed = 0.0
    circuit_elapsed = 0.0
    for round_index in range(EDIT_ROUNDS):
        apply_parameters(pdoc, _edited_values(slots, round_index))

        start = time.perf_counter()
        dp_value = Evaluation(registry, pdoc).run()[0]
        dp_elapsed += time.perf_counter() - start

        start = time.perf_counter()
        circuit_value = circuit.rebind(pdoc).forward()[0]
        circuit_elapsed += time.perf_counter() - start

        assert circuit_value == dp_value, (
            f"round {round_index}: circuit {circuit_value} != DP {dp_value}"
        )

    # Backward pass spot-check: exact central differences on two params.
    base = list(circuit.param_values)
    gradients = circuit.gradient(0)
    step = Fraction(1, 64)
    for k in (0, len(base) // 2):
        up, down = list(base), list(base)
        up[k] = base[k] + step
        down[k] = base[k] - step
        circuit.set_param_values(up)
        high = circuit.forward()[0]
        circuit.set_param_values(down)
        low = circuit.forward()[0]
        assert (high - low) / (2 * step) == gradients[k]
    circuit.set_param_values(base)

    speedup = dp_elapsed / circuit_elapsed if circuit_elapsed else float("inf")
    report(
        f"E12 circuit  {stats['nodes']} nodes / {stats['params']} params  "
        f"compile {compile_elapsed * 1000:6.1f} ms  "
        f"{EDIT_ROUNDS} edits: DP {dp_elapsed * 1000:7.1f} ms  "
        f"rebind+forward {circuit_elapsed * 1000:6.1f} ms  "
        f"speedup {speedup:5.1f}x (floor {SPEEDUP_FLOOR:.0f}x)"
    )
    assert dp_elapsed >= SPEEDUP_FLOOR * circuit_elapsed, (
        f"circuit re-bind should be >= {SPEEDUP_FLOOR}x faster than the DP "
        f"re-run: DP {dp_elapsed:.4f}s vs circuit {circuit_elapsed:.4f}s "
        f"({speedup:.1f}x)"
    )

    def rebind_and_forward():
        return circuit.rebind(pdoc).forward()

    benchmark(rebind_and_forward)
    record(
        f"scaled university, {EDIT_ROUNDS} probability edits",
        wall_s=benchmark_mean(benchmark),
        counters={
            "nodes": stats["nodes"],
            "params": stats["params"],
            "edges": stats["edges"],
        },
        speedup=speedup,
        compile_s=compile_elapsed,
        dp_s=dp_elapsed,
        circuit_s=circuit_elapsed,
    )
