"""E11/E16 — the service layer: warm store-and-serve vs cold per-request
work, and the async sharded front end vs the threaded baseline under load.

Claims, all load-bearing for the service subsystem:

* **Warm throughput** — repeat requests against a *stored* PXDB (parsed
  once, condition compiled once, Pr(P ⊨ C) cached, incremental engine and
  query-result cache hot) must be ≥ 3× faster than the CLI-equivalent
  cold path that re-parses the p-document, re-compiles the constraints
  and re-evaluates the denominator on every request.  (In practice the
  gap is orders of magnitude; 3× is the regression floor.)
* **Concurrent exactness** — a 4-client concurrent run over HTTP returns
  results *identical* (exact ``Fraction`` strings, byte-identical sampled
  XML) to sequential direct :class:`~repro.core.pxdb.PXDB` calls.  The
  coalescer shares DP passes and the pool shares nothing but file specs;
  neither is allowed to perturb a single digit.
* **E16: sharded throughput** — on a mixed sat/query/top-k workload over
  persistent connections, the async front end (consistent-hash shards +
  per-entry heterogeneous batch scheduler) must sustain ≥ 2× the request
  rate of the threaded baseline, with every response correct, /metrics
  p50/p99 populated, and each shard worker's warm store confined to its
  own shard's entries.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.core.pxdb import PXDB
from repro.obs.benchrec import benchmark_mean
from repro.pdoc.serialize import pdocument_to_xml
from repro.service import (
    DocumentStore,
    Metrics,
    PXDBService,
    ServiceClient,
    ShardRouter,
    build_sharded_service,
    start_async_server,
    start_server,
)
from repro.service.store import read_constraints, read_pdocument
from repro.workloads.university import scaled_university
from repro.xmltree.serialize import document_to_xml

CONSTRAINTS_TEXT = (
    "forall university/$department : "
    "count(*//$member[position/~'professor'][position/chair]) <= 1\n"
    "forall university/$department : "
    "count(*//$member[//~'professor']) >= 3 -> "
    "count(*//$member[position/~'professor'][position/chair]) >= 1\n"
)
QUERIES = ["*//'ph.d. st.'/$name", "university/$department"]
REPEATS = 10


@pytest.fixture()
def university_files(tmp_path: Path) -> tuple[Path, Path]:
    pdoc = scaled_university(departments=3, members=3, students=1)
    pdocument_path = tmp_path / "university.pxml"
    pdocument_path.write_text(pdocument_to_xml(pdoc))
    constraints_path = tmp_path / "university.cons"
    constraints_path.write_text(CONSTRAINTS_TEXT)
    return pdocument_path, constraints_path


def _cold_request(pdocument_path: Path, constraints_path: Path, query: str | None):
    """What every CLI invocation pays: parse, compile, evaluate from zero."""
    pdoc = read_pdocument(pdocument_path)
    constraints = read_constraints(constraints_path)
    db = PXDB(pdoc, constraints)  # check=True evaluates the denominator
    if query is None:
        return db.constraint_probability()
    return db.query_labels(query)


def test_bench_service_warm_vs_cold(university_files, report, benchmark, record):
    pdocument_path, constraints_path = university_files

    store = DocumentStore()
    store.register("uni", pdocument_path, constraints_path)
    service = PXDBService(store, metrics=Metrics())

    requests: list[str | None] = [None] + QUERIES  # None = CONSTRAINT-SAT

    start = time.perf_counter()
    cold_results = [
        _cold_request(pdocument_path, constraints_path, query)
        for _ in range(REPEATS)
        for query in requests
    ]
    cold_elapsed = time.perf_counter() - start

    def warm_round() -> list:
        results = []
        for query in requests:
            if query is None:
                results.append(service.sat("uni"))
            else:
                results.append(service.query("uni", query))
        return results

    start = time.perf_counter()
    warm_results = [result for _ in range(REPEATS) for result in warm_round()]
    warm_elapsed = time.perf_counter() - start

    # Exactness first: the warm path answers exactly what cold computed.
    for cold, warm in zip(cold_results, warm_results):
        if isinstance(warm, dict) and "answers" in warm:
            served = {
                tuple(row["answer"]): row["probability"] for row in warm["answers"]
            }
            direct = {
                tuple(str(label) for label in labels): str(value)
                for labels, value in cold.items()
            }
            assert served == direct
        else:
            assert warm["constraint_probability"] == str(cold)

    total = REPEATS * len(requests)
    speedup = cold_elapsed / warm_elapsed if warm_elapsed else float("inf")
    report(
        f"E11 service  warm-store speedup: {total} requests  "
        f"cold {cold_elapsed * 1000:7.1f} ms  warm {warm_elapsed * 1000:7.1f} ms  "
        f"speedup {speedup:6.1f}x (floor 3x)"
    )
    assert cold_elapsed >= 3 * warm_elapsed, (
        f"warm service should be >= 3x faster: cold {cold_elapsed:.4f}s "
        f"vs warm {warm_elapsed:.4f}s ({speedup:.1f}x)"
    )

    benchmark(warm_round)
    engine_stats = store.get("uni").engine.stats()
    record(
        f"warm vs cold, {total} requests",
        wall_s=benchmark_mean(benchmark),
        counters={
            "engine_cache_hits": engine_stats["cache_hits"],
            "engine_nodes_computed": engine_stats["nodes_computed"],
        },
        speedup=speedup,
        cold_s=cold_elapsed,
        warm_s=warm_elapsed,
    )


def test_bench_service_concurrent_identity(university_files, report, record):
    pdocument_path, constraints_path = university_files
    clients = 4

    # Ground truth: sequential direct PXDB calls, one fresh PXDB per
    # sampling seed (the sample sequence depends only on the RNG).
    pdoc = read_pdocument(pdocument_path)
    constraints = read_constraints(constraints_path)
    db = PXDB(pdoc, constraints)
    expected: dict[tuple, object] = {}
    for index in range(clients):
        expected[("sat", index)] = str(db.constraint_probability())
        for query in QUERIES:
            expected[("query", index, query)] = {
                tuple(str(label) for label in labels): str(value)
                for labels, value in db.query_labels(query).items()
            }
        rng = random.Random(index)
        fresh = PXDB(read_pdocument(pdocument_path), constraints)
        expected[("sample", index)] = [
            document_to_xml(fresh.sample(rng), style="tags") for _ in range(2)
        ]

    store = DocumentStore()
    store.register("uni", pdocument_path, constraints_path)
    server = start_server(store)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")

    def run_client(index: int) -> dict[tuple, object]:
        results: dict[tuple, object] = {}
        results[("sat", index)] = str(client.sat("uni"))
        for query in QUERIES:
            results[("query", index, query)] = {
                labels: str(value)
                for labels, value in client.query("uni", query).items()
            }
        results[("sample", index)] = client.sample("uni", count=2, seed=index)
        return results

    start = time.perf_counter()
    try:
        with ThreadPoolExecutor(max_workers=clients) as executor:
            merged: dict[tuple, object] = {}
            for results in executor.map(run_client, range(clients)):
                merged.update(results)
    finally:
        server.shutdown()
        server.server_close()
    elapsed = time.perf_counter() - start

    assert merged == expected, "concurrent served results diverged from direct PXDB"
    total = clients * (2 + len(QUERIES))
    report(
        f"E11 service  concurrent identity: {clients} clients x "
        f"{2 + len(QUERIES)} ops in {elapsed * 1000:7.1f} ms "
        f"({total / elapsed:6.1f} req/s), results byte-identical"
    )
    record(
        f"{clients} concurrent clients over HTTP",
        wall_s=elapsed,
        counters={"requests": total},
        requests_per_s=total / elapsed,
    )


def test_bench_service_coalescer_early_drain(university_files, report, record):
    """Sequential clients must not pay the coalescing window: a lone
    leader drains as soon as it sees it has no followers, so the mean
    per-call latency stays well under the window (the pre-fix behavior
    slept the full window on every call — a hard 2 ms p50 floor)."""
    from repro.core.formulas import exists
    from repro.core.query import Query
    from repro.service import Coalescer

    pdoc = read_pdocument(university_files[0])
    constraints = read_constraints(university_files[1])
    db = PXDB(pdoc, constraints)
    event = exists(Query.parse(QUERIES[0]).pattern)
    direct = db.event_probability(event)

    window = 0.01
    calls = 20
    coalescer = Coalescer(db, window=window)
    assert coalescer.event_probability(event) == direct  # warm the engine

    # Baseline: the same evaluations without any coalescing machinery.
    start = time.perf_counter()
    for _ in range(calls):
        assert db.event_probability(event) == direct
    direct_mean = (time.perf_counter() - start) / calls

    start = time.perf_counter()
    for _ in range(calls):
        assert coalescer.event_probability(event) == direct
    mean = (time.perf_counter() - start) / calls
    overhead = mean - direct_mean

    report(
        f"E11 service  sequential coalescer: {calls} calls  "
        f"direct {direct_mean * 1000:6.3f} ms  coalesced {mean * 1000:6.3f} ms  "
        f"overhead {overhead * 1000:+6.3f} ms vs {window * 1000:.0f} ms window"
    )
    # Pre-fix, every lone leader slept the whole window, so the overhead
    # was >= window by construction.  Early drain keeps it to bookkeeping.
    assert overhead < window / 2, (
        f"a lone leader should drain early, not sleep the {window * 1000:.0f} ms "
        f"window: coalescing overhead {overhead * 1000:.3f} ms per call"
    )
    assert coalescer.stats()["batches"] == calls + 1
    record(
        f"{calls} sequential coalesced calls",
        wall_s=mean,
        counters={"calls": calls, "batches": coalescer.stats()["batches"]},
        window_s=window,
        direct_ms=direct_mean * 1000,
        overhead_ms=overhead * 1000,
    )


# -- E16: the async sharded front end under load ------------------------------

CONNECTIONS = 16
ROUNDS = 3


def _shard_split_names(shards: int = 2) -> list[str]:
    """One PXDB name per shard (the router is deterministic, so probing
    candidate names until every shard owns one is stable across runs)."""
    router = ShardRouter(shards)
    names: dict[int, str] = {}
    index = 0
    while len(names) < shards:
        candidate = f"db{index}"
        names.setdefault(router.shard_for(candidate), candidate)
        index += 1
    return [names[shard] for shard in range(shards)]


@pytest.fixture()
def sharded_files(tmp_path: Path) -> tuple[list[str], dict[str, tuple]]:
    """Two university PXDBs whose names land on different shards."""
    names = _shard_split_names(2)
    specs: dict[str, tuple] = {}
    pdocument_path = tmp_path / "uni-a.pxml"
    pdocument_path.write_text(
        pdocument_to_xml(scaled_university(departments=2, members=3, students=1))
    )
    constraints_path = tmp_path / "uni-a.cons"
    constraints_path.write_text(CONSTRAINTS_TEXT)
    specs[names[0]] = (pdocument_path, constraints_path)
    other_path = tmp_path / "uni-b.pxml"
    other_path.write_text(
        pdocument_to_xml(scaled_university(departments=3, members=3, students=1))
    )
    specs[names[1]] = (other_path, None)
    return names, specs


def _mixed_requests(name: str, connection: int, round_index: int) -> list[tuple]:
    """One round of the mixed workload: sat + two queries + one top-k
    whose ``k`` is unique per (connection, round) — a result-cache miss by
    design, so every top-k forces a real evaluation while the repeated
    query texts exercise the shared result cache on both front ends."""
    requests = [("/sat", {"db": name})]
    for query in QUERIES:
        requests.append(("/query", {"db": name, "query": query}))
    requests.append(
        ("/topk", {"db": name, "query": QUERIES[0],
                   "k": 1 + connection * 100 + round_index})
    )
    return requests


def _run_load(host: str, port: int, names: list[str]) -> tuple[int, float, list]:
    """CONNECTIONS persistent HTTP/1.1 connections, each cycling the
    mixed request set against its pinned PXDB; returns (ok_responses,
    elapsed_s, errors).  Raw sockets so both front ends serve identical
    keep-alive traffic (urllib reconnects per request, which would bench
    the TCP stack, not the server)."""
    errors: list[str] = []
    counts = [0] * CONNECTIONS

    def worker(connection: int) -> None:
        name = names[connection % len(names)]
        sock = socket.create_connection((host, port), timeout=120)
        reader = sock.makefile("rb")
        try:
            for round_index in range(ROUNDS):
                for path, payload in _mixed_requests(name, connection, round_index):
                    body = json.dumps(payload).encode()
                    sock.sendall(
                        (
                            f"POST {path} HTTP/1.1\r\nHost: bench\r\n"
                            f"Content-Type: application/json\r\n"
                            f"Content-Length: {len(body)}\r\n\r\n"
                        ).encode() + body
                    )
                    status = reader.readline()
                    if not status:
                        raise RuntimeError("server closed the connection")
                    headers = {}
                    while True:
                        line = reader.readline().strip()
                        if not line:
                            break
                        key, _, value = line.partition(b":")
                        headers[key.lower().strip()] = value.strip()
                    answer = json.loads(reader.read(int(headers[b"content-length"])))
                    if status.split()[1] != b"200" or answer.get("ok") is not True:
                        errors.append(f"{path}: {status!r} {answer}")
                    elif path == "/topk" and answer["answers"] != sorted(
                        answer["answers"], key=lambda row: eval_fraction(row["probability"]),
                        reverse=True,
                    ):
                        errors.append(f"unsorted top-k: {answer['answers']}")
                    counts[connection] += 1
                    if headers.get(b"connection", b"").lower() == b"close":
                        reader.close()
                        sock.close()
                        sock = socket.create_connection((host, port), timeout=120)
                        reader = sock.makefile("rb")
        except Exception as error:  # noqa: BLE001 — reported to the main thread
            errors.append(f"connection {connection}: {error!r}")
        finally:
            try:
                reader.close()
                sock.close()
            except OSError:
                pass

    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(CONNECTIONS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return sum(counts), time.perf_counter() - start, errors


def eval_fraction(text: str):
    from fractions import Fraction

    return Fraction(text)


def test_bench_service_async_sharded_load(sharded_files, report, record):
    names, specs = sharded_files
    total_requests = CONNECTIONS * ROUNDS * 4

    # Threaded baseline: the default front end, coalescer on, no pool.
    store = DocumentStore()
    for name in names:
        store.register(name, *specs[name])
    server = start_server(PXDBService(store, metrics=Metrics()))
    host, port = server.server_address[:2]
    try:
        threaded_total, threaded_elapsed, errors = _run_load(host, port, names)
    finally:
        server.shutdown()
        server.server_close()
    assert not errors, errors[:3]
    assert threaded_total == total_requests
    threaded_rps = threaded_total / threaded_elapsed

    # Async sharded: 2 shards, heterogeneous batch scheduler in front.
    async_store = DocumentStore()
    for name in names:
        async_store.register(name, *specs[name])
    service = build_sharded_service(async_store, shards=2, window=0.01)
    handle = start_async_server(service)
    try:
        async_total, async_elapsed, errors = _run_load(
            handle.address[0], handle.address[1], names
        )
        assert not errors, errors[:3]
        assert async_total == total_requests
        async_rps = async_total / async_elapsed

        metrics = ServiceClient(
            f"http://{handle.address[0]}:{handle.address[1]}"
        ).metrics()
        # p50/p99 populated for every batched route.
        for op in ("sat", "query", "topk"):
            latency = metrics["latency"][op]
            assert latency["count"] > 0
            assert latency["p99_ms"] >= latency["p50_ms"] >= 0
        scheduler = metrics["scheduler"]
        assert scheduler["mean_batch_size"] >= 2, (
            f"the scheduler should pack concurrent requests: {scheduler}"
        )
        assert service.metrics.counter("scheduler.fallbacks") == 0
        # Shard confinement: every worker's warm store holds exactly its
        # shard's names, nothing else.
        assignment = service.pool.shard_assignment()
        workers = service.pool.worker_stats(timeout=10.0)
        assert workers["probed"] >= 1
        for info in workers["workers"].values():
            assert info["names"] == sorted(assignment[info["shard"]])
    finally:
        handle.stop()
        service.scheduler.close()
        service.pool.shutdown()

    speedup = async_rps / threaded_rps
    report(
        f"E16 service  sharded front end: {total_requests} mixed requests  "
        f"threaded {threaded_rps:6.1f} req/s  async {async_rps:6.1f} req/s  "
        f"speedup {speedup:4.2f}x (floor 2x)  "
        f"mean batch {scheduler['mean_batch_size']:.1f}"
    )
    assert speedup >= 2.0, (
        f"async sharded front end should sustain >= 2x the threaded rate: "
        f"threaded {threaded_rps:.1f} req/s vs async {async_rps:.1f} req/s "
        f"({speedup:.2f}x)"
    )
    record(
        f"{CONNECTIONS} connections x {ROUNDS} rounds, mixed sat/query/topk",
        wall_s=async_elapsed,
        counters={
            "requests": total_requests,
            "scheduler_batches": scheduler["batches"],
            "batched_requests": scheduler["batched_requests"],
        },
        speedup=speedup,
        threaded_requests_per_s=threaded_rps,
        async_requests_per_s=async_rps,
        mean_batch_size=scheduler["mean_batch_size"],
        p99_topk_ms=metrics["latency"]["topk"]["p99_ms"],
    )
