"""E11 — the service layer: warm store-and-serve vs cold per-request work.

Two claims, both load-bearing for the service subsystem:

* **Warm throughput** — repeat requests against a *stored* PXDB (parsed
  once, condition compiled once, Pr(P ⊨ C) cached, incremental engine and
  query-result cache hot) must be ≥ 3× faster than the CLI-equivalent
  cold path that re-parses the p-document, re-compiles the constraints
  and re-evaluates the denominator on every request.  (In practice the
  gap is orders of magnitude; 3× is the regression floor.)
* **Concurrent exactness** — a 4-client concurrent run over HTTP returns
  results *identical* (exact ``Fraction`` strings, byte-identical sampled
  XML) to sequential direct :class:`~repro.core.pxdb.PXDB` calls.  The
  coalescer shares DP passes and the pool shares nothing but file specs;
  neither is allowed to perturb a single digit.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.core.pxdb import PXDB
from repro.obs.benchrec import benchmark_mean
from repro.pdoc.serialize import pdocument_to_xml
from repro.service import DocumentStore, Metrics, PXDBService, ServiceClient, start_server
from repro.service.store import read_constraints, read_pdocument
from repro.workloads.university import scaled_university
from repro.xmltree.serialize import document_to_xml

CONSTRAINTS_TEXT = (
    "forall university/$department : "
    "count(*//$member[position/~'professor'][position/chair]) <= 1\n"
    "forall university/$department : "
    "count(*//$member[//~'professor']) >= 3 -> "
    "count(*//$member[position/~'professor'][position/chair]) >= 1\n"
)
QUERIES = ["*//'ph.d. st.'/$name", "university/$department"]
REPEATS = 10


@pytest.fixture()
def university_files(tmp_path: Path) -> tuple[Path, Path]:
    pdoc = scaled_university(departments=3, members=3, students=1)
    pdocument_path = tmp_path / "university.pxml"
    pdocument_path.write_text(pdocument_to_xml(pdoc))
    constraints_path = tmp_path / "university.cons"
    constraints_path.write_text(CONSTRAINTS_TEXT)
    return pdocument_path, constraints_path


def _cold_request(pdocument_path: Path, constraints_path: Path, query: str | None):
    """What every CLI invocation pays: parse, compile, evaluate from zero."""
    pdoc = read_pdocument(pdocument_path)
    constraints = read_constraints(constraints_path)
    db = PXDB(pdoc, constraints)  # check=True evaluates the denominator
    if query is None:
        return db.constraint_probability()
    return db.query_labels(query)


def test_bench_service_warm_vs_cold(university_files, report, benchmark, record):
    pdocument_path, constraints_path = university_files

    store = DocumentStore()
    store.register("uni", pdocument_path, constraints_path)
    service = PXDBService(store, metrics=Metrics())

    requests: list[str | None] = [None] + QUERIES  # None = CONSTRAINT-SAT

    start = time.perf_counter()
    cold_results = [
        _cold_request(pdocument_path, constraints_path, query)
        for _ in range(REPEATS)
        for query in requests
    ]
    cold_elapsed = time.perf_counter() - start

    def warm_round() -> list:
        results = []
        for query in requests:
            if query is None:
                results.append(service.sat("uni"))
            else:
                results.append(service.query("uni", query))
        return results

    start = time.perf_counter()
    warm_results = [result for _ in range(REPEATS) for result in warm_round()]
    warm_elapsed = time.perf_counter() - start

    # Exactness first: the warm path answers exactly what cold computed.
    for cold, warm in zip(cold_results, warm_results):
        if isinstance(warm, dict) and "answers" in warm:
            served = {
                tuple(row["answer"]): row["probability"] for row in warm["answers"]
            }
            direct = {
                tuple(str(label) for label in labels): str(value)
                for labels, value in cold.items()
            }
            assert served == direct
        else:
            assert warm["constraint_probability"] == str(cold)

    total = REPEATS * len(requests)
    speedup = cold_elapsed / warm_elapsed if warm_elapsed else float("inf")
    report(
        f"E11 service  warm-store speedup: {total} requests  "
        f"cold {cold_elapsed * 1000:7.1f} ms  warm {warm_elapsed * 1000:7.1f} ms  "
        f"speedup {speedup:6.1f}x (floor 3x)"
    )
    assert cold_elapsed >= 3 * warm_elapsed, (
        f"warm service should be >= 3x faster: cold {cold_elapsed:.4f}s "
        f"vs warm {warm_elapsed:.4f}s ({speedup:.1f}x)"
    )

    benchmark(warm_round)
    engine_stats = store.get("uni").engine.stats()
    record(
        f"warm vs cold, {total} requests",
        wall_s=benchmark_mean(benchmark),
        counters={
            "engine_cache_hits": engine_stats["cache_hits"],
            "engine_nodes_computed": engine_stats["nodes_computed"],
        },
        speedup=speedup,
        cold_s=cold_elapsed,
        warm_s=warm_elapsed,
    )


def test_bench_service_concurrent_identity(university_files, report, record):
    pdocument_path, constraints_path = university_files
    clients = 4

    # Ground truth: sequential direct PXDB calls, one fresh PXDB per
    # sampling seed (the sample sequence depends only on the RNG).
    pdoc = read_pdocument(pdocument_path)
    constraints = read_constraints(constraints_path)
    db = PXDB(pdoc, constraints)
    expected: dict[tuple, object] = {}
    for index in range(clients):
        expected[("sat", index)] = str(db.constraint_probability())
        for query in QUERIES:
            expected[("query", index, query)] = {
                tuple(str(label) for label in labels): str(value)
                for labels, value in db.query_labels(query).items()
            }
        rng = random.Random(index)
        fresh = PXDB(read_pdocument(pdocument_path), constraints)
        expected[("sample", index)] = [
            document_to_xml(fresh.sample(rng), style="tags") for _ in range(2)
        ]

    store = DocumentStore()
    store.register("uni", pdocument_path, constraints_path)
    server = start_server(store)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")

    def run_client(index: int) -> dict[tuple, object]:
        results: dict[tuple, object] = {}
        results[("sat", index)] = str(client.sat("uni"))
        for query in QUERIES:
            results[("query", index, query)] = {
                labels: str(value)
                for labels, value in client.query("uni", query).items()
            }
        results[("sample", index)] = client.sample("uni", count=2, seed=index)
        return results

    start = time.perf_counter()
    try:
        with ThreadPoolExecutor(max_workers=clients) as executor:
            merged: dict[tuple, object] = {}
            for results in executor.map(run_client, range(clients)):
                merged.update(results)
    finally:
        server.shutdown()
        server.server_close()
    elapsed = time.perf_counter() - start

    assert merged == expected, "concurrent served results diverged from direct PXDB"
    total = clients * (2 + len(QUERIES))
    report(
        f"E11 service  concurrent identity: {clients} clients x "
        f"{2 + len(QUERIES)} ops in {elapsed * 1000:7.1f} ms "
        f"({total / elapsed:6.1f} req/s), results byte-identical"
    )
    record(
        f"{clients} concurrent clients over HTTP",
        wall_s=elapsed,
        counters={"requests": total},
        requests_per_s=total / elapsed,
    )


def test_bench_service_coalescer_early_drain(university_files, report, record):
    """Sequential clients must not pay the coalescing window: a lone
    leader drains as soon as it sees it has no followers, so the mean
    per-call latency stays well under the window (the pre-fix behavior
    slept the full window on every call — a hard 2 ms p50 floor)."""
    from repro.core.formulas import exists
    from repro.core.query import Query
    from repro.service import Coalescer

    pdoc = read_pdocument(university_files[0])
    constraints = read_constraints(university_files[1])
    db = PXDB(pdoc, constraints)
    event = exists(Query.parse(QUERIES[0]).pattern)
    direct = db.event_probability(event)

    window = 0.01
    calls = 20
    coalescer = Coalescer(db, window=window)
    assert coalescer.event_probability(event) == direct  # warm the engine

    # Baseline: the same evaluations without any coalescing machinery.
    start = time.perf_counter()
    for _ in range(calls):
        assert db.event_probability(event) == direct
    direct_mean = (time.perf_counter() - start) / calls

    start = time.perf_counter()
    for _ in range(calls):
        assert coalescer.event_probability(event) == direct
    mean = (time.perf_counter() - start) / calls
    overhead = mean - direct_mean

    report(
        f"E11 service  sequential coalescer: {calls} calls  "
        f"direct {direct_mean * 1000:6.3f} ms  coalesced {mean * 1000:6.3f} ms  "
        f"overhead {overhead * 1000:+6.3f} ms vs {window * 1000:.0f} ms window"
    )
    # Pre-fix, every lone leader slept the whole window, so the overhead
    # was >= window by construction.  Early drain keeps it to bookkeeping.
    assert overhead < window / 2, (
        f"a lone leader should drain early, not sleep the {window * 1000:.0f} ms "
        f"window: coalescing overhead {overhead * 1000:.3f} ms per call"
    )
    assert coalescer.stats()["batches"] == calls + 1
    record(
        f"{calls} sequential coalesced calls",
        wall_s=mean,
        counters={"calls": calls, "batches": coalescer.stats()["batches"]},
        window_s=window,
        direct_ms=direct_mean * 1000,
        overhead_ms=overhead * 1000,
    )
