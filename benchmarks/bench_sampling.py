"""E4 — SAMPLE⟨C⟩ (Figure 3 / Theorems 6.1-6.2).

Claims regenerated:

* **correctness** (Thm 6.2) — the sampler's empirical distribution matches
  the exact conditional distribution Pr(D = d) (total-variation check);
* **efficiency** (Thm 6.1) — per-sample cost is polynomial and, crucially,
  *independent of Pr(P ⊨ C)*, whereas the rejection baseline's expected
  attempt count is 1/Pr(P ⊨ C) and blows up as constraints get tighter;
* **incrementality** — the persistent signature-distribution cache makes
  each conditioning step recompute only the touched spine: per sample the
  engine performs ≥ 3× fewer full-subtree signature recomputations than
  from-scratch evaluation on the scaled university workload (wall-clock
  speedup and evaluations-per-sample are reported alongside).
"""

from __future__ import annotations

import random
import time
from collections import Counter
from fractions import Fraction

import pytest

from repro.baseline.naive import conditional_world_distribution
from repro.baseline.rejection import RejectionBudgetExceeded, rejection_sample
from repro.core.constraints import constraints_formula
from repro.core.evaluator import IncrementalEngine, probability
from repro.core.formulas import CountAtom, SFormula
from repro.core.sampler import sample
from repro.obs.benchrec import benchmark_mean
from repro.workloads.synthetic import star_pdocument
from repro.workloads.university import (
    figure1_constraints,
    figure1_pdocument,
    scaled_university,
)
from repro.xmltree.parser import parse_selector

CONDITION = constraints_formula(figure1_constraints())


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


def test_sampler_distribution_correct(benchmark, report, record):
    """2000 samples against the exact conditional distribution of the
    Figure 1 PXDB: support containment, a chi-square goodness-of-fit test
    (tail worlds binned so every expected count is >= 5), and the TV
    distance reported against its statistical noise floor."""
    import math

    from scipy import stats

    pdoc = figure1_pdocument()
    exact = conditional_world_distribution(pdoc, CONDITION)
    rng = random.Random(42)
    n = 700

    def draw_all():
        return Counter(sample(pdoc, CONDITION, rng).uid_set() for _ in range(n))

    counts = benchmark.pedantic(draw_all, rounds=1, iterations=1)
    assert set(counts) <= set(exact)
    record(
        f"figure1 n={n}",
        wall_s=benchmark_mean(benchmark),
        counters={"worlds": len(exact), "samples": n},
    )

    observed, expected = [], []
    tail_obs, tail_exp = 0, 0.0
    for world, p in sorted(exact.items(), key=lambda kv: -kv[1]):
        e = float(p) * n
        if e >= 5:
            observed.append(counts.get(world, 0))
            expected.append(e)
        else:
            tail_obs += counts.get(world, 0)
            tail_exp += e
    if tail_exp > 0:
        observed.append(tail_obs)
        expected.append(tail_exp)
    _, p_value = stats.chisquare(observed, expected)
    tv = sum(abs(counts.get(w, 0) / n - float(p)) for w, p in exact.items()) / 2
    noise_floor = math.sqrt(len(exact) / (2 * math.pi * n))
    report(
        f"E4  sampler over {n} samples: TV={tv:.4f} "
        f"(noise floor ≈ {noise_floor:.4f}, worlds={len(exact)}), "
        f"chi-square p={p_value:.3f}"
    )
    assert p_value > 1e-4, f"sampler distribution rejected (p={p_value})"
    assert tv < 3 * noise_floor


@pytest.mark.parametrize("required", [1, 6, 9, 11])
def test_bench_sampler_vs_rejection(benchmark, required, report, record):
    """Constraint hardness sweep: require >= `required` of 12 rare leaves.
    Figure-3 sampling cost stays flat; rejection attempts explode."""
    pdoc = star_pdocument(width=12, prob=Fraction(1, 4))
    condition = CountAtom([sel("root/$a")], ">=", required)
    p_c = probability(pdoc, condition)
    rng = random.Random(required)
    benchmark.group = "E4-sampler"
    benchmark(lambda: sample(pdoc, condition, rng))

    attempts = None
    start = time.perf_counter()
    try:
        _, attempts = rejection_sample(pdoc, condition, rng, max_attempts=20000)
        rejection_note = f"attempts={attempts}"
    except RejectionBudgetExceeded:
        rejection_note = "attempts>20000 (budget exceeded)"
    rejection_time = time.perf_counter() - start
    report(
        f"E4  required={required:>2}  Pr(P |= C)={float(p_c):.2e}  "
        f"figure-3 OK; rejection {rejection_note} ({rejection_time:.2f}s)"
    )
    record(
        f"star width=12 required={required}",
        wall_s=benchmark_mean(benchmark),
        counters={"rejection_attempts": attempts},
        constraint_probability=float(p_c),
        rejection_wall_s=rejection_time,
    )
    if required >= 9:
        expected_attempts = 1 / float(p_c)
        assert attempts is None or attempts > 50, (
            f"rejection should struggle at Pr={float(p_c):.1e} "
            f"(expected ~{expected_attempts:.0f} attempts)"
        )


def test_bench_sampler_scaling(benchmark, report, record):
    """Per-sample cost on the Figure 1 PXDB (13 distributional edges)."""
    pdoc = figure1_pdocument()
    rng = random.Random(3)
    benchmark.group = "E4-sampler"
    document = benchmark(lambda: sample(pdoc, CONDITION, rng))
    assert document.root.label == "university"
    record(
        "figure1 per-sample",
        wall_s=benchmark_mean(benchmark),
        counters={"dist_edges": len(pdoc.dist_edges())},
    )


def test_bench_incremental_engine(report, record):
    """Incremental vs. from-scratch evaluation inside SAMPLE⟨C⟩ on the
    scaled university: same seeds, same documents, but the warm signature
    cache must cut full-subtree recomputations per sample by ≥ 3× (in
    practice far more — only the conditioned spine is re-evaluated)."""
    pdoc = scaled_university(departments=4, members=3, students=2)
    edges = len(pdoc.dist_edges())
    draws = 3

    def measure(incremental):
        engine = IncrementalEngine.for_formula(CONDITION)
        rng = random.Random(17)
        start = time.perf_counter()
        documents = [
            sample(pdoc, CONDITION, rng, engine=engine, incremental=incremental)
            for _ in range(draws)
        ]
        elapsed = time.perf_counter() - start
        return documents, engine.stats(), elapsed

    incr_docs, incr, incr_time = measure(True)
    scratch_docs, scratch, scratch_time = measure(False)

    # Identical RNG draws => identical sample sequence: incrementality is
    # purely an evaluation-sharing optimization, never a semantic one.
    assert [d.uid_set() for d in incr_docs] == [d.uid_set() for d in scratch_docs]
    assert incr["runs"] == scratch["runs"]

    recompute_ratio = scratch["nodes_computed"] / incr["nodes_computed"]
    report(
        f"E4  incremental engine ({edges} dist edges, {draws} samples): "
        f"{incr['runs'] / draws:.1f} evaluations/sample; subtree recomputations "
        f"{incr['nodes_computed'] / draws:.0f} vs {scratch['nodes_computed'] / draws:.0f} "
        f"per sample ({recompute_ratio:.1f}x fewer), hit rate {incr['hit_rate']:.0%}, "
        f"wall-clock speedup {scratch_time / incr_time:.1f}x"
    )
    record(
        f"scaled university ({edges} dist edges, {draws} samples)",
        wall_s=incr_time,
        counters={
            "runs": incr["runs"],
            "nodes_computed": incr["nodes_computed"],
            "cache_hits": incr["cache_hits"],
            "cache_misses": incr["cache_misses"],
        },
        speedup=scratch_time / incr_time,
        scratch_wall_s=scratch_time,
        recompute_ratio=recompute_ratio,
    )
    assert recompute_ratio >= 3.0, (
        f"incremental engine saved only {recompute_ratio:.2f}x subtree "
        f"recomputations (expected >= 3x)"
    )
    assert incr_time < scratch_time
