"""E3 — EVAL⟨Q, C⟩ (Corollary 5.4): per-tuple query probabilities.

The query asks for the Ph.D. student names of the scaled university under
the C1–C4 constraint set.  Claims regenerated:

* exactness — per-tuple probabilities match the enumerated conditional
  distribution on small instances;
* polynomial scaling — cost grows with (#candidate tuples × evaluator
  cost), not with the exponential number of worlds.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.baseline.naive import conditional_world_distribution
from repro.core.constraints import constraints_formula
from repro.core.pxdb import PXDB
from repro.core.query import Query
from repro.obs.benchrec import benchmark_mean
from repro.workloads.university import figure1_constraints, scaled_university

CONDITION = constraints_formula(figure1_constraints())
QUERY_TEXT = "*//'ph.d. st.'/name/$*"


@pytest.mark.parametrize("departments", [1, 2, 4])
def test_bench_query_scaling(benchmark, departments, report, record):
    pdoc = scaled_university(departments=departments, members=2, students=2)
    db = PXDB(pdoc, [CONDITION])
    benchmark.group = "E3-query-eval"
    table = benchmark(lambda: db.query(QUERY_TEXT))
    expected_tuples = departments * 2 * 2
    assert len(table) == expected_tuples
    record(
        f"scaled university departments={departments}",
        wall_s=benchmark_mean(benchmark),
        counters={
            "tuples": len(table),
            "dist_edges": len(pdoc.dist_edges()),
        },
    )
    values = sorted(set(table.values()))
    report(
        f"E3  departments={departments}  tuples={len(table)}  "
        f"Pr range [{float(values[0]):.4f}, {float(values[-1]):.4f}]"
    )


def test_query_matches_enumeration(benchmark, report):
    pdoc = scaled_university(departments=1, members=2, students=1)
    db = PXDB(pdoc, [CONDITION])
    query = Query.parse(QUERY_TEXT)

    def reference():
        exact = conditional_world_distribution(pdoc, db.condition)
        table: dict[tuple[int, ...], Fraction] = {}
        for uids, p in exact.items():
            document = pdoc.document_from_uids(uids)
            for answer in query.answers(document):
                key = tuple(node.uid for node in answer)
                table[key] = table.get(key, Fraction(0)) + p
        return table

    expected = benchmark.pedantic(reference, rounds=1, iterations=1)
    assert db.query(query) == expected
    report("E3  per-tuple probabilities equal the enumerated PXDB exactly")


def test_bench_multi_projection(benchmark, record):
    pdoc = scaled_university(departments=2, members=2, students=1)
    db = PXDB(pdoc, [CONDITION])
    query = Query.parse("*/department/$1:member/'ph.d. st.'/name/$2:*")
    benchmark.group = "E3-query-eval"
    table = benchmark(lambda: db.query(query))
    assert all(0 < v <= 1 for v in table.values())
    record(
        "two-projection query, departments=2",
        wall_s=benchmark_mean(benchmark),
        counters={"tuples": len(table)},
    )
