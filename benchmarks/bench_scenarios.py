"""E17 — the scenario matrix as a measurement corpus.

Certifies the shipped standard matrix (pairwise coverage of the declared
feature axes, the acceptance floor is 95%) and times the evaluator
across *all* scenario shapes at once: the joint exact DP pass and the
float64 pass over every instance's condition + events, plus one bounded
differential fuzz sweep proving the whole corpus agrees across backends.

This is the module that turns BENCH_* claims from "measured on the
university workload" into "measured across dozens of scenario shapes".
"""

from __future__ import annotations

import time

from repro.core.evaluator import probabilities
from repro.core.formulas import conjunction
from repro.workloads.fuzz import FuzzConfig, run_fuzz
from repro.workloads.scenarios import CoverageLedger, standard_matrix


def _instance_formulas(instance):
    condition = instance.condition
    return [condition] + [
        conjunction([condition, event]) for event in instance.dp_events
    ]


def test_matrix_pairwise_coverage(scenario_matrix, report, record):
    ledger = CoverageLedger()
    for instance in scenario_matrix:
        ledger.record(instance.features, tag=instance.spec.name)
    coverage = ledger.coverage()
    assert coverage >= 0.95, ledger.unhit()
    sizes = [instance.pdoc.size() for instance in scenario_matrix]
    record(
        "matrix_coverage",
        counters={
            "specs": len(scenario_matrix),
            "pairs_total": len(ledger.universe),
            "pairs_hit": len(ledger.hit),
            "min_nodes": min(sizes),
            "max_nodes": max(sizes),
        },
        coverage=coverage,
    )
    report(
        f"E17 scenarios  pairwise coverage: {len(scenario_matrix)} shapes  "
        f"{len(ledger.hit)}/{len(ledger.universe)} feature pairs "
        f"({coverage:.1%})  {min(sizes)}-{max(sizes)} nodes"
    )


def test_matrix_exact_vs_float64_sweep(scenario_matrix, report, record):
    corpus = [
        (instance, _instance_formulas(instance))
        for instance in scenario_matrix
    ]
    started = time.perf_counter()
    exact = [
        probabilities(instance.pdoc, formulas)
        for instance, formulas in corpus
    ]
    exact_s = time.perf_counter() - started
    started = time.perf_counter()
    floats = [
        probabilities(instance.pdoc, formulas, backend="float64")
        for instance, formulas in corpus
    ]
    float_s = time.perf_counter() - started
    # The differential contract holds across every shape in the corpus.
    for exact_row, float_row in zip(exact, floats):
        for reference, value in zip(exact_row, float_row):
            target = float(reference)
            assert abs(value - target) <= 1e-9 * max(abs(target), 1e-12)
    speedup = exact_s / float_s if float_s > 0 else float("inf")
    formula_count = sum(len(formulas) for _, formulas in corpus)
    record(
        "matrix_exact_vs_float64",
        wall_s=exact_s,
        counters={"instances": len(corpus), "formulas": formula_count},
        speedup=speedup,
    )
    report(
        f"E17 scenarios  joint DP across the matrix: {formula_count} formulas "
        f"over {len(corpus)} shapes  exact {exact_s * 1e3:.1f} ms  "
        f"float64 {float_s * 1e3:.1f} ms  ({speedup:.1f}x)"
    )


def test_matrix_differential_sweep_zero_disagreements(report, record):
    started = time.perf_counter()
    result = run_fuzz(
        seed=17,
        budget=len(standard_matrix()),
        config=FuzzConfig(check_approx=False),
        artifact_dir=None,
    )
    wall_s = time.perf_counter() - started
    assert result.disagreements == 0, [
        (f.stage, f.spec.name, f.seed) for f in result.failures
    ]
    record(
        "matrix_differential_sweep",
        wall_s=wall_s,
        counters={
            "instances": result.instances,
            **{f"checks_{k}": v for k, v in result.checks.items()},
        },
    )
    report(
        f"E17 scenarios  differential sweep: {result.instances} instances  "
        f"0 disagreements  {wall_s:.2f} s"
    )
