"""E13 — observability overhead: tracing must be (near) free when off.

The span instrumentation (repro.obs.spans) rides inside the DP hot path
— ``Evaluation.run``, ``IncrementalEngine.probabilities``, ``sample`` —
so its *disabled* cost budget is strict: every site pays one attribute
load and a branch, and :meth:`Tracer.span` hands back a shared no-op
singleton without allocating.  Claims regenerated:

* **zero allocation when off** — a full sampler workload with tracing
  disabled records no spans and returns the no-op singleton from every
  ``span()`` call;
* **≤ 5% disabled overhead** — the measured per-call cost of a disabled
  hook, multiplied by the number of hook crossings a sampler draw
  actually performs (counted by running the same draw with tracing on),
  stays under 5% of the draw's wall time;
* **bounded enabled overhead** — the tracing-on/off wall-time ratio is
  reported (not asserted: enabled tracing is allowed to cost, it only
  has to be *worth* it);
* **≤ 5% cost-observatory overhead** — on an E16-style mixed
  sat/query/top-k workload, the per-request price of cost attribution
  (the trace-finish fold into :class:`CostObservatory` +
  :class:`SpanProfiler`) plus a worst-case per-request SLO tick stays
  under 5% of the request's own latency.
"""

from __future__ import annotations

import random
import time
from pathlib import Path

from repro.core.constraints import constraints_formula
from repro.core.evaluator import IncrementalEngine
from repro.core.sampler import sample
from repro.obs.cost import CostObservatory
from repro.obs.profile import SpanProfiler
from repro.obs.slo import SLOMonitor
from repro.obs.spans import NOOP_SPAN, TRACER
from repro.pdoc.serialize import pdocument_to_xml
from repro.workloads.university import figure1_constraints, figure1_pdocument

CONDITION = constraints_formula(figure1_constraints())
DRAWS = 8


def _draw_batch(pdoc, seed: int) -> float:
    """Wall time of DRAWS conditioned samples on a fresh warm engine."""
    engine = IncrementalEngine.for_formula(CONDITION)
    rng = random.Random(seed)
    start = time.perf_counter()
    for _ in range(DRAWS):
        sample(pdoc, CONDITION, rng, engine=engine)
    return time.perf_counter() - start


def test_disabled_path_allocates_no_spans(report):
    TRACER.configure(enabled=False)
    TRACER.reset()
    assert TRACER.span("probe", attr=1) is NOOP_SPAN, (
        "disabled span() must return the shared no-op singleton"
    )
    pdoc = figure1_pdocument()
    _draw_batch(pdoc, seed=1)
    stats = TRACER.stats()
    assert stats["spans_recorded"] == 0 and stats["spans_buffered"] == 0, (
        f"disabled tracing recorded spans: {stats}"
    )
    report("E13 obs  tracing off: 0 spans allocated across a sampler batch")


def test_bench_disabled_overhead_within_budget(report, record):
    pdoc = figure1_pdocument()

    # Warm-up, then the baseline: sampler batches with tracing off.
    TRACER.configure(enabled=False)
    _draw_batch(pdoc, seed=2)
    off_times = [_draw_batch(pdoc, seed=3 + i) for i in range(3)]
    t_off = min(off_times) / DRAWS

    # Hook crossings per draw: with tracing on, every crossing records
    # exactly one span, so the recorded-span count *is* the crossing count.
    TRACER.configure(enabled=True)
    TRACER.reset()
    on_times = [_draw_batch(pdoc, seed=3 + i) for i in range(3)]
    t_on = min(on_times) / DRAWS
    hooks_per_draw = TRACER.stats()["spans_recorded"] / (3 * DRAWS)
    TRACER.configure(enabled=False)
    TRACER.reset()

    # Per-call cost of a *disabled* hook (attribute load + branch +
    # singleton return), measured over enough calls to dominate timer noise.
    calls = 200_000
    span = TRACER.span
    start = time.perf_counter()
    for _ in range(calls):
        span("probe")
    per_call = (time.perf_counter() - start) / calls

    disabled_cost = hooks_per_draw * per_call
    overhead = disabled_cost / t_off
    report(
        f"E13 obs  disabled overhead: {hooks_per_draw:.1f} hooks/draw × "
        f"{per_call * 1e9:.0f} ns = {overhead:.3%} of a {t_off * 1000:.2f} ms draw "
        f"(budget 5%); tracing-on ratio {t_on / t_off:.2f}x"
    )
    record(
        f"figure1 sampler, {DRAWS} draws/batch",
        wall_s=t_off,
        counters={"hooks_per_draw": round(hooks_per_draw, 1)},
        disabled_hook_ns=per_call * 1e9,
        disabled_overhead_fraction=overhead,
        enabled_ratio=t_on / t_off,
    )
    assert overhead <= 0.05, (
        f"disabled tracing costs {overhead:.2%} of a sampler draw "
        f"(budget 5%): {hooks_per_draw:.1f} hooks x {per_call * 1e9:.0f} ns "
        f"vs {t_off * 1000:.3f} ms"
    )


MIXED_QUERIES = ["*//'ph.d. st.'/$name", "university/$department"]
MIXED_CONSTRAINTS = (
    "forall university/$department : "
    "count(*//$member[position/~'professor'][position/chair]) <= 1\n"
    "forall university/$department : "
    "count(*//$member[//~'professor']) >= 3 -> "
    "count(*//$member[position/~'professor'][position/chair]) >= 1\n"
)
CONNECTIONS = 16
ROUNDS = 3


def _mixed_requests(connection: int, round_index: int) -> list[tuple[str, dict]]:
    """One E16-style round: sat + both queries + a cache-busting top-k
    (the unique ``k`` forces a fresh ranking pass per request)."""
    return (
        [("/sat", {"db": "uni"})]
        + [("/query", {"db": "uni", "query": q}) for q in MIXED_QUERIES]
        + [
            (
                "/topk",
                {
                    "db": "uni",
                    "query": MIXED_QUERIES[0],
                    "k": 1 + connection * 100 + round_index,
                },
            )
        ]
    )


def test_bench_cost_attribution_overhead(tmp_path: Path, report, record):
    """Cost attribution + SLO monitoring must cost < 5% of a request.

    The mixed workload runs in-process through ``dispatch_route`` so the
    measured per-request latency is the service's own (no socket noise);
    harvesting already happens inside it via the trace-finish observer.
    The observability price is then measured directly: re-folding the
    captured traces into a fresh observatory + profiler gives the
    per-request attribution cost, and a worst-case SLO tick (one history
    snapshot per request — production ticks at most once per second) is
    charged on top."""
    from repro.service import DocumentStore, Metrics, PXDBService
    from repro.service.server import dispatch_route
    from repro.workloads.university import scaled_university

    pdoc_path = tmp_path / "uni.pxml"
    pdoc_path.write_text(
        pdocument_to_xml(scaled_university(departments=3, members=3, students=1))
    )
    cons_path = tmp_path / "uni.cons"
    cons_path.write_text(MIXED_CONSTRAINTS)

    TRACER.configure(enabled=True, ring_size=4096)
    TRACER.reset()
    try:
        store = DocumentStore()
        store.register("uni", pdoc_path, cons_path)
        service = PXDBService(store, metrics=Metrics())

        # Warm-up round, then the measured E16-style mixed load.
        for route, params in _mixed_requests(connection=99, round_index=0):
            status, _ = dispatch_route(service, route, dict(params))
            assert status == 200
        latencies: list[float] = []
        for connection in range(CONNECTIONS):
            for round_index in range(ROUNDS):
                for route, params in _mixed_requests(connection, round_index):
                    start = time.perf_counter()
                    status, _ = dispatch_route(service, route, dict(params))
                    latencies.append(time.perf_counter() - start)
                    assert status == 200
        mean_latency = sum(latencies) / len(latencies)
        assert service.costs.records_harvested >= len(latencies), (
            "every dispatched request must be harvested into a CostRecord"
        )

        # Representative traces: the requests' own span trees, replayed
        # against a fresh observatory + profiler to isolate the fold cost.
        traces = []
        for summary in TRACER.traces(limit=256):
            spans = TRACER.trace(summary["trace_id"])
            roots = [s for s in spans if s["parent_id"] is None]
            if roots and roots[0]["name"].startswith("request."):
                traces.append((roots[0], spans))
        assert len(traces) >= 32, f"expected a trace corpus, got {len(traces)}"
        repeats = 20
        observatory = CostObservatory(top_n=10)
        profiler = SpanProfiler()
        start = time.perf_counter()
        for _ in range(repeats):
            for root, spans in traces:
                observatory.harvest(root, spans)
                profiler.add_trace(root, spans)
        fold_cost = (time.perf_counter() - start) / (repeats * len(traces))

        # Worst-case SLO price: one un-rate-limited tick per request.
        monitor = SLOMonitor(service.metrics, min_tick_s=0.0)
        ticks = 200
        start = time.perf_counter()
        for index in range(ticks):
            monitor.tick(now=float(index))
        slo_cost = (time.perf_counter() - start) / ticks

        overhead = (fold_cost + slo_cost) / mean_latency
        report(
            f"E13 obs  cost observatory: fold {fold_cost * 1e6:.0f} µs + "
            f"SLO tick {slo_cost * 1e6:.0f} µs = {overhead:.3%} of a "
            f"{mean_latency * 1000:.2f} ms mixed request (budget 5%)"
        )
        record(
            f"scaled university mixed sat/query/topk, {CONNECTIONS}x{ROUNDS} rounds",
            wall_s=mean_latency,
            counters={
                "requests": len(latencies),
                "traces_folded": len(traces),
            },
            fold_cost_s=fold_cost,
            slo_tick_cost_s=slo_cost,
            observatory_overhead_fraction=overhead,
        )
        assert overhead <= 0.05, (
            f"cost attribution + SLO tick cost {overhead:.2%} of a mixed "
            f"request (budget 5%): fold {fold_cost * 1e6:.1f} µs + tick "
            f"{slo_cost * 1e6:.1f} µs vs {mean_latency * 1000:.3f} ms"
        )
    finally:
        TRACER.configure(enabled=False, ring_size=4096)
        TRACER.reset()
