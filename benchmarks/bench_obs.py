"""E13 — observability overhead: tracing must be (near) free when off.

The span instrumentation (repro.obs.spans) rides inside the DP hot path
— ``Evaluation.run``, ``IncrementalEngine.probabilities``, ``sample`` —
so its *disabled* cost budget is strict: every site pays one attribute
load and a branch, and :meth:`Tracer.span` hands back a shared no-op
singleton without allocating.  Claims regenerated:

* **zero allocation when off** — a full sampler workload with tracing
  disabled records no spans and returns the no-op singleton from every
  ``span()`` call;
* **≤ 5% disabled overhead** — the measured per-call cost of a disabled
  hook, multiplied by the number of hook crossings a sampler draw
  actually performs (counted by running the same draw with tracing on),
  stays under 5% of the draw's wall time;
* **bounded enabled overhead** — the tracing-on/off wall-time ratio is
  reported (not asserted: enabled tracing is allowed to cost, it only
  has to be *worth* it).
"""

from __future__ import annotations

import random
import time

from repro.core.constraints import constraints_formula
from repro.core.evaluator import IncrementalEngine
from repro.core.sampler import sample
from repro.obs.spans import NOOP_SPAN, TRACER
from repro.workloads.university import figure1_constraints, figure1_pdocument

CONDITION = constraints_formula(figure1_constraints())
DRAWS = 8


def _draw_batch(pdoc, seed: int) -> float:
    """Wall time of DRAWS conditioned samples on a fresh warm engine."""
    engine = IncrementalEngine.for_formula(CONDITION)
    rng = random.Random(seed)
    start = time.perf_counter()
    for _ in range(DRAWS):
        sample(pdoc, CONDITION, rng, engine=engine)
    return time.perf_counter() - start


def test_disabled_path_allocates_no_spans(report):
    TRACER.configure(enabled=False)
    TRACER.reset()
    assert TRACER.span("probe", attr=1) is NOOP_SPAN, (
        "disabled span() must return the shared no-op singleton"
    )
    pdoc = figure1_pdocument()
    _draw_batch(pdoc, seed=1)
    stats = TRACER.stats()
    assert stats["spans_recorded"] == 0 and stats["spans_buffered"] == 0, (
        f"disabled tracing recorded spans: {stats}"
    )
    report("E13 obs  tracing off: 0 spans allocated across a sampler batch")


def test_bench_disabled_overhead_within_budget(report, record):
    pdoc = figure1_pdocument()

    # Warm-up, then the baseline: sampler batches with tracing off.
    TRACER.configure(enabled=False)
    _draw_batch(pdoc, seed=2)
    off_times = [_draw_batch(pdoc, seed=3 + i) for i in range(3)]
    t_off = min(off_times) / DRAWS

    # Hook crossings per draw: with tracing on, every crossing records
    # exactly one span, so the recorded-span count *is* the crossing count.
    TRACER.configure(enabled=True)
    TRACER.reset()
    on_times = [_draw_batch(pdoc, seed=3 + i) for i in range(3)]
    t_on = min(on_times) / DRAWS
    hooks_per_draw = TRACER.stats()["spans_recorded"] / (3 * DRAWS)
    TRACER.configure(enabled=False)
    TRACER.reset()

    # Per-call cost of a *disabled* hook (attribute load + branch +
    # singleton return), measured over enough calls to dominate timer noise.
    calls = 200_000
    span = TRACER.span
    start = time.perf_counter()
    for _ in range(calls):
        span("probe")
    per_call = (time.perf_counter() - start) / calls

    disabled_cost = hooks_per_draw * per_call
    overhead = disabled_cost / t_off
    report(
        f"E13 obs  disabled overhead: {hooks_per_draw:.1f} hooks/draw × "
        f"{per_call * 1e9:.0f} ns = {overhead:.3%} of a {t_off * 1000:.2f} ms draw "
        f"(budget 5%); tracing-on ratio {t_on / t_off:.2f}x"
    )
    record(
        f"figure1 sampler, {DRAWS} draws/batch",
        wall_s=t_off,
        counters={"hooks_per_draw": round(hooks_per_draw, 1)},
        disabled_hook_ns=per_call * 1e9,
        disabled_overhead_fraction=overhead,
        enabled_ratio=t_on / t_off,
    )
    assert overhead <= 0.05, (
        f"disabled tracing costs {overhead:.2%} of a sampler draw "
        f"(budget 5%): {hooks_per_draw:.1f} hooks x {per_call * 1e9:.0f} ns "
        f"vs {t_off * 1000:.3f} ms"
    )
