"""E2 — CONSTRAINT-SAT⟨C⟩ (Theorem 5.3 / Corollary 5.4).

The paper's claim is a complexity class, not a wall-clock number: for a
fixed constraint set, Pr(P ⊨ C) is computable in time polynomial in the
p-document (and the numerical specification), whereas the generic route —
enumerate possible worlds — is exponential in the number of distributional
edges.  This experiment regenerates the comparison:

* exactness: the two methods agree wherever the baseline is feasible;
* shape: the evaluator's time grows polynomially with the number of
  departments while the baseline's world count doubles per edge, making it
  unusable past ~20 edges (the assertion pins the crossover).
"""

from __future__ import annotations

import time

import pytest

from repro.baseline.naive import naive_probability
from repro.core.constraints import constraints_formula
from repro.core.evaluator import probability
from repro.obs.benchrec import benchmark_mean
from repro.pdoc.enumerate import world_distribution
from repro.workloads.university import figure1_constraints, scaled_university

CONDITION = constraints_formula(figure1_constraints())


@pytest.mark.parametrize("departments", [1, 2, 4, 8])
def test_bench_poly_evaluator_scaling(benchmark, departments, report, record):
    pdoc = scaled_university(departments=departments, members=3, students=1)
    benchmark.group = "E2-constraint-sat"
    value = benchmark(lambda: probability(pdoc, CONDITION))
    assert 0 < value < 1
    record(
        f"scaled university departments={departments}",
        wall_s=benchmark_mean(benchmark),
        counters={"dist_edges": len(pdoc.dist_edges())},
    )
    report(
        f"E2  poly  departments={departments:>2}  dist_edges={len(pdoc.dist_edges()):>3}  "
        f"Pr(P |= C) ≈ {float(value):.6f}"
    )


@pytest.mark.parametrize("departments", [1, 2])
def test_bench_naive_baseline(benchmark, departments, report):
    pdoc = scaled_university(departments=departments, members=2, students=1)
    benchmark.group = "E2-constraint-sat-naive"
    value = benchmark.pedantic(
        lambda: naive_probability(pdoc, CONDITION), rounds=1, iterations=1
    )
    assert value == probability(pdoc, CONDITION)
    worlds = len(world_distribution(pdoc))
    report(
        f"E2  naive departments={departments:>2}  worlds={worlds:>6}  agrees exactly"
    )


def test_exponential_vs_polynomial_crossover(benchmark, report, record):
    """The headline shape: the baseline's cost doubles per distributional
    edge; the evaluator's does not.  Measured on a fixed ladder."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # run under --benchmark-only
    poly_times = []
    naive_times = []
    sizes = [1, 2]  # one extra department multiplies the world count ~80-fold
    for departments in sizes:
        pdoc = scaled_university(departments=departments, members=2, students=1)
        start = time.perf_counter()
        p_poly = probability(pdoc, CONDITION)
        poly_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        p_naive = naive_probability(pdoc, CONDITION)
        naive_times.append(time.perf_counter() - start)
        assert p_poly == p_naive
    # Baseline growth factor per extra department (10 extra dist edges,
    # 2^10 more worlds) must dwarf the evaluator's growth factor.
    naive_growth = naive_times[-1] / max(naive_times[0], 1e-9)
    poly_growth = poly_times[-1] / max(poly_times[0], 1e-9)
    report(
        f"E2  growth x{len(sizes)} departments: poly ×{poly_growth:.1f}, "
        f"naive ×{naive_growth:.1f}"
    )
    assert naive_growth > 5 * poly_growth, (
        f"expected exponential-vs-polynomial separation, got "
        f"naive ×{naive_growth:.1f} vs poly ×{poly_growth:.1f}"
    )
    record(
        f"crossover ladder departments={sizes}",
        wall_s=poly_times[-1],
        counters={},
        speedup=naive_times[-1] / max(poly_times[-1], 1e-9),
        poly_growth=poly_growth,
        naive_growth=naive_growth,
    )


def test_large_instance_feasible_for_evaluator_only(benchmark, report, record):
    """A p-document far beyond the baseline's reach (hundreds of
    distributional edges => >2^100 worlds) evaluates in seconds."""
    pdoc = scaled_university(departments=12, members=4, students=2)
    edges = len(pdoc.dist_edges())
    assert edges > 100
    start = time.perf_counter()
    value = benchmark.pedantic(
        lambda: probability(pdoc, CONDITION), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - start
    assert 0 < value < 1
    report(
        f"E2  poly on {edges} dist edges (≈2^{edges} worlds): {elapsed:.2f}s, "
        f"Pr ≈ {float(value):.6f}"
    )
    record(
        f"large instance ({edges} dist edges)",
        wall_s=elapsed,
        counters={"dist_edges": edges},
    )
