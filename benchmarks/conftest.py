"""Benchmark-suite configuration.

Every module here regenerates one experiment of DESIGN.md's index
(E1-E10), asserting the qualitative *shape* the paper claims (exactness,
polynomial vs. exponential growth, who wins where) while pytest-benchmark
records the timings.  Run with::

    pytest benchmarks/ --benchmark-only

Each test receives the ``report`` fixture to emit human-readable result
rows; they are printed in the terminal summary and appended to
``benchmarks/last_experiment_rows.txt`` (the source for EXPERIMENTS.md).

Each test also receives the ``record`` fixture — structured benchmark
telemetry (``repro.obs.benchrec``).  At session end every exercised area
writes ``BENCH_<area>.json`` at the repo root and is diffed against the
previous file of the same name; wall-time/speedup regressions beyond the
threshold are printed in the terminal summary (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.obs import benchrec

_ROWS: list[str] = []
_ROWS_FILE = Path(__file__).parent / "last_experiment_rows.txt"

_REPO_ROOT = Path(__file__).parent.parent
_RECORDERS: dict[str, benchrec.BenchRecorder] = {}


@pytest.fixture(scope="session")
def scenario_matrix():
    """The shipped pairwise-covering scenario matrix (one instance per
    spec, generated at a fixed seed) — the standard corpus every
    benchmark area can measure against instead of the single university
    workload.  See docs/WORKLOADS.md."""
    from repro.workloads.scenarios import generate, standard_matrix

    return [generate(spec, seed=17) for spec in standard_matrix()]


@pytest.fixture(scope="session")
def report():
    """Collect human-readable experiment rows (printed at session end)."""

    def emit(line: str) -> None:
        _ROWS.append(line)

    return emit


@pytest.fixture
def record(request):
    """Structured telemetry for the requesting module's area: calling
    ``record(workload, wall_s=…, counters=…, speedup=…, **extra)`` appends
    one pxdb-bench/1 row to BENCH_<area>.json (area = the module name
    minus its ``bench_`` prefix; the test name is filled in)."""
    module = request.module.__name__.rpartition(".")[2]
    area = module[len("bench_"):] if module.startswith("bench_") else module
    recorder = _RECORDERS.get(area)
    if recorder is None:
        recorder = _RECORDERS[area] = benchrec.BenchRecorder(area, _REPO_ROOT)
    test = request.node.name

    def emit(workload, wall_s=None, counters=None, speedup=None, **extra):
        return recorder.record(
            test, workload, wall_s, counters=counters, speedup=speedup, **extra
        )

    return emit


def pytest_sessionstart(session):
    _ROWS.clear()
    _RECORDERS.clear()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _ROWS:
        rows = sorted(_ROWS)
        terminalreporter.write_line("")
        terminalreporter.write_line("=== reproduced experiment rows ===")
        for row in rows:
            terminalreporter.write_line(row)
        _ROWS_FILE.write_text("\n".join(rows) + "\n")
    if not _RECORDERS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=== benchmark telemetry (pxdb-bench/1) ===")
    for area in sorted(_RECORDERS):
        recorder = _RECORDERS[area]
        previous = None
        if recorder.path.exists():
            try:
                previous = benchrec.load(recorder.path)
            except (ValueError, OSError):
                previous = None  # unreadable old telemetry: overwrite it
        path = recorder.write()
        terminalreporter.write_line(
            f"{path.name}: {len(recorder.rows)} row(s)"
        )
        if previous is not None:
            flagged = benchrec.compare(previous, recorder.payload())
            if flagged:
                terminalreporter.write_line(benchrec.format_regressions(flagged))
            else:
                terminalreporter.write_line(
                    f"  no regressions vs previous {path.name}"
                )
