"""Benchmark-suite configuration.

Every module here regenerates one experiment of DESIGN.md's index
(E1-E10), asserting the qualitative *shape* the paper claims (exactness,
polynomial vs. exponential growth, who wins where) while pytest-benchmark
records the timings.  Run with::

    pytest benchmarks/ --benchmark-only

Each test receives the ``report`` fixture to emit human-readable result
rows; they are printed in the terminal summary and appended to
``benchmarks/last_experiment_rows.txt`` (the source for EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

_ROWS: list[str] = []
_ROWS_FILE = Path(__file__).parent / "last_experiment_rows.txt"


@pytest.fixture(scope="session")
def report():
    """Collect human-readable experiment rows (printed at session end)."""

    def emit(line: str) -> None:
        _ROWS.append(line)

    return emit


def pytest_sessionstart(session):
    _ROWS.clear()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _ROWS:
        return
    rows = sorted(_ROWS)
    terminalreporter.write_line("")
    terminalreporter.write_line("=== reproduced experiment rows ===")
    for row in rows:
        terminalreporter.write_line(row)
    _ROWS_FILE.write_text("\n".join(rows) + "\n")
