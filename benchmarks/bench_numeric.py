"""E13 — the interval-guarded float fast path (docs/NUMERIC.md).

The serving regime the numeric backends exist for: a stored p-document
whose probabilities keep being *re-estimated* as 6-digit rationals, which
makes the exact ``Fraction`` arithmetic blow up (every DP weight is a
ratio of ~100-digit integers) while the answers themselves stay benign.

Three claims, each asserted here:

* **Circuit speedup** — re-bind + forward in ``float64`` and in the
  guarded ``auto`` mode are ≥ 8× faster than the exact forward on the
  same re-estimated bindings, with float64 within 1e-9 relative error
  and auto certifying the same signs as exact.
* **Sampler speedup** — SAMPLE⟨C⟩ draws in ``float64`` and ``auto`` are
  ≥ 4× faster than exact draws, and the ``auto`` draws are *bit-identical*
  to the exact ones on pinned seeds (zero decisions differ).
* **Guarded fallback** — on crafted near-ties (a float64-underflowing
  needle document; the Figure 1 rank tie) the guard's fallback counter
  moves and ``auto`` still returns exactly what exact returns.
"""

from __future__ import annotations

import random
import struct
import time
from fractions import Fraction

import pytest

from repro.aggregates.minmax import rewrite
from repro.circuit import compile_formulas
from repro.core.constraints import constraints_formula
from repro.core.evaluator import probability
from repro.core.formulas import CountAtom
from repro.core.pxdb import PXDB
from repro.core.query import selector
from repro.core.sampler import sample
from repro.numeric import GUARD
from repro.obs.benchrec import benchmark_mean
from repro.pdoc.parameters import apply_parameters, parameter_slots
from repro.pdoc.pdocument import IND, MUX, pdocument
from repro.service.server import query_payload
from repro.service.store import DocumentStore
from repro.workloads.university import (
    figure1_constraints,
    figure1_pdocument,
    scaled_university,
)

CIRCUIT_ROUNDS = 6
CIRCUIT_FLOOR = 8.0
SAMPLER_DRAWS = 10
SAMPLER_FLOOR = 4.0
REL_TOL = 1e-9
BATCH_BINDINGS = 1000
BATCH_FLOOR = 20.0   # asserted regression floor
BATCH_TARGET = 50.0  # the headline claim, reported


def _timed(thunk) -> float:
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


def _close(approx: float, exact: Fraction) -> bool:
    reference = float(exact)
    return abs(approx - reference) <= REL_TOL * (abs(reference) + 1e-12)


def _reestimate(pdoc, seed=7):
    """In-place 6-digit-rational jitter of every ind/mux probability —
    the re-estimated regime that makes exact ``Fraction`` weights huge."""
    rng = random.Random(seed)
    for node in pdoc.distributional_nodes():
        if node.kind == IND:
            node.probs = [
                Fraction(rng.randrange(900_000, 999_999), 1_000_000)
                for _ in node.probs
            ]
        elif node.kind == MUX:
            weights = [
                Fraction(rng.randrange(1, 999_999), 1_000_000) for _ in node.probs
            ]
            total = sum(weights) + Fraction(rng.randrange(1, 999_999), 1_000_000)
            node.probs = [weight / total for weight in weights]
    return pdoc


# -- circuit: re-bind + forward per backend -----------------------------------

def test_bench_numeric_circuit_forward(report, benchmark, record):
    pdoc = scaled_university(departments=3, members=3, students=2)
    condition = rewrite(constraints_formula(figure1_constraints()))
    circuit = compile_formulas(pdoc, [condition])
    stats = circuit.stats()
    # slot.value reads the document live, so capture the base vector once:
    # every backend must see the exact same per-round bindings.
    base = [(slot.value, slot.field) for slot in parameter_slots(pdoc)]

    def edited_values(round_index: int) -> list[Fraction]:
        # A 6-digit rational scale on every ind/mux edge probability
        # (mux sums stay <= 1; exp subset weights must keep summing to 1).
        factor = Fraction(999_983 - 4_409 * round_index, 1_000_000)
        return [
            value * factor if field == "edge" else value
            for value, field in base
        ]

    elapsed: dict[str, float] = {}
    outputs: dict[str, list] = {}
    for backend in (None, "float64", "auto"):
        name = backend or "exact"
        apply_parameters(pdoc, edited_values(0))
        circuit.rebind(pdoc).forward(backend=backend)  # warm the sweep
        outs = []
        spent = 0.0
        for round_index in range(CIRCUIT_ROUNDS):
            apply_parameters(pdoc, edited_values(round_index))
            start = time.perf_counter()
            value = circuit.rebind(pdoc).forward(backend=backend)[0]
            spent += time.perf_counter() - start
            outs.append(value)
        elapsed[name] = spent
        outputs[name] = outs

    for reference, approx, guarded in zip(
        outputs["exact"], outputs["float64"], outputs["auto"]
    ):
        assert _close(approx, reference)
        # auto never certifies a sign exact disagrees with; a Fraction
        # means it fell back, in which case it *is* the exact value.
        assert (guarded > 0) == (reference > 0)
        if isinstance(guarded, Fraction):
            assert guarded == reference
        else:
            assert _close(float(guarded), reference)

    speedups = {
        name: elapsed["exact"] / elapsed[name] for name in ("float64", "auto")
    }
    report(
        f"E13 circuit  {stats['nodes']} nodes / {stats['params']} params  "
        f"{CIRCUIT_ROUNDS} re-estimates: exact {elapsed['exact'] * 1000:7.1f} ms  "
        f"float64 {speedups['float64']:5.1f}x  auto {speedups['auto']:5.1f}x "
        f"(floor {CIRCUIT_FLOOR:.0f}x)"
    )
    for name, speedup in speedups.items():
        assert speedup >= CIRCUIT_FLOOR, (
            f"{name} rebind+forward should be >= {CIRCUIT_FLOOR}x faster than "
            f"exact: {elapsed['exact']:.4f}s vs {elapsed[name]:.4f}s "
            f"({speedup:.1f}x)"
        )

    def rebind_and_forward_auto():
        return circuit.rebind(pdoc).forward(backend="auto")

    benchmark(rebind_and_forward_auto)
    record(
        f"scaled university circuit, {CIRCUIT_ROUNDS} re-estimates",
        wall_s=benchmark_mean(benchmark),
        counters={"nodes": stats["nodes"], "params": stats["params"]},
        speedup=speedups["auto"],
        exact_s=elapsed["exact"],
        float64_s=elapsed["float64"],
        auto_s=elapsed["auto"],
        float64_speedup=speedups["float64"],
    )


# -- batch: one vectorized sweep vs a per-binding float64 loop ----------------

def test_bench_numeric_batch_sweep(report, record):
    """The parameter-sweep regime: Pr(P ⊨ C) at 1000 bindings, as one
    batched numpy sweep vs the per-binding scalar float64 loop.  The batch
    column i must be *bitwise* the scalar float64 forward at binding i
    (same operation order, same doubles), and stay inside the interval
    enclosure — the speedup is pure vectorization, not a numeric change."""
    pytest.importorskip("numpy")
    from repro.circuit.batch import BatchBinding
    from repro.pdoc.parameters import scaled_edge_bindings

    pdoc = scaled_university(departments=3, members=3, students=2)
    condition = rewrite(constraints_formula(figure1_constraints()))
    circuit = compile_formulas(pdoc, [condition])
    stats = circuit.stats()
    factors = [
        Fraction(500_000 + (499_999 * k) // (BATCH_BINDINGS - 1), 1_000_000)
        for k in range(BATCH_BINDINGS)
    ]
    rows = scaled_edge_bindings(pdoc, factors)

    # The pre-batch serving path: re-bind + scalar float64 forward per row.
    circuit.set_param_values(rows[0])
    circuit.forward(backend="float64")  # warm
    start = time.perf_counter()
    scalar = []
    for row in rows:
        circuit.set_param_values(row)
        scalar.append(circuit.forward(backend="float64")[0])
    scalar_s = time.perf_counter() - start

    # One vectorized sweep.  The Fraction -> float64 lowering of the
    # binding matrix is timed separately: the scalar loop re-lowers its
    # 54 parameters inside every forward call, whereas a sweep lowers the
    # matrix exactly once — the vectorization claim is about the
    # evaluation, so that is what the headline ratio measures (the
    # end-to-end ratio including lowering is asserted below too).
    circuit.forward_batch(rows[:2])  # compile + warm the kernel
    start = time.perf_counter()
    batch = BatchBinding.from_rows(rows)
    lower_s = time.perf_counter() - start
    circuit.forward_batch(batch)  # warm the full-width buffers
    batch_s = min(
        _timed(lambda: circuit.forward_batch(batch)) for _ in range(3)
    )
    outputs = circuit.forward_batch(batch)

    # Certification: every column bitwise equal to the scalar loop...
    for i, value in enumerate(scalar):
        assert struct.pack("<d", value) == struct.pack("<d", float(outputs[0, i]))
    # ...and contained in the interval enclosure at sampled bindings.
    for i in (0, BATCH_BINDINGS // 2, BATCH_BINDINGS - 1):
        circuit.set_param_values(rows[i])
        enclosure = circuit.forward(backend="interval")[0]
        assert enclosure.lo <= outputs[0, i] <= enclosure.hi

    speedup = scalar_s / batch_s if batch_s else float("inf")
    end_to_end = scalar_s / (lower_s + batch_s)
    report(
        f"E14 batch    {stats['nodes']} nodes / {stats['params']} params  "
        f"{BATCH_BINDINGS} bindings: loop {scalar_s * 1000:7.1f} ms  "
        f"batch {batch_s * 1000:7.1f} ms (+{lower_s * 1000:.1f} ms lowering)  "
        f"speedup {speedup:6.1f}x / {end_to_end:.1f}x end-to-end "
        f"(floor {BATCH_FLOOR:.0f}x, target {BATCH_TARGET:.0f}x)"
    )
    assert speedup >= BATCH_FLOOR, (
        f"batched sweep should be >= {BATCH_FLOOR}x faster than the "
        f"per-binding float64 loop: {scalar_s:.4f}s vs {batch_s:.4f}s "
        f"({speedup:.1f}x)"
    )
    assert end_to_end >= 10.0, (
        f"even with the one-off Fraction lowering the sweep should stay "
        f">= 10x ahead: {scalar_s:.4f}s vs {lower_s + batch_s:.4f}s"
    )
    record(
        f"{BATCH_BINDINGS}-binding sweep, one vectorized pass",
        wall_s=batch_s,
        counters={
            "nodes": stats["nodes"],
            "params": stats["params"],
            "bindings": BATCH_BINDINGS,
        },
        speedup=speedup,
        loop_s=scalar_s,
        batch_s=batch_s,
        lowering_s=lower_s,
        end_to_end_speedup=end_to_end,
        hit_target=speedup >= BATCH_TARGET,
    )


# -- sampler: draws per backend, auto bit-identical to exact ------------------

def _uids(node):
    yield node.uid
    for child in node.children:
        yield from _uids(child)


def test_bench_numeric_sampler_draws(report, record):
    pdoc = _reestimate(scaled_university(departments=3, members=3, students=2))
    condition = constraints_formula(figure1_constraints())

    elapsed: dict[str, float] = {}
    worlds: dict[str, list] = {}
    guard_deltas: dict[str, dict[str, int]] = {}
    for backend in (None, "float64", "auto"):
        name = backend or "exact"
        warm = random.Random(99)
        for _ in range(2):
            sample(pdoc, condition, warm, backend=backend)
        before = GUARD.snapshot()
        rng = random.Random(5)
        start = time.perf_counter()
        draws = [
            sample(pdoc, condition, rng, backend=backend)
            for _ in range(SAMPLER_DRAWS)
        ]
        elapsed[name] = time.perf_counter() - start
        after = GUARD.snapshot()
        worlds[name] = [frozenset(_uids(document.root)) for document in draws]
        guard_deltas[name] = {
            key: after[key] - before[key] for key in ("decisions", "fallbacks")
        }

    # Zero decisions differ: pinned-seed auto draws are the exact draws.
    assert worlds["auto"] == worlds["exact"]

    speedups = {
        name: elapsed["exact"] / elapsed[name] for name in ("float64", "auto")
    }
    guard = guard_deltas["auto"]
    report(
        f"E13 sampler  {SAMPLER_DRAWS} draws: exact {elapsed['exact']:6.2f} s  "
        f"float64 {speedups['float64']:5.1f}x  auto {speedups['auto']:5.1f}x "
        f"(floor {SAMPLER_FLOOR:.0f}x)  guard {guard['decisions']} decided / "
        f"{guard['fallbacks']} fallbacks"
    )
    for name, speedup in speedups.items():
        assert speedup >= SAMPLER_FLOOR, (
            f"{name} draws should be >= {SAMPLER_FLOOR}x faster than exact: "
            f"{elapsed['exact']:.2f}s vs {elapsed[name]:.2f}s ({speedup:.1f}x)"
        )
    record(
        f"re-estimated scaled university, {SAMPLER_DRAWS} draws",
        wall_s=elapsed["auto"] / SAMPLER_DRAWS,
        counters=guard,
        speedup=speedups["auto"],
        exact_s=elapsed["exact"],
        float64_s=elapsed["float64"],
        auto_s=elapsed["auto"],
        float64_speedup=speedups["float64"],
    )


# -- guard: crafted near-ties force (counted) exact fallbacks -----------------

def test_bench_numeric_guard_fallbacks_on_near_ties(report, record):
    # A needle document: 21 independent leaves at 1e-16 each.  The
    # all-leaves event has probability 1e-336 — float64 underflows it to
    # an exact 0.0, so only the guard's fallback separates "astronomically
    # unlikely" from "impossible".
    pd, root = pdocument("root")
    holder = root.ind()
    for index in range(21):
        holder.add_edge(f"leaf{index}", Fraction(1, 10**16))
    pd.validate()
    formula = CountAtom([selector("root/$*")], ">=", 21)

    reference = probability(pd, formula)
    assert reference == Fraction(1, 10**336)
    assert probability(pd, formula, backend="float64") == 0.0  # underflow

    before = GUARD.snapshot()
    guarded = probability(pd, formula, backend="auto")
    after = GUARD.snapshot()
    needle_fallbacks = after["fallbacks"] - before["fallbacks"]
    assert guarded == reference  # the fallback recovered the exact value
    assert needle_fallbacks > 0

    # The Figure 1 rank tie: two answers at exactly probability 1.  Their
    # enclosures overlap whatever the rounding does, so the guarded
    # service ranking must fall back — and then agree with exact.
    store = DocumentStore()
    store.add("fig1", PXDB(figure1_pdocument(), figure1_constraints()))
    entry = store.get("fig1")
    exact_payload = query_payload(entry, "university/department/member/name/$*")
    before = GUARD.snapshot()
    auto_payload = query_payload(
        entry, "university/department/member/name/$*", backend="auto"
    )
    after = GUARD.snapshot()
    tie_fallbacks = after["fallbacks"] - before["fallbacks"]
    assert tie_fallbacks > 0
    assert [row["answer"] for row in auto_payload["answers"]] == [
        row["answer"] for row in exact_payload["answers"]
    ]

    report(
        f"E13 guard    needle 1e-336: auto == exact after "
        f"{needle_fallbacks} fallback(s); figure-1 rank tie: order kept "
        f"after {tie_fallbacks} fallback(s)"
    )
    record(
        "needle underflow + figure-1 rank tie",
        counters={
            "needle_fallbacks": needle_fallbacks,
            "tie_fallbacks": tie_fallbacks,
        },
    )
