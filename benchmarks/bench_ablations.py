"""E10 — ablations of the evaluator's design choices (DESIGN.md §3).

The reproduction's evaluation algorithm makes two optimizations beyond
the plain construction; both are invisible semantically (exactness is
asserted in the test-suite) and this experiment quantifies their effect:

* **structural cache** — when every predicate is label-only, subtrees
  with identical shape share one signature distribution.  On a workload
  of k identical departments the evaluator then does one department's
  work; with distinct names the cache degrades gracefully.
* **state canonicalization** — dropping spine positions that no future
  transition inspects shrinks the automaton state space, and with it the
  number of counter slots carried per signature.
"""

from __future__ import annotations


import pytest

from repro.aggregates.minmax import rewrite
from repro.core.compiler import Registry
from repro.core.constraints import constraints_formula
from repro.core.evaluator import Evaluation
from repro.obs.benchrec import benchmark_mean
from repro.workloads.university import figure1_constraints, scaled_university

CONDITION = rewrite(constraints_formula(figure1_constraints()))


@pytest.mark.parametrize("use_cache", [False, True])
def test_bench_structural_cache(benchmark, use_cache, report, record):
    pdoc = scaled_university(departments=8, members=3, students=1, anonymous=True)
    registry = Registry([CONDITION])
    benchmark.group = "E10-cache"

    def run():
        evaluation = Evaluation(registry, pdoc, use_cache=use_cache)
        return evaluation, evaluation.run()[0]

    evaluation, value = benchmark(run)
    assert 0 < value < 1
    report(
        f"E10 cache={'on ' if use_cache else 'off'} (8 identical departments)  "
        f"hits={evaluation.cache_hits}"
    )
    record(
        f"structural cache={'on' if use_cache else 'off'}, 8 departments",
        wall_s=benchmark_mean(benchmark),
        counters={
            "nodes_computed": evaluation.nodes_computed,
            "cache_hits": evaluation.cache_hits,
            "max_sig_width": evaluation.max_sig_width,
        },
    )


def test_cache_equivalence(benchmark, report):
    pdoc = scaled_university(departments=4, members=2, students=1, anonymous=True)
    registry = Registry([CONDITION])

    def run():
        cached = Evaluation(registry, pdoc, use_cache=True).run()[0]
        plain = Evaluation(registry, pdoc, use_cache=False).run()[0]
        assert cached == plain
        return cached

    value = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"E10 cache on/off agree exactly: Pr ≈ {float(value):.6f}")


@pytest.mark.parametrize("canonicalize", [False, True])
def test_bench_canonicalization(benchmark, canonicalize, report, record):
    pdoc = scaled_university(departments=4, members=3, students=1)
    registry = Registry([CONDITION], canonicalize=canonicalize)
    benchmark.group = "E10-canonicalization"
    value = benchmark(lambda: Evaluation(registry, pdoc).run()[0])
    assert 0 < value < 1
    report(
        f"E10 canonicalize={'on ' if canonicalize else 'off'}  "
        f"counter slots={registry.count_len}"
    )
    record(
        f"canonicalize={'on' if canonicalize else 'off'}, 4 departments",
        wall_s=benchmark_mean(benchmark),
        counters={"counter_slots": registry.count_len},
    )


def test_canonicalization_equivalence(benchmark, report):
    pdoc = scaled_university(departments=2, members=2, students=1)
    fast = Registry([CONDITION], canonicalize=True)
    slow = Registry([CONDITION], canonicalize=False)

    def run():
        a = Evaluation(fast, pdoc).run()[0]
        b = Evaluation(slow, pdoc).run()[0]
        assert a == b
        return a

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        f"E10 canonicalization on/off agree; slots {fast.count_len} vs {slow.count_len}"
    )
