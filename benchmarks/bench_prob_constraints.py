"""E8 — Section 7.4: probabilistic constraints under SNC and WNC.

Claims regenerated:

* the paper's worked example — "≥ 1 Ph.D. student" w.p. 0.7 and "≤ 15"
  w.p. 0.9 — is ill-defined under SNC (the 0.03-weight component imposes
  both negations, which is unsatisfiable) but well-defined under WNC;
* query evaluation under both semantics is exact (validated against a
  hand-expanded mixture);
* cost grows with 2^k mixture components (k = number of probabilistic
  constraints — fixed, hence constant per the paper's complexity model).
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.core.evaluator import probability
from repro.core.formulas import CountAtom, SFormula, conjunction, negation
from repro.core.probconstraints import (
    SNC,
    WNC,
    ProbabilisticConstraint,
    ProbabilisticPXDB,
)
from repro.obs.benchrec import benchmark_mean
from repro.pdoc.pdocument import pdocument
from repro.xmltree.parser import parse_selector


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


def professor_pdoc(width: int = 4):
    pd, root = pdocument("professor")
    ind = root.ind()
    for _ in range(width):
        ind.add_edge("student", Fraction(1, 2))
    pd.validate()
    return pd


def count_students(op: str, bound: int) -> CountAtom:
    return CountAtom([sel("professor/$student")], op, bound)


def paper_example_constraints(width: int):
    """Ph.D. supervision: >= 1 student w.p. 0.7; <= `width` w.p. 0.9
    (the paper uses 15; the bound is saturated to the workload width so
    its negation is genuinely unsatisfiable, as in the paper)."""
    return [
        ProbabilisticConstraint(count_students(">=", 1), Fraction(7, 10), name="≥1"),
        ProbabilisticConstraint(count_students("<=", width), Fraction(9, 10), name="≤N"),
    ]


def test_paper_example_snc_vs_wnc(benchmark, report):
    pdoc = professor_pdoc()
    constraints = paper_example_constraints(width=4)

    def run():
        snc = ProbabilisticPXDB(pdoc, constraints, SNC)
        wnc = ProbabilisticPXDB(pdoc, constraints, WNC)
        return snc.is_well_defined(), wnc.is_well_defined()

    snc_ok, wnc_ok = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not snc_ok and wnc_ok
    report(
        "E8  paper example (0.7 / 0.9): SNC ill-defined "
        "(0.03-weight component unsatisfiable), WNC well-defined"
    )


def test_wnc_query_matches_hand_expansion(benchmark, report):
    pdoc = professor_pdoc(width=3)
    c = count_students(">=", 2)
    p = Fraction(4, 5)
    space = ProbabilisticPXDB(pdoc, [ProbabilisticConstraint(c, p)], WNC)
    event = count_students("=", 3)

    def hand():
        p_joint = probability(pdoc, conjunction([c, event]))
        p_c = probability(pdoc, c)
        p_event = probability(pdoc, event)
        return p * p_joint / p_c + (1 - p) * p_event

    expected = benchmark.pedantic(hand, rounds=1, iterations=1)
    assert space.event_probability(event) == expected
    report(f"E8  WNC query matches hand expansion: Pr = {float(expected):.6f}")


def test_snc_query_matches_hand_expansion(benchmark, report):
    pdoc = professor_pdoc(width=3)
    c = count_students(">=", 2)
    p = Fraction(4, 5)
    space = ProbabilisticPXDB(pdoc, [ProbabilisticConstraint(c, p)], SNC)
    event = count_students(">=", 1)

    def hand():
        not_c = negation(c)
        return p * probability(pdoc, conjunction([c, event])) / probability(
            pdoc, c
        ) + (1 - p) * probability(pdoc, conjunction([not_c, event])) / probability(
            pdoc, not_c
        )

    expected = benchmark.pedantic(hand, rounds=1, iterations=1)
    assert space.event_probability(event) == expected
    report(f"E8  SNC query matches hand expansion: Pr = {float(expected):.6f}")


@pytest.mark.parametrize("k", [1, 2, 3, 4])
def test_bench_mixture_scaling(benchmark, k, report, record):
    """2^k components: the cost of WNC evaluation versus k."""
    pdoc = professor_pdoc(width=4)
    constraints = [
        ProbabilisticConstraint(count_students(">=", i + 1), Fraction(1, 2))
        for i in range(k)
    ]
    space = ProbabilisticPXDB(pdoc, constraints, WNC)
    event = count_students(">=", 1)
    benchmark.group = "E8-mixture"
    value = benchmark(lambda: space.event_probability(event))
    assert 0 < value <= 1
    report(f"E8  WNC k={k} (2^{k} components)  Pr ≈ {float(value):.6f}")
    record(
        f"WNC mixture k={k}",
        wall_s=benchmark_mean(benchmark),
        counters={"components": 2**k},
    )


def test_sampling_mixture(benchmark, report):
    from repro.core.formulas import DocumentEvaluator

    pdoc = professor_pdoc(width=2)
    c = count_students(">=", 1)
    space = ProbabilisticPXDB(pdoc, [ProbabilisticConstraint(c, Fraction(3, 4))], WNC)
    target = float(space.event_probability(c))
    rng = random.Random(11)
    n = 1200

    def draw_all():
        hits = 0
        for _ in range(n):
            document = space.sample(rng)
            if DocumentEvaluator().satisfies(document.root, c):
                hits += 1
        return hits

    hits = benchmark.pedantic(draw_all, rounds=1, iterations=1)
    report(f"E8  WNC sampling: empirical {hits / n:.4f} vs exact {target:.4f}")
    assert abs(hits / n - target) < 0.05
