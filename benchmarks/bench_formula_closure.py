"""E9 — Section 5.1: closure of c-formulae under ∧, ¬ and ∨.

The closure constructions (congruent / anti-congruent round trips) are
what make the whole framework compose: constraints become c-formulae,
negation enables SNC, disjunction enables the MIN/MAX ≠ cases.  Claims
regenerated:

* semantic correctness — Pr(¬γ) = 1 − Pr(γ), Pr(γ ∨ δ) by
  inclusion-exclusion, double negation is exact (all verified on random
  formulae against the evaluator itself and the baseline);
* cost shape — each negation wraps the formula one level deeper (the
  trivial-pattern construction), so k-fold negation grows the evaluation
  cost roughly linearly in k, not exponentially.
"""

from __future__ import annotations

import random

import pytest

from repro.baseline.naive import naive_probability
from repro.core.constraints import constraints_formula
from repro.core.evaluator import probabilities, probability
from repro.core.formulas import conjunction, disjunction, negation
from repro.obs.benchrec import benchmark_mean
from repro.workloads.random_gen import random_formula, random_pdocument
from repro.workloads.university import figure1_constraints, scaled_university


def test_closure_laws_on_random_formulae(benchmark, report):
    rng = random.Random(20)

    def run():
        checked = 0
        for _ in range(15):
            pdoc = random_pdocument(rng)
            f = random_formula(rng)
            g = random_formula(rng)
            pf, pg, pnf, pnnf, pand, por = probabilities(
                pdoc,
                [
                    f,
                    g,
                    negation(f),
                    negation(negation(f)),
                    conjunction([f, g]),
                    disjunction([f, g]),
                ],
            )
            assert pnf == 1 - pf
            assert pnnf == pf
            assert pand + por == pf + pg
            assert naive_probability(pdoc, disjunction([f, g])) == por
            checked += 1
        return checked

    count = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"E9  closure laws hold exactly on {count} random formula pairs")


@pytest.mark.parametrize("depth", [0, 1, 2, 4])
def test_bench_negation_depth(benchmark, depth, report, record):
    pdoc = scaled_university(departments=1, members=2, students=1)
    formula = constraints_formula(figure1_constraints())
    for _ in range(depth * 2):  # even number: semantics unchanged
        formula = negation(formula)
    benchmark.group = "E9-negation-depth"
    value = benchmark(lambda: probability(pdoc, formula))
    report(f"E9  ¬^{depth * 2} wrapping  Pr ≈ {float(value):.6f}")
    record(
        f"negation depth={depth * 2}",
        wall_s=benchmark_mean(benchmark),
        counters={"negations": depth * 2},
    )
    base = probability(pdoc, constraints_formula(figure1_constraints()))
    assert value == base
