"""E1 — Figures 1 and 2: the running example, end to end.

Reproduces every number the paper's worked examples state, and benchmarks
the three computational problems on the Figure 1 PXDB:

* Example 3.1 — Mary: chair 0.7; full 0.6 / assistant 0.4, mutually exclusive;
* Example 3.2 — Pr(Amy) = 0.54 unconditioned;
* Example 2.3 — Figure 2 satisfies C1…C4;
* Example 3.4 — Pr(Amy | C) differs from 0.54 (the value is computed and
  cross-checked against exhaustive enumeration);
* Figure 2 is a positive-probability document of the PXDB.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.baseline.naive import naive_probability
from repro.core.constraints import constraints_formula, satisfies_all
from repro.core.evaluator import probability
from repro.core.formulas import exists
from repro.core.pxdb import PXDB
from repro.obs.benchrec import benchmark_mean
from repro.pdoc.enumerate import node_probability
from repro.workloads.university import (
    Figure1,
    figure1_constraints,
    figure2_document,
)
from repro.xmltree.pattern import Pattern, PatternNode
from repro.xmltree.predicates import ANY, NodeIs


@pytest.fixture(scope="module")
def fig():
    return Figure1()


@pytest.fixture(scope="module")
def pxdb(fig):
    return PXDB(fig.pdoc, figure1_constraints())


def node_event(uid: int):
    root = PatternNode(ANY)
    root.descendant(NodeIs(uid))
    return exists(Pattern(root))


def test_example_values(benchmark, fig, pxdb, report):
    def run():
        assert node_probability(fig.pdoc, fig.mary_chair.uid) == Fraction(7, 10)
        assert node_probability(fig.pdoc, fig.amy.uid) == Fraction(27, 50)
        assert satisfies_all(figure2_document(), figure1_constraints())
        return pxdb.event_probability(node_event(fig.amy.uid))

    amy_cond = benchmark.pedantic(run, rounds=1, iterations=1)
    p_c = pxdb.constraint_probability()
    assert amy_cond != Fraction(27, 50)
    report(f"E1  Pr(P |= C)            = {p_c} ≈ {float(p_c):.4f}")
    report(f"E1  Pr(Amy)  (Ex 3.2)     = 27/50 = 0.54")
    report(f"E1  Pr(Amy|C) (Ex 3.4)    = {amy_cond} ≈ {float(amy_cond):.4f}")


def test_exactness_against_enumeration(benchmark, fig):
    formula = constraints_formula(figure1_constraints())

    def run():
        return naive_probability(fig.pdoc, formula)

    assert probability(fig.pdoc, formula) == benchmark.pedantic(
        run, rounds=1, iterations=1
    )


def bench_constraint_sat(fig):
    return probability(fig.pdoc, constraints_formula(figure1_constraints()))


def test_bench_constraint_sat(benchmark, fig, record):
    value = benchmark(bench_constraint_sat, fig)
    assert 0 < value < 1
    record("figure1 CONSTRAINT-SAT", wall_s=benchmark_mean(benchmark))


def test_bench_query_eval(benchmark, pxdb, fig, record):
    event = node_event(fig.amy.uid)
    value = benchmark(lambda: pxdb.event_probability(event))
    assert 0 < value < 1
    record("figure1 EVAL (Amy event)", wall_s=benchmark_mean(benchmark))


def test_bench_sampling(benchmark, pxdb, record):
    rng = random.Random(7)
    document = benchmark(lambda: pxdb.sample(rng))
    assert document.root.label == "university"
    record("figure1 SAMPLE", wall_s=benchmark_mean(benchmark))
