"""E5 — Theorem 7.1: MIN, MAX and RATIO stay tractable.

Claims regenerated:

* exactness — MIN/MAX (via the CNT rewriting) and RATIO (native automaton
  support) agree with the exponential baseline on small numeric workloads;
* shape — evaluation cost over AF^{CNT,MAX,MIN,RATIO} constraints grows
  polynomially with the workload width, far past the baseline's reach.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.aggregates.ratio import at_least_fraction
from repro.baseline.naive import naive_probability
from repro.core.evaluator import probability
from repro.core.formulas import (
    CountAtom,
    MaxAtom,
    MinAtom,
    SFormula,
    conjunction,
)
from repro.obs.benchrec import benchmark_mean
from repro.workloads.synthetic import numeric_pdocument
from repro.workloads.university import scaled_university
from repro.xmltree.parser import parse_selector


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


ALL_NODES = [sel("$*"), sel("*//$*")]


def minmax_formula():
    return conjunction(
        [
            MaxAtom(ALL_NODES, "<=", 8),
            MinAtom(ALL_NODES, ">=", 2),
        ]
    )


def test_minmax_exact_against_baseline(benchmark, report):
    pdoc = numeric_pdocument(width=8, value_range=10, seed=5)
    formula = minmax_formula()
    expected = benchmark.pedantic(
        lambda: naive_probability(pdoc, formula), rounds=1, iterations=1
    )
    assert probability(pdoc, formula) == expected
    report(f"E5  MIN/MAX agree with enumeration: Pr = {float(expected):.6f}")


@pytest.mark.parametrize("width", [8, 16, 32, 64])
def test_bench_minmax_scaling(benchmark, width, report, record):
    pdoc = numeric_pdocument(width=width, value_range=10, seed=width)
    formula = minmax_formula()
    benchmark.group = "E5-minmax"
    value = benchmark(lambda: probability(pdoc, formula))
    assert 0 <= value <= 1
    report(f"E5  MIN/MAX width={width:>3}  Pr ≈ {float(value):.6f}")
    record(
        f"MIN/MAX numeric width={width}",
        wall_s=benchmark_mean(benchmark),
        counters={"width": width},
    )


@pytest.mark.parametrize("members", [2, 4, 8])
def test_bench_ratio_scaling(benchmark, members, report, record):
    """The paper's motivating RATIO constraint: at least 40% of the members
    (in each random document) are full professors."""
    pdoc = scaled_university(departments=2, members=members, students=0)
    member_sel = sel("*//$member")
    is_full = CountAtom([sel("$*[position/'full professor']")], ">=", 1)
    formula = at_least_fraction(member_sel, is_full, Fraction(2, 5))
    benchmark.group = "E5-ratio"
    value = benchmark(lambda: probability(pdoc, formula))
    assert 0 < value < 1
    report(f"E5  RATIO members={members}  Pr(≥40% full) ≈ {float(value):.6f}")
    record(
        f"RATIO members={members}",
        wall_s=benchmark_mean(benchmark),
        counters={"members": members},
    )


def test_ratio_exact_against_baseline(benchmark, report):
    pdoc = scaled_university(departments=1, members=2, students=0)
    member_sel = sel("*//$member")
    is_full = CountAtom([sel("$*[position/'full professor']")], ">=", 1)
    formula = at_least_fraction(member_sel, is_full, Fraction(2, 5))
    expected = benchmark.pedantic(
        lambda: naive_probability(pdoc, formula), rounds=1, iterations=1
    )
    assert probability(pdoc, formula) == expected
    report(f"E5  RATIO agrees with enumeration: Pr = {float(expected):.6f}")
