"""E5 — Theorem 7.1: MIN, MAX and RATIO stay tractable.
E15 — the approximation tier answers NP-hard SUM events with certified
error where exact enumeration is out of reach.

Claims regenerated:

* exactness — MIN/MAX (via the CNT rewriting) and RATIO (native automaton
  support) agree with the exponential baseline on small numeric workloads;
* shape — evaluation cost over AF^{CNT,MAX,MIN,RATIO} constraints grows
  polynomially with the workload width, far past the baseline's reach;
* the guaranteed-accuracy tier (repro.approx) answers a conditioned
  SUM event on a Subset-Sum gadget whose enumeration would take >10 s in
  under a second warm, with an interval that contains the exact value,
  and the empirical-Bernstein rule stops with a fraction of the fixed-n
  Hoeffding budget on low-variance instances.
"""

from __future__ import annotations

import time
from fractions import Fraction

import pytest

from repro.aggregates.hardness import subset_sum_pdocument
from repro.aggregates.ratio import at_least_fraction
from repro.aggregates.sumavg import sum_count_distribution
from repro.approx import hoeffding_sample_size, parse_event
from repro.baseline.naive import naive_probability
from repro.core.evaluator import probability
from repro.core.formulas import (
    CountAtom,
    MaxAtom,
    MinAtom,
    SFormula,
    conjunction,
)
from repro.core.pxdb import PXDB
from repro.obs.benchrec import benchmark_mean
from repro.workloads.synthetic import numeric_pdocument
from repro.workloads.university import scaled_university
from repro.xmltree.parser import parse_selector


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


ALL_NODES = [sel("$*"), sel("*//$*")]


def minmax_formula():
    return conjunction(
        [
            MaxAtom(ALL_NODES, "<=", 8),
            MinAtom(ALL_NODES, ">=", 2),
        ]
    )


def test_minmax_exact_against_baseline(benchmark, report):
    pdoc = numeric_pdocument(width=8, value_range=10, seed=5)
    formula = minmax_formula()
    expected = benchmark.pedantic(
        lambda: naive_probability(pdoc, formula), rounds=1, iterations=1
    )
    assert probability(pdoc, formula) == expected
    report(f"E5  MIN/MAX agree with enumeration: Pr = {float(expected):.6f}")


@pytest.mark.parametrize("width", [8, 16, 32, 64])
def test_bench_minmax_scaling(benchmark, width, report, record):
    pdoc = numeric_pdocument(width=width, value_range=10, seed=width)
    formula = minmax_formula()
    benchmark.group = "E5-minmax"
    value = benchmark(lambda: probability(pdoc, formula))
    assert 0 <= value <= 1
    report(f"E5  MIN/MAX width={width:>3}  Pr ≈ {float(value):.6f}")
    record(
        f"MIN/MAX numeric width={width}",
        wall_s=benchmark_mean(benchmark),
        counters={"width": width},
    )


@pytest.mark.parametrize("members", [2, 4, 8])
def test_bench_ratio_scaling(benchmark, members, report, record):
    """The paper's motivating RATIO constraint: at least 40% of the members
    (in each random document) are full professors."""
    pdoc = scaled_university(departments=2, members=members, students=0)
    member_sel = sel("*//$member")
    is_full = CountAtom([sel("$*[position/'full professor']")], ">=", 1)
    formula = at_least_fraction(member_sel, is_full, Fraction(2, 5))
    benchmark.group = "E5-ratio"
    value = benchmark(lambda: probability(pdoc, formula))
    assert 0 < value < 1
    report(f"E5  RATIO members={members}  Pr(≥40% full) ≈ {float(value):.6f}")
    record(
        f"RATIO members={members}",
        wall_s=benchmark_mean(benchmark),
        counters={"members": members},
    )


# -- E15: the guaranteed-accuracy approximation tier ---------------------------

# Sixteen odd items: every subset sum is distinct enough that the joint
# (sum, count) DP stays small while 2^16 worlds are far past enumeration.
E15_ITEMS = [3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25, 27, 29, 31, 33]
E15_CONDITION = "count(*//$*) >= 3"  # at least three items survive
E15_EVENT = "sum(all) > 30"
E15_EPSILON = 0.02
E15_DELTA = 0.05


def _exact_conditional(items, threshold, min_items):
    """Exact Pr(SUM > threshold | >= min_items kept) from the joint
    (sum, count) distribution — pseudo-polynomial, so it reaches n = 16
    where per-world enumeration cannot.  The distribution counts every
    document node including the non-numeric root, hence the +1."""
    dist = sum_count_distribution(subset_sum_pdocument(items))
    numerator = sum(
        p for (s, c), p in dist.items() if s > threshold and c >= min_items + 1
    )
    denominator = sum(p for (s, c), p in dist.items() if c >= min_items + 1)
    return numerator / denominator


def test_e15_enumeration_wall(benchmark, report):
    """Exact per-world enumeration is out of reach at n = 16: timing the
    n = 10 prefix and scaling by 2^6 puts it far beyond 10 seconds."""
    prefix = E15_ITEMS[:10]
    formula = conjunction(
        [parse_event(E15_EVENT), parse_event(E15_CONDITION)]
    )
    pdoc = subset_sum_pdocument(prefix)
    start = time.perf_counter()
    naive_probability(pdoc, formula)
    elapsed = time.perf_counter() - start
    projected = elapsed * 2 ** (len(E15_ITEMS) - len(prefix))
    assert projected > 10.0, (
        f"enumeration projects to {projected:.1f}s at n=16 — the gadget no "
        "longer justifies the approximation tier"
    )
    report(
        f"E15 enumeration n=10 takes {elapsed:.2f}s -> projected "
        f"{projected:.0f}s at n=16"
    )


@pytest.mark.parametrize("n", [6, 8, 10])
def test_e15_interval_contains_exact_on_enumerable_instances(n, report):
    """On instances small enough to enumerate, the certified interval
    contains the exact conditional probability."""
    items = E15_ITEMS[:n]
    pdoc = subset_sum_pdocument(items)
    condition = parse_event(E15_CONDITION)
    event = parse_event(E15_EVENT)
    exact = naive_probability(pdoc, conjunction([event, condition])) / (
        naive_probability(pdoc, condition)
    )
    db = PXDB(pdoc, [condition])
    result = db.approx_probability(
        event, epsilon=E15_EPSILON, delta=E15_DELTA, seed=100 + n
    )
    assert result.lo <= float(exact) <= result.hi, (n, result, float(exact))
    assert _exact_conditional(items, 30, 3) == exact  # DP cross-check
    report(
        f"E15 containment n={n:>2}: exact {float(exact):.4f} in "
        f"[{result.lo:.4f}, {result.hi:.4f}] after {result.n} draws"
    )


def test_e15_approx_tier_answers_hard_sum(benchmark, report, record):
    """The headline run: eps=0.02, delta=0.05 on the n=16 gadget in under
    a second warm, interval containing the DP's exact conditional, and
    empirical-Bernstein using measurably fewer samples than fixed-n
    Hoeffding would."""
    exact = float(_exact_conditional(E15_ITEMS, 30, 3))
    condition = parse_event(E15_CONDITION)
    event = parse_event(E15_EVENT)
    db = PXDB(subset_sum_pdocument(E15_ITEMS), [condition])
    # Warm the sampler engines (the serving scenario: the store keeps the
    # PXDB hot; only the first-ever request pays compilation).
    db.approx_probability(event, epsilon=0.2, seed=0)

    benchmark.group = "E15-approx"
    result = benchmark.pedantic(
        lambda: db.approx_probability(
            event, epsilon=E15_EPSILON, delta=E15_DELTA, seed=1215
        ),
        rounds=3,
        iterations=1,
    )
    wall = benchmark_mean(benchmark)
    assert wall < 1.0, f"warm approx answer took {wall:.2f}s (budget 1s)"
    assert result.lo <= exact <= result.hi
    assert result.stopped == "target"

    hoeffding_n = hoeffding_sample_size(E15_EPSILON, E15_DELTA)  # 4612
    assert result.n < hoeffding_n / 2, (
        f"empirical-Bernstein used {result.n} samples, expected well under "
        f"the fixed-n Hoeffding budget of {hoeffding_n}"
    )
    report(
        f"E15 approx SUM>30 | C: {result.estimate:.4f} in "
        f"[{result.lo:.4f}, {result.hi:.4f}] (exact {exact:.4f}), "
        f"n={result.n} vs Hoeffding {hoeffding_n}, {wall * 1000:.0f} ms warm"
    )
    record(
        "approx SUM event n=16",
        wall_s=wall,
        counters={
            "n_samples": result.n,
            "hoeffding_n": hoeffding_n,
            "epsilon": E15_EPSILON,
            "delta": E15_DELTA,
        },
        speedup=hoeffding_n / result.n,
    )


def test_ratio_exact_against_baseline(benchmark, report):
    pdoc = scaled_university(departments=1, members=2, students=0)
    member_sel = sel("*//$member")
    is_full = CountAtom([sel("$*[position/'full professor']")], ">=", 1)
    formula = at_least_fraction(member_sel, is_full, Fraction(2, 5))
    expected = benchmark.pedantic(
        lambda: naive_probability(pdoc, formula), rounds=1, iterations=1
    )
    assert probability(pdoc, formula) == expected
    report(f"E5  RATIO agrees with enumeration: Pr = {float(expected):.6f}")
