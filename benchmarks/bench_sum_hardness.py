"""E6 — Proposition 7.2: SUM/AVG positivity is NP-complete.

Claims regenerated:

* the Subset-Sum reduction is faithful: Pr(P ⊨ ξ_Σall) > 0 iff the
  instance is solvable (checked on random instances against a direct
  subset-sum solver);
* the generic decision route (world enumeration) doubles its cost per
  item — the exponential wall the proposition predicts;
* the pseudo-polynomial DP (polynomial in the item *magnitudes*) stays
  fast on small-magnitude instances — and is no contradiction, because
  NP-hard instances carry exponentially large values.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.aggregates.hardness import (
    decide_by_dp,
    decide_by_enumeration,
    reduction,
    solving_subsets,
)
from repro.aggregates.sumavg import sum_formula_probability, xi_avg_all
from repro.baseline.naive import naive_probability
from repro.obs.benchrec import benchmark_mean


def random_instance(rng: random.Random, size: int, magnitude: int = 15):
    items = [rng.randint(1, magnitude) for _ in range(size)]
    target = rng.randint(0, sum(items))
    return items, target


def test_reduction_faithful(benchmark, report):
    rng = random.Random(7)

    def check_many():
        agreements = 0
        for _ in range(20):
            items, target = random_instance(rng, size=7)
            pdoc, formula = reduction(items, target)
            positive = naive_probability(pdoc, formula) > 0
            assert positive == bool(solving_subsets(items, target))
            assert positive == decide_by_dp(items, target)
            agreements += 1
        return agreements

    count = benchmark.pedantic(check_many, rounds=1, iterations=1)
    report(f"E6  Subset-Sum reduction faithful on {count} random instances")


@pytest.mark.parametrize("size", [6, 8, 10, 12])
def test_bench_enumeration_wall(benchmark, size, report):
    rng = random.Random(size)
    items, target = random_instance(rng, size=size)
    benchmark.group = "E6-enumeration"
    value = benchmark.pedantic(
        lambda: decide_by_enumeration(items, target), rounds=1, iterations=1
    )
    report(f"E6  enumeration n={size:>2}  worlds=2^{size}  solvable={value}")


@pytest.mark.parametrize("size", [10, 50, 200])
def test_bench_pseudo_poly_dp(benchmark, size, report, record):
    rng = random.Random(size)
    items, target = random_instance(rng, size=size, magnitude=20)
    benchmark.group = "E6-dp"
    value = benchmark(lambda: decide_by_dp(items, target))
    report(f"E6  pseudo-poly DP n={size:>3}  solvable={value}")
    record(
        f"pseudo-poly DP n={size}",
        wall_s=benchmark_mean(benchmark),
        counters={"items": size},
    )


def test_exponential_growth_shape(benchmark, report):
    """Enumeration cost must grow superlinearly (≈2× per item)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rng = random.Random(1)
    times = []
    sizes = [8, 10, 12]
    for size in sizes:
        items, target = random_instance(rng, size=size)
        start = time.perf_counter()
        decide_by_enumeration(items, target)
        times.append(time.perf_counter() - start)
    growth = times[-1] / max(times[0], 1e-9)
    report(f"E6  enumeration growth from n=8 to n=12: ×{growth:.1f} (≈2^4 = 16 expected)")
    assert growth > 4, f"expected exponential growth, got ×{growth:.1f}"


def test_avg_variant(benchmark, report):
    """ξ_avg-all: the AVG variant of Proposition 7.2 behaves identically."""
    rng = random.Random(2)
    items, target = random_instance(rng, size=6)
    pdoc, _ = reduction(items, target)
    formula = xi_avg_all(target)
    value = benchmark.pedantic(
        lambda: sum_formula_probability(pdoc, formula), rounds=1, iterations=1
    )
    assert value == naive_probability(pdoc, formula)
    report(f"E6  AVG variant agrees with enumeration (Pr = {float(value):.4f})")
