"""E7 — Section 7.3: exp distributional nodes (probabilistic instances).

Claims regenerated:

* all results carry over to PrXML^{ind,mux,exp}: the evaluator and the
  Figure-3 sampler handle exp nodes exactly (checked against enumeration);
* correlated subsets are genuinely expressible: the workload's exp nodes
  force two children to co-occur, which no ind/mux combination over the
  same children could state locally;
* polynomial scaling in the number of exp groups.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.baseline.naive import conditional_world_distribution, naive_probability
from repro.core.evaluator import probability
from repro.core.formulas import CountAtom, SFormula, conjunction, implies
from repro.core.sampler import sample
from repro.obs.benchrec import benchmark_mean
from repro.workloads.synthetic import exp_pdocument
from repro.xmltree.parser import parse_selector


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


def correlation_formula(group: int):
    """g{i}c0 present implies g{i}c1 present (true by construction)."""
    return implies(
        CountAtom([sel(f"root/$g{group}c0")], ">=", 1),
        CountAtom([sel(f"root/$g{group}c1")], ">=", 1),
    )


def test_exp_exact_against_baseline(benchmark, report):
    pdoc = exp_pdocument(groups=3, seed=1)
    formula = conjunction(
        [CountAtom([sel("root/$g0c2")], ">=", 1), correlation_formula(1)]
    )
    expected = benchmark.pedantic(
        lambda: naive_probability(pdoc, formula), rounds=1, iterations=1
    )
    assert probability(pdoc, formula) == expected
    report(f"E7  exp-node evaluation agrees with enumeration: Pr = {float(expected):.6f}")


def test_exp_correlation_holds_surely(benchmark, report):
    pdoc = exp_pdocument(groups=2, seed=2)
    formula = conjunction([correlation_formula(0), correlation_formula(1)])
    value = benchmark.pedantic(
        lambda: probability(pdoc, formula), rounds=1, iterations=1
    )
    assert value == 1
    report("E7  exp subset correlation (c0 ↔ c1) holds with probability 1")


@pytest.mark.parametrize("groups", [2, 4, 8, 16])
def test_bench_exp_scaling(benchmark, groups, report, record):
    pdoc = exp_pdocument(groups=groups, seed=groups)
    formula = CountAtom([sel("root/$*")], ">=", groups)
    benchmark.group = "E7-exp"
    value = benchmark(lambda: probability(pdoc, formula))
    assert 0 <= value <= 1
    report(f"E7  groups={groups:>2}  Pr(≥{groups} children) ≈ {float(value):.6f}")
    record(
        f"exp groups={groups}",
        wall_s=benchmark_mean(benchmark),
        counters={"groups": groups},
    )


def test_sampler_handles_exp_nodes(benchmark, report):
    pdoc = exp_pdocument(groups=2, seed=3)
    condition = CountAtom([sel("root/$*")], ">=", 1)
    exact = conditional_world_distribution(pdoc, condition)
    rng = random.Random(5)
    n = 800

    def draw_all():
        return Counter(sample(pdoc, condition, rng).uid_set() for _ in range(n))

    counts = benchmark.pedantic(draw_all, rounds=1, iterations=1)
    assert set(counts) <= set(exact)
    tv = sum(abs(counts.get(w, 0) / n - float(p)) for w, p in exact.items()) / 2
    report(f"E7  exp-node sampler TV over {n} samples: {tv:.4f}")
    assert tv < 0.08
