"""The parameter view of a p-document: its probability values as a flat,
deterministically ordered vector.

A p-document factors into *structure* (node kinds, labels, child
arrangement, exp subset index sets — summarized by
:meth:`~repro.pdoc.pdocument.PNode.structure_fingerprint`) and
*parameters* (the edge probabilities of ind/mux nodes and the subset
weights of exp nodes).  This module enumerates the parameters in a fixed
preorder, so that

* a compiled arithmetic circuit (``repro.circuit``) can name each
  parameter by its position and re-bind a structurally identical
  p-document without recompiling;
* the document store can distinguish a probability-only file edit (same
  structure fingerprint, new parameter vector) from a structural edit and
  keep its warm engines and circuits alive across the former.

Slot order is the preorder of the distributional nodes, and within a node
the child index order (ind/mux) or the listed subset order (exp) — the
same order in which two structurally identical documents enumerate their
nodes, so positions align.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from .pdocument import EXP, IND, MUX, PDocument, PNode

EDGE = "edge"      # probs[index] of an ind/mux node
SUBSET = "subset"  # subsets[index] weight of an exp node


class ParameterSlot:
    """One probability parameter: where it lives and how to describe it."""

    __slots__ = ("node", "field", "index", "path")

    def __init__(self, node: PNode, field: str, index: int, path: tuple[int, ...]):
        self.node = node
        self.field = field
        self.index = index
        self.path = path

    @property
    def value(self) -> Fraction:
        if self.field == EDGE:
            return self.node.probs[self.index]
        return self.node.subsets[self.index][1]

    def describe(self) -> str:
        """A stable, human-readable name (used by sensitivity reports)."""
        location = "/" + "/".join(map(str, self.path)) if self.path else "/"
        if self.field == EDGE:
            child = self.node.children[self.index]
            target = repr(child.label) if child.kind == "ord" else child.kind
            return f"{self.node.kind}@{location} edge {self.index} -> {target}"
        subset = sorted(self.node.subsets[self.index][0])
        return f"exp@{location} subset {subset}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParameterSlot({self.describe()}, value={self.value})"


def parameter_slots(pdoc: PDocument) -> list[ParameterSlot]:
    """All probability parameters of ``pdoc``, in the canonical order.

    Two p-documents with equal structure fingerprints produce slot lists
    of equal length whose positions refer to corresponding locations.
    """
    slots: list[ParameterSlot] = []
    stack: list[tuple[PNode, tuple[int, ...]]] = [(pdoc.root, ())]
    while stack:
        node, path = stack.pop()
        if node.kind in (IND, MUX):
            slots.extend(
                ParameterSlot(node, EDGE, i, path) for i in range(len(node.probs))
            )
        elif node.kind == EXP:
            slots.extend(
                ParameterSlot(node, SUBSET, i, path) for i in range(len(node.subsets))
            )
        # Reversed push keeps the traversal in preorder (stack is LIFO).
        for index in range(len(node.children) - 1, -1, -1):
            stack.append((node.children[index], path + (index,)))
    return slots


def parameter_values(pdoc: PDocument) -> list[Fraction]:
    """The parameter vector of ``pdoc`` in canonical slot order."""
    return [slot.value for slot in parameter_slots(pdoc)]


def scaled_edge_bindings(
    pdoc: PDocument, factors: Sequence[Fraction]
) -> list[list[Fraction]]:
    """One parameter binding per factor: every ind/mux *edge* probability
    scaled by the factor (clamped into [0, 1]), exp subset weights left
    untouched (they must keep summing to 1).

    This is the canonical parameter-sweep generator behind ``repro
    circuit sweep`` and the batch benchmarks: it perturbs the free
    probabilities while every binding stays a valid p-document
    parameterization, so sweep results remain probabilities.
    """
    base = [(slot.value, slot.field) for slot in parameter_slots(pdoc)]
    bindings: list[list[Fraction]] = []
    for factor in factors:
        factor = Fraction(factor)
        bindings.append([
            min(max(value * factor, Fraction(0)), Fraction(1))
            if field == EDGE else value
            for value, field in base
        ])
    return bindings


def apply_parameters(pdoc: PDocument, values: Sequence[Fraction]) -> int:
    """Overwrite ``pdoc``'s probability parameters with ``values``
    (canonical slot order), validating the per-node distribution laws
    (probabilities in [0, 1], mux sums ≤ 1, exp subset weights summing to
    exactly 1).  Returns the number of *nodes* whose parameters actually
    changed; only those have their fingerprints invalidated, so an
    incremental evaluator subsequently recomputes only the touched spines.

    Raises ``ValueError`` on a length mismatch or an invalid distribution
    — in that case the document is left unmodified.
    """
    slots = parameter_slots(pdoc)
    if len(slots) != len(values):
        raise ValueError(
            f"parameter vector has {len(values)} entries, "
            f"the p-document has {len(slots)} parameter slots"
        )
    # Group assignments per node, validate everything before mutating.
    per_node: dict[int, tuple[PNode, list[tuple[ParameterSlot, Fraction]]]] = {}
    for slot, raw in zip(slots, values):
        value = Fraction(raw)
        if not 0 <= value <= 1:
            raise ValueError(
                f"parameter {slot.describe()} = {value} outside [0, 1]"
            )
        per_node.setdefault(id(slot.node), (slot.node, []))[1].append((slot, value))
    for node, assignments in per_node.values():
        if node.kind == MUX:
            if sum(v for _, v in assignments) > 1:
                raise ValueError(
                    f"mux@{assignments[0][0].path} child probabilities exceed 1"
                )
        elif node.kind == EXP:
            if sum(v for _, v in assignments) != 1:
                raise ValueError(
                    f"exp@{assignments[0][0].path} subset weights must sum to 1"
                )
    changed = 0
    for node, assignments in per_node.values():
        if node.kind in (IND, MUX):
            new_probs = list(node.probs)
            for slot, value in assignments:
                new_probs[slot.index] = value
            if new_probs != node.probs:
                node.probs = new_probs
                node.invalidate_fingerprints()
                changed += 1
        else:  # EXP
            new_subsets = list(node.subsets)
            for slot, value in assignments:
                subset, _ = new_subsets[slot.index]
                new_subsets[slot.index] = (subset, value)
            if new_subsets != node.subsets:
                node.subsets = new_subsets
                node.invalidate_fingerprints()
                changed += 1
    return changed
