"""Structural and distributional statistics of p-documents.

Utilities for sizing experiments and for understanding a p-document at a
glance — all polynomial:

* :func:`expected_document_size` — E[#nodes of a random document], by
  linearity over per-node presence marginals;
* :func:`document_size_distribution` — the exact distribution of the
  random document's size (a convolution DP over the tree);
* :func:`world_count` — the number of distinct worlds (aggregating the
  stacked-distributional-node collisions of footnote 3 would require
  enumeration; this counts *assignment outcomes* per node, an upper
  bound that is exact for flat p-documents);
* :func:`process_entropy` — the Shannon entropy (in bits, as a float) of
  the top-down generation process: the sum over distributional nodes of
  their choice entropies weighted by the probability the node is reached.
  An upper bound on the entropy of the document distribution (exact for
  flat p-documents, where distinct assignments give distinct documents);
* :func:`summary` — a small report dict used by the CLI.
"""

from __future__ import annotations

import math
from fractions import Fraction

from .enumerate import node_probability
from .pdocument import EXP, IND, MUX, ORD, PDocument, PNode

SizeDist = dict[int, Fraction]


def expected_document_size(pdoc: PDocument) -> Fraction:
    """E[#ordinary nodes present] = Σ_v Pr(v present)."""
    return sum(
        (node_probability(pdoc, node.uid) for node in pdoc.ordinary_nodes()),
        Fraction(0),
    )


def _convolve(left: SizeDist, right: SizeDist) -> SizeDist:
    result: SizeDist = {}
    for s1, p1 in left.items():
        for s2, p2 in right.items():
            result[s1 + s2] = result.get(s1 + s2, Fraction(0)) + p1 * p2
    return result


def _mix(parts: list[tuple[Fraction, SizeDist]]) -> SizeDist:
    result: SizeDist = {}
    for weight, dist in parts:
        if weight == 0:
            continue
        for size, p in dist.items():
            result[size] = result.get(size, Fraction(0)) + weight * p
    return result


def document_size_distribution(pdoc: PDocument) -> SizeDist:
    """{size: probability} for the number of nodes of a random document.

    Pseudo-polynomial: the table per node has at most (subtree size + 1)
    entries, so the whole DP is O(n²) table entries.
    """
    one: SizeDist = {0: Fraction(1)}

    def forest(node: PNode) -> SizeDist:
        if node.kind == ORD:
            dist = one
            for child in node.children:
                dist = _convolve(dist, forest(child))
            return {size + 1: p for size, p in dist.items()}
        if node.kind == IND:
            dist = one
            for index, child in enumerate(node.children):
                p = node.probs[index]
                dist = _convolve(dist, _mix([(p, forest(child)), (1 - p, one)]))
            return dist
        if node.kind == MUX:
            total = sum(node.probs, Fraction(0))
            parts = [(1 - total, one)]
            parts += [
                (node.probs[i], forest(child))
                for i, child in enumerate(node.children)
            ]
            return _mix(parts)
        if node.kind == EXP:
            parts = []
            for subset, q in node.subsets:
                dist = one
                for index in sorted(subset):
                    dist = _convolve(dist, forest(node.children[index]))
                parts.append((q, dist))
            return _mix(parts)
        raise AssertionError(f"unknown node kind {node.kind}")

    return forest(pdoc.root)


def world_count(pdoc: PDocument) -> int:
    """The number of distinct assignment outcomes of the generation
    process (exactly the number of worlds for flat p-documents)."""
    count = 1
    for node in pdoc.distributional_nodes():
        if node.kind == IND:
            local = 1
            for p in node.probs:
                local *= 2 if 0 < p < 1 else 1
        elif node.kind == MUX:
            positive = sum(1 for p in node.probs if p > 0)
            local = positive + (1 if sum(node.probs) < 1 else 0)
        else:  # EXP
            local = sum(1 for _, q in node.subsets if q > 0)
        count *= max(local, 1)
    return count


def process_entropy(pdoc: PDocument) -> float:
    """Entropy (bits) of the top-down generation process."""

    def reach_probability(node: PNode) -> Fraction:
        probability = Fraction(1)
        current = node
        while current.parent is not None:
            parent = current.parent
            if parent.is_distributional():
                index = next(
                    i for i, child in enumerate(parent.children) if child is current
                )
                probability *= pdoc.edge_prob(parent, index)
            current = parent
        return probability

    total = 0.0
    for node in pdoc.distributional_nodes():
        reach = float(reach_probability(node))
        if reach == 0:
            continue
        if node.kind == IND:
            local = sum(_bernoulli_entropy(p) for p in node.probs)
        elif node.kind == MUX:
            outcomes = [p for p in node.probs if p > 0]
            slack = 1 - sum(node.probs)
            if slack > 0:
                outcomes.append(slack)
            local = _categorical_entropy(outcomes)
        else:  # EXP
            local = _categorical_entropy([q for _, q in node.subsets if q > 0])
        total += reach * local
    return total


def _bernoulli_entropy(p: Fraction) -> float:
    value = float(p)
    if value in (0.0, 1.0):
        return 0.0
    return -(value * math.log2(value) + (1 - value) * math.log2(1 - value))


def _categorical_entropy(weights) -> float:
    values = [float(w) for w in weights if w > 0]
    return -sum(v * math.log2(v) for v in values)


def summary(pdoc: PDocument) -> dict:
    """A report of the p-document's shape and uncertainty."""
    sizes = document_size_distribution(pdoc)
    expected = expected_document_size(pdoc)
    return {
        "ordinary_nodes": pdoc.ordinary_size(),
        "distributional_nodes": sum(1 for _ in pdoc.distributional_nodes()),
        "distributional_edges": len(pdoc.dist_edges()),
        "assignment_outcomes": world_count(pdoc),
        "expected_size": expected,
        "min_size": min(sizes),
        "max_size": max(sizes),
        "process_entropy_bits": process_entropy(pdoc),
    }
