"""P-documents: the probabilistic XML model PrXML^{ind,mux} of Section 3.1,
extended with ``exp`` nodes (Section 7.3, the probabilistic instances of
Hung, Getoor & Subrahmanian).

A p-document is a tree with two kinds of nodes:

* **ordinary** nodes — regular XML nodes with a label; these are the nodes
  that may appear in random documents.  Each carries a ``uid`` that its
  copies in random documents inherit, so possible worlds can be compared
  and aggregated by their uid sets.
* **distributional** nodes — ``ind``, ``mux`` or ``exp``; they specify the
  probability distribution over the subsets of their children and never
  occur in random documents.  A distributional node is neither the root
  nor a leaf.

Probabilities are exact rationals (``fractions.Fraction``), matching the
paper's complexity model ("P̃(u, v) is given as two integers").

The sampling algorithm of Figure 3 repeatedly *conditions* a p-document on
a distributional edge being chosen or not (the ``Norm`` subroutine); the
methods :meth:`PDocument.conditioned_on_edge` implement exactly that
rewrite, returning a new p-document that shares no mutable state with the
original.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, Sequence

from ..xmltree import tree
from ..xmltree.document import DocNode, Document, Label, fresh_uid

ORD = "ord"
IND = "ind"
MUX = "mux"
EXP = "exp"
DIST_KINDS = (IND, MUX, EXP)
KINDS = (ORD,) + DIST_KINDS


# Process-wide intern tables for structural fingerprints.  A fingerprint is
# a small integer identifying a subtree's content up to the chosen equality:
# *shape* fingerprints ignore ordinary uids (two structurally identical
# subtrees share one), *identity* fingerprints include them (equal only for
# clones of the same subtree), *structure* fingerprints additionally ignore
# every probability value (edge probabilities, exp subset weights) — they
# identify the parameterized skeleton that the arithmetic-circuit backend
# compiles against, so two documents with equal structure fingerprints
# differ at most in their probability parameters.  Interning makes equality
# O(1) and keys stable across documents and across evaluator runs, which is
# what the incremental engine's persistent cache is keyed on.
_SHAPE_INTERN: dict[tuple, int] = {}
_IDENT_INTERN: dict[tuple, int] = {}
_STRUCT_INTERN: dict[tuple, int] = {}


class PNode:
    """A node of a p-document (ordinary or distributional)."""

    __slots__ = ("kind", "label", "uid", "probs", "subsets", "_children", "_parent",
                 "_shape_fp", "_ident_fp", "_struct_fp")

    def __init__(
        self,
        kind: str,
        label: Label | None = None,
        uid: int | None = None,
    ):
        if kind not in KINDS:
            raise ValueError(f"unknown node kind {kind!r}")
        if kind == ORD and label is None:
            raise ValueError("ordinary nodes need a label")
        if kind != ORD and label is not None:
            raise ValueError("distributional nodes carry no label")
        self.kind = kind
        self.label = label
        self.uid = (fresh_uid() if uid is None else uid) if kind == ORD else None
        # ind/mux: probs[i] = probability that child i is chosen.
        self.probs: list[Fraction] = []
        # exp: explicit distribution over child-index subsets.
        self.subsets: list[tuple[frozenset[int], Fraction]] = []
        self._children: list[PNode] = []
        self._parent: PNode | None = None
        # Cached structural fingerprints (None = not computed / stale).
        self._shape_fp: int | None = None
        self._ident_fp: int | None = None
        self._struct_fp: int | None = None

    # Tree structure --------------------------------------------------------
    @property
    def children(self) -> list["PNode"]:
        return self._children

    @property
    def parent(self) -> "PNode | None":
        return self._parent

    def is_ordinary(self) -> bool:
        return self.kind == ORD

    def is_distributional(self) -> bool:
        return self.kind != ORD

    def _attach(self, child: "PNode") -> "PNode":
        if child._parent is not None:
            raise ValueError("p-document node already has a parent")
        child._parent = self
        self._children.append(child)
        self.invalidate_fingerprints()
        return child

    # Fingerprints ------------------------------------------------------------
    def invalidate_fingerprints(self) -> None:
        """Mark the cached fingerprints of this node and every ancestor
        stale.  Every mutation of content or structure must call this — a
        node's fingerprint summarizes its whole subtree, so a change here
        changes the fingerprint of the entire root-to-node spine (and of
        nothing else; sibling subtrees keep their cached values, which is
        what makes conditioning cheap for the incremental evaluator)."""
        node: PNode | None = self
        while node is not None:
            node._shape_fp = None
            node._ident_fp = None
            node._struct_fp = None
            node = node._parent

    def shape_fingerprint(self) -> int:
        """Interned id of the subtree's shape: kind, label, probabilities,
        subset distribution and children's shapes — everything a label-only
        formula can observe.  Two subtrees with equal shape fingerprints
        have identical signature distributions under any label-only
        registry."""
        return _fingerprint(self, identity=False)

    def identity_fingerprint(self) -> int:
        """Like :meth:`shape_fingerprint` but including ordinary uids, so
        it is equal exactly for (possibly conditioned) clones of the same
        subtree with unchanged content.  Sound as a cache key even when
        predicates inspect node identity (``NodeIs``), because clones
        preserve uids."""
        return _fingerprint(self, identity=True)

    def structure_fingerprint(self) -> int:
        """The subtree's *parameterized* structure: kinds, labels, child
        arrangement and (for exp nodes) the ordered list of subset index
        sets — everything **except** the probability values.  Two subtrees
        with equal structure fingerprints describe the same probability
        polynomial and differ at most in the point it is evaluated at,
        which is exactly the condition under which a compiled arithmetic
        circuit (``repro.circuit``) can be re-bound instead of recompiled.
        Ordinary uids are excluded so the fingerprint is stable across
        re-parses of the same file (serialization drops uids by default)."""
        return _fingerprint(self, identity=False, structure=True)

    # Construction helpers ---------------------------------------------------
    def ordinary(self, label: Label, uid: int | None = None) -> "PNode":
        """Attach an ordinary child.  For ind/mux parents a probability must
        be supplied through :meth:`ind`/:meth:`mux` style helpers or
        :meth:`add_edge`; use ``add_edge`` when the parent is distributional."""
        if self.kind in (IND, MUX):
            raise ValueError("use add_edge(...) to attach below ind/mux nodes")
        return self._attach(PNode(ORD, label, uid=uid))

    def ind(self) -> "PNode":
        """Attach an ``ind`` distributional child."""
        if self.kind in (IND, MUX):
            raise ValueError("use add_edge(...) to attach below ind/mux nodes")
        return self._attach(PNode(IND))

    def mux(self) -> "PNode":
        """Attach a ``mux`` distributional child."""
        if self.kind in (IND, MUX):
            raise ValueError("use add_edge(...) to attach below ind/mux nodes")
        return self._attach(PNode(MUX))

    def exp(self) -> "PNode":
        """Attach an ``exp`` distributional child."""
        if self.kind in (IND, MUX):
            raise ValueError("use add_edge(...) to attach below ind/mux nodes")
        return self._attach(PNode(EXP))

    def add_edge(self, child: "PNode | Label", prob) -> "PNode":
        """Attach ``child`` below this ind/mux node with probability ``prob``.

        ``child`` may be a bare label (an ordinary leaf is created) or a
        :class:`PNode` built separately.
        """
        if self.kind not in (IND, MUX):
            raise ValueError("add_edge applies to ind/mux nodes only")
        node = child if isinstance(child, PNode) else PNode(ORD, child)
        probability = Fraction(prob)
        if not 0 <= probability <= 1:
            raise ValueError(f"edge probability {probability} outside [0, 1]")
        self._attach(node)
        self.probs.append(probability)
        return node

    def add_exp_child(self, child: "PNode | Label") -> "PNode":
        """Attach a child below this exp node (the distribution over subsets
        is supplied afterwards through :meth:`set_exp_distribution`)."""
        if self.kind != EXP:
            raise ValueError("add_exp_child applies to exp nodes only")
        node = child if isinstance(child, PNode) else PNode(ORD, child)
        return self._attach(node)

    def set_exp_distribution(self, distribution: Iterable[tuple[Sequence[int], object]]) -> None:
        """Set the explicit distribution of an exp node.

        ``distribution`` is an iterable of ``(child-index subset, prob)``;
        the probabilities must sum to exactly 1 (paper, Section 7.3).
        """
        if self.kind != EXP:
            raise ValueError("set_exp_distribution applies to exp nodes only")
        subsets: list[tuple[frozenset[int], Fraction]] = []
        for indices, prob in distribution:
            subset = frozenset(indices)
            if any(i < 0 or i >= len(self._children) for i in subset):
                raise ValueError(f"subset {sorted(subset)} references a missing child")
            probability = Fraction(prob)
            if not 0 <= probability <= 1:
                raise ValueError(f"subset probability {probability} outside [0, 1]")
            subsets.append((subset, probability))
        if sum(p for _, p in subsets) != 1:
            raise ValueError("exp subset probabilities must sum to 1")
        if len({s for s, _ in subsets}) != len(subsets):
            raise ValueError("exp distribution lists a subset twice")
        self.subsets = subsets
        self.invalidate_fingerprints()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == ORD:
            return f"PNode(ord, {self.label!r}, uid={self.uid})"
        return f"PNode({self.kind}, fanout={len(self._children)})"


Edge = tuple[PNode, int]  # (distributional node, child index)


class PDocument:
    """A p-document P̃ (Section 3.1): the tree plus probability access.

    The class is immutable in spirit: conditioning operations return new
    ``PDocument`` objects over cloned node structures.
    """

    __slots__ = ("root",)

    def __init__(self, root: PNode, validate: bool = True):
        self.root = root
        if validate:
            self.validate()

    # Basic access -----------------------------------------------------------
    def nodes(self) -> Iterator[PNode]:
        return tree.preorder(self.root)

    def ordinary_nodes(self) -> Iterator[PNode]:
        return (n for n in self.nodes() if n.kind == ORD)

    def distributional_nodes(self) -> Iterator[PNode]:
        return (n for n in self.nodes() if n.kind != ORD)

    def size(self) -> int:
        return tree.subtree_size(self.root)

    def ordinary_size(self) -> int:
        return sum(1 for _ in self.ordinary_nodes())

    def node_by_uid(self, uid: int) -> PNode:
        for node in self.ordinary_nodes():
            if node.uid == uid:
                return node
        raise LookupError(f"no ordinary node with uid {uid}")

    def dist_edges(self) -> list[Edge]:
        """All edges (v, w) with v distributional, in a fixed preorder —
        the enumeration E^dst(P̃) that the sampling algorithm iterates over."""
        return [
            (node, index)
            for node in self.nodes()
            if node.kind != ORD
            for index in range(len(node.children))
        ]

    def edge_prob(self, node: PNode, index: int) -> Fraction:
        """Marginal probability that child ``index`` of a distributional
        node is chosen, given that the node is reached."""
        if node.kind in (IND, MUX):
            return node.probs[index]
        if node.kind == EXP:
            return sum((p for s, p in node.subsets if index in s), Fraction(0))
        raise ValueError("edge_prob applies to distributional nodes only")

    # Validation (Section 3.1 well-formedness) --------------------------------
    def validate(self) -> None:
        if self.root.kind != ORD:
            raise ValueError("the root of a p-document must be ordinary")
        seen_uids: set[int] = set()
        for node in self.nodes():
            if node.kind == ORD:
                if node.uid in seen_uids:
                    raise ValueError(f"duplicate ordinary uid {node.uid}")
                seen_uids.add(node.uid)
                continue
            if not node.children:
                raise ValueError(f"distributional node {node!r} is a leaf")
            if node.kind in (IND, MUX):
                if len(node.probs) != len(node.children):
                    raise ValueError("ind/mux node has children without probabilities")
                if node.kind == MUX and sum(node.probs) > 1:
                    raise ValueError("mux child probabilities exceed 1")
            else:  # EXP
                if not node.subsets:
                    raise ValueError("exp node lacks its subset distribution")

    # Conditioning (the Norm subroutine of Figure 3) ---------------------------
    def conditioned_on_edge(self, edge: Edge, chosen: bool) -> "PDocument":
        """Return Norm(P̃, v → w) or Norm(P̃, v ↛ w) (Figure 3, Section 6).

        * ``chosen`` — the edge probability becomes 1; for a mux parent all
          sibling probabilities drop to 0; for an exp parent the subset
          distribution is conditioned on containing the child.
        * not ``chosen`` — the edge probability becomes 0; for a mux parent
          the siblings are renormalized by 1/(1 - p); for an exp parent the
          distribution is conditioned on *not* containing the child.
        """
        node, index = edge
        clone_root, mapping = _clone(self.root)
        clone = PDocument(clone_root, validate=False)
        clone.condition_edge_in_place((mapping[id(node)], index), chosen)
        return clone

    def condition_edge_in_place(self, edge: Edge, chosen: bool) -> None:
        """Apply Norm(P̃, v → w) / Norm(P̃, v ↛ w) to *this* p-document.

        The in-place variant backs the sampler's hot loop: Figure 3 only
        ever conditions forward (it never returns to the unconditioned
        document), so cloning the whole tree per edge is pure overhead.
        The target node's cached fingerprints — and those of its ancestors,
        the "spine" — are invalidated; every other subtree keeps its
        fingerprint, so an incremental evaluator recomputes only the spine.
        """
        target, index = edge
        prior = self.edge_prob(target, index)
        if chosen and prior == 0:
            raise ValueError("cannot condition on a zero-probability edge being chosen")
        if not chosen and prior == 1:
            raise ValueError("cannot condition on a sure edge being dropped")
        if target.kind == IND:
            target.probs[index] = Fraction(1 if chosen else 0)
        elif target.kind == MUX:
            if chosen:
                target.probs = [
                    Fraction(1) if i == index else Fraction(0)
                    for i in range(len(target.probs))
                ]
            else:
                scale = 1 - prior
                target.probs = [
                    Fraction(0) if i == index else p / scale
                    for i, p in enumerate(target.probs)
                ]
        else:  # EXP
            keep = (lambda s: index in s) if chosen else (lambda s: index not in s)
            scale = prior if chosen else 1 - prior
            target.subsets = [(s, p / scale) for s, p in target.subsets if keep(s) and p > 0]
        target.invalidate_fingerprints()

    def edge_snapshot(self, edge: Edge) -> tuple[list[Fraction], list]:
        """Capture the mutable distribution state of an edge's parent node,
        so a speculative :meth:`condition_edge_in_place` can be undone."""
        node, _ = edge
        return (list(node.probs), list(node.subsets))

    def restore_edge(self, edge: Edge, snapshot: tuple[list[Fraction], list]) -> None:
        """Undo in-place conditioning of ``edge`` (inverse of the snapshot)."""
        node, _ = edge
        node.probs = list(snapshot[0])
        node.subsets = list(snapshot[1])
        node.invalidate_fingerprints()

    def clone(self) -> "PDocument":
        """Deep copy (preserving ordinary uids)."""
        clone_root, _ = _clone(self.root)
        return PDocument(clone_root, validate=False)

    # Skeleton ----------------------------------------------------------------
    def skeleton(self) -> Document:
        """The document containing *every* ordinary node.

        Every random document of the p-document is an "r-subtree" of the
        skeleton with the same parent relation (the document parent of an
        ordinary node — its lowest ordinary ancestor — is fixed across
        worlds), so the skeleton's matches are a superset of any world's
        matches.  Query evaluation harvests its candidate tuples here.
        """
        return Document(_skeleton_node(self.root))

    def document_from_uids(self, uids: frozenset[int]) -> Document:
        """Materialize the world identified by a (downward-closed) uid set."""
        node = _world_node(self.root, uids)
        if node is None:
            raise ValueError("uid set does not contain the root")
        return Document(node)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PDocument(nodes={self.size()}, ordinary={self.ordinary_size()}, "
            f"dist_edges={len(self.dist_edges())})"
        )


def _clone(node: PNode) -> tuple[PNode, dict[int, PNode]]:
    mapping: dict[int, PNode] = {}

    def rec(original: PNode) -> PNode:
        copy = PNode(original.kind, original.label, uid=original.uid)
        copy.probs = list(original.probs)
        copy.subsets = list(original.subsets)
        for child in original.children:
            copy._attach(rec(child))
        # Content is identical, so cached fingerprints carry over (attaching
        # children above reset them); this is what lets conditioned clones
        # reuse the incremental engine's cache for untouched subtrees.
        copy._shape_fp = original._shape_fp
        copy._ident_fp = original._ident_fp
        copy._struct_fp = original._struct_fp
        mapping[id(original)] = copy
        return copy

    return rec(node), mapping


def _fingerprint(root: PNode, identity: bool, structure: bool = False) -> int:
    """Compute (and cache) the requested fingerprint of ``root``'s subtree.

    Iterative postorder with early pruning: subtrees whose fingerprint is
    already cached are not re-walked, so after in-place conditioning the
    cost is proportional to the invalidated spine, not the document.

    ``structure=True`` masks out every probability value (edge
    probabilities and exp subset weights) while keeping the ordered subset
    index sets — the parameter *slots* are part of the structure, their
    values are not.
    """
    if structure:
        table, slot = _STRUCT_INTERN, "_struct_fp"
    elif identity:
        table, slot = _IDENT_INTERN, "_ident_fp"
    else:
        table, slot = _SHAPE_INTERN, "_shape_fp"
    stack: list[tuple[PNode, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if getattr(node, slot) is not None:
            continue
        if not expanded:
            stack.append((node, True))
            stack.extend((child, False) for child in node.children)
            continue
        raw = (
            node.kind,
            node.label,
            node.uid if identity else None,
            len(node.probs) if structure else tuple(node.probs),
            tuple(
                tuple(sorted(s)) if structure else (tuple(sorted(s)), q)
                for s, q in node.subsets
            ),
            tuple(getattr(child, slot) for child in node.children),
        )
        setattr(node, slot, table.setdefault(raw, len(table)))
    value = getattr(root, slot)
    assert value is not None
    return value


def _skeleton_node(pnode: PNode) -> DocNode:
    def ordinary_children(node: PNode) -> Iterator[PNode]:
        for child in node.children:
            if child.kind == ORD:
                yield child
            else:
                yield from ordinary_children(child)

    doc_node = DocNode(pnode.label, uid=pnode.uid)
    for child in ordinary_children(pnode):
        doc_node.add_child(_skeleton_node(child))
    return doc_node


def _world_node(pnode: PNode, uids: frozenset[int]) -> DocNode | None:
    if pnode.uid not in uids:
        return None
    doc_node = DocNode(pnode.label, uid=pnode.uid)

    def attach(node: PNode) -> None:
        for child in node.children:
            if child.kind == ORD:
                built = _world_node(child, uids)
                if built is not None:
                    doc_node.add_child(built)
            else:
                attach(child)

    attach(pnode)
    return doc_node


def pdocument(root_label: Label, uid: int | None = None) -> tuple[PDocument, PNode]:
    """Create a p-document with a single ordinary root; returns (P̃, root).

    Note: the returned PDocument shares the growing tree — call
    ``validate()`` (or build through :class:`PDocument` again) once
    construction is finished.
    """
    root = PNode(ORD, root_label, uid=uid)
    return PDocument(root, validate=False), root
