"""Semantics-preserving p-document rewrites.

The PrXML literature the paper builds on (Kimelfeld, Kosharovski & Sagiv's
model combinations) studies translations between distributional-node
dialects.  This module implements the useful normalizations inside
PrXML^{ind,mux,exp}; every rewrite preserves the *document distribution*
exactly (tests compare world distributions before and after):

* :func:`prune_impossible` — drop zero-probability edges/subsets (and the
  subtrees they guard);
* :func:`inline_sure_edges` — an ind child with probability 1 (or a mux
  node with a single probability-1 child) is deterministic: splice the
  child through, removing the distributional indirection where possible;
* :func:`collapse_ind_chains` — an ind node whose child is another ind
  node multiplies through: the grandchildren move up with the product
  probability (this is the rewrite behind the paper's footnote 3 —
  stacked ind nodes express nothing ind cannot);
* :func:`exp_to_ind_mux` — rewrite an exp node whose distribution is a
  product of independent marginals into plain ind form, when possible
  (exp nodes are strictly more expressive in general — Section 7.3);
* :func:`normalize` — the composition of all of the above to fixpoint.

All functions return a *new* PDocument; inputs are never mutated.
"""

from __future__ import annotations

import itertools
from fractions import Fraction

from .pdocument import EXP, IND, MUX, ORD, PDocument, PNode


def _rebuild(node: PNode) -> PNode:
    copy = PNode(node.kind, node.label, uid=node.uid)
    copy.probs = list(node.probs)
    copy.subsets = list(node.subsets)
    for child in node.children:
        copy._attach(_rebuild(child))
    return copy


def _fresh(pdoc: PDocument) -> PDocument:
    return PDocument(_rebuild(pdoc.root), validate=False)


def prune_impossible(pdoc: PDocument) -> PDocument:
    """Remove edges with probability 0, exp subsets with weight 0, exp
    children no positive subset mentions, and distributional nodes left
    childless (an empty distributional node generates nothing, so removing
    it never changes the document distribution)."""

    def rec(node: PNode) -> PNode | None:
        copy = PNode(node.kind, node.label, uid=node.uid)
        if node.kind == ORD:
            for child in node.children:
                built = rec(child)
                if built is not None:
                    copy._attach(built)
            return copy
        if node.kind in (IND, MUX):
            for child, p in zip(node.children, node.probs):
                if p == 0:
                    continue
                built = rec(child)
                if built is None:
                    continue
                copy._attach(built)
                copy.probs.append(p)
            return copy if copy.children else None
        # EXP: rebuild children, then rewrite the subset distribution over
        # the surviving indices (vanished children just drop out of every
        # subset; equal subsets merge; zero-weight subsets disappear).
        built_children: list[PNode | None] = [rec(child) for child in node.children]
        used = set()
        for subset, q in node.subsets:
            if q > 0:
                used |= {i for i in subset if built_children[i] is not None}
        alive = sorted(used)
        remap = {old: new for new, old in enumerate(alive)}
        for index in alive:
            copy._attach(built_children[index])
        merged: dict[frozenset[int], Fraction] = {}
        for subset, q in node.subsets:
            if q == 0:
                continue
            key = frozenset(remap[i] for i in subset if i in remap)
            merged[key] = merged.get(key, Fraction(0)) + q
        copy.subsets = sorted(merged.items(), key=lambda item: sorted(item[0]))
        return copy if copy.children else None

    root = rec(pdoc.root)
    assert root is not None  # the root is ordinary and always survives
    return PDocument(root, validate=False)


def inline_sure_edges(pdoc: PDocument) -> PDocument:
    """Splice through deterministic indirections.

    An ind edge with probability 1 whose child is *ordinary* moves the
    child up to the ind node's parent (the edge decision is vacuous).  A
    mux node whose single positive child has probability 1 behaves the
    same way.  Ind nodes left with no edges disappear.
    """
    result = _fresh(pdoc)

    def visit(node: PNode) -> None:
        for child in list(node.children):
            visit(child)
        if node.kind != ORD:
            return
        new_children: list[PNode] = []
        for child in node.children:
            promoted = _promote(child)
            new_children.extend(promoted)
        for child in new_children:
            child._parent = node
        node._children = new_children

    def _promote(child: PNode) -> list[PNode]:
        if child.kind == IND:
            sure: list[PNode] = []
            keep_children: list[PNode] = []
            keep_probs: list[Fraction] = []
            for grandchild, p in zip(child.children, child.probs):
                if p == 1 and grandchild.kind == ORD:
                    grandchild._parent = None
                    sure.append(grandchild)
                else:
                    keep_children.append(grandchild)
                    keep_probs.append(p)
            child._children = keep_children
            child.probs = keep_probs
            if keep_children:
                return sure + [child]
            return sure
        if child.kind == MUX:
            positive = [
                (c, p) for c, p in zip(child.children, child.probs) if p > 0
            ]
            if len(positive) == 1 and positive[0][1] == 1 and positive[0][0].kind == ORD:
                lone = positive[0][0]
                lone._parent = None
                return [lone]
        return [child]

    visit(result.root)
    return PDocument(result.root, validate=False)


def collapse_ind_chains(pdoc: PDocument) -> PDocument:
    """Flatten ind-under-ind where it is *sound*.

    An inner ind node's children are mutually independent given the inner
    node is reached — but they are **correlated through its existence**:
    Pr(x ∧ y) = p·q_x·q_y ≠ (p·q_x)(p·q_y).  Flattening with product
    probabilities is therefore only valid when no correlation can arise:

    * the inner ind node has exactly one edge (footnote 3's stacked-chain
      case): the single grandchild moves up with probability p·q;
    * the outer edge has probability 1: the inner node is surely reached,
      so its edges are already top-level choices.

    (The reproduction's own differential tests are what caught the
    unsound general version of this rewrite.)
    """
    result = _fresh(pdoc)

    def visit(node: PNode) -> None:
        if node.kind == IND:
            changed = True
            while changed:
                changed = False
                children: list[PNode] = []
                probs: list[Fraction] = []
                for child, p in zip(node.children, node.probs):
                    collapsible = child.kind == IND and (
                        len(child.children) == 1 or p == 1
                    )
                    if collapsible:
                        for grandchild, q in zip(child.children, child.probs):
                            grandchild._parent = None
                            grandchild._parent = node
                            children.append(grandchild)
                            probs.append(p * q)
                        changed = True
                    else:
                        children.append(child)
                        probs.append(p)
                node._children = children
                node.probs = probs
        for child in node.children:
            visit(child)

    visit(result.root)
    return result


def exp_to_ind_mux(pdoc: PDocument) -> PDocument:
    """Rewrite product-form exp nodes as ind nodes.

    An exp distribution is *product-form* when it equals the independent
    combination of its per-child marginals (checked exactly).  Such nodes
    carry no correlation and become ind nodes; genuinely correlated exp
    nodes (the Section 7.3 extension) are left untouched.
    """
    result = _fresh(pdoc)

    def visit(node: PNode) -> None:
        for index, child in enumerate(list(node.children)):
            visit(child)
            if child.kind != EXP:
                continue
            marginals = [
                sum((q for s, q in child.subsets if i in s), Fraction(0))
                for i in range(len(child.children))
            ]
            if _is_product_form(child, marginals):
                replacement = PNode(IND)
                replacement.probs = list(marginals)
                replacement._children = child.children
                for grandchild in replacement._children:
                    grandchild._parent = replacement
                replacement._parent = node
                node._children[index] = replacement

    visit(result.root)
    return result


def _is_product_form(node: PNode, marginals: list[Fraction]) -> bool:
    explicit = {s: q for s, q in node.subsets}
    width = len(node.children)
    for subset in map(
        frozenset,
        itertools.chain.from_iterable(
            itertools.combinations(range(width), r) for r in range(width + 1)
        ),
    ):
        expected = Fraction(1)
        for i in range(width):
            expected *= marginals[i] if i in subset else 1 - marginals[i]
        if explicit.get(subset, Fraction(0)) != expected:
            return False
    return True


def normalize(pdoc: PDocument, max_rounds: int = 10) -> PDocument:
    """Apply all rewrites to fixpoint (bounded)."""
    current = pdoc
    for _ in range(max_rounds):
        before = _shape_key(current)
        current = prune_impossible(current)
        current = collapse_ind_chains(current)
        current = exp_to_ind_mux(current)
        current = inline_sure_edges(current)
        if _shape_key(current) == before:
            break
    current.validate()
    return current


def _shape_key(pdoc: PDocument):
    def key(node: PNode):
        return (
            node.kind,
            node.label,
            node.uid,
            tuple(node.probs),
            tuple(sorted((tuple(sorted(s)), q) for s, q in node.subsets)),
            tuple(key(child) for child in node.children),
        )

    return key(pdoc.root)
