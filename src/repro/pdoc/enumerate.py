"""Exact possible-world enumeration for p-documents.

This is the exponential ground-truth machinery used by the test-suite and
the baseline evaluator: it materializes the *entire* probability space of a
p-document as a map from worlds to probabilities.

A world is identified by the frozen set of ordinary-node uids it retains.
That identification is sound because (a) an ordinary node appears in a
random document iff all the distributional choices on its path select it,
so retained uid sets are downward-closed, and (b) the document parent of a
retained node (its lowest ordinary ancestor) never varies across worlds.
It also aggregates correctly: the paper notes (footnote 3) that two
different random processes may yield the same document; keying by uid set
merges their probabilities.
"""

from __future__ import annotations

from fractions import Fraction

from ..xmltree.document import Document
from .pdocument import EXP, IND, MUX, ORD, PDocument, PNode

WorldDist = dict[frozenset[int], Fraction]

_EMPTY_DIST: WorldDist = {frozenset(): Fraction(1)}


def _convolve(left: WorldDist, right: WorldDist) -> WorldDist:
    result: WorldDist = {}
    for s1, p1 in left.items():
        for s2, p2 in right.items():
            key = s1 | s2
            result[key] = result.get(key, Fraction(0)) + p1 * p2
    return result


def _scale_mix(parts: list[tuple[Fraction, WorldDist]]) -> WorldDist:
    result: WorldDist = {}
    for weight, dist in parts:
        if weight == 0:
            continue
        for s, p in dist.items():
            result[s] = result.get(s, Fraction(0)) + weight * p
    return result


def _forest_dist(node: PNode) -> WorldDist:
    """Distribution over uid sets of the document forest generated below
    (and including, for ordinary nodes) ``node``, given the node is reached."""
    if node.kind == ORD:
        dist = _EMPTY_DIST
        for child in node.children:
            dist = _convolve(dist, _forest_dist(child))
        return {s | {node.uid}: p for s, p in dist.items()}
    if node.kind == IND:
        dist = _EMPTY_DIST
        for index, child in enumerate(node.children):
            p = node.probs[index]
            child_dist = _scale_mix(
                [(p, _forest_dist(child)), (1 - p, _EMPTY_DIST)]
            )
            dist = _convolve(dist, child_dist)
        return dist
    if node.kind == MUX:
        total = sum(node.probs, Fraction(0))
        parts = [(1 - total, _EMPTY_DIST)] + [
            (node.probs[i], _forest_dist(child))
            for i, child in enumerate(node.children)
        ]
        return _scale_mix(parts)
    if node.kind == EXP:
        parts = []
        for subset, q in node.subsets:
            dist = _EMPTY_DIST
            for index in sorted(subset):
                dist = _convolve(dist, _forest_dist(node.children[index]))
            parts.append((q, dist))
        return _scale_mix(parts)
    raise AssertionError(f"unknown node kind {node.kind}")


def world_distribution(pdoc: PDocument) -> WorldDist:
    """Return {uid set: probability} over all worlds of the p-document.

    The size of the result is exponential in the number of distributional
    edges; intended for small inputs (tests, baselines).
    """
    return _forest_dist(pdoc.root)


def world_documents(pdoc: PDocument) -> list[tuple[Document, Fraction]]:
    """Return every world as a materialized :class:`Document` with its
    probability, ordered by decreasing probability (ties broken by size)."""
    dist = world_distribution(pdoc)
    worlds = [(pdoc.document_from_uids(uids), p) for uids, p in dist.items()]
    worlds.sort(key=lambda item: (-item[1], item[0].size()))
    return worlds


def world_probability(pdoc: PDocument, uids: frozenset[int]) -> Fraction:
    """Pr(P = d) for the world identified by ``uids`` — without enumerating
    the whole space.  Returns 0 for uid sets that are not reachable worlds."""

    def forest_prob(node: PNode, target: frozenset[int]) -> Fraction:
        """Probability that the forest below ``node`` retains exactly the
        target uids (restricted to the node's subtree), given it is reached."""
        if node.kind == ORD:
            if node.uid not in target:
                return Fraction(0)
            result = Fraction(1)
            for child in node.children:
                result *= forest_prob(child, target)
                if result == 0:
                    return result
            return result
        if node.kind == IND:
            result = Fraction(1)
            for index, child in enumerate(node.children):
                result *= _optional_prob(child, node.probs[index], target)
                if result == 0:
                    return result
            return result
        if node.kind == MUX:
            hit = [
                (node.probs[i], child)
                for i, child in enumerate(node.children)
                if _touches(child, target)
            ]
            if len(hit) > 1:
                return Fraction(0)
            if len(hit) == 1:
                prob, child = hit[0]
                return prob * forest_prob(child, target)
            total = sum(node.probs, Fraction(0))
            empty = 1 - total
            for i, child in enumerate(node.children):
                empty += node.probs[i] * forest_prob(child, frozenset())
            return empty
        if node.kind == EXP:
            result = Fraction(0)
            for subset, q in node.subsets:
                if q == 0:
                    continue
                term = q
                for index, child in enumerate(node.children):
                    if index in subset:
                        term *= forest_prob(child, target)
                    elif _touches(child, target):
                        term = Fraction(0)
                    if term == 0:
                        break
                result += term
            return result
        raise AssertionError(f"unknown node kind {node.kind}")

    def _optional_prob(child: PNode, p: Fraction, target: frozenset[int]) -> Fraction:
        if _touches(child, target):
            return p * forest_prob(child, target)
        # Child absent, or present but generating an empty forest.
        absent = 1 - p
        if child.kind != ORD and p > 0:
            absent += p * forest_prob(child, frozenset())
        return absent

    def _touches(node: PNode, target: frozenset[int]) -> bool:
        if node.kind == ORD and node.uid in target:
            return True
        return any(_touches(child, target) for child in node.children)

    universe = {node.uid for node in pdoc.ordinary_nodes()}
    if not uids <= universe:
        return Fraction(0)
    return forest_prob(pdoc.root, uids)


def node_probability(pdoc: PDocument, uid: int) -> Fraction:
    """Marginal probability that the ordinary node ``uid`` appears in a
    random document of P̃ (Example 3.2: the product of the probabilities on
    the path from the root)."""
    node = pdoc.node_by_uid(uid)
    probability = Fraction(1)
    current = node
    while current.parent is not None:
        parent = current.parent
        if parent.kind != ORD:
            index = next(i for i, c in enumerate(parent.children) if c is current)
            probability *= pdoc.edge_prob(parent, index)
        current = parent
    return probability
