"""Random-instance generation for p-documents (the two-step procedure of
Section 3.1): the *unconditioned* sampler.

Step 1 walks the p-document top-down; at each distributional node it
randomly selects a subset of the children (independently per child for
``ind``, at most one child for ``mux``, a whole subset at once for ``exp``)
and discards the rest.  Step 2 removes the distributional nodes, attaching
each surviving ordinary node to its lowest surviving ordinary ancestor.

Conditioned sampling — drawing from a PXDB, i.e. conditioned on a set of
constraints — is the much harder problem solved by
``repro.core.sampler`` (the paper's Figure 3).
"""

from __future__ import annotations

import random
from fractions import Fraction

from ..xmltree.document import DocNode, Document
from .pdocument import EXP, IND, MUX, ORD, PDocument, PNode


def _choose_children(node: PNode, rng: random.Random) -> list[PNode]:
    """Randomly choose the retained children of a distributional node."""
    if node.kind == IND:
        return [
            child
            for child, p in zip(node.children, node.probs)
            if _bernoulli(p, rng)
        ]
    if node.kind == MUX:
        roll = rng.random()
        cumulative = 0.0
        for child, p in zip(node.children, node.probs):
            cumulative += float(p)
            if roll < cumulative:
                return [child]
        return []
    if node.kind == EXP:
        roll = rng.random()
        cumulative = 0.0
        for subset, q in node.subsets:
            cumulative += float(q)
            if roll < cumulative:
                return [node.children[i] for i in sorted(subset)]
        # Floating-point slack: fall back to the last subset.
        return [node.children[i] for i in sorted(node.subsets[-1][0])]
    raise ValueError("_choose_children applies to distributional nodes only")


def _bernoulli(p: Fraction, rng: random.Random) -> bool:
    if p == 0:
        return False
    if p == 1:
        return True
    return rng.random() < float(p)


def random_instance(pdoc: PDocument, rng: random.Random | None = None) -> Document:
    """Draw one random document of P̃ (NOT conditioned on any constraints)."""
    rng = rng if rng is not None else random.Random()

    def build(pnode: PNode) -> DocNode:
        doc_node = DocNode(pnode.label, uid=pnode.uid)
        attach_forest(pnode, doc_node)
        return doc_node

    def attach_forest(pnode: PNode, doc_parent: DocNode) -> None:
        for child in pnode.children if pnode.kind == ORD else _choose_children(pnode, rng):
            if child.kind == ORD:
                doc_parent.add_child(build(child))
            else:
                attach_forest(child, doc_parent)
        # Distributional nodes vanish (step 2): their surviving ordinary
        # descendants hang directly off doc_parent.

    return Document(build(pdoc.root))


def random_world(pdoc: PDocument, rng: random.Random | None = None) -> frozenset[int]:
    """Draw a random world, returned as its uid set."""
    return random_instance(pdoc, rng).uid_set()
