"""XML (de)serialization for p-documents (ProTDB-style markup).

Distributional nodes are written as ``<ind>``, ``<mux>`` and ``<exp>``
elements; each child of an ``ind``/``mux`` element carries a ``p``
attribute with its exact rational probability (e.g. ``p="7/10"``).  An
``exp`` element lists its children followed by ``<choice subset="0 2"
p="1/4"/>`` elements giving the explicit distribution over child-index
subsets.  Ordinary nodes use the same generic node form as documents
(``repro.xmltree.serialize``), so any label round-trips.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from fractions import Fraction

from .pdocument import EXP, IND, MUX, ORD, PDocument, PNode

_DIST_TAGS = {IND: "ind", MUX: "mux", EXP: "exp"}
_TAG_KINDS = {tag: kind for kind, tag in _DIST_TAGS.items()}


def _to_element(node: PNode, keep_uids: bool) -> ET.Element:
    if node.kind == ORD:
        attrs = {"t": "s" if isinstance(node.label, str) else "n", "l": str(node.label)}
        if keep_uids:
            attrs["u"] = str(node.uid)
        element = ET.Element("n", attrs)
    else:
        element = ET.Element(_DIST_TAGS[node.kind])
    for index, child in enumerate(node.children):
        child_element = _to_element(child, keep_uids)
        if node.kind in (IND, MUX):
            child_element.set("p", str(node.probs[index]))
        element.append(child_element)
    if node.kind == EXP:
        for subset, q in node.subsets:
            choice = ET.Element(
                "choice", {"subset": " ".join(map(str, sorted(subset))), "p": str(q)}
            )
            element.append(choice)
    return element


def pdocument_to_xml(pdoc: PDocument, keep_uids: bool = False) -> str:
    """Serialize a p-document to an XML string."""
    element = _to_element(pdoc.root, keep_uids)
    ET.indent(element)
    return ET.tostring(element, encoding="unicode")


def _parse_label(element: ET.Element):
    label = element.get("l")
    if label is None:
        raise ValueError("ordinary p-document element is missing its 'l' attribute")
    if element.get("t") == "n":
        value = Fraction(label)
        return int(value) if value.denominator == 1 else value
    return label


def _from_element(element: ET.Element) -> PNode:
    if element.tag == "n":
        uid_text = element.get("u")
        node = PNode(ORD, _parse_label(element), uid=int(uid_text) if uid_text else None)
    elif element.tag in _TAG_KINDS:
        node = PNode(_TAG_KINDS[element.tag])
    else:
        raise ValueError(f"unexpected element <{element.tag}> in p-document XML")

    subsets: list[tuple[frozenset[int], Fraction]] = []
    for child_element in element:
        if child_element.tag == "choice":
            indices = frozenset(int(i) for i in (child_element.get("subset") or "").split())
            subsets.append((indices, Fraction(child_element.get("p", "0"))))
            continue
        child = _from_element(child_element)
        node._attach(child)
        if node.kind in (IND, MUX):
            prob_text = child_element.get("p")
            if prob_text is None:
                raise ValueError("child of ind/mux element is missing its 'p' attribute")
            node.probs.append(Fraction(prob_text))
    if node.kind == EXP:
        node.set_exp_distribution((sorted(s), q) for s, q in subsets)
    return node


def pdocument_from_xml(text: str) -> PDocument:
    """Parse a p-document serialized by :func:`pdocument_to_xml`."""
    return PDocument(_from_element(ET.fromstring(text)))
