"""PrXML^{cie}: the probabilistic-tree model of Abiteboul & Senellart
(Section 7.3's second half).

In this model, probabilistic *events* e1, e2, … are global independent
Boolean variables, and every ``cie`` distributional node attaches to each
child a conjunction of event literals (e or ¬e).  A child is retained iff
its conjunction evaluates to true under the sampled event assignment.
Because the same event can guard nodes in distant parts of the tree, this
expresses arbitrary correlations — which is exactly why it is intractable:
the paper notes that query evaluation for non-trivial Boolean tree queries
is #P-complete here, and that adding cie features to the PXDB model makes
even *approximating* query evaluation NP-hard (deciding positivity of
"every A-labeled node has a child" is NP-complete).

This module implements the model faithfully — with, of course, only
exponential evaluation (:func:`cie_world_distribution`) and a reduction
witnessing the hardness claim (:func:`three_sat_reduction`, from 3-SAT:
the constraint "every clause node has a child" has positive probability
iff the formula is satisfiable).  It serves as the expressiveness/
tractability contrast to the PXDB approach (experiment E7's second half).
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Iterable, Sequence

from ..xmltree import tree
from ..xmltree.document import DocNode, Document

ORD = "ord"
CIE = "cie"

# A literal: (event name, polarity). (e, True) means "e", (e, False) "¬e".
Literal = tuple[str, bool]


class CieNode:
    """A node of a PrXML^{cie} tree: ordinary (labeled) or ``cie``.

    A cie node stores, per child, a conjunction of event literals; the
    child survives iff all its literals hold under the event assignment.
    """

    __slots__ = ("kind", "label", "uid", "conditions", "_children", "_parent")

    def __init__(self, kind: str, label=None, uid: int | None = None):
        from ..xmltree.document import fresh_uid

        if kind not in (ORD, CIE):
            raise ValueError(f"unknown cie-node kind {kind!r}")
        if (kind == ORD) != (label is not None):
            raise ValueError("ordinary nodes carry a label; cie nodes do not")
        self.kind = kind
        self.label = label
        self.uid = (fresh_uid() if uid is None else uid) if kind == ORD else None
        self.conditions: list[tuple[Literal, ...]] = []
        self._children: list[CieNode] = []
        self._parent: CieNode | None = None

    @property
    def children(self) -> list["CieNode"]:
        return self._children

    @property
    def parent(self) -> "CieNode | None":
        return self._parent

    def ordinary(self, label) -> "CieNode":
        if self.kind != ORD:
            raise ValueError("use add_child on cie nodes")
        node = CieNode(ORD, label)
        node._parent = self
        self._children.append(node)
        return node

    def cie(self) -> "CieNode":
        if self.kind != ORD:
            raise ValueError("cie nodes cannot nest directly in this builder")
        node = CieNode(CIE)
        node._parent = self
        self._children.append(node)
        return node

    def add_child(self, child: "CieNode | object", literals: Iterable[Literal]) -> "CieNode":
        """Attach a child below this cie node, guarded by the literals."""
        if self.kind != CIE:
            raise ValueError("add_child applies to cie nodes")
        node = child if isinstance(child, CieNode) else CieNode(ORD, child)
        node._parent = self
        self._children.append(node)
        self.conditions.append(tuple(literals))
        return node


class CieDocument:
    """A PrXML^{cie} tree plus the event probabilities."""

    __slots__ = ("root", "event_probs")

    def __init__(self, root: CieNode, event_probs: dict[str, Fraction]):
        if root.kind != ORD:
            raise ValueError("the root must be ordinary")
        self.root = root
        self.event_probs = {name: Fraction(p) for name, p in event_probs.items()}
        for name, p in self.event_probs.items():
            if not 0 <= p <= 1:
                raise ValueError(f"event {name!r} probability {p} outside [0, 1]")
        self._check_events()

    def _check_events(self) -> None:
        for node in tree.preorder(self.root):
            if node.kind != CIE:
                continue
            for literals in node.conditions:
                for event, _ in literals:
                    if event not in self.event_probs:
                        raise ValueError(f"undeclared event {event!r}")

    def events(self) -> list[str]:
        return sorted(self.event_probs)

    def instantiate(self, assignment: dict[str, bool]) -> Document:
        """The document induced by a full event assignment."""

        def build(node: CieNode) -> DocNode:
            doc_node = DocNode(node.label, uid=node.uid)
            attach(node, doc_node)
            return doc_node

        def attach(node: CieNode, doc_parent: DocNode) -> None:
            if node.kind == ORD:
                for child in node.children:
                    dispatch(child, doc_parent)
                return
            for child, literals in zip(node.children, node.conditions):
                if all(assignment[event] == polarity for event, polarity in literals):
                    dispatch(child, doc_parent)

        def dispatch(child: CieNode, doc_parent: DocNode) -> None:
            if child.kind == ORD:
                doc_parent.add_child(build(child))
            else:
                attach(child, doc_parent)

        return Document(build(self.root))


def cie_world_distribution(cdoc: CieDocument) -> dict[frozenset[int], Fraction]:
    """The exact world distribution — Θ(2^#events); the model offers no
    polynomial alternative (that is its point here)."""
    events = cdoc.events()
    distribution: dict[frozenset[int], Fraction] = {}
    for values in itertools.product((False, True), repeat=len(events)):
        assignment = dict(zip(events, values))
        weight = Fraction(1)
        for event, value in assignment.items():
            p = cdoc.event_probs[event]
            weight *= p if value else 1 - p
        if weight == 0:
            continue
        key = cdoc.instantiate(assignment).uid_set()
        distribution[key] = distribution.get(key, Fraction(0)) + weight
    return distribution


def cie_probability(cdoc: CieDocument, formula) -> Fraction:
    """Pr(P ⊨ γ) over a PrXML^{cie} tree, by exhaustive evaluation."""
    from ..core.formulas import DocumentEvaluator

    total = Fraction(0)
    worlds = cie_world_distribution(cdoc)
    for uids, weight in worlds.items():
        document = _document_from_uids(cdoc, uids)
        if DocumentEvaluator().satisfies(document.root, formula):
            total += weight
    return total


def _document_from_uids(cdoc: CieDocument, uids: frozenset[int]) -> Document:
    def build(node: CieNode) -> DocNode | None:
        if node.kind == ORD and node.uid not in uids:
            return None
        doc_node = DocNode(node.label, uid=node.uid)

        def attach(inner: CieNode) -> None:
            for child in inner.children:
                if child.kind == ORD:
                    built = build(child)
                    if built is not None:
                        doc_node.add_child(built)
                else:
                    attach(child)

        attach(node)
        return doc_node

    built = build(cdoc.root)
    if built is None:
        raise ValueError("uid set does not contain the root")
    return Document(built)


def three_sat_reduction(
    clauses: Sequence[Sequence[tuple[str, bool]]],
) -> CieDocument:
    """3-SAT ↦ PrXML^{cie}: one event per variable (probability 1/2); one
    A-labeled node per clause; under each clause an independent child per
    literal, guarded by that literal.

    The Boolean constraint "every node labeled A has a child" holds with
    positive probability iff the formula is satisfiable — the paper's
    witness that the combined model loses even approximability.
    """
    variables = sorted({name for clause in clauses for name, _ in clause})
    root = CieNode(ORD, "phi")
    for index, clause in enumerate(clauses):
        clause_node = root.ordinary("A")
        guard = clause_node.cie()
        for literal in clause:
            guard.add_child(f"lit-{index}", [literal])
    return CieDocument(root, {name: Fraction(1, 2) for name in variables})


def every_a_has_a_child_formula():
    """The hard constraint of Section 7.3: every A-labeled node has a child."""
    from ..core.formulas import CountAtom, SFormula
    from ..xmltree.pattern import pattern
    from ..xmltree.predicates import LabelEquals

    witness, root = pattern()
    a_node = root.descendant(LabelEquals("A"))
    childless = SFormula(
        witness,
        a_node,
        {id(a_node): CountAtom([_any_child_selector()], "=", 0)},
    )
    return CountAtom([childless], "=", 0)


def _any_child_selector():
    from ..core.formulas import SFormula
    from ..xmltree.pattern import pattern

    p, root = pattern()
    child = root.child()
    return SFormula(p, child)
