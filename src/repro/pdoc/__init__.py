"""P-documents: probabilistic XML trees (PrXML^{ind,mux,exp}).

Implements Section 3.1 of the paper plus the ``exp`` extension of Section
7.3, with exact-rational probabilities, possible-world enumeration (the
exponential ground truth used by tests and baselines) and unconditioned
random-instance generation.
"""

from .enumerate import (
    WorldDist,
    node_probability,
    world_distribution,
    world_documents,
    world_probability,
)
from .generate import random_instance, random_world
from .pdocument import DIST_KINDS, EXP, IND, MUX, ORD, Edge, PDocument, PNode, pdocument
from .serialize import pdocument_from_xml, pdocument_to_xml
from .transform import (
    collapse_ind_chains,
    exp_to_ind_mux,
    inline_sure_edges,
    normalize,
    prune_impossible,
)

__all__ = [
    "DIST_KINDS",
    "EXP",
    "Edge",
    "IND",
    "MUX",
    "ORD",
    "PDocument",
    "PNode",
    "WorldDist",
    "node_probability",
    "pdocument",
    "pdocument_from_xml",
    "pdocument_to_xml",
    "random_instance",
    "random_world",
    "world_distribution",
    "world_documents",
    "world_probability",
    "collapse_ind_chains",
    "exp_to_ind_mux",
    "inline_sure_edges",
    "normalize",
    "prune_impossible",
]
