"""Twig-pattern matching over (deterministic) documents — M(T, d) of Sec. 2.3.

Three entry points, all parameterized by an optional ``extra_test`` hook so
that the core package can reuse them for *augmented* patterns (Definition
5.1), where every pattern node additionally demands that a c-formula hold
on the subtree of its image:

* :func:`match_bits`      — for every pattern node m, the set of document
  nodes v such that the sub-pattern rooted at m matches with m ↦ v.  This
  is the standard polynomial twig-join bottom-up pass.
* :func:`has_match`       — Boolean matching: M(T, d) ≠ ∅.
* :func:`selected_set`    — σ(d) for a selector σ = π_n T: the set of nodes
  selected by projecting on n (computed without enumerating matches, via a
  walk of the spine automaton; polynomial).
* :func:`enumerate_matches` — the full set of matches as mappings, used by
  query evaluation to produce answer tuples.

A match maps the pattern root to the root of the document being evaluated
(condition 1 of the paper's match definition); evaluating a selector on a
subtree d^v simply passes v as ``root``.
"""

from __future__ import annotations

from typing import Callable, Iterator

from . import tree
from .document import DocNode
from .pattern import CHILD, DESC, Pattern, PatternNode

ExtraTest = Callable[[PatternNode, DocNode], bool]


def _passes(pnode: PatternNode, dnode: DocNode, extra_test: ExtraTest | None) -> bool:
    if not pnode.predicate.matches(dnode):
        return False
    return extra_test is None or extra_test(pnode, dnode)


def match_bits(
    pattern: Pattern, root: DocNode, extra_test: ExtraTest | None = None
) -> dict[int, set[int]]:
    """Return {id(pattern node) -> {id(doc node) matched at}} over subtree(root).

    ``bits[id(m)]`` contains ``id(v)`` iff the sub-pattern rooted at m has a
    match mapping m to v (within the subtree of ``root``).
    """
    doc_nodes = list(tree.postorder(root))
    pattern_nodes = list(pattern.nodes())
    bits: dict[int, set[int]] = {id(m): set() for m in pattern_nodes}
    # below[id(m)] = doc nodes v such that some node in subtree(v) matches m.
    below: dict[int, set[int]] = {id(m): set() for m in pattern_nodes}

    for m in reversed(pattern_nodes):  # children of m processed before m
        m_bits = bits[id(m)]
        m_below = below[id(m)]
        for v in doc_nodes:  # postorder: v's children already in `below`
            ok = _passes(m, v, extra_test)
            if ok:
                for mc in m.children:
                    if mc.axis == CHILD:
                        if not any(id(w) in bits[id(mc)] for w in v.children):
                            ok = False
                            break
                    else:  # DESC: a proper descendant of v
                        if not any(id(w) in below[id(mc)] for w in v.children):
                            ok = False
                            break
            if ok:
                m_bits.add(id(v))
            if ok or any(id(w) in m_below for w in v.children):
                m_below.add(id(v))
    return bits


def has_match(pattern: Pattern, root: DocNode, extra_test: ExtraTest | None = None) -> bool:
    """Decide M(T, d) ≠ ∅ for the document rooted at ``root``."""
    bits = match_bits(pattern, root, extra_test)
    return id(root) in bits[id(pattern.root)]


def selected_set(
    pattern: Pattern,
    projected: PatternNode,
    root: DocNode,
    extra_test: ExtraTest | None = None,
) -> set[DocNode]:
    """Compute σ(d) for the selector σ = π_projected(pattern) on subtree(root).

    A document node u is selected iff some match maps ``projected`` to u.
    The computation decomposes the selector into its spine (root-to-n path)
    and side branches: u is selected iff the spine embeds into the document
    path root..u such that every spine node's predicate, extra test and side
    branches are satisfied at its image.  A downward walk carrying the set
    of embeddable spine prefixes decides this in one pass.
    """
    spine = pattern.spine_to(projected)
    branches = pattern.side_branches(spine)
    bits = match_bits(pattern, root, extra_test)

    def local_ok(i: int, v: DocNode) -> bool:
        """The spine node at position i can be placed at v (ignoring the
        spine child, which the walk itself handles)."""
        if not _passes(spine[i], v, extra_test):
            return False
        for branch_root in branches[i]:
            branch_bits = bits[id(branch_root)]
            if branch_root.axis == CHILD:
                if not any(id(w) in branch_bits for w in v.children):
                    return False
            else:
                if not _under(branch_bits, v):
                    return False
        return True

    def _under(branch_bits: set[int], v: DocNode) -> bool:
        return any(id(u) in branch_bits for u in tree.proper_descendants(v))

    last = len(spine) - 1
    selected: set[DocNode] = set()
    if not local_ok(0, root):
        return selected
    # State: (placed, pending) — spine positions placed exactly at the
    # current node / placed at-or-above with an outgoing descendant edge.
    placed0 = frozenset([0])
    pending0 = frozenset(i for i in placed0 if i < last and spine[i + 1].axis == DESC)
    if last == 0:
        selected.add(root)

    stack: list[tuple[DocNode, frozenset[int], frozenset[int]]] = [(root, placed0, pending0)]
    while stack:
        v, placed, pending = stack.pop()
        for w in v.children:
            new_placed = frozenset(
                i
                for i in range(1, last + 1)
                if (
                    (spine[i].axis == CHILD and i - 1 in placed)
                    or (spine[i].axis == DESC and i - 1 in pending)
                )
                and local_ok(i, w)
            )
            new_pending = pending | frozenset(
                i for i in new_placed if i < last and spine[i + 1].axis == DESC
            )
            if last in new_placed:
                selected.add(w)
            if new_placed or new_pending:
                stack.append((w, new_placed, new_pending))
    return selected


def enumerate_matches(
    pattern: Pattern, root: DocNode, extra_test: ExtraTest | None = None
) -> Iterator[dict[int, DocNode]]:
    """Yield every match φ ∈ M(T, d) as a dict {id(pattern node): doc node}.

    Uses :func:`match_bits` to prune; the number of matches can of course
    be exponential in the pattern size, as in any twig-join system.
    """
    bits = match_bits(pattern, root, extra_test)
    if id(root) not in bits[id(pattern.root)]:
        return

    assignment: dict[int, DocNode] = {}

    def candidates(pnode: PatternNode, base: DocNode) -> Iterator[DocNode]:
        pool = bits[id(pnode)]
        if pnode.axis == CHILD:
            for w in base.children:
                if id(w) in pool:
                    yield w
        else:
            for w in tree.proper_descendants(base):
                if id(w) in pool:
                    yield w

    def extend(pnodes: list[PatternNode], index: int) -> Iterator[dict[int, DocNode]]:
        if index == len(pnodes):
            yield dict(assignment)
            return
        pnode = pnodes[index]
        base = assignment[id(pnode.parent)]
        for w in candidates(pnode, base):
            assignment[id(pnode)] = w
            yield from extend(pnodes, index + 1)
            del assignment[id(pnode)]

    ordered = list(pattern.nodes())  # preorder: parents before children
    assignment[id(pattern.root)] = root
    yield from extend(ordered[1:], 0)


def count_matches(pattern: Pattern, root: DocNode, extra_test: ExtraTest | None = None) -> int:
    """Return |M(T, d)| for the document rooted at ``root``."""
    return sum(1 for _ in enumerate_matches(pattern, root, extra_test))
