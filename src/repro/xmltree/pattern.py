"""Twig patterns: trees with child/descendant edges and label predicates.

This is the pattern language of Section 2.3 of the paper.  A pattern is a
tree; each node has a predicate (``repro.xmltree.predicates``) and each
edge is either a *child* edge (single line in the paper's figures) or a
*descendant* edge (double line).  A match maps the pattern root to the
document root, respects predicates and maps child/descendant edges onto
parent/proper-ancestor relationships (see ``repro.xmltree.matching``).

Patterns are plain structural data; *augmented* patterns — which attach a
c-formula to every node (Definition 5.1) — live in ``repro.core.formulas``
and reference these nodes.
"""

from __future__ import annotations

from typing import Iterator

from . import tree
from .predicates import ANY, Predicate

CHILD = "child"
DESC = "desc"
AXES = (CHILD, DESC)


class PatternNode:
    """A node of a twig pattern: predicate + edge type from its parent."""

    __slots__ = ("predicate", "axis", "name", "_children", "_parent")

    def __init__(self, predicate: Predicate = ANY, axis: str = CHILD, name: str | None = None):
        if axis not in AXES:
            raise ValueError(f"axis must be one of {AXES}, got {axis!r}")
        self.predicate = predicate
        self.axis = axis  # edge type from parent; meaningless at the root
        self.name = name  # optional human-readable tag for debugging
        self._children: list[PatternNode] = []
        self._parent: PatternNode | None = None

    @property
    def children(self) -> list["PatternNode"]:
        return self._children

    @property
    def parent(self) -> "PatternNode | None":
        return self._parent

    def add_child(self, child: "PatternNode") -> "PatternNode":
        if child._parent is not None:
            raise ValueError("pattern node already has a parent")
        child._parent = self
        self._children.append(child)
        return child

    def child(self, predicate: Predicate = ANY, name: str | None = None) -> "PatternNode":
        """Create and attach a child-edge child; returns the new node."""
        return self.add_child(PatternNode(predicate, CHILD, name))

    def descendant(self, predicate: Predicate = ANY, name: str | None = None) -> "PatternNode":
        """Create and attach a descendant-edge child; returns the new node."""
        return self.add_child(PatternNode(predicate, DESC, name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = self.name or repr(self.predicate)
        return f"PatternNode({tag}, axis={self.axis})"


class Pattern:
    """A twig pattern T (Section 2.3), wrapping the root pattern node.

    ``nodes()`` yields a fixed preorder; the evaluation compiler relies on
    node identity, so pattern objects must not be mutated once used.
    """

    __slots__ = ("root",)

    def __init__(self, root: PatternNode):
        self.root = root

    def nodes(self) -> Iterator[PatternNode]:
        return tree.preorder(self.root)

    def size(self) -> int:
        return tree.subtree_size(self.root)

    def contains(self, node: PatternNode) -> bool:
        return any(n is node for n in self.nodes())

    def spine_to(self, node: PatternNode) -> list[PatternNode]:
        """Return the root-to-``node`` path (the selector's *spine*).

        The evaluation algorithm decomposes a selector π_n T into the spine
        (the path from root(T) to n) and the side branches hanging off it.
        """
        if not self.contains(node):
            raise ValueError("node does not belong to this pattern")
        return tree.path_between(self.root, node)

    def side_branches(self, spine: list[PatternNode]) -> dict[int, list[PatternNode]]:
        """Map each spine position to its non-spine children (branch roots)."""
        on_spine = {id(n) for n in spine}
        result: dict[int, list[PatternNode]] = {}
        for i, spine_node in enumerate(spine):
            result[i] = [c for c in spine_node.children if id(c) not in on_spine]
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pattern(size={self.size()})"


def pattern(predicate: Predicate = ANY, name: str | None = None) -> tuple[Pattern, PatternNode]:
    """Create a one-node pattern; returns (pattern, root node).

    Typical usage builds the twig top-down::

        T, root = pattern(label('university'))
        dep = root.child(label('department'), name='dep')
        member = dep.descendant(suffix('professor'))
    """
    root = PatternNode(predicate, CHILD, name)
    return Pattern(root), root


def trivial_pattern() -> tuple[Pattern, PatternNode]:
    """The trivial pattern T0: a single node with predicate **true** (Sec 5.1)."""
    return pattern(ANY, name="r")
