"""Label predicates attached to pattern nodes (paper, Section 2.3).

Each pattern node carries a predicate ``cond : Σ → {true, false}``.  The
paper's Figure 1 uses three predicate forms, all provided here:

* ``*``      — :class:`AnyLabel`, always true;
* ``= x``    — :class:`LabelEquals`, exact label equality;
* ``~ x``    — :class:`LabelSuffix`, ``x`` is a suffix of the label.

Section 7.2 adds numeric labels; :class:`NumericCompare` and
:class:`IsNumeric` support the MIN/MAX rewriting of Theorem 7.1.  Finally,
:class:`NodeIs` implements the "extended labels" device of Section 5 that
reduces non-Boolean query evaluation to Boolean queries: it pins a pattern
node to one specific document node by uid.

Predicates receive the *node* (anything with ``label`` and ``uid``
attributes) rather than the bare label, which is what makes ``NodeIs``
expressible without altering the data model.
"""

from __future__ import annotations

from fractions import Fraction

from .. import ops
from .document import Label


def is_numeric_label(label: Label) -> bool:
    """The paper's ``numeric(l)`` test: is the label a rational number?"""
    return isinstance(label, (int, Fraction)) and not isinstance(label, bool)


def numeric_value(label: Label) -> Fraction:
    """Return the label's numeric value; caller must check numeric first."""
    return Fraction(label)


class Predicate:
    """Base class for label predicates; subclasses implement ``matches``.

    ``label_only`` declares that ``matches`` inspects nothing but the
    node's *label* — never its uid or surroundings.  The evaluator may
    then share work across structurally identical subtrees (its
    signature cache); :class:`NodeIs` is the one built-in that must set
    it to False.  Custom predicates default to False, which is always
    sound.
    """

    __slots__ = ()

    label_only: bool = False

    def matches(self, node) -> bool:
        raise NotImplementedError

    def is_label_only(self) -> bool:
        """Whether this predicate (recursively) reads only labels."""
        return self.label_only

    # Combinator sugar -----------------------------------------------------
    def __and__(self, other: "Predicate") -> "Predicate":
        return PredAnd((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return PredOr((self, other))

    def __invert__(self) -> "Predicate":
        return PredNot(self)


class AnyLabel(Predicate):
    """The predicate ``*``: true for every label."""

    label_only = True

    __slots__ = ()

    def matches(self, node) -> bool:
        return True

    def __repr__(self) -> str:
        return "*"


ANY = AnyLabel()


class LabelEquals(Predicate):
    """The predicate ``= x``: the label equals ``x``."""

    label_only = True

    __slots__ = ("value",)

    def __init__(self, value: Label):
        self.value = value

    def matches(self, node) -> bool:
        return node.label == self.value

    def __repr__(self) -> str:
        return f"={self.value!r}"


class LabelSuffix(Predicate):
    """The predicate ``~ x``: ``x`` is a suffix of the (string) label."""

    label_only = True

    __slots__ = ("suffix",)

    def __init__(self, suffix: str):
        self.suffix = suffix

    def matches(self, node) -> bool:
        return isinstance(node.label, str) and node.label.endswith(self.suffix)

    def __repr__(self) -> str:
        return f"~{self.suffix!r}"


class IsNumeric(Predicate):
    """True iff the label is numeric (paper's ``numeric(l)``)."""

    label_only = True

    __slots__ = ()

    def matches(self, node) -> bool:
        return is_numeric_label(node.label)

    def __repr__(self) -> str:
        return "numeric()"


class NumericCompare(Predicate):
    """True iff the label is numeric and ``label op value`` holds.

    This is the predicate refinement behind the MIN/MAX-to-CNT rewriting
    (Theorem 7.1): e.g. ``MAX(σ) > R`` becomes "σ selects a node whose
    label is numeric and > R".
    """

    label_only = True

    __slots__ = ("op", "value")

    def __init__(self, op: str, value):
        self.op = ops.normalize(op)
        self.value = Fraction(value)

    def matches(self, node) -> bool:
        if not is_numeric_label(node.label):
            return False
        return ops.apply(self.op, numeric_value(node.label), self.value)

    def __repr__(self) -> str:
        return f"numeric{self.op}{self.value}"


class NodeIs(Predicate):
    """True only for the document node with the given uid.

    Used by query evaluation (EVAL⟨Q,C⟩) to bind the projected pattern
    nodes of a candidate answer tuple — the paper's "extension of labels".
    """

    __slots__ = ("uid",)

    def __init__(self, uid: int):
        self.uid = uid

    def matches(self, node) -> bool:
        return node.uid == self.uid

    def __repr__(self) -> str:
        return f"node#{self.uid}"


class PredAnd(Predicate):
    """Conjunction of predicates."""

    __slots__ = ("parts",)

    def __init__(self, parts):
        self.parts = tuple(parts)

    def is_label_only(self) -> bool:
        return all(part.is_label_only() for part in self.parts)

    def matches(self, node) -> bool:
        return all(part.matches(node) for part in self.parts)

    def __repr__(self) -> str:
        return "(" + " & ".join(map(repr, self.parts)) + ")"


class PredOr(Predicate):
    """Disjunction of predicates."""

    __slots__ = ("parts",)

    def __init__(self, parts):
        self.parts = tuple(parts)

    def is_label_only(self) -> bool:
        return all(part.is_label_only() for part in self.parts)

    def matches(self, node) -> bool:
        return any(part.matches(node) for part in self.parts)

    def __repr__(self) -> str:
        return "(" + " | ".join(map(repr, self.parts)) + ")"


class PredNot(Predicate):
    """Negation of a predicate."""

    __slots__ = ("inner",)

    def __init__(self, inner: Predicate):
        self.inner = inner

    def is_label_only(self) -> bool:
        return self.inner.is_label_only()

    def matches(self, node) -> bool:
        return not self.inner.matches(node)

    def __repr__(self) -> str:
        return f"!{self.inner!r}"


def label(value: Label) -> Predicate:
    """Shorthand for :class:`LabelEquals`."""
    return LabelEquals(value)


def suffix(value: str) -> Predicate:
    """Shorthand for :class:`LabelSuffix`."""
    return LabelSuffix(value)
