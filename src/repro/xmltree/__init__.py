"""Deterministic XML substrate: trees, documents, twig patterns, matching.

This package implements Section 2 of the paper (the deterministic data
model): directed unordered labeled trees, documents, twig patterns with
child/descendant edges and label predicates, and the match semantics
M(T, d).  Everything probabilistic builds on top of it.
"""

from .document import DocNode, Document, Label, canonical_key, doc
from .matching import (
    count_matches,
    enumerate_matches,
    has_match,
    match_bits,
    selected_set,
)
from .parser import (
    PatternSyntaxError,
    parse_boolean_pattern,
    parse_pattern,
    parse_selector,
)
from .pattern import CHILD, DESC, Pattern, PatternNode, pattern, trivial_pattern
from .predicates import (
    ANY,
    AnyLabel,
    IsNumeric,
    LabelEquals,
    LabelSuffix,
    NodeIs,
    NumericCompare,
    Predicate,
    is_numeric_label,
    label,
    numeric_value,
    suffix,
)
from .serialize import document_from_xml, document_to_xml

__all__ = [
    "ANY",
    "AnyLabel",
    "CHILD",
    "DESC",
    "DocNode",
    "Document",
    "IsNumeric",
    "Label",
    "LabelEquals",
    "LabelSuffix",
    "NodeIs",
    "NumericCompare",
    "Pattern",
    "PatternNode",
    "PatternSyntaxError",
    "Predicate",
    "canonical_key",
    "count_matches",
    "doc",
    "document_from_xml",
    "document_to_xml",
    "enumerate_matches",
    "has_match",
    "is_numeric_label",
    "label",
    "match_bits",
    "numeric_value",
    "parse_boolean_pattern",
    "parse_pattern",
    "parse_selector",
    "pattern",
    "selected_set",
    "suffix",
    "trivial_pattern",
]
