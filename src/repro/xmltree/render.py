"""Rendering patterns and selectors back to the textual syntax.

The inverse of ``repro.xmltree.parser``: :func:`pattern_to_string` emits a
string that re-parses to an equivalent pattern (same matches on every
document), which the round-trip tests verify.  Used by the constraint
renderer and anywhere patterns must be shown to people.

The spine of a projected pattern is rendered as the main path and the
remaining children as ``[...]`` filters, mirroring how the parser builds
trees; labels that could be misread (whitespace, separators, numerals
meant as strings) are quoted.
"""

from __future__ import annotations

import re
from fractions import Fraction

from .parser import _BARE_STOP  # the characters that end a bare token
from .pattern import DESC, Pattern, PatternNode
from .predicates import (
    AnyLabel,
    LabelEquals,
    LabelSuffix,
    Predicate,
)


class RenderError(ValueError):
    """Raised for patterns whose predicates have no textual form."""


_SAFE_BARE = re.compile(r"^[^\s'\"]+$")


def _quote(text: str) -> str:
    if "'" not in text:
        return f"'{text}'"
    if '"' not in text:
        return f'"{text}"'
    raise RenderError(f"label {text!r} mixes both quote characters")


def _render_label(value) -> str:
    if isinstance(value, (int, Fraction)) and not isinstance(value, bool):
        text = str(value)
        return text if "/" not in text else _quote(text)
    text = str(value)
    if not text or any(ch in _BARE_STOP or ch.isspace() for ch in text):
        return _quote(text)
    # A bare token that parses as a number must be quoted to stay a string.
    try:
        Fraction(text)
    except (ValueError, ZeroDivisionError):
        return text
    return _quote(text)


def render_predicate(predicate: Predicate) -> str:
    """The textual node test for a predicate (raises for exotic ones)."""
    if isinstance(predicate, AnyLabel):
        return "*"
    if isinstance(predicate, LabelEquals):
        return _render_label(predicate.value)
    if isinstance(predicate, LabelSuffix):
        return "~" + _render_label(predicate.suffix)
    raise RenderError(
        f"predicate {predicate!r} has no textual form "
        f"(only *, label equality and ~suffix are part of the syntax)"
    )


def _render_node(
    node: PatternNode,
    projected: PatternNode | None,
    spine_child: PatternNode | None,
) -> str:
    marker = "$" if node is projected else ""
    text = marker + render_predicate(node.predicate)
    for child in node.children:
        if child is spine_child:
            continue
        text += "[" + _render_subtree(child, projected) + "]"
    return text


def _render_subtree(node: PatternNode, projected: PatternNode | None) -> str:
    prefix = "//" if node.axis == DESC else ""
    text = prefix + _render_node(node, projected, None)
    # Children of a branch are all rendered as nested filters, except we
    # may chain one child as the continuing path for readability.
    return text


def pattern_to_string(
    pattern: Pattern, projected: PatternNode | None = None
) -> str:
    """Render a pattern (optionally with a ``$``-marked projected node).

    When a projected node is given, the root-to-projected spine becomes
    the main path; otherwise the leftmost root-to-leaf path does.
    """
    if projected is not None and not pattern.contains(projected):
        raise ValueError("projected node does not belong to the pattern")
    spine = (
        pattern.spine_to(projected)
        if projected is not None
        else _leftmost_path(pattern.root)
    )
    parts: list[str] = []
    for position, node in enumerate(spine):
        spine_child = spine[position + 1] if position + 1 < len(spine) else None
        rendered = _render_node(node, projected, spine_child)
        if position == 0:
            parts.append(rendered)
        else:
            parts.append(("//" if node.axis == DESC else "/") + rendered)
    return "".join(parts)


def _leftmost_path(root: PatternNode) -> list[PatternNode]:
    path = [root]
    while path[-1].children:
        path.append(path[-1].children[0])
    return path


def selector_to_string(sformula) -> str:
    """Render an s-formula's pattern with its projected node marked.

    Only plain selectors (no α attachments) have a textual form.
    """
    if not sformula.is_plain():
        raise RenderError("augmented selectors have no textual form")
    return pattern_to_string(sformula.pattern, sformula.projected)


def constraint_to_string(constraint) -> str:
    """Render a Definition 2.2 constraint in the parser's syntax."""
    scope = selector_to_string(constraint.scope)
    s1 = selector_to_string(constraint.s1)
    s2 = selector_to_string(constraint.s2)
    text = (
        f"forall {scope} : count({s1}) {constraint.op1} {constraint.n1} "
        f"-> count({s2}) {constraint.op2} {constraint.n2}"
    )
    if constraint.name:
        return f"{constraint.name}: {text}"
    return text
