"""A compact textual syntax for twig patterns, selectors and queries.

The paper draws patterns as trees (Figure 1); programmatic construction via
``repro.xmltree.pattern`` mirrors that.  For examples and tests a terse
XPath-like string form is much more readable::

    university/department//member[position/professor]/$name

* ``/``            child edge, ``//`` descendant edge (single/double lines
  in the paper's figures);
* the first step is the pattern root, matched against the document root;
* node tests: ``*`` (any label), a bare or quoted label (equality, the
  paper's ``= x``), ``~suffix`` (the paper's ``~ x``), an integer or
  fraction (numeric-label equality);
* ``[relative/path]`` attaches a side branch (a filter twig); a branch
  starting with ``//`` hangs off a descendant edge;
* ``$step`` marks the projected node of a selector; ``$2:step`` gives the
  position in a projection sequence for multi-attribute queries.

:func:`parse_pattern` returns ``(Pattern, projections)`` where projections
maps 1-based positions to pattern nodes.  :func:`parse_selector` insists on
exactly one projected node and returns ``(Pattern, node)``.
"""

from __future__ import annotations

from fractions import Fraction

from .pattern import CHILD, DESC, Pattern, PatternNode
from .predicates import ANY, LabelEquals, LabelSuffix, Predicate


class PatternSyntaxError(ValueError):
    """Raised when a pattern string cannot be parsed."""


class _Scanner:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def take(self, token: str) -> bool:
        if self.startswith(token):
            self.pos += len(token)
            return True
        return False

    def expect(self, token: str) -> None:
        if not self.take(token):
            raise PatternSyntaxError(
                f"expected {token!r} at position {self.pos} in {self.text!r}"
            )

    def done(self) -> bool:
        return self.pos >= len(self.text)

    def error(self, message: str) -> PatternSyntaxError:
        return PatternSyntaxError(f"{message} at position {self.pos} in {self.text!r}")


_BARE_STOP = set("/[]$~'\"")


def _scan_bare(scanner: _Scanner) -> str:
    start = scanner.pos
    while not scanner.done() and scanner.peek() not in _BARE_STOP:
        scanner.pos += 1
    if scanner.pos == start:
        raise scanner.error("expected a node test")
    return scanner.text[start : scanner.pos].strip()


def _scan_quoted(scanner: _Scanner) -> str:
    quote = scanner.peek()
    scanner.pos += 1
    start = scanner.pos
    while not scanner.done() and scanner.peek() != quote:
        scanner.pos += 1
    if scanner.done():
        raise scanner.error("unterminated quoted label")
    value = scanner.text[start : scanner.pos]
    scanner.pos += 1
    return value


def _label_value(text: str):
    """Interpret a bare token: integers/fractions become numeric labels."""
    try:
        value = Fraction(text)
    except (ValueError, ZeroDivisionError):
        return text
    return int(value) if value.denominator == 1 else value


def _scan_predicate(scanner: _Scanner) -> Predicate:
    if scanner.take("*"):
        return ANY
    if scanner.take("~"):
        if scanner.peek() in "'\"":
            return LabelSuffix(_scan_quoted(scanner))
        return LabelSuffix(_scan_bare(scanner))
    if scanner.peek() in "'\"":
        return LabelEquals(_scan_quoted(scanner))
    return LabelEquals(_label_value(_scan_bare(scanner)))


def _parse_step(
    scanner: _Scanner,
    parent: PatternNode | None,
    axis: str,
    projections: dict[int, PatternNode],
) -> PatternNode:
    position: int | None = None
    if scanner.take("$"):
        digits_start = scanner.pos
        while not scanner.done() and scanner.peek().isdigit():
            scanner.pos += 1
        if scanner.pos > digits_start and scanner.peek() == ":":
            position = int(scanner.text[digits_start : scanner.pos])
            scanner.expect(":")
        else:
            # "$42" marks a numeric-label node at position 1, not "$42:".
            scanner.pos = digits_start
            position = 1
    predicate = _scan_predicate(scanner)
    node = PatternNode(predicate, axis)
    if parent is not None:
        parent.add_child(node)
    if position is not None:
        if position in projections:
            raise scanner.error(f"duplicate projection position {position}")
        projections[position] = node
    while scanner.take("["):
        _parse_path(scanner, node, projections, stop="]")
        scanner.expect("]")
    return node


def _parse_path(
    scanner: _Scanner,
    parent: PatternNode | None,
    projections: dict[int, PatternNode],
    stop: str = "",
) -> PatternNode:
    """Parse ``step (sep step)*``; returns the first node of the path."""
    axis = CHILD
    if scanner.take("//"):
        axis = DESC
    else:
        scanner.take("/")
    first = node = _parse_step(scanner, parent, axis, projections)
    while not scanner.done() and not (stop and scanner.peek() == stop):
        if scanner.take("//"):
            axis = DESC
        elif scanner.take("/"):
            axis = CHILD
        else:
            raise scanner.error("expected '/', '//' or end of pattern")
        node = _parse_step(scanner, node, axis, projections)
    return first


def parse_pattern(text: str) -> tuple[Pattern, dict[int, PatternNode]]:
    """Parse a pattern string; returns (pattern, {position: projected node})."""
    scanner = _Scanner(text.strip())
    projections: dict[int, PatternNode] = {}
    root = _parse_path(scanner, None, projections)
    if not scanner.done():
        raise scanner.error("trailing input")
    if projections:
        expected = set(range(1, len(projections) + 1))
        if set(projections) != expected:
            raise PatternSyntaxError(
                f"projection positions must be 1..{len(projections)}, got {sorted(projections)}"
            )
    return Pattern(root), projections


def parse_selector(text: str) -> tuple[Pattern, PatternNode]:
    """Parse a selector π_n T; the string must mark exactly one node with $."""
    pattern, projections = parse_pattern(text)
    if len(projections) != 1:
        raise PatternSyntaxError(
            f"a selector needs exactly one $-marked node, got {len(projections)}: {text!r}"
        )
    return pattern, projections[1]


def parse_boolean_pattern(text: str) -> Pattern:
    """Parse a pattern with no projection markers (a Boolean twig query)."""
    pattern, projections = parse_pattern(text)
    if projections:
        raise PatternSyntaxError(f"Boolean pattern must not project: {text!r}")
    return pattern
