"""XML documents: unordered, unranked trees with labeled nodes (Sec. 2.2).

Labels come from an infinite alphabet.  Following Section 7.2 of the paper,
labels may also be rational numbers, which is what the aggregate functions
MIN/MAX/SUM/AVG operate on; ``repro.xmltree.predicates.is_numeric_label``
centralizes the numeric test.

Every node carries a ``uid``.  When a document is a random instance of a
p-document, the uid is inherited from the originating ordinary p-document
node, so "the same data item" can be identified across possible worlds.
This is exactly the device the paper uses when it reduces non-Boolean
queries to Boolean ones by "extending the notion of labels" (Section 5).
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Iterable, Iterator

from . import tree

Label = str | int | Fraction

_uid_counter = itertools.count(1)


def fresh_uid() -> int:
    """Return a process-unique node identifier."""
    return next(_uid_counter)


class DocNode:
    """A node of a document: a label, a uid and child nodes."""

    __slots__ = ("label", "uid", "_children", "_parent")

    def __init__(self, label: Label, children: Iterable["DocNode"] = (), uid: int | None = None):
        self.label = label
        self.uid = fresh_uid() if uid is None else uid
        self._children: list[DocNode] = []
        self._parent: DocNode | None = None
        for child in children:
            self.add_child(child)

    @property
    def children(self) -> list["DocNode"]:
        return self._children

    @property
    def parent(self) -> "DocNode | None":
        return self._parent

    def add_child(self, child: "DocNode") -> "DocNode":
        """Attach ``child`` (which must be parentless) below this node."""
        if child._parent is not None:
            raise ValueError("node already has a parent")
        child._parent = self
        self._children.append(child)
        return child

    def new_child(self, label: Label, uid: int | None = None) -> "DocNode":
        """Create, attach and return a fresh child with the given label."""
        return self.add_child(DocNode(label, uid=uid))

    def is_leaf(self) -> bool:
        return not self._children

    def descendants(self) -> Iterator["DocNode"]:
        """Yield this node and all nodes below it (the subtree d^v)."""
        return tree.preorder(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DocNode({self.label!r}, uid={self.uid})"


class Document:
    """A document: a rooted labeled tree (paper Definition of Sec. 2.2).

    The class is a thin wrapper around the root :class:`DocNode`; the
    ``subtree`` method gives the induced subtree d^v rooted at a node,
    which is the unit the paper's constraints quantify over.
    """

    __slots__ = ("root",)

    def __init__(self, root: DocNode):
        self.root = root

    def nodes(self) -> Iterator[DocNode]:
        """Yield all nodes in preorder."""
        return tree.preorder(self.root)

    def size(self) -> int:
        """Return the number of nodes."""
        return tree.subtree_size(self.root)

    def subtree(self, node: DocNode) -> "Document":
        """Return the subtree d^v rooted at ``node`` (shares the nodes)."""
        return Document(node)

    def find_all(self, label: Label) -> list[DocNode]:
        """Return all nodes carrying ``label`` (exact equality)."""
        return [node for node in self.nodes() if node.label == label]

    def find(self, label: Label) -> DocNode:
        """Return the unique node carrying ``label``.

        Raises ``LookupError`` when there is no such node or more than one.
        """
        matches = self.find_all(label)
        if len(matches) != 1:
            raise LookupError(f"expected exactly one node labeled {label!r}, found {len(matches)}")
        return matches[0]

    def node_by_uid(self, uid: int) -> DocNode:
        """Return the node with the given uid; raises ``LookupError``."""
        for node in self.nodes():
            if node.uid == uid:
                return node
        raise LookupError(f"no node with uid {uid}")

    def uid_set(self) -> frozenset[int]:
        """Return the set of uids; random instances of the same p-document
        are equal as documents iff their uid sets are equal."""
        return frozenset(node.uid for node in self.nodes())

    def copy(self) -> "Document":
        """Return a deep copy preserving uids."""

        def clone(node: DocNode) -> DocNode:
            return DocNode(node.label, (clone(c) for c in node.children), uid=node.uid)

        return Document(clone(self.root))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Document):
            return NotImplemented
        return canonical_key(self.root) == canonical_key(other.root)

    def __hash__(self) -> int:
        return hash(canonical_key(self.root))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Document(size={self.size()}, root={self.root.label!r})"


def canonical_key(node: DocNode) -> tuple:
    """Canonical form of an unordered labeled tree (label-only, ignores uids).

    Two documents are isomorphic as unordered labeled trees iff their
    canonical keys are equal.
    """
    child_keys = sorted(canonical_key(child) for child in node.children)
    return (_label_key(node.label), tuple(child_keys))


def _label_key(label: Label) -> tuple:
    # Mixed-type labels must be orderable for sorting; tag by type name.
    if isinstance(label, str):
        return ("s", label)
    return ("n", str(Fraction(label)))


def doc(label: Label, *children: "Document | DocNode | Label") -> DocNode:
    """Concise builder: ``doc('a', doc('b'), 'c')`` builds a - (b, c).

    Accepts nested :func:`doc` results, bare labels (made into leaves) and
    :class:`DocNode` objects.
    """
    node = DocNode(label)
    for child in children:
        if isinstance(child, Document):
            node.add_child(child.root)
        elif isinstance(child, DocNode):
            node.add_child(child)
        else:
            node.new_child(child)
    return node
