"""XML (de)serialization for documents.

Two styles:

* ``generic`` — every node becomes ``<n l="label" t="s|n" [u="uid"]/>``;
  round-trip safe for any label (including numeric labels and labels that
  are not valid XML names, such as the paper's ``"ph.d. st."``), and
  optionally preserves node uids.
* ``tags``    — labels become element tags where possible, which reads like
  ordinary XML; labels that are not valid XML names fall back to the
  generic form.  Used for human-facing output.

Only the stdlib ``xml.etree.ElementTree`` is used.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from fractions import Fraction

from .document import DocNode, Document

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.-]*$")


def _is_xml_name(label) -> bool:
    return isinstance(label, str) and bool(_NAME_RE.match(label)) and not label.lower().startswith("xml")


def _label_attrs(node: DocNode, keep_uids: bool) -> dict[str, str]:
    attrs: dict[str, str] = {}
    if isinstance(node.label, str):
        attrs["l"] = node.label
        attrs["t"] = "s"
    else:
        attrs["l"] = str(Fraction(node.label))
        attrs["t"] = "n"
    if keep_uids:
        attrs["u"] = str(node.uid)
    return attrs


def _to_element(node: DocNode, style: str, keep_uids: bool) -> ET.Element:
    if style == "tags" and _is_xml_name(node.label):
        element = ET.Element(node.label)
        if keep_uids:
            element.set("u", str(node.uid))
    else:
        element = ET.Element("n", _label_attrs(node, keep_uids))
    for child in node.children:
        element.append(_to_element(child, style, keep_uids))
    return element


def document_to_xml(document: Document, style: str = "generic", keep_uids: bool = False) -> str:
    """Serialize a document to an XML string."""
    if style not in ("generic", "tags"):
        raise ValueError(f"unknown style {style!r}")
    element = _to_element(document.root, style, keep_uids)
    ET.indent(element)
    return ET.tostring(element, encoding="unicode")


def _parse_label(element: ET.Element):
    if element.tag != "n":
        return element.tag
    label = element.get("l")
    if label is None:
        raise ValueError("generic node element is missing its 'l' attribute")
    if element.get("t") == "n":
        value = Fraction(label)
        return int(value) if value.denominator == 1 else value
    return label


def _from_element(element: ET.Element) -> DocNode:
    uid_text = element.get("u")
    node = DocNode(_parse_label(element), uid=int(uid_text) if uid_text else None)
    for child in element:
        node.add_child(_from_element(child))
    return node


def document_from_xml(text: str) -> Document:
    """Parse a document from either serialization style."""
    return Document(_from_element(ET.fromstring(text)))
