"""Generic algorithms on directed, unordered, rooted trees (paper, Section 2.1).

Every tree-node class in this package (document nodes, pattern nodes,
p-document nodes) exposes ``children`` (a sequence of nodes) and ``parent``
(a node or ``None``).  The helpers here work on any such object, so the
traversal logic lives in exactly one place.

Following the paper's conventions, a node is both an ancestor and a
descendant of itself; the "proper" variants exclude the node.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Protocol, TypeVar


class TreeNode(Protocol):
    """Structural type implemented by all node classes in this package."""

    @property
    def children(self) -> "list":  # pragma: no cover - protocol only
        ...

    @property
    def parent(self) -> "object | None":  # pragma: no cover - protocol only
        ...


N = TypeVar("N", bound=TreeNode)


def preorder(root: N) -> Iterator[N]:
    """Yield the nodes of the subtree rooted at ``root`` in preorder."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        # Reversal keeps left-to-right order; trees are unordered in the
        # model, but a deterministic traversal makes output reproducible.
        stack.extend(reversed(node.children))


def postorder(root: N) -> Iterator[N]:
    """Yield the nodes of the subtree rooted at ``root`` in postorder."""
    stack: list[tuple[N, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            yield node
            continue
        stack.append((node, True))
        stack.extend((child, False) for child in reversed(node.children))


def bfs_order(root: N) -> Iterator[N]:
    """Yield the nodes of the subtree rooted at ``root`` level by level."""
    queue: deque[N] = deque([root])
    while queue:
        node = queue.popleft()
        yield node
        queue.extend(node.children)


def ancestors(node: N) -> Iterator[N]:
    """Yield ``node`` and all its ancestors up to the root (paper Sec. 2.1)."""
    current: N | None = node
    while current is not None:
        yield current
        current = current.parent  # type: ignore[assignment]


def proper_ancestors(node: N) -> Iterator[N]:
    """Yield the ancestors of ``node`` excluding ``node`` itself."""
    iterator = ancestors(node)
    next(iterator)
    return iterator


def descendants(node: N) -> Iterator[N]:
    """Yield ``node`` and all its descendants (i.e. the subtree nodes)."""
    return preorder(node)


def proper_descendants(node: N) -> Iterator[N]:
    """Yield the descendants of ``node`` excluding ``node`` itself."""
    iterator = preorder(node)
    next(iterator)
    return iterator


def is_ancestor(candidate: TreeNode, node: TreeNode) -> bool:
    """Return whether ``candidate`` is an ancestor of ``node`` (or the node)."""
    return any(anc is candidate for anc in ancestors(node))


def is_proper_ancestor(candidate: TreeNode, node: TreeNode) -> bool:
    """Return whether ``candidate`` is a proper ancestor of ``node``."""
    return candidate is not node and is_ancestor(candidate, node)


def root_of(node: N) -> N:
    """Return the root of the tree that ``node`` belongs to."""
    current = node
    while current.parent is not None:
        current = current.parent  # type: ignore[assignment]
    return current


def depth(node: TreeNode) -> int:
    """Return the number of edges from the root down to ``node``."""
    return sum(1 for _ in ancestors(node)) - 1


def subtree_size(node: TreeNode) -> int:
    """Return the number of nodes in the subtree rooted at ``node``."""
    return sum(1 for _ in preorder(node))


def leaves(root: N) -> Iterator[N]:
    """Yield the leaves of the subtree rooted at ``root``."""
    return (node for node in preorder(root) if not node.children)


def path_between(ancestor: N, descendant: N) -> list[N]:
    """Return the node path ``ancestor`` .. ``descendant`` (inclusive).

    Raises ``ValueError`` when ``ancestor`` is not actually an ancestor of
    ``descendant``.
    """
    path: list[N] = []
    current: N | None = descendant
    while current is not None:
        path.append(current)
        if current is ancestor:
            path.reverse()
            return path
        current = current.parent  # type: ignore[assignment]
    raise ValueError("path_between: first argument is not an ancestor")


def lowest_common_ancestor(first: N, second: N) -> N:
    """Return the lowest common ancestor of two nodes of the same tree."""
    seen = {id(node) for node in ancestors(first)}
    for candidate in ancestors(second):
        if id(candidate) in seen:
            return candidate
    raise ValueError("nodes do not belong to the same tree")
