"""Possible-worlds baseline: exact but exponential evaluation.

Computes Pr(P ⊨ γ) by enumerating *all* worlds of the p-document and
evaluating γ on each with the document-level semantics of Definition 5.2.
This is the independent ground truth that the polynomial evaluation
algorithm (``repro.core.evaluator``) is differentially tested against, and
the "intractable" side of the scaling experiments (experiment E2 in
DESIGN.md).  Unlike the polynomial evaluator it also accepts SUM/AVG atoms
(Proposition 7.2 says no efficient algorithm can).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

from ..core.formulas import CFormula, DocumentEvaluator
from ..pdoc.enumerate import world_distribution
from ..pdoc.pdocument import PDocument

WorldTruths = list[tuple[frozenset[int], Fraction, tuple[bool, ...]]]


def naive_probabilities(pdoc: PDocument, formulas: Iterable[CFormula]) -> list[Fraction]:
    """Return [Pr(P ⊨ γ) for γ in formulas], by full world enumeration."""
    formulas = list(formulas)
    results = [Fraction(0) for _ in formulas]
    for uids, prob in world_distribution(pdoc).items():
        if prob == 0:
            continue
        document = pdoc.document_from_uids(uids)
        evaluator = DocumentEvaluator()
        for index, formula in enumerate(formulas):
            if evaluator.satisfies(document.root, formula):
                results[index] += prob
    return results


def naive_probability(pdoc: PDocument, formula: CFormula) -> Fraction:
    """Pr(P ⊨ γ) by full world enumeration."""
    return naive_probabilities(pdoc, [formula])[0]


def conditional_world_distribution(
    pdoc: PDocument, condition: CFormula
) -> dict[frozenset[int], Fraction]:
    """The distribution of the PXDB (P̃, C): every world satisfying the
    condition, with probability Pr(P = d | P ⊨ C) (Section 3.2).

    Raises ``ValueError`` when the p-document is not consistent with the
    condition (Pr(P ⊨ C) = 0), i.e. the PXDB is not well-defined.
    """
    satisfying: dict[frozenset[int], Fraction] = {}
    total = Fraction(0)
    for uids, prob in world_distribution(pdoc).items():
        if prob == 0:
            continue
        document = pdoc.document_from_uids(uids)
        if DocumentEvaluator().satisfies(document.root, condition):
            satisfying[uids] = prob
            total += prob
    if total == 0:
        raise ValueError("the p-document is not consistent with the constraints")
    return {uids: prob / total for uids, prob in satisfying.items()}
