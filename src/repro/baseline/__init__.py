"""Exponential baselines: possible-world evaluation and rejection sampling."""
