"""Monte-Carlo (additive) approximation of Pr(P ⊨ γ).

The paper's related-work discussion distinguishes exact evaluation
(possible here thanks to the PXDB design) from approximation (the route
its companion SIGMOD work takes for more expressive models).  This module
provides the straightforward sampling estimator as a third reference
point next to the exact evaluator and the exact-but-exponential
enumerator:

* unbiased, with Hoeffding additive error ε at confidence 1−δ after
  n = ln(2/δ) / (2ε²) samples;
* works for *any* formula with document-level semantics — including the
  SUM/AVG atoms the exact evaluator must reject (Proposition 7.2 only
  rules out *relative*-error/positivity guarantees, not additive ones);
* used by tests as an independent plausibility check on large instances
  where enumeration is impossible.

This baseline samples **unconditioned** instances of P̃ — it estimates
Pr(P ⊨ γ), not the PXDB-conditioned Pr(D ⊨ γ), and
:func:`estimate_conditional_probability` conditions by *discarding*
non-satisfying draws, so it degrades as Pr(P ⊨ C) shrinks, exactly like
:mod:`repro.baseline.rejection`.  The production tier is
:mod:`repro.approx`: it drives the paper's polynomial conditioned sampler
(cost independent of Pr(P ⊨ C)) and stops adaptively via
empirical-Bernstein bounds instead of the fixed-n Hoeffding count used
here.
"""

from __future__ import annotations

import random
from fractions import Fraction

from ..approx.bounds import hoeffding_sample_size
from ..core.formulas import CFormula, DocumentEvaluator
from ..pdoc.generate import random_instance
from ..pdoc.pdocument import PDocument


def sample_size(epsilon: float, delta: float = 0.05) -> int:
    """The Hoeffding bound: samples needed for additive error ``epsilon``
    with confidence 1 − ``delta``.  Delegates to
    :func:`repro.approx.bounds.hoeffding_sample_size` — one formula, one
    implementation."""
    return hoeffding_sample_size(epsilon, delta)


def estimate_probability(
    pdoc: PDocument,
    formula: CFormula,
    samples: int | None = None,
    epsilon: float = 0.05,
    delta: float = 0.05,
    rng: random.Random | None = None,
) -> Fraction:
    """Estimate Pr(P ⊨ γ) by sampling random instances.

    Either pass ``samples`` directly or let the Hoeffding bound pick it
    from (``epsilon``, ``delta``).  Returns hits/samples as a Fraction.
    """
    rng = rng if rng is not None else random.Random()
    n = samples if samples is not None else sample_size(epsilon, delta)
    hits = 0
    for _ in range(n):
        document = random_instance(pdoc, rng)
        if DocumentEvaluator().satisfies(document.root, formula):
            hits += 1
    return Fraction(hits, n)


def estimate_conditional_probability(
    pdoc: PDocument,
    event: CFormula,
    condition: CFormula,
    samples: int = 2000,
    rng: random.Random | None = None,
) -> Fraction | None:
    """Estimate Pr(D ⊨ γ) over the PXDB (P̃, C) by conditioned counting.

    Returns ``None`` when no sample satisfied the condition (the estimator
    degrades exactly where rejection sampling does — which is the point of
    the paper's exact algorithms).
    """
    rng = rng if rng is not None else random.Random()
    conditioned = 0
    hits = 0
    for _ in range(samples):
        document = random_instance(pdoc, rng)
        evaluator = DocumentEvaluator()
        if not evaluator.satisfies(document.root, condition):
            continue
        conditioned += 1
        if evaluator.satisfies(document.root, event):
            hits += 1
    if conditioned == 0:
        return None
    return Fraction(hits, conditioned)
