"""Rejection-sampling baseline for SAMPLE⟨C⟩.

Draw unconditioned random instances (Section 3.1) and reject those that
violate the constraints.  Produces exactly the PXDB distribution — but the
expected number of attempts is 1 / Pr(P ⊨ C), which blows up precisely
where conditioned sampling is interesting.  Experiment E4 contrasts this
with the paper's polynomial algorithm (``repro.core.sampler``), whose cost
is independent of Pr(P ⊨ C).
"""

from __future__ import annotations

import random

from ..core.formulas import CFormula, DocumentEvaluator
from ..pdoc.generate import random_instance
from ..pdoc.pdocument import PDocument
from ..xmltree.document import Document


class RejectionBudgetExceeded(RuntimeError):
    """Raised when no satisfying instance was found within the budget."""


def rejection_sample(
    pdoc: PDocument,
    condition: CFormula,
    rng: random.Random | None = None,
    max_attempts: int = 1_000_000,
) -> tuple[Document, int]:
    """Draw one document of the PXDB (P̃, C); returns (document, attempts).

    Raises :class:`RejectionBudgetExceeded` after ``max_attempts``
    rejections — with low-probability constraint sets this is the expected
    outcome, which is the point of the baseline.
    """
    rng = rng if rng is not None else random.Random()
    for attempt in range(1, max_attempts + 1):
        document = random_instance(pdoc, rng)
        if DocumentEvaluator().satisfies(document.root, condition):
            return document, attempt
    raise RejectionBudgetExceeded(
        f"no satisfying instance in {max_attempts} attempts"
    )
