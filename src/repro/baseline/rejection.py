"""Rejection-sampling baseline for SAMPLE⟨C⟩.

Draw unconditioned random instances (Section 3.1) and reject those that
violate the constraints.  Produces exactly the PXDB distribution — but the
expected number of attempts is 1 / Pr(P ⊨ C), which blows up precisely
where conditioned sampling is interesting.  Experiment E4 contrasts this
with the paper's polynomial algorithm (``repro.core.sampler``), whose cost
is independent of Pr(P ⊨ C).
"""

from __future__ import annotations

import random

from ..core.formulas import CFormula, DocumentEvaluator
from ..pdoc.generate import random_instance
from ..pdoc.pdocument import PDocument
from ..xmltree.document import Document


class RejectionBudgetExceeded(RuntimeError):
    """Raised when no satisfying instance was found within the budget.

    Carries ``attempts`` (the exhausted budget) and ``estimate`` — the
    condition probability Pr(P ⊨ C) when the caller knows it, else
    ``None``, in which case the message quotes the *rule of three*:
    zero hits in n trials bounds the probability below 3/n at 95%
    confidence.  Either way the message says how improbable the
    condition (at least empirically) is, which is what the reader of a
    stack trace actually wants to know.
    """

    def __init__(self, attempts: int, estimate: float | None = None):
        self.attempts = attempts
        self.estimate = None if estimate is None else float(estimate)
        if self.estimate is None:
            bound = 3.0 / attempts if attempts > 0 else 1.0
            detail = (
                f"Pr(P |= C) < {bound:.3g} with 95% confidence "
                "(rule of three)"
            )
        else:
            expected = (
                f"{1.0 / self.estimate:.3g}" if self.estimate > 0 else "inf"
            )
            detail = (
                f"Pr(P |= C) ~= {self.estimate:.3g}, "
                f"expected attempts per sample ~= {expected}"
            )
        super().__init__(
            f"no satisfying instance in {attempts} attempts; {detail}"
        )


def rejection_sample(
    pdoc: PDocument,
    condition: CFormula,
    rng: random.Random | None = None,
    max_attempts: int = 1_000_000,
    condition_probability: float | None = None,
) -> tuple[Document, int]:
    """Draw one document of the PXDB (P̃, C); returns (document, attempts).

    Raises :class:`RejectionBudgetExceeded` after ``max_attempts``
    rejections — with low-probability constraint sets this is the expected
    outcome, which is the point of the baseline.  Pass the exact
    ``condition_probability`` (when the DP already computed it) to get it
    echoed in the failure message; otherwise the message carries the
    rule-of-three upper bound implied by the exhausted budget.
    """
    rng = rng if rng is not None else random.Random()
    for attempt in range(1, max_attempts + 1):
        document = random_instance(pdoc, rng)
        if DocumentEvaluator().satisfies(document.root, condition):
            return document, attempt
    raise RejectionBudgetExceeded(max_attempts, estimate=condition_probability)
