"""Request coalescing: concurrent evaluations share one joint DP pass.

The evaluator's deepest batching lever is that :func:`repro.core.evaluator.
probabilities` computes *any number* of c-formula probabilities in a
single bottom-up pass over the p-document — the compiled registry simply
carries more slots.  ``PXDB.event_probabilities`` builds on it (all events
conjoined with the condition, the cached denominator shared), and this
module turns it into a concurrency primitive: when several requests
against the same stored PXDB arrive together, the first becomes the
*leader*, waits one small coalescing window for followers to pile in,
drains the queue, runs **one** joint pass for every pending event, and
distributes the slices.  Followers just block on a future.

The result is identical to evaluating each request alone (the arithmetic
is exact and per-formula independent); only the traversal is shared —
with k concurrent requests the document is walked once instead of k
times.

The async sharded front end generalizes this idea: its
:class:`~repro.service.frontend.scheduler.BatchScheduler` packs
*heterogeneous* pending requests (sat / query / top-k) per entry into one
joint pass and executes it inside the entry's pinned shard worker.  This
coalescer stays as the in-entry primitive for the threaded/non-sharded
path — every ``StoreEntry`` still carries one, and identical-event
merging remains the right tool when requests arrive via blocking threads.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from fractions import Fraction
from typing import Sequence

from ..core.formulas import CFormula
from ..core.pxdb import PXDB
from ..obs.spans import TRACER


class Coalescer:
    """Batches concurrent formula-probability requests against one PXDB.

    ``window`` is how long a leader waits for followers before running the
    joint pass (seconds; 0 disables the wait — still correct, coalescing
    then only catches requests that arrived while a pass was in flight).
    """

    def __init__(self, pxdb: PXDB, window: float = 0.002, max_batch: int = 64):
        self.pxdb = pxdb
        self.window = window
        # Once this many requests are pending the leader drains at once:
        # a full batch gains nothing from waiting out the window.
        self.max_batch = max_batch
        self._lock = threading.Lock()
        # Followers notify on arrival so a waiting leader can re-check the
        # batch size (and drain early) without polling.
        self._arrival = threading.Condition(self._lock)
        # Pending: (events, future, link).  ``link`` is a per-request dict
        # the leader stamps with its trace id before running the batch, so
        # a traced follower can record which trace did its work.
        self._pending: list[tuple[Sequence[CFormula], Future, dict]] = []
        self._leader_active = False
        self.batches = 0
        self.coalesced_requests = 0
        self.largest_batch = 0
        # Sweep-side pending/counters (see sweep_probabilities).
        self._sweep_pending: list[tuple[object, tuple, list, Future]] = []
        self._sweep_leader_active = False
        self.sweep_batches = 0
        self.sweep_requests = 0
        self.sweep_columns = 0
        self.largest_sweep = 0

    def event_probabilities(self, events: Sequence[CFormula]) -> list[Fraction]:
        """[Pr(D ⊨ γ) for γ in events], possibly computed inside a joint
        pass shared with concurrently arriving requests."""
        future: Future = Future()
        link: dict = {}
        with self._lock:
            self._pending.append((events, future, link))
            lead = not self._leader_active
            if lead:
                self._leader_active = True
            else:
                self._arrival.notify_all()
        if lead:
            self._drive()
            return future.result()
        if not TRACER.enabled:
            return future.result()
        # Follower: the joint DP runs in the leader's thread under the
        # leader's trace; this span records the wait and links the traces.
        with TRACER.span("coalesce.wait", events=len(events)) as span:
            values = future.result()
            leader_trace = link.get("leader_trace_id")
            if leader_trace is not None:
                span.set(leader_trace_id=leader_trace)
        return values

    def event_probability(self, event: CFormula) -> Fraction:
        return self.event_probabilities([event])[0]

    # -- batched parameter sweeps ---------------------------------------------
    def sweep_probabilities(self, key, events: Sequence[CFormula], rows):
        """One request's slice of a vectorized parameter sweep.

        ``rows`` is this request's list of parameter bindings; concurrent
        sweep requests sharing the same ``key`` (the service keys by
        pattern text, so equal keys mean the same event tuple) are packed
        *column-wise* into a single ``PXDB.sweep_probabilities`` call —
        one numpy sweep answers them all.  Returns ``(conditionals,
        denominators)`` restricted to this request's columns.
        """
        future: Future = Future()
        with self._lock:
            self._sweep_pending.append((key, tuple(events), list(rows), future))
            lead = not self._sweep_leader_active
            if lead:
                self._sweep_leader_active = True
            else:
                self._arrival.notify_all()
        if lead:
            self._drive_sweeps()
        return future.result()

    def _drive_sweeps(self) -> None:
        """Sweep-leader duty: same early-draining window protocol as
        :meth:`_drive`, then one vectorized circuit call per key group."""
        while True:
            self._await_followers(self._sweep_pending)
            with self._lock:
                batch = self._sweep_pending
                self._sweep_pending = []
                if not batch:
                    self._sweep_leader_active = False
                    return
            self._run_sweep_batch(batch)
            with self._lock:
                if not self._sweep_pending:
                    self._sweep_leader_active = False
                    return

    def _run_sweep_batch(self, batch) -> None:
        groups: dict = {}
        for key, events, rows, future in batch:
            groups.setdefault(key, []).append((events, rows, future))
        for members in groups.values():
            events = members[0][0]
            flat_rows: list = []
            slices: list[tuple[int, int]] = []
            for _, rows, _ in members:
                start = len(flat_rows)
                flat_rows.extend(rows)
                slices.append((start, len(flat_rows)))
            try:
                conditionals, denominators = self.pxdb.sweep_probabilities(
                    events, flat_rows
                )
            except BaseException as error:  # noqa: BLE001 — fan the failure out
                for _, _, future in members:
                    if not future.done():
                        future.set_exception(error)
                continue
            self.sweep_batches += 1
            self.sweep_requests += len(members)
            self.sweep_columns += len(flat_rows)
            self.largest_sweep = max(self.largest_sweep, len(flat_rows))
            for (start, stop), (_, _, future) in zip(slices, members):
                future.set_result(
                    (conditionals[:, start:stop], denominators[start:stop])
                )

    def _drive(self) -> None:
        """Leader duty: wait out the coalescing window (draining early when
        alone or full — see :meth:`_await_followers`), drain everything
        pending, run one joint pass, slice the results back out.  Repeats
        while more work arrived during the pass, so no request is left
        leaderless."""
        while True:
            self._await_followers(self._pending)
            with self._lock:
                batch = self._pending
                self._pending = []
                if not batch:
                    self._leader_active = False
                    return
            self._run_batch(batch)
            with self._lock:
                if not self._pending:
                    self._leader_active = False
                    return
                # New requests arrived while evaluating: stay leader.

    def _await_followers(self, pending: list) -> None:
        """The leader's coalescing wait, with early drain.

        A lone leader waits one short grace slice (an eighth of the
        window) for a first follower and then drains — a sequential
        client must not pay the whole window as a latency floor, but a
        zero wait would race genuinely concurrent arrivals out of their
        shared batch (coalescing also still catches requests landing
        while the pass itself runs).  Once followers are pending the
        leader waits out the window, woken by further arrivals to drain
        as soon as the batch ceiling is reached.
        """
        if self.window <= 0:
            return
        grace = self.window / 8
        deadline = time.monotonic() + self.window
        with self._arrival:
            while len(pending) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return
                if len(pending) <= 1:
                    self._arrival.wait(min(grace, remaining))
                    if len(pending) <= 1:
                        return
                else:
                    self._arrival.wait(remaining)

    def _run_batch(
        self, batch: list[tuple[Sequence[CFormula], Future, dict]]
    ) -> None:
        flat: list[CFormula] = []
        slices: list[tuple[int, int]] = []
        for events, _, _ in batch:
            start = len(flat)
            flat.extend(events)
            slices.append((start, len(flat)))
        if not TRACER.enabled:
            self._evaluate_batch(batch, flat, slices)
            return
        with TRACER.span(
            "coalesce.batch", requests=len(batch), events=len(flat)
        ) as span:
            for _, _, link in batch:
                link["leader_trace_id"] = span.trace_id
            self._evaluate_batch(batch, flat, slices)

    def _evaluate_batch(self, batch, flat, slices) -> None:
        try:
            values = self.pxdb.event_probabilities(flat)
        except BaseException as error:  # noqa: BLE001 — fan the failure out
            for _, future, _ in batch:
                future.set_exception(error)
            return
        self.batches += 1
        self.coalesced_requests += len(batch)
        self.largest_batch = max(self.largest_batch, len(batch))
        for (start, stop), (_, future, _) in zip(slices, batch):
            future.set_result(values[start:stop])

    def stats(self) -> dict:
        with self._lock:
            return {
                "batches": self.batches,
                "coalesced_requests": self.coalesced_requests,
                "largest_batch": self.largest_batch,
                "mean_batch_size": (
                    round(self.coalesced_requests / self.batches, 2)
                    if self.batches
                    else 0.0
                ),
                "sweep_batches": self.sweep_batches,
                "sweep_requests": self.sweep_requests,
                "sweep_columns": self.sweep_columns,
                "largest_sweep": self.largest_sweep,
            }
