"""The PXDB document store: a named registry of warm (P̃, C) pairs.

A stored entry is everything a request against a PXDB needs, loaded once:

* the parsed :class:`~repro.pdoc.pdocument.PDocument` and constraint set;
* the compiled condition c-formula inside a warm
  :class:`~repro.core.evaluator.IncrementalEngine` — the store runs the
  CONSTRAINT-SAT pass on it at load time, so Pr(P ⊨ C) is cached (and
  primed into the PXDB's denominator cache: every EVAL⟨Q, C⟩ request
  divides by it without recomputing) and the engine's
  signature-distribution cache is hot before the first request arrives;
* a :class:`~repro.service.coalesce.Coalescer` that merges concurrent
  formula-probability requests into single joint DP passes;
* an LRU-bounded per-query result cache (exact ``Fraction`` tables —
  sound because a stored document only changes via reload, which replaces
  the whole entry).

The registry itself keeps *specs* (name → file paths) separately from
*loaded entries*: entries are LRU-evicted beyond ``max_entries`` but the
spec survives, so a later request transparently reloads.  On every access
the source files' mtimes are compared against the load-time values and a
change invalidates the entry.

Invalidation distinguishes two kinds of file edit via the p-document's
*structure fingerprint* (uid- and probability-free):

* a **parameter-only edit** — same structure, new probabilities — keeps
  the entry alive: the new values are applied onto the *retained* tree
  (:func:`repro.pdoc.parameters.apply_parameters`, preserving uids, the
  warm engine and every compiled circuit), the constraint probability is
  refreshed by re-binding the retained CONSTRAINT-SAT circuit, and only
  the query *result* cache is dropped (results are parameter-dependent);
* a **structural edit** (or any constraint-file change) replaces the
  whole entry: fresh parse, fresh engine, fresh caches.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
import xml.etree.ElementTree as ET
from collections import OrderedDict
from pathlib import Path
from typing import Iterable

from ..core.constraint_parser import parse_constraints
from ..core.constraints import Constraint
from ..core.evaluator import IncrementalEngine
from ..core.formulas import CFormula
from ..core.pxdb import PXDB
from ..obs.spans import TRACER
from ..pdoc.parameters import apply_parameters, parameter_values
from ..pdoc.pdocument import PDocument
from ..pdoc.serialize import pdocument_from_xml
from ..xmltree.document import Document
from ..xmltree.serialize import document_from_xml
from .coalesce import Coalescer


def read_pdocument(path: str | os.PathLike) -> PDocument:
    """Parse a p-document file; every failure is a one-line ``ValueError``
    naming the path (missing file, malformed XML, invalid structure)."""
    text = _read(path, "p-document")
    try:
        return pdocument_from_xml(text)
    except ET.ParseError as error:
        raise ValueError(f"malformed XML in p-document {path}: {error}") from error
    except ValueError as error:
        raise ValueError(f"invalid p-document {path}: {error}") from error


def read_constraints(path: str | os.PathLike | None) -> list[Constraint]:
    """Parse a constraint file (``None`` → no constraints), one-line errors."""
    if path is None:
        return []
    try:
        return parse_constraints(_read(path, "constraint file"))
    except ValueError as error:
        raise ValueError(f"invalid constraint file {path}: {error}") from error


def read_document(path: str | os.PathLike) -> Document:
    """Parse a concrete XML document file, one-line errors."""
    text = _read(path, "document")
    try:
        return document_from_xml(text)
    except ET.ParseError as error:
        raise ValueError(f"malformed XML in document {path}: {error}") from error


def load_pxdb(
    pdocument_path: str | os.PathLike,
    constraints_path: str | os.PathLike | None = None,
) -> tuple[PXDB, list[Constraint]]:
    """Load a PXDB from disk with one-line, path-bearing error messages.

    Raises ``ValueError`` for unreadable or malformed files — one exception
    type so both the CLI and the server map every load failure to a single
    user-facing error path.  Consistency is *not* checked here (the store
    checks it via the warm engine's pass, paying the DP exactly once).
    """
    pdoc = read_pdocument(pdocument_path)
    constraints = read_constraints(constraints_path)
    return PXDB(pdoc, constraints, check=False), constraints


def _read(path: str | os.PathLike, kind: str) -> str:
    try:
        return Path(path).read_text()
    except OSError as error:
        reason = error.strerror or str(error)
        raise ValueError(f"cannot read {kind} {path}: {reason}") from error


class StoreEntry:
    """One warm PXDB: document, constraints, engine, coalescer, caches."""

    __slots__ = ("name", "pdocument_path", "constraints_path", "pxdb",
                 "constraints", "engine", "coalescer", "lock", "sample_lock",
                 "query_cache", "query_cache_cap", "loaded_at", "mtimes",
                 "content_fps", "stamped_at",
                 "structure_fp", "param_reloads", "circuit_hits",
                 "query_events", "query_events_cap")

    def __init__(
        self,
        name: str,
        pxdb: PXDB,
        constraints: Iterable[Constraint | CFormula],
        *,
        pdocument_path: str | None = None,
        constraints_path: str | None = None,
        mtimes: tuple = (),
        content_fps: tuple = (),
        engine_cache_cap: int | None = None,
        query_cache_cap: int = 128,
        coalesce_window: float = 0.002,
    ):
        self.name = name
        self.pdocument_path = pdocument_path
        self.constraints_path = constraints_path
        self.pxdb = pxdb
        self.constraints = tuple(constraints)
        self.mtimes = mtimes
        self.content_fps = content_fps
        self.stamped_at = time.time_ns()
        self.loaded_at = time.time()
        self.lock = threading.Lock()
        # Sampling mutates the warm engine's cache (not concurrency-safe)
        # — the server serializes /sample per entry on this lock.
        self.sample_lock = threading.Lock()
        self.query_cache: OrderedDict[str, dict] = OrderedDict()
        self.query_cache_cap = query_cache_cap
        # Per-query candidate tuples + bound event formulas, retained
        # across parameter-only reloads (structure unchanged ⇒ the
        # skeleton, hence the candidates, are unchanged).  The event
        # tuples key the PXDB's compiled-circuit cache, so a re-asked
        # query after a parameter edit answers by circuit re-bind.
        self.query_events: OrderedDict[str, tuple[tuple, tuple]] = OrderedDict()
        self.query_events_cap = PXDB.CIRCUIT_CACHE_CAP
        self.structure_fp = pxdb.pdoc.root.structure_fingerprint()
        self.param_reloads = 0
        self.circuit_hits = 0
        # Warm-up: one engine, one CONSTRAINT-SAT pass.  The denominator is
        # primed into the PXDB and the engine is injected as its sample
        # engine, so /sat answers from cache, /query divides by the cached
        # denominator, and the first /sample starts from a hot DP cache.
        self.engine = IncrementalEngine.for_formula(
            pxdb.condition, max_entries=engine_cache_cap
        )
        denominator = self.engine.probability(pxdb.pdoc)
        if denominator == 0:
            raise ValueError(
                f"PXDB {name!r} is not well-defined: Pr(P |= C) = 0"
            )
        pxdb.prime_constraint_probability(denominator)
        pxdb.sample_engine = self.engine
        self.coalescer = Coalescer(pxdb, window=coalesce_window)

    def cache_query(self, key: str, payload: dict) -> None:
        with self.lock:
            cache = self.query_cache
            cache[key] = payload
            cache.move_to_end(key)
            while len(cache) > self.query_cache_cap:
                cache.popitem(last=False)

    def cached_query(self, key: str) -> dict | None:
        with self.lock:
            payload = self.query_cache.get(key)
            if payload is not None:
                self.query_cache.move_to_end(key)
            return payload

    def cache_events(self, key: str, answers: tuple, events: tuple) -> None:
        with self.lock:
            cache = self.query_events
            cache[key] = (answers, events)
            cache.move_to_end(key)
            while len(cache) > self.query_events_cap:
                cache.popitem(last=False)

    def cached_events(self, key: str) -> tuple[tuple, tuple] | None:
        with self.lock:
            known = self.query_events.get(key)
            if known is not None:
                self.query_events.move_to_end(key)
            return known

    def apply_parameter_update(
        self, new_pdoc: PDocument, mtimes: tuple, content_fps: tuple = ()
    ) -> int:
        """A parameter-only reload: copy ``new_pdoc``'s probability values
        onto the *retained* tree (uids, warm engine and compiled circuits
        all survive; the engine's stale fingerprint keys simply never hit
        again), refresh Pr(P ⊨ C) by re-binding the retained
        CONSTRAINT-SAT circuit, and drop the (parameter-dependent) query
        result cache.  Raises ``ValueError`` when the new parameters make
        the PXDB ill-defined (Pr(P ⊨ C) = 0)."""
        changed = apply_parameters(self.pxdb.pdoc, parameter_values(new_pdoc))
        # Rebind + one forward sweep; also re-primes the denominator cache
        # that /sat and every /query division read.
        self.pxdb.event_probabilities([], via="circuit")
        with self.lock:
            self.query_cache.clear()
        self.mtimes = mtimes
        self.content_fps = content_fps
        self.stamped_at = time.time_ns()
        self.param_reloads += 1
        return changed

    def info(self) -> dict:
        """A JSON-ready description (served by ``/stats``)."""
        pdoc = self.pxdb.pdoc
        denominator = self.pxdb.constraint_probability()
        return {
            "name": self.name,
            "pdocument": self.pdocument_path,
            "constraints_file": self.constraints_path,
            "constraints": len(self.constraints),
            "ordinary_nodes": pdoc.ordinary_size(),
            "distributional_edges": len(pdoc.dist_edges()),
            "constraint_probability": str(denominator),
            "constraint_probability_float": float(denominator),
            "loaded_at": self.loaded_at,
            "query_cache_entries": len(self.query_cache),
            "param_reloads": self.param_reloads,
            "circuit_hits": self.circuit_hits,
            "circuits": self.pxdb.circuit_stats(),
            "engine": self.engine.stats(),
            "coalescer": self.coalescer.stats(),
            # Monte-Carlo estimator state lives with the entry (warm
            # engines + draw counters per sampler backend); empty until
            # the first backend=approx request.
            "approx": self.pxdb.approx_stats(),
        }


class DocumentStore:
    """The named registry: register once, serve warm forever.

    Thread-safe.  ``max_entries`` bounds the number of *loaded* entries
    (LRU); registered specs are never forgotten, so an evicted name
    reloads transparently on next access.  ``check_mtime=False`` disables
    the per-access stat calls (for immutable deployments).
    """

    def __init__(
        self,
        max_entries: int = 64,
        *,
        check_mtime: bool = True,
        engine_cache_cap: int | None = None,
        query_cache_cap: int = 128,
        coalesce_window: float = 0.002,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self.check_mtime = check_mtime
        self._engine_cache_cap = engine_cache_cap
        self._query_cache_cap = query_cache_cap
        self._coalesce_window = coalesce_window
        self._lock = threading.RLock()
        self._specs: dict[str, tuple[str, str | None] | None] = {}
        self._entries: OrderedDict[str, StoreEntry] = OrderedDict()
        self.loads = 0
        self.reloads = 0
        self.param_reloads = 0
        self.evictions = 0
        self.hits = 0

    # -- registration ---------------------------------------------------------
    def register(
        self,
        name: str,
        pdocument_path: str | os.PathLike,
        constraints_path: str | os.PathLike | None = None,
    ) -> StoreEntry:
        """Load the files now, remember the spec forever."""
        with self._lock:
            spec = (
                str(pdocument_path),
                str(constraints_path) if constraints_path is not None else None,
            )
            self._specs[name] = spec
            entry = self._load(name, spec)
            self._install(name, entry)
            return entry

    def register_specs(
        self, specs: Iterable[tuple[str, str, str | None]]
    ) -> list[str]:
        """Bulk-register ``DocumentStore.specs()`` output — the warming
        path for pool workers (flat *and* sharded: a shard worker gets
        only its shard's slice, so its memory holds only those entries).
        A spec that fails to load is skipped, not fatal: the name stays
        unregistered here and callers fall back elsewhere.  Returns the
        names actually registered."""
        registered = []
        for name, pdocument_path, constraints_path in specs:
            try:
                self.register(name, pdocument_path, constraints_path)
            except ValueError:
                continue
            registered.append(name)
        return registered

    def add(
        self,
        name: str,
        pxdb: PXDB,
        constraints: Iterable[Constraint | CFormula] = (),
    ) -> StoreEntry:
        """Register an in-memory PXDB (no files, so no mtime invalidation;
        if evicted, the entry is gone — there is no spec to reload from)."""
        with self._lock:
            entry = StoreEntry(
                name,
                pxdb,
                constraints or pxdb.constraints,
                engine_cache_cap=self._engine_cache_cap,
                query_cache_cap=self._query_cache_cap,
                coalesce_window=self._coalesce_window,
            )
            self._specs[name] = None
            self._install(name, entry)
            return entry

    def remove(self, name: str) -> None:
        with self._lock:
            self._specs.pop(name, None)
            self._entries.pop(name, None)

    # -- access ---------------------------------------------------------------
    def get(self, name: str) -> StoreEntry:
        """The entry for ``name`` — warm if loaded and fresh, reloaded if
        its files changed on disk, loaded from spec if LRU-evicted.
        Raises ``KeyError`` for names never registered."""
        if not TRACER.enabled:
            return self._get(name)
        before = (self.hits, self.loads, self.reloads, self.param_reloads)
        with TRACER.span("store.get", db=name) as span:
            entry = self._get(name)
            deltas = (self.hits, self.loads, self.reloads, self.param_reloads)
            for label, b, a in zip(("warm", "load", "reload", "param_reload"),
                                   before, deltas):
                if a > b:
                    # Under concurrency another request may bump a counter
                    # in between; first changed one wins — tracing detail,
                    # not an exact ledger.
                    span.set(outcome=label)
                    break
        return entry

    def _get(self, name: str) -> StoreEntry:
        with self._lock:
            if name not in self._specs:
                raise KeyError(f"no PXDB named {name!r} is registered")
            spec = self._specs[name]
            entry = self._entries.get(name)
            if entry is not None and spec is not None and self.check_mtime:
                stamps = _stamps(spec)
                fps = None
                changed = stamps != entry.mtimes
                if not changed and entry.content_fps and _racy(
                    stamps, entry.stamped_at
                ):
                    # The stat signature is unchanged but was recorded so
                    # close to the files' mtimes that a same-tick rewrite
                    # (coarse-timestamp filesystem, fast writer) would be
                    # invisible to it — break the tie on content.
                    fps = _fingerprints(spec)
                    changed = fps != entry.content_fps
                if changed:
                    try:
                        rebound = self._try_rebind(entry, spec, stamps, fps)
                    except ValueError:
                        # The entry's tree may already carry the bad
                        # parameters — drop it; the spec survives, so the
                        # next access retries from a fresh parse.
                        self._entries.pop(name, None)
                        raise
                    if rebound:
                        self.param_reloads += 1
                        self._entries.move_to_end(name)
                        return entry
                    self.reloads += 1
                    entry = self._load(name, spec)
                    self._install(name, entry)
                    return entry
            if entry is None:
                if spec is None:
                    raise KeyError(
                        f"PXDB {name!r} was evicted and has no file spec to reload"
                    )
                entry = self._load(name, spec)
                self._install(name, entry)
                return entry
            self.hits += 1
            self._entries.move_to_end(name)
            return entry

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._specs)

    def loaded_names(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def loaded_entries(self) -> list[StoreEntry]:
        """A snapshot of the loaded entries (no LRU touch, no mtime check
        — observability reads should not perturb eviction order)."""
        with self._lock:
            return list(self._entries.values())

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._specs

    def specs(self) -> list[tuple[str, str, str | None]]:
        """(name, pdocument_path, constraints_path) for file-backed entries
        — the hand-off format for warming process-pool workers."""
        with self._lock:
            return [
                (name, spec[0], spec[1])
                for name, spec in sorted(self._specs.items())
                if spec is not None
            ]

    def stats(self) -> dict:
        with self._lock:
            return {
                "registered": len(self._specs),
                "loaded": len(self._entries),
                "max_entries": self.max_entries,
                "loads": self.loads,
                "reloads": self.reloads,
                "param_reloads": self.param_reloads,
                "evictions": self.evictions,
                "hits": self.hits,
            }

    # -- internals ------------------------------------------------------------
    def _try_rebind(
        self, entry: StoreEntry, spec: tuple[str, str | None],
        stamps: tuple, fps: tuple | None = None,
    ) -> bool:
        """Attempt a parameter-only refresh of a stale entry.

        Returns True when the p-document file changed probabilities only
        (equal structure fingerprints) and the constraint file did not
        change — in which case the entry was updated in place.  Returns
        False to request a full reload.  ``ValueError`` (malformed file,
        ill-defined parameters) propagates to the caller.
        """
        if len(stamps) != len(entry.mtimes):
            return False
        if len(stamps) == 2 and stamps[1] != entry.mtimes[1]:
            return False  # the constraint file changed: full reload
        if fps is None:
            fps = _fingerprints(spec)
        if (
            len(fps) == 2
            and len(entry.content_fps) == 2
            and fps[1] != entry.content_fps[1]
        ):
            return False  # same-tick constraint rewrite: full reload
        new_pdoc = read_pdocument(spec[0])
        if new_pdoc.root.structure_fingerprint() != entry.structure_fp:
            return False
        entry.apply_parameter_update(new_pdoc, stamps, fps)
        return True

    def _load(self, name: str, spec: tuple[str, str | None]) -> StoreEntry:
        pdocument_path, constraints_path = spec
        pxdb, constraints = load_pxdb(pdocument_path, constraints_path)
        self.loads += 1
        return StoreEntry(
            name,
            pxdb,
            constraints,
            pdocument_path=pdocument_path,
            constraints_path=constraints_path,
            mtimes=_stamps(spec),
            content_fps=_fingerprints(spec),
            engine_cache_cap=self._engine_cache_cap,
            query_cache_cap=self._query_cache_cap,
            coalesce_window=self._coalesce_window,
        )

    def _install(self, name: str, entry: StoreEntry) -> None:
        self._entries[name] = entry
        self._entries.move_to_end(name)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1


# A same-stat rewrite is only possible while the filesystem clock is
# within its timestamp granularity of the recorded stamp; 2 s covers
# 1-second-resolution filesystems with margin (git's racy-clean window).
_RACY_WINDOW_NS = 2_000_000_000


def _stamps(spec: tuple[str, str | None]) -> tuple[tuple[int, int], ...]:
    """(st_mtime_ns, st_size) of the spec's files ((0, 0) for a missing
    file, so deletion also invalidates).  Size breaks most same-tick
    rewrite ties; equal-size ties fall to the content fingerprint."""
    stamps = []
    for path in spec:
        if path is None:
            continue
        try:
            status = os.stat(path)
            stamps.append((status.st_mtime_ns, status.st_size))
        except OSError:
            stamps.append((0, 0))
    return tuple(stamps)


def _fingerprints(spec: tuple[str, str | None]) -> tuple[bytes, ...]:
    """A content digest per spec file (empty for an unreadable file)."""
    prints = []
    for path in spec:
        if path is None:
            continue
        try:
            data = Path(path).read_bytes()
        except OSError:
            prints.append(b"")
            continue
        prints.append(hashlib.blake2b(data, digest_size=16).digest())
    return tuple(prints)


def _racy(stamps: tuple, stamped_at_ns: int) -> bool:
    """Whether any file's mtime is close enough to the time the stamps
    were recorded that a same-stat rewrite could hide from ``os.stat``."""
    return any(
        mtime_ns and stamped_at_ns - mtime_ns <= _RACY_WINDOW_NS
        for mtime_ns, _ in stamps
    )
