"""The PXDB query/sample server: JSON over HTTP, stdlib only.

Two layers:

* :class:`PXDBService` — the transport-independent request surface.  Every
  public method takes plain values and returns a JSON-ready ``dict``, so
  tests (and the process-pool workers) exercise exactly the code the HTTP
  handler serves.  The service owns a :class:`~repro.service.store.
  DocumentStore` (warm engines, cached denominators), a
  :class:`~repro.service.metrics.Metrics` sink, and optionally an
  :class:`~repro.service.pool.EvaluationPool` for CPU-bound dispatch.
* ``ThreadingHTTPServer`` + :class:`_Handler` — the thin HTTP skin.  One
  thread per connection; handlers translate routes to service calls and
  exceptions to status codes (``KeyError`` → 404, ``ValueError`` → 400,
  anything else → 500).

Request coalescing: ``/query`` computes per-answer probabilities through
the entry's :class:`~repro.service.coalesce.Coalescer`, so queries that
arrive concurrently against the same stored PXDB share **one** joint DP
pass over the p-document (the batching of ``PXDB.event_probabilities``
promoted to a concurrency primitive).  ``/sat`` answers from the cached
Pr(P ⊨ C); repeated ``/query`` texts answer from the entry's LRU result
cache; ``/sample`` runs on the entry's warm incremental engine under a
per-entry lock (the engine's cache is not concurrency-safe, and sampling
is the only operation that mutates it).

Pool mode: when a pool is attached, ``/sat``, ``/query`` and ``/sample``
are dispatched to a worker process with its own warm store; on timeout,
full queue or broken pool the request silently degrades to in-process
execution (counted under ``pool.fallbacks`` in ``/metrics``).
"""

from __future__ import annotations

import json
import random
import signal
import threading
import time
import xml.etree.ElementTree as ET
from collections import deque
from concurrent.futures import Future
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from ..core.constraints import Constraint
from ..core.explain import explain_violations
from ..core.query import Query
from ..core.query_eval import bound_formula, candidate_tuples, decode_answers
from ..numeric import BACKEND_NAMES, GUARD, maybe_positive
from ..numeric import value_fields as _value_fields
from ..numeric.backends import Interval
from ..obs import package_version
from ..obs.cost import CostObservatory
from ..obs.dashboard import render_dashboard
from ..obs.logs import get_logger
from ..obs.profile import SpanProfiler, StackSampler
from ..obs.slo import SLOMonitor
from ..obs.spans import TRACER, build_tree
from ..xmltree.serialize import document_from_xml, document_to_xml
from .metrics import Metrics
from .pool import EvaluationPool, PoolUnavailable
from .store import DocumentStore, StoreEntry

_log = get_logger("service.server")
_slow_log = get_logger("service.slow")


# -- payload builders ---------------------------------------------------------
# Module-level so the pool workers (repro.service.pool._worker_run) execute
# the very same code against their own warm store — pooled and in-process
# responses are byte-identical (the arithmetic is exact everywhere; the
# guard counters of non-exact backends are the one per-process exception).

def _resolve_backend(backend: str | None, allow_approx: bool = False) -> str:
    """Request/default backend name → validated canonical name.

    ``"approx"`` is not a numeric arithmetic but the Monte-Carlo serving
    tier (:mod:`repro.approx`); it is legal only on the surfaces that
    implement it (``/sat``, ``/query`` and ``/approx``), never as the
    service-wide default."""
    if backend is None:
        return "exact"
    if backend == "approx" and allow_approx:
        return backend
    if backend not in BACKEND_NAMES:
        choices = ", ".join(BACKEND_NAMES) + (", approx" if allow_approx else "")
        raise ValueError(f"unknown backend {backend!r} (choose from {choices})")
    return backend


def _approx_options(params: dict) -> dict:
    """Validated estimator keywords from request fields (absent fields
    fall to the estimator defaults; range errors surface as the
    estimator's ``ValueError`` → HTTP 400)."""
    options: dict = {}
    if params.get("epsilon") is not None:
        options["epsilon"] = float(params["epsilon"])
    if params.get("delta") is not None:
        options["delta"] = float(params["delta"])
    if params.get("max_samples") is not None:
        options["max_samples"] = int(params["max_samples"])
    if params.get("seed") is not None:
        options["seed"] = int(params["seed"])
    if params.get("rule") is not None:
        options["rule"] = str(params["rule"])
    return options


def _sort_value(value) -> float:
    return value.mid if isinstance(value, Interval) else value


def _guarded_event_values(pxdb, events, via: str = "dp") -> list:
    """``auto``-backend event probabilities, safe for *ranking*.

    One interval pass bounds every conditional probability.  An output is
    ambiguous when its sign is unproven (the enclosure straddles 0) or
    its rank is unproven (its enclosure overlaps an adjacent enclosure in
    midpoint order — by transitivity, non-adjacent enclosures cannot
    overlap unless some adjacent pair does).  Ambiguous outputs get one
    joint exact re-pass; certified outputs keep their midpoints.  The
    resulting keep/drop and sort decisions are exactly the exact
    backend's (mixed ``Fraction``/``float`` comparisons are exact in
    Python)."""
    intervals = pxdb.event_probabilities(events, via=via, backend="interval")
    n = len(intervals)
    ambiguous = {
        i for i, iv in enumerate(intervals) if iv.lo <= 0.0 < iv.hi
    }
    order = sorted(range(n), key=lambda i: -intervals[i].mid)
    for above, below in zip(order, order[1:]):
        if intervals[below].hi >= intervals[above].lo:
            ambiguous.add(above)
            ambiguous.add(below)
    GUARD.decided(n - len(ambiguous))
    values = [iv.mid for iv in intervals]
    if ambiguous:
        GUARD.fell_back(len(ambiguous))
        resolved = sorted(ambiguous)
        exact = pxdb.event_probabilities([events[i] for i in resolved], via=via)
        for index, value in zip(resolved, exact):
            values[index] = value
    return values


def sat_payload(
    entry: StoreEntry, backend: str | None = None, approx: dict | None = None
) -> dict:
    """CONSTRAINT-SAT⟨C⟩ — answered from the cached denominator (the store
    primed it from the warm engine's load-time pass, so this is O(1) for
    the exact backend; other backends re-evaluate in their arithmetic).

    ``backend="approx"`` estimates Pr(P ⊨ C) by *unconditioned* sampling
    instead (the denominator is what conditioning divides by, so the
    conditioned sampler cannot estimate it) and reports the confidence
    interval.  ``well_defined`` stays exact either way: the store proved
    Pr(P ⊨ C) > 0 with the load-time DP pass."""
    name = _resolve_backend(backend, allow_approx=True)
    if name == "approx":
        estimator = entry.pxdb.approx_estimator()
        with entry.sample_lock:
            result = estimator.estimate(
                entry.pxdb.condition, conditioned=False, **(approx or {})
            )
        return {
            "db": entry.name,
            "backend": name,
            "constraint_probability": repr(result.estimate),
            "constraint_probability_float": result.estimate,
            "well_defined": True,
            **result.as_dict(),
        }
    if name == "exact":
        value = entry.pxdb.constraint_probability()
    else:
        value = entry.pxdb.constraint_probability(backend=name)
    text, approx = _value_fields(value)
    return {
        "db": entry.name,
        "backend": name,
        "constraint_probability": text,
        "constraint_probability_float": approx,
        "well_defined": maybe_positive(value),
    }


def approx_query_payload(
    entry: StoreEntry, query_text: str, options: dict | None = None
) -> dict:
    """Approximate EVAL⟨Q, C⟩: one stopping rule per candidate answer,
    all fed by the same conditioned draws (``PXDB.approx_query``), under
    the entry's sample lock (draws mutate the warm engine caches).  Rows
    are sorted by estimate; every row carries its own interval and
    per-answer ``n`` (an answer that certifies early stops observing)."""
    options = options or {}
    with TRACER.span("query.bind"):
        query = Query.parse(query_text)
    with entry.sample_lock:
        table = entry.pxdb.approx_query(query, **options)
    results = list(table.values())
    decoded = decode_answers(table, entry.pxdb.pdoc)
    rows = [
        {
            "answer": [str(label) for label in labels],
            "probability": repr(result.estimate),
            "probability_float": result.estimate,
            "interval": [result.lo, result.hi],
            "n_samples": result.n,
            "stopped": result.stopped,
        }
        for labels, result in sorted(
            decoded.items(), key=lambda kv: (-kv[1].estimate, str(kv[0]))
        )
    ]
    payload = {
        "db": entry.name,
        "query": query_text,
        "backend": "approx",
        "answers": rows,
    }
    if results:
        first = results[0]
        payload.update(
            {
                "epsilon": first.epsilon,
                "delta": first.delta,
                "rule": first.rule,
                "seed": first.seed,
                "n_samples": max(result.n for result in results),
            }
        )
    return payload


def _answer_rows(
    entry: StoreEntry, answers, values, backend_name: str
) -> list[dict]:
    """Decode (answer, value) pairs into sorted JSON rows — the shared
    tail of ``/query``, ``/topk`` and the scheduler's batched requests,
    so every route renders identical rows for identical values."""
    with TRACER.span("query.decode", candidates=len(answers), backend=backend_name):
        table = {
            answer: value
            for answer, value in zip(answers, values)
            if maybe_positive(value)
        }
        rows = []
        for labels, value in sorted(
            decode_answers(table, entry.pxdb.pdoc).items(),
            key=lambda kv: (-_sort_value(kv[1]), str(kv[0])),
        ):
            text, approx = _value_fields(value)
            rows.append(
                {
                    "answer": [str(label) for label in labels],
                    "probability": text,
                    "probability_float": approx,
                }
            )
    return rows


def query_payload(
    entry: StoreEntry,
    query_text: str,
    *,
    coalesce: bool = True,
    backend: str | None = None,
    approx: dict | None = None,
) -> dict:
    """EVAL⟨Q, C⟩ — all candidate tuples evaluated in one joint DP pass,
    through the coalescer (shared with concurrent requests) unless
    ``coalesce=False`` (pool workers are single-request, no window to wait).

    A query text seen before (whose *result* cache entry was dropped — a
    parameter-only reload, or LRU pressure) takes the circuit route
    instead: the entry retained its candidate tuples and bound event
    formulas, which key the PXDB's compiled-circuit cache, so the answer
    is one parameter re-bind plus one forward sweep — no fresh DP, no
    re-matching.  Results are identical exact ``Fraction``s either way.

    Non-exact backends bypass the coalescer (it batches exact DP passes
    only); ``auto`` ranks answers through :func:`_guarded_event_values`,
    so its answer set and order are provably the exact backend's.
    ``backend="approx"`` routes to :func:`approx_query_payload` — the
    Monte-Carlo tier with per-answer confidence intervals.
    """
    name = _resolve_backend(backend, allow_approx=True)
    if name == "approx":
        return approx_query_payload(entry, query_text, approx)
    pdoc = entry.pxdb.pdoc
    known = entry.cached_events(query_text)
    if known is not None:
        answers, events = known
        if name == "auto":
            values = _guarded_event_values(entry.pxdb, list(events), via="circuit")
        else:
            values = entry.pxdb.event_probabilities(
                events, via="circuit",
                backend=None if name == "exact" else name,
            )
        entry.circuit_hits += 1
    else:
        with TRACER.span("query.bind"):
            query = Query.parse(query_text)
            answers = candidate_tuples(query, pdoc)
            events = [bound_formula(query, answer) for answer in answers]
        if name == "exact":
            if coalesce:
                values = entry.coalescer.event_probabilities(events)
            else:
                values = entry.pxdb.event_probabilities(events)
        elif name == "auto":
            values = _guarded_event_values(entry.pxdb, events)
        else:
            values = entry.pxdb.event_probabilities(events, backend=name)
        entry.cache_events(query_text, tuple(answers), tuple(events))
    rows = _answer_rows(entry, answers, values, name)
    return {"db": entry.name, "query": query_text, "backend": name, "answers": rows}


def topk_payload(
    entry: StoreEntry,
    query_text: str,
    k: int,
    *,
    coalesce: bool = True,
    backend: str | None = None,
) -> dict:
    """TOP-K⟨Q, C⟩ — the ``k`` most probable answers of a query.

    Evaluation is exactly ``/query`` (same candidate events, same joint
    pass, same sort), truncated to the top ``k`` rows — which makes the
    operation packable into the scheduler's heterogeneous batches: its
    events simply join the shared pass alongside everything else pending
    against the entry."""
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    payload = query_payload(
        entry, query_text, coalesce=coalesce, backend=backend
    )
    return {
        "db": entry.name,
        "query": query_text,
        "k": k,
        "backend": payload["backend"],
        "candidates": len(payload["answers"]),
        "answers": payload["answers"][:k],
    }


# Batchable operation names the scheduler understands (everything the
# heterogeneous joint pass can serve; /sample mutates engine state and
# /sweep is a vectorized numpy pass — neither joins a DP batch).
BATCH_OPS = ("sat", "query", "topk")


def batch_payloads(entry: StoreEntry, requests: list[dict]) -> list[dict]:
    """Execute a heterogeneous batch against one entry in ONE joint pass.

    ``requests`` are scheduler request dicts — ``{"op": "sat"}``,
    ``{"op": "query", "query_text": …}``, ``{"op": "topk", "query_text":
    …, "k": …}`` — in arrival order.  All candidate events of every
    query/topk request are concatenated into a single
    ``PXDB.event_probabilities`` call (one bottom-up DP traversal, the
    cached denominator shared), then sliced back out per request.  The
    arithmetic is exact and per-formula independent, so every returned
    ``Fraction`` is identical to running the requests sequentially
    through :func:`sat_payload` / :func:`query_payload` /
    :func:`topk_payload` — only the traversal is shared.

    Per-request *input* errors (a malformed query text, k < 1) are
    isolated: the failing request's slot carries an ``{"__error__": …}``
    marker and every other request still evaluates.  Errors of the joint
    pass itself (an inconsistent p-document) fail the whole batch.
    """
    plans: list[tuple] = []  # ("sat",) | ("rows", text, k, answers, slice)
    flat: list = []
    for request in requests:
        op = request.get("op")
        try:
            if op == "sat":
                plans.append(("sat",))
                continue
            if op not in BATCH_OPS:
                raise ValueError(f"unknown batch operation {op!r}")
            text = request.get("query_text")
            if text is None:
                raise ValueError("missing required parameter 'query'")
            k = None
            if op == "topk":
                k = int(request.get("k", 10))
                if k < 1:
                    raise ValueError(f"k must be positive, got {k}")
            known = entry.cached_events(text)
            if known is not None:
                answers, events = known
            else:
                with TRACER.span("query.bind"):
                    query = Query.parse(text)
                    answers = tuple(candidate_tuples(query, entry.pxdb.pdoc))
                    events = tuple(bound_formula(query, a) for a in answers)
                entry.cache_events(text, answers, events)
        except ValueError as error:
            plans.append(("error", {"type": "ValueError", "message": str(error)}))
            continue
        start = len(flat)
        flat.extend(events)
        plans.append(("rows", text, k, answers, (start, len(flat))))
    # The single shared pass.  With only sat requests (or only errors)
    # the event list is empty and the warm denominator answers alone.
    values = entry.pxdb.event_probabilities(flat)
    payloads: list[dict] = []
    for plan in plans:
        if plan[0] == "sat":
            payloads.append(sat_payload(entry))
        elif plan[0] == "error":
            payloads.append({"__error__": plan[1]})
        else:
            _, text, k, answers, (start, stop) = plan
            rows = _answer_rows(entry, answers, values[start:stop], "exact")
            if k is None:
                payloads.append(
                    {
                        "db": entry.name,
                        "query": text,
                        "backend": "exact",
                        "answers": rows,
                    }
                )
            else:
                payloads.append(
                    {
                        "db": entry.name,
                        "query": text,
                        "k": k,
                        "backend": "exact",
                        "candidates": len(rows),
                        "answers": rows[:k],
                    }
                )
    return payloads


def sample_payload(
    entry: StoreEntry,
    count: int = 1,
    seed: int | None = None,
    backend: str | None = None,
) -> dict:
    """SAMPLE⟨C⟩ — ``count`` draws on the entry's warm incremental engine.
    The per-entry lock serializes samplers (the engine cache is shared
    mutable state); a ``seed`` makes the draw sequence deterministic and
    identical to ``PXDB.sample`` with the same ``random.Random(seed)``.
    Non-exact backends draw on the entry's lazily warmed per-backend
    engines (``PXDB.sample`` dispatch); ``auto`` consumes the seed's
    random stream identically to exact, so seeded draws agree."""
    name = _resolve_backend(backend)
    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    rng = random.Random(seed)
    with entry.sample_lock:
        documents = [
            document_to_xml(
                entry.pxdb.sample(rng, backend=None if name == "exact" else name),
                style="tags",
            )
            for _ in range(count)
        ]
    return {
        "db": entry.name,
        "backend": name,
        "count": count,
        "seed": seed,
        "documents": documents,
    }


def check_payload(entry: StoreEntry, document_xml: str) -> dict:
    """Explain a concrete document's violations of the stored constraints
    (Definition 2.2 constraints only — c-formula constraints have no
    per-violation witness to describe)."""
    try:
        document = document_from_xml(document_xml)
    except ET.ParseError as error:
        raise ValueError(f"malformed XML document: {error}") from error
    constraints = [c for c in entry.constraints if isinstance(c, Constraint)]
    violations = explain_violations(document, constraints)
    return {
        "db": entry.name,
        "satisfies": not violations,
        "violations": [violation.describe() for violation in violations],
        "checked_constraints": len(constraints),
    }


def sweep_payload(
    entry: StoreEntry, bindings, pattern: str | None = None
) -> dict:
    """A vectorized parameter sweep over the entry's compiled circuit.

    ``bindings`` is a list of parameter vectors (canonical slot order —
    :func:`repro.pdoc.parameters.parameter_slots`; values may be numbers
    or exact fraction strings like ``"1/3"``).  Each binding is evaluated
    by the batched numpy circuit backend in **one** sweep: Pr(P ⊨ C) per
    binding, plus Pr(D ⊨ pattern) when a Boolean pattern is given.
    Concurrent sweeps against the same pattern coalesce column-wise into
    a single vectorized call (keyed by pattern text, so equal texts share
    one compiled circuit).
    """
    from fractions import Fraction

    from ..core.formulas import exists
    from ..xmltree.parser import parse_boolean_pattern

    if not isinstance(bindings, (list, tuple)) or not bindings:
        raise ValueError("bindings must be a non-empty list of parameter vectors")
    rows = []
    for i, row in enumerate(bindings):
        if not isinstance(row, (list, tuple)):
            raise ValueError(f"binding {i} is not a list of parameter values")
        try:
            values = [Fraction(value) for value in row]
        except (ValueError, TypeError, ZeroDivisionError) as error:
            raise ValueError(f"binding {i} is not numeric: {error}") from error
        for value in values:
            if not 0 <= value <= 1:
                raise ValueError(
                    f"binding {i} has a parameter {value} outside [0, 1]"
                )
        rows.append(values)
    if pattern is not None:
        key = f"sweep\x00{pattern}"
        known = entry.cached_events(key)
        if known is not None:
            events = known[1]
            entry.circuit_hits += 1
        else:
            events = (exists(parse_boolean_pattern(pattern)),)
            entry.cache_events(key, (), events)
    else:
        key = "sweep\x00"
        events = ()
    conditionals, denominators = entry.coalescer.sweep_probabilities(
        key, events, rows
    )
    payload = {
        "db": entry.name,
        "backend": "batch",
        "bindings": len(rows),
        "constraint_probability": [float(v) for v in denominators],
    }
    if pattern is not None:
        payload["pattern"] = pattern
        payload["event_probability"] = [float(v) for v in conditionals[0]]
    return payload


def approx_payload(
    entry: StoreEntry, event_text: str, options: dict | None = None
) -> dict:
    """The ``/approx`` route: a certified Monte-Carlo estimate of an
    arbitrary aggregate event (``repro.approx.events`` grammar — SUM and
    AVG atoms included, which the exact routes must reject by
    Proposition 7.2).  The seed is echoed back in the payload, so any
    reported answer is reproducible from its own JSON."""
    from ..approx.events import parse_event

    event = parse_event(event_text)
    estimator = entry.pxdb.approx_estimator()
    with entry.sample_lock:
        result = estimator.estimate(event, **(options or {}))
    return {
        "db": entry.name,
        "backend": "approx",
        "event": event_text,
        **result.as_dict(),
    }


# -- the service --------------------------------------------------------------

class PXDBService:
    """The transport-independent request surface over a document store."""

    def __init__(
        self,
        store: DocumentStore | None = None,
        *,
        metrics: Metrics | None = None,
        pool: EvaluationPool | None = None,
        slow_ms: float | None = None,
        default_backend: str = "exact",
        scheduler=None,
        slos: dict | None = None,
    ):
        self.store = store if store is not None else DocumentStore()
        self.metrics = metrics if metrics is not None else Metrics()
        self.pool = pool
        # Optional per-shard heterogeneous batch scheduler (the async
        # front end routes exact sat/query/topk requests through it; see
        # repro.service.frontend.scheduler).  None = unscheduled paths.
        self.scheduler = scheduler
        # Numeric backend used when a request does not name one; every
        # sat/query/sample request may override it with a "backend" field.
        self.default_backend = _resolve_backend(default_backend)
        # Slow-query log: requests at least this many milliseconds long are
        # logged (repro.service.slow) and kept in a bounded recent list
        # surfaced by /metrics.  None disables the log.
        self.slow_ms = slow_ms
        self._slow_requests: deque[dict] = deque(maxlen=64)
        self.version = package_version()
        # Cost observatory: every finished trace is folded into per-(route,
        # db, shard) resource attribution and a cumulative span profile via
        # the tracer's trace-finish hook.  The hook holds the bound method
        # weakly, so a dropped service deregisters itself.
        self.costs = CostObservatory(shard_resolver=self._shard_for)
        self.profiler = SpanProfiler()
        # Fallback profile source when tracing is off: a thread-stack
        # sampler, started lazily by the first /profile request that has
        # no span data to fold.
        self.stack_sampler = StackSampler()
        self.slo = SLOMonitor(self.metrics, slos)
        TRACER.on_trace_finish(self._harvest_trace)

    def _harvest_trace(self, root: dict, spans: list[dict]) -> None:
        """Tracer trace-finish observer: one fold feeds both the cost
        observatory and the span profiler."""
        self.costs.harvest(root, spans)
        self.profiler.add_trace(root, spans)

    def _shard_for(self, db: str) -> int | None:
        """The shard an entry is pinned to (sharded pools only)."""
        router = getattr(self.pool, "router", None)
        if router is None:
            return None
        try:
            return router.shard_for(db)
        except Exception:  # noqa: BLE001 — attribution must never raise
            return None

    @contextmanager
    def _request(self, op: str, **attrs):
        """Request envelope: root span (one trace per request) + slow-query
        detection.  The wall clock is measured independently of tracing, so
        the slow log works with tracing off (trace_id is then null)."""
        span = TRACER.span(f"request.{op}", **attrs)
        start = time.perf_counter()
        try:
            with span:
                yield span
        finally:
            duration_ms = (time.perf_counter() - start) * 1000.0
            if self.slow_ms is not None and duration_ms >= self.slow_ms:
                record = {
                    "op": op,
                    "db": attrs.get("db"),
                    "duration_ms": round(duration_ms, 3),
                    "trace_id": span.trace_id,
                    "time": time.time(),
                }
                self._slow_requests.append(record)
                self.metrics.increment("slow_requests")
                _slow_log.warning(
                    "slow request",
                    extra={k: v for k, v in record.items() if k != "time"},
                )

    # -- problem endpoints ----------------------------------------------------
    def _backend(self, backend: str | None, allow_approx: bool = False) -> str:
        return _resolve_backend(backend, allow_approx) if backend is not None \
            else self.default_backend

    def _record_approx(self, payload: dict) -> None:
        """Fold one approx payload into the sample counter and the
        bound-width histogram (one width per reported interval)."""
        rows = payload.get("answers")
        intervals = (
            [row.get("interval") for row in rows]
            if rows is not None
            else [payload.get("interval")]
        )
        for interval in intervals:
            if interval:
                self.metrics.observe_value(
                    "approx.bound_width", interval[1] - interval[0]
                )
        if payload.get("n_samples"):
            self.metrics.increment("approx.samples", payload["n_samples"])

    def sat(
        self, db: str, backend: str | None = None, approx: dict | None = None
    ) -> dict:
        name = self._backend(backend, allow_approx=True)
        with self._request("sat", db=db, backend=name), \
                self.metrics.timed("sat", route="/sat"):
            payload = self._dispatch("sat", db, {"backend": name, "approx": approx})
            if name == "approx":
                self._record_approx(payload)
            return payload

    def query(
        self,
        db: str,
        query_text: str,
        backend: str | None = None,
        approx: dict | None = None,
    ) -> dict:
        name = self._backend(backend, allow_approx=True)
        with self._request("query", db=db, query=query_text, backend=name) as span, \
                self.metrics.timed("query", route="/query"):
            entry = self.store.get(db)  # also refreshes mtime-stale entries
            if name == "approx":
                # Never cached: a Monte-Carlo payload is a fresh draw
                # unless seeded, and even seeded runs advance the
                # estimator's counters — repeatability is the *seed's*
                # contract, not the cache's.
                payload = self._dispatch(
                    "query", db,
                    {"query_text": query_text, "backend": name, "approx": approx},
                )
                self._record_approx(payload)
                return payload
            # Result-cache key carries the backend: the same text answered
            # in a different arithmetic is a different payload.
            cache_key = query_text if name == "exact" \
                else f"{name}\x00{query_text}"
            cached = entry.cached_query(cache_key)
            if cached is not None:
                self.metrics.increment("query.cache_hits")
                span.set(cache="hit")
                return cached
            payload = self._dispatch(
                "query", db, {"query_text": query_text, "backend": name}
            )
            entry.cache_query(cache_key, payload)
            return payload

    def topk(
        self,
        db: str,
        query_text: str,
        k: int = 10,
        backend: str | None = None,
    ) -> dict:
        """The ``k`` most probable answers of a query (``/topk``) — a
        ``/query`` evaluation truncated after the sort, so it batches
        into the same joint passes (coalescer or scheduler)."""
        name = self._backend(backend)
        with self._request("topk", db=db, query=query_text, k=k, backend=name) as span, \
                self.metrics.timed("topk", route="/topk"):
            entry = self.store.get(db)
            cache_key = f"topk\x00{k}\x00{name}\x00{query_text}"
            cached = entry.cached_query(cache_key)
            if cached is not None:
                self.metrics.increment("query.cache_hits")
                span.set(cache="hit")
                return cached
            payload = topk_payload(entry, query_text, k, backend=name)
            entry.cache_query(cache_key, payload)
            return payload

    def approx(
        self, db: str, event: str, options: dict | None = None
    ) -> dict:
        """A certified estimate of an arbitrary aggregate event
        (``/approx``); ``options`` are the validated estimator keywords
        (epsilon, delta, max_samples, seed, rule)."""
        with self._request("approx", db=db, event=event), \
                self.metrics.timed("approx", route="/approx"):
            payload = self._dispatch(
                "approx", db, {"event_text": event, "options": options}
            )
            self._record_approx(payload)
            return payload

    def sample(
        self,
        db: str,
        count: int = 1,
        seed: int | None = None,
        backend: str | None = None,
    ) -> dict:
        name = self._backend(backend)
        with self._request("sample", db=db, count=count, backend=name), \
                self.metrics.timed("sample", route="/sample"):
            return self._dispatch(
                "sample", db, {"count": count, "seed": seed, "backend": name}
            )

    def check(self, db: str, document_xml: str) -> dict:
        with self._request("check", db=db), self.metrics.timed("check", route="/check"):
            return check_payload(self.store.get(db), document_xml)

    def sweep(self, db: str, bindings, pattern: str | None = None) -> dict:
        """Batched parameter sweep (always in-process: the vectorized
        sweep is one numpy pass, and coalescing with concurrent sweeps
        needs the shared in-process circuit)."""
        with self._request(
            "sweep", db=db, bindings=len(bindings) if bindings else 0
        ), self.metrics.timed("sweep", route="/sweep"):
            return sweep_payload(self.store.get(db), bindings, pattern=pattern)

    # -- scheduler integration ------------------------------------------------
    BATCH_ROUTES = {"sat": "/sat", "query": "/query", "topk": "/topk"}

    def batchable_request(self, op: str, params: dict) -> dict | None:
        """The scheduler request dict for (op, params), or ``None`` when
        the request cannot join a heterogeneous batch (no scheduler, a
        non-exact backend, or a non-batchable operation).  Raises
        ``ValueError`` on missing fields, like the unbatched path."""
        if self.scheduler is None or op not in self.BATCH_ROUTES:
            return None
        if self._backend(params.get("backend"), allow_approx=True) != "exact":
            return None
        if op == "sat":
            return {"op": "sat"}
        text = params.get("query")
        if text is None:
            raise ValueError("missing required parameter 'query'")
        if op == "query":
            return {"op": "query", "query_text": text}
        return {"op": "topk", "query_text": text, "k": int(params.get("k", 10))}

    def submit_batched(self, op: str, db: str, request: dict):
        """Submit one batchable request to the scheduler; returns a
        ``concurrent.futures.Future`` resolving to the payload dict (the
        async front end awaits it without holding a thread).  Latency and
        error metrics are recorded when the future completes.

        The entry's query-result cache is consulted first and filled on
        success — the same keys the threaded :meth:`query`/:meth:`topk`
        paths use (batched requests are always exact), so a repeat of a
        served request resolves immediately instead of re-entering the
        scheduler, and the two front ends share one cache discipline."""
        self.metrics.increment(f"{op}.requests")
        start = time.perf_counter()
        cache_key = None
        entry = None
        if op == "query":
            cache_key = request["query_text"]
        elif op == "topk":
            cache_key = f"topk\x00{request['k']}\x00exact\x00{request['query_text']}"
        if cache_key is not None:
            try:
                entry = self.store.get(db)
            except (KeyError, ValueError):
                entry = None  # let the scheduler surface the real error
            if entry is not None:
                cached = entry.cached_query(cache_key)
                if cached is not None:
                    self.metrics.increment("query.cache_hits")
                    self.metrics.observe(
                        op, time.perf_counter() - start,
                        route=self.BATCH_ROUTES[op],
                    )
                    done: Future = Future()
                    done.set_result(cached)
                    return done

        def _done(future) -> None:
            self.metrics.observe(
                op, time.perf_counter() - start, route=self.BATCH_ROUTES[op]
            )
            if future.cancelled() or future.exception() is not None:
                self.metrics.increment(f"{op}.errors")
            elif entry is not None and cache_key is not None:
                entry.cache_query(cache_key, future.result())

        future = self.scheduler.submit(db, request)
        future.add_done_callback(_done)
        return future

    def drain(self, timeout: float = 5.0) -> None:
        """Graceful-stop drain (the SIGTERM path): flush every pending
        scheduler batch, then wait out in-flight pool work, so no
        accepted request is abandoned mid-evaluation."""
        if self.scheduler is not None:
            self.scheduler.drain(timeout)
        if self.pool is not None:
            quiesce = getattr(self.pool, "quiesce", None)
            if quiesce is not None:
                quiesce(timeout)

    # -- management endpoints -------------------------------------------------
    def register(
        self, name: str, pdocument_path: str, constraints_path: str | None = None
    ) -> dict:
        with self._request("register", db=name), self.metrics.timed("register", route="/register"):
            entry = self.store.register(name, pdocument_path, constraints_path)
            _log.info("registered database", extra={"db": name})
            return entry.info()

    def stats(self) -> dict:
        with self.metrics.timed("stats", route="/stats"):
            payload = {
                "store": self.store.stats(),
                "databases": {
                    entry.name: entry.info() for entry in self.store.loaded_entries()
                },
                "registered": self.store.names(),
                "version": self.version,
            }
            if self.pool is not None:
                payload["pool"] = self.pool.stats()
                payload["pool_workers"] = self.pool.worker_stats(timeout=1.0)
            return payload

    # -- observability endpoints ----------------------------------------------
    def trace(self, trace_id: str) -> dict:
        """One recorded trace, flat and as a nested tree (/trace/<id>)."""
        spans = TRACER.trace(trace_id)
        if not spans:
            raise KeyError(f"no recorded trace {trace_id!r}")
        return {
            "trace_id": trace_id,
            "spans": spans,
            "tree": build_tree(spans),
        }

    def traces(self, slow_ms: float = 0.0, limit: int = 50) -> dict:
        """Recent root spans, slowest first (/traces?slow_ms=&limit=)."""
        return {
            "traces": TRACER.traces(slow_ms=slow_ms, limit=limit),
            "tracing": TRACER.stats(),
        }

    def costs_payload(self) -> dict:
        """Per-request cost attribution (/costs): aggregate rows per
        (route, db, shard) plus top-N most expensive entries/requests."""
        return {"tracing": TRACER.enabled, **self.costs.snapshot()}

    def slo_payload(self) -> dict:
        """Burn-rate state of every configured SLO (/slo)."""
        return self.slo.payload()

    def profile_payload(self, fmt: str | None = None, source: str | None = None):
        """The cumulative profile (/profile[?format=collapsed][&source=…]).

        Source selection: the span-folded profile whenever span data
        exists (tracing on, or folded earlier); otherwise the thread-stack
        sampler, started lazily on first use.  ``format=collapsed``
        returns flamegraph-compatible text instead of JSON.
        """
        if source not in (None, "spans", "stacks"):
            raise ValueError(f"unknown profile source {source!r}")
        use_spans = source == "spans" or (
            source is None and (TRACER.enabled or self.profiler.traces_folded)
        )
        if use_spans:
            provider = self.profiler
        else:
            provider = self.stack_sampler
            if not provider.running:
                provider.start()
        if fmt == "collapsed":
            return provider.collapsed()
        if fmt not in (None, "json"):
            raise ValueError(f"unknown profile format {fmt!r}")
        return provider.snapshot()

    def dashboard_html(self) -> str:
        """The self-contained /debug/dashboard page."""
        return render_dashboard(
            self.metrics.snapshot(),
            self.slo.payload(),
            self.costs.snapshot(),
            TRACER.traces(limit=15),
            version=self.version,
        )

    def metrics_payload(self) -> dict:
        payload = self.metrics.snapshot()
        payload["version"] = self.version
        payload["tracing"] = TRACER.stats()
        # Guard counters of this process's auto-backend evaluations
        # (docs/NUMERIC.md); pool workers keep their own counters.
        payload["numeric"] = {
            "default_backend": self.default_backend,
            **GUARD.snapshot(),
        }
        payload["slow_requests"] = list(self._slow_requests)
        payload["store"] = self.store.stats()
        payload["engines"] = {
            entry.name: entry.engine.stats() for entry in self.store.loaded_entries()
        }
        payload["coalescers"] = {
            entry.name: entry.coalescer.stats()
            for entry in self.store.loaded_entries()
        }
        payload["circuits"] = {
            entry.name: {
                **entry.pxdb.circuit_stats(),
                "hits": entry.circuit_hits,
                "param_reloads": entry.param_reloads,
            }
            for entry in self.store.loaded_entries()
        }
        approx_stats = {
            entry.name: entry.pxdb.approx_stats()
            for entry in self.store.loaded_entries()
            if entry.pxdb.approx_stats()
        }
        if approx_stats:
            payload["approx"] = approx_stats
        if self.pool is not None:
            payload["pool"] = self.pool.stats()
            payload["pool_workers"] = self.pool.worker_stats(timeout=1.0)
        if self.scheduler is not None:
            payload["scheduler"] = self.scheduler.stats()
        payload["slo"] = self.slo.payload()
        payload["costs"] = {"records": self.costs.records_harvested}
        return payload

    def metrics_prometheus(self) -> str:
        """The /metrics surface in Prometheus text exposition format."""
        extra = [
            ("pxdb_info", {"version": self.version}, 1),
        ]
        guard = GUARD.snapshot()
        extra += [
            ("pxdb_numeric_guard_decisions_total", {}, guard["decisions"]),
            ("pxdb_numeric_guard_fallbacks_total", {}, guard["fallbacks"]),
        ]
        extra += [
            (f"pxdb_store_{key}", {}, value)
            for key, value in self.store.stats().items()
        ]
        for entry in self.store.loaded_entries():
            labels = {"db": entry.name}
            stats = entry.pxdb.circuit_stats()
            extra += [
                ("pxdb_circuit_cached", labels, stats["cached"]),
                ("pxdb_circuit_nodes", labels, stats["nodes"]),
                ("pxdb_circuit_rebinds_total", labels, stats["rebinds"]),
                ("pxdb_circuit_hits_total", labels, entry.circuit_hits),
                ("pxdb_entry_param_reloads_total", labels, entry.param_reloads),
            ]
        if self.scheduler is not None:
            extra += [
                (f"pxdb_scheduler_{key}", {}, value)
                for key, value in self.scheduler.stats().items()
                if isinstance(value, (int, float))
            ]
        if self.pool is not None:
            pool_stats = self.pool.stats()
            extra += [
                (f"pxdb_pool_{key}", {}, value)
                for key, value in pool_stats.items()
                if isinstance(value, (int, float))
            ]
            # Sharded pools report per-shard rows — one labeled gauge
            # family, so /sat-on-shard-0 vs shard-1 load is separable.
            for shard in pool_stats.get("per_shard", ()):
                labels = {"shard": str(shard.get("shard"))}
                extra += [
                    (f"pxdb_shard_{key}", labels, value)
                    for key, value in shard.items()
                    if key != "shard" and isinstance(value, (int, float))
                ]
            workers = self.pool.worker_stats(timeout=1.0)
            for pid, info in workers["workers"].items():
                labels = {"pid": pid}
                for key, value in (info.get("store") or {}).items():
                    if isinstance(value, (int, float)):
                        extra.append((f"pxdb_pool_worker_store_{key}", labels, value))
            for key, value in workers["summed"]["store"].items():
                extra.append((f"pxdb_pool_workers_store_{key}", {}, value))
            for key, value in workers["summed"]["engines"].items():
                extra.append((f"pxdb_pool_workers_engine_{key}", {}, value))
        extra += self.costs.prometheus_rows()
        extra += self.slo.prometheus_rows()
        return self.metrics.render_prometheus(extra)

    # -- internals ------------------------------------------------------------
    def _dispatch(self, op: str, db: str, kwargs: dict) -> dict:
        """Run ``op`` in the pool when one is attached, in-process otherwise.

        Degradation is deliberate and silent: a full queue, a timeout, a
        broken pool, or a database the workers do not have (in-memory
        entries have no file spec to warm workers from) all fall back to
        the in-process warm path and bump ``pool.fallbacks``.
        """
        if self.pool is not None:
            try:
                result = self.pool.run(op, db, kwargs)
                self.metrics.increment("pool.dispatched")
                return result
            except (PoolUnavailable, KeyError):
                self.metrics.increment("pool.fallbacks")
        entry = self.store.get(db)
        if op == "sat":
            return sat_payload(entry, **kwargs)
        if op == "query":
            return query_payload(entry, **kwargs)
        if op == "sample":
            return sample_payload(entry, **kwargs)
        if op == "approx":
            return approx_payload(entry, **kwargs)
        raise AssertionError(f"unknown operation {op!r}")


# -- transport-agnostic route dispatch ----------------------------------------
# One table of JSON routes, shared verbatim by the threaded HTTP skin
# below and the asyncio front end (repro.service.frontend.aserver) — the
# two transports differ only in how bytes arrive, never in what a route
# means or which status an error maps to.

def route_payload(service: PXDBService, route: str, params: dict,
                  *, prometheus: bool = False):
    """Resolve one parsed request to its payload (no error mapping).

    Returns a JSON-ready ``dict`` for every route except ``/metrics``
    with ``prometheus=True``, which returns the text exposition ``str``.
    Raises ``KeyError`` (unknown route/db), ``ValueError`` (bad input) or
    whatever the evaluation raises — :func:`dispatch_route` maps them.
    """
    if route == "/sat":
        return service.sat(
            _required(params, "db"),
            backend=params.get("backend"),
            approx=_approx_options(params),
        )
    if route == "/query":
        return service.query(
            _required(params, "db"),
            _required(params, "query"),
            backend=params.get("backend"),
            approx=_approx_options(params),
        )
    if route == "/topk":
        return service.topk(
            _required(params, "db"),
            _required(params, "query"),
            k=int(params.get("k", 10)),
            backend=params.get("backend"),
        )
    if route == "/approx":
        return service.approx(
            _required(params, "db"),
            _required(params, "event"),
            options=_approx_options(params),
        )
    if route == "/sample":
        seed = params.get("seed")
        return service.sample(
            _required(params, "db"),
            count=int(params.get("count", 1)),
            seed=int(seed) if seed is not None else None,
            backend=params.get("backend"),
        )
    if route == "/sweep":
        return service.sweep(
            _required(params, "db"),
            params.get("bindings"),
            pattern=params.get("pattern"),
        )
    if route == "/check":
        return service.check(
            _required(params, "db"), _required(params, "document")
        )
    if route == "/register":
        return service.register(
            _required(params, "name"),
            _required(params, "pdocument"),
            params.get("constraints"),
        )
    if route == "/stats":
        return service.stats()
    if route == "/traces":
        return service.traces(
            slow_ms=float(params.get("slow_ms", 0.0)),
            limit=int(params.get("limit", 50)),
        )
    if route.startswith("/trace/"):
        return service.trace(route[len("/trace/"):])
    if route == "/metrics":
        if prometheus:
            return service.metrics_prometheus()
        return service.metrics_payload()
    if route == "/costs":
        return service.costs_payload()
    if route == "/slo":
        return service.slo_payload()
    if route == "/profile":
        return service.profile_payload(
            fmt=params.get("format"), source=params.get("source")
        )
    if route == "/debug/dashboard":
        return service.dashboard_html()
    if route == "/health":
        return {
            "status": "ok",
            "version": service.version,
            "tracing": TRACER.enabled,
            "slo": service.slo.state(),
        }
    raise _NoSuchRoute(route)


class _NoSuchRoute(Exception):
    def __init__(self, route: str):
        super().__init__(route)
        self.route = route


def dispatch_route(service: PXDBService, route: str, params: dict,
                   *, prometheus: bool = False) -> tuple[int, dict | str]:
    """One request, fully handled: (HTTP status, JSON dict or plain text).

    The error contract both front ends share: unknown route/db → 404,
    bad input → 400, anything else → 500 with a one-line message (the
    traceback goes to the server-side log)."""
    try:
        payload = route_payload(service, route, params, prometheus=prometheus)
    except _NoSuchRoute as error:
        return 404, {"ok": False, "error": f"no such endpoint: {error.route}"}
    except KeyError as error:
        _log.info("not found", extra={"route": route, "error": _message(error)})
        return 404, {"ok": False, "error": _message(error)}
    except ValueError as error:
        _log.info("bad request", extra={"route": route, "error": str(error)})
        return 400, {"ok": False, "error": str(error)}
    except Exception as error:  # noqa: BLE001 — last-resort 500
        service.metrics.increment("http.internal_errors")
        _log.exception("internal error", extra={"route": route})
        return 500, {"ok": False, "error": f"{type(error).__name__}: {error}"}
    if isinstance(payload, str):
        return 200, payload
    return 200, {"ok": True, **payload}


def wants_prometheus(params: dict, accept: str | None) -> bool:
    """The /metrics content negotiation both front ends apply."""
    accept = accept or ""
    return params.get("format") == "prometheus" or (
        "text/plain" in accept and "application/json" not in accept
    )


def text_content_type(route: str) -> str:
    """Content type for a route's *text* (non-JSON) payload — shared by
    both front ends so /metrics scrapes, collapsed profiles and the HTML
    dashboard all negotiate identically."""
    if route == "/debug/dashboard":
        return "text/html; charset=utf-8"
    if route == "/metrics":
        return "text/plain; version=0.0.4; charset=utf-8"
    return "text/plain; charset=utf-8"


# -- the HTTP skin ------------------------------------------------------------

class _Handler(BaseHTTPRequestHandler):
    server_version = "PXDBService/1.0"
    protocol_version = "HTTP/1.1"  # keep-alive; every response carries a length

    @property
    def service(self) -> PXDBService:
        return self.server.service  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        parsed = urlparse(self.path)
        params = {key: values[-1] for key, values in parse_qs(parsed.query).items()}
        self._handle(parsed.path, params)

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length)
        try:
            params = json.loads(body) if body else {}
            if not isinstance(params, dict):
                raise ValueError("request body must be a JSON object")
        except json.JSONDecodeError as error:
            self._send(400, {"ok": False, "error": f"invalid JSON body: {error}"})
            return
        self._handle(urlparse(self.path).path, params)

    def _handle(self, route: str, params: dict) -> None:
        prometheus = route == "/metrics" and wants_prometheus(
            params, self.headers.get("Accept")
        )
        status, body = dispatch_route(
            self.service, route, params, prometheus=prometheus
        )
        if isinstance(body, str):
            self._send_text(status, body, text_content_type(route))
        else:
            self._send(status, body)

    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(
        self,
        status: int,
        text: str,
        content_type: str = "text/plain; version=0.0.4; charset=utf-8",
    ) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Per-request stderr chatter off by default (metrics cover it)."""
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)


def _required(params: dict, key: str) -> str:
    value = params.get(key)
    if value is None:
        raise ValueError(f"missing required parameter {key!r}")
    return value


def _message(error: KeyError) -> str:
    return str(error.args[0]) if error.args else str(error)


# -- lifecycle ----------------------------------------------------------------

def make_server(
    service: PXDBService | DocumentStore,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    metrics: Metrics | None = None,
    pool: EvaluationPool | None = None,
    verbose: bool = False,
    slow_ms: float | None = None,
    default_backend: str = "exact",
    slos: dict | None = None,
) -> ThreadingHTTPServer:
    """A bound (not yet serving) threaded HTTP server over ``service``.

    Accepts a bare :class:`~repro.service.store.DocumentStore` for
    convenience; ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address``).
    """
    if not isinstance(service, PXDBService):
        service = PXDBService(
            service, metrics=metrics, pool=pool, slow_ms=slow_ms,
            default_backend=default_backend, slos=slos,
        )
    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server


def start_server(
    service: PXDBService | DocumentStore,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    metrics: Metrics | None = None,
    pool: EvaluationPool | None = None,
) -> ThreadingHTTPServer:
    """Bind and serve on a daemon thread; returns the running server.
    Shut down with ``server.shutdown(); server.server_close()``."""
    server = make_server(service, host, port, metrics=metrics, pool=pool)
    thread = threading.Thread(
        target=server.serve_forever, name="pxdb-service", daemon=True
    )
    server.service_thread = thread  # type: ignore[attr-defined]
    thread.start()
    return server


def serve_forever(
    service: PXDBService | DocumentStore,
    host: str = "127.0.0.1",
    port: int = 8642,
    *,
    verbose: bool = False,
    slow_ms: float | None = None,
    default_backend: str = "exact",
    pool: EvaluationPool | None = None,
    drain_timeout: float = 5.0,
    on_bound=None,
    slos: dict | None = None,
) -> None:
    """Blocking serve loop for the CLI.

    Both Ctrl-C and SIGTERM stop it *cleanly*: SIGTERM (the container
    deploy signal) is translated into the same shutdown path as
    KeyboardInterrupt — stop accepting, drain in-flight work (scheduler
    flush + pool quiesce via :meth:`PXDBService.drain`), then
    ``server_close()`` — so a rolling restart never abandons accepted
    requests.  ``on_bound`` (if given) receives the bound (host, port)
    before serving starts.
    """
    server = make_server(
        service, host, port, verbose=verbose, slow_ms=slow_ms,
        pool=pool, default_backend=default_backend, slos=slos,
    )
    service = server.service  # type: ignore[attr-defined] — the wrapped one

    def _on_sigterm(signum, frame) -> None:
        _log.info("SIGTERM received, shutting down")
        # shutdown() blocks until the serve loop exits; the loop cannot
        # advance while the handler runs in its thread, so hand the call
        # to a helper thread and return from the handler immediately.
        threading.Thread(
            target=server.shutdown, name="pxdb-sigterm", daemon=True
        ).start()

    previous = None
    try:
        previous = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        pass  # not the main thread (tests): SIGTERM keeps its old meaning
    _log.info(
        "serving", extra={"host": host, "port": server.server_address[1]}
    )
    if on_bound is not None:
        on_bound(server.server_address[:2])
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
        service.drain(drain_timeout)
        server.server_close()
