"""The PXDB service layer: store-and-serve for constrained probabilistic XML.

The paper's three tractable problems — CONSTRAINT-SAT⟨C⟩, EVAL⟨Q, C⟩ and
SAMPLE⟨C⟩ — are all per-request operations over a *fixed* pair (P̃, C),
which makes them the ideal shape for a long-lived service: parse the
p-document once, compile the constraint c-formula once, keep the
incremental engine warm, and answer every subsequent request from hot
state instead of from cold CLI invocations.

Modules
-------

* :mod:`~repro.service.store`    — the named PXDB registry (load-once,
  LRU-bounded, file-mtime invalidated, warm engines + cached Pr(P ⊨ C));
* :mod:`~repro.service.coalesce` — batches concurrent formula-probability
  requests against one entry into single joint DP passes;
* :mod:`~repro.service.server`   — the stdlib JSON-over-HTTP server
  (``/sat``, ``/query``, ``/approx``, ``/sample``, ``/sweep``,
  ``/check``, ``/stats``, ``/metrics``, ``/register``) and the
  transport-independent :class:`~repro.service.server.PXDBService` it
  wraps; ``/sat`` and ``/query`` accept ``backend="approx"`` (the
  Monte-Carlo tier of :mod:`repro.approx`, confidence intervals in the
  payload);
* :mod:`~repro.service.pool`     — optional process-pool execution for
  CPU-bound evaluation, with per-worker engine warm-up and graceful
  degradation to in-process execution; the sharded variant pins each
  PXDB to one worker via consistent hashing;
* :mod:`~repro.service.frontend` — the asyncio front end
  (``repro serve --frontend async --shards N``): event-loop HTTP server,
  consistent-hash shard router, and a per-entry batch scheduler packing
  heterogeneous sat/query/topk requests into single joint DP passes;
* :mod:`~repro.service.client`   — the thin Python client (exact
  ``Fraction`` round-trips);
* :mod:`~repro.service.metrics`  — request counters, latency histograms
  (with exemplar trace ids) and engine cache hit-rates surfaced at
  ``/metrics``.

Observability: the server integrates :mod:`repro.obs` — per-request span
traces (``/trace/<id>``, ``/traces``), a slow-query log, structured
logging and pool-worker stat aggregation.  See ``docs/OBSERVABILITY.md``.

Start one with ``python -m repro serve --db name=doc.pxml:constraints.txt``
(see ``docs/SERVICE.md``).
"""

from .client import ServiceClient, ServiceError
from .coalesce import Coalescer
from .frontend import BatchScheduler, ShardRouter, build_sharded_service
from .frontend.aserver import serve_async, start_async_server
from .metrics import LatencyHistogram, Metrics, ValueHistogram
from .pool import EvaluationPool, PoolUnavailable, ShardedEvaluationPool
from .server import PXDBService, make_server, serve_forever, start_server
from .store import (
    DocumentStore,
    StoreEntry,
    load_pxdb,
    read_constraints,
    read_document,
    read_pdocument,
)

__all__ = [
    "BatchScheduler",
    "Coalescer",
    "DocumentStore",
    "EvaluationPool",
    "LatencyHistogram",
    "Metrics",
    "PXDBService",
    "PoolUnavailable",
    "ServiceClient",
    "ServiceError",
    "ShardRouter",
    "ShardedEvaluationPool",
    "StoreEntry",
    "ValueHistogram",
    "build_sharded_service",
    "load_pxdb",
    "make_server",
    "read_constraints",
    "read_document",
    "read_pdocument",
    "serve_async",
    "serve_forever",
    "start_async_server",
    "start_server",
]
