"""Service observability: request counters and latency histograms.

Everything here is stdlib-only and thread-safe; the server surfaces one
:class:`Metrics` snapshot at ``/metrics`` (request counts and error counts
per endpoint, latency histograms with estimated quantiles, store and
engine cache statistics merged in by the service).

Counters are deliberately coarse-grained — the point is to answer "is the
warm path actually warm" (engine hit rates, coalescer batch sizes, result
cache hits) and "where does request time go", not to replace a real APM.
"""

from __future__ import annotations

import re
import threading
import time
from bisect import bisect_left, bisect_right
from typing import Iterable

from ..obs.spans import TRACER

# Bucket upper bounds in seconds (the last bucket is +inf).  Spans the
# range from a cache-hit response (~100 µs) to a cold multi-second pass.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

# Bucket upper bounds for raw-value histograms.  Chosen for confidence
# interval widths (the approx tier's bound-width distribution): 2ε at the
# default ε=0.05 is 0.1, the tight E15 setting (ε=0.02) lands at 0.04.
VALUE_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.02, 0.04, 0.06, 0.1, 0.2, 0.5, 1.0,
)

# Bucket upper bounds for request-count histograms (scheduler batch
# sizes): powers of two up to the scheduler's default batch ceiling.
COUNT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class LatencyHistogram:
    """A fixed-bucket latency histogram (cumulative-style, Prometheus-like).

    ``observe`` is O(log buckets); ``summary`` reports count, total and
    mean alongside quantile estimates interpolated from the buckets —
    coarse by construction, but plenty to see a warm/cold split.
    """

    __slots__ = ("buckets", "counts", "count", "total", "exemplars")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last slot: > buckets[-1]
        self.count = 0
        self.total = 0.0
        # Per-bucket exemplar: the trace id of the most recent traced
        # observation that landed in the bucket — the jumping-off point
        # from "p99 is slow" to "here is a slow trace to look at".
        self.exemplars: list[str | None] = [None] * (len(buckets) + 1)

    def observe(self, seconds: float, trace_id: str | None = None) -> None:
        index = bisect_left(self.buckets, seconds)
        self.counts[index] += 1
        self.count += 1
        self.total += seconds
        if trace_id is not None:
            self.exemplars[index] = trace_id

    def exemplar_map(self) -> dict[str, str]:
        """{bucket upper bound (str) → trace id} for populated exemplars."""
        bounds = [str(b) for b in self.buckets] + ["+Inf"]
        return {
            bound: trace_id
            for bound, trace_id in zip(bounds, self.exemplars)
            if trace_id is not None
        }

    def quantile(self, q: float) -> float:
        """The q-quantile estimate in seconds, linearly interpolated
        inside the containing bucket (``histogram_quantile`` semantics —
        observations are assumed uniform within their bucket).

        Reporting the bucket's *upper bound* instead would systematically
        overstate every quantile — a lone 0.3 s observation in the
        (0.25, 0.5] bucket would read as a 500 ms p99.  Edge cases: an
        empty histogram reports 0; a quantile landing in the +Inf
        overflow bucket is clamped to the largest finite bound (that
        bucket has no upper edge to interpolate toward, and Prometheus
        clamps the same way).
        """
        if self.count == 0:
            return 0.0
        if not self.buckets:
            return float("inf")
        q = min(max(q, 0.0), 1.0)
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            reached = cumulative + bucket_count
            if reached >= target:
                if index >= len(self.buckets):
                    return self.buckets[-1]
                lower = self.buckets[index - 1] if index else 0.0
                upper = self.buckets[index]
                fraction = (target - cumulative) / bucket_count
                return lower + (upper - lower) * fraction
            cumulative = reached
        return self.buckets[-1]

    def summary(self) -> dict:
        return {
            "count": self.count,
            "total_ms": round(self.total * 1000, 3),
            "mean_ms": round(self.total / self.count * 1000, 3) if self.count else 0.0,
            "p50_ms": round(self.quantile(0.5) * 1000, 3),
            "p90_ms": round(self.quantile(0.9) * 1000, 3),
            "p99_ms": round(self.quantile(0.99) * 1000, 3),
        }


class ValueHistogram(LatencyHistogram):
    """A unitless histogram over raw values (confidence-interval widths,
    batch sizes, …): the same bucket/quantile machinery as
    :class:`LatencyHistogram`, with a summary that does *not* scale to
    milliseconds."""

    __slots__ = ()

    def __init__(self, buckets: tuple[float, ...] = VALUE_BUCKETS):
        super().__init__(buckets)

    def summary(self) -> dict:
        return {
            "count": self.count,
            "mean": round(self.total / self.count, 6) if self.count else 0.0,
            "p50": round(self.quantile(0.5), 6),
            "p90": round(self.quantile(0.9), 6),
            "p99": round(self.quantile(0.99), 6),
        }


class Metrics:
    """Named counters plus per-key latency histograms, behind one lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self._values: dict[str, ValueHistogram] = {}
        # Optional HTTP route per latency histogram ("sat" → "/sat"): the
        # Prometheus exposition adds it as a `route` label so per-route
        # p99s are separable without changing the JSON snapshot shape.
        self._routes: dict[str, str] = {}
        self.started_at = time.time()

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def observe(
        self,
        name: str,
        seconds: float,
        trace_id: str | None = None,
        route: str | None = None,
    ) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
            if route is not None:
                self._routes[name] = route
            histogram.observe(seconds, trace_id)

    def observe_value(
        self, name: str, value: float, buckets: tuple[float, ...] | None = None
    ) -> None:
        """Fold a raw (unitless) value into the named value histogram —
        the approx tier records every confidence-interval width here, the
        scheduler its batch sizes (``buckets`` picks the scale on first
        touch; later calls reuse the existing histogram)."""
        with self._lock:
            histogram = self._values.get(name)
            if histogram is None:
                histogram = self._values[name] = ValueHistogram(
                    buckets if buckets is not None else VALUE_BUCKETS
                )
            histogram.observe(value)

    def timed(self, name: str, route: str | None = None) -> "_Timer":
        """``with metrics.timed("query"): …`` — counts the request, times
        it, and counts ``<name>.errors`` when the block raises.  ``route``
        tags the latency histogram with its HTTP route for Prometheus."""
        return _Timer(self, name, route)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def latency_within(self, name: str, threshold_s: float) -> tuple[int, int]:
        """``(observations at or under threshold, total observations)``
        for the named latency histogram — the SLO engine's good/total
        split.  Conservative at bucket granularity: only buckets whose
        upper bound is ≤ ``threshold_s`` count as good, so a threshold
        inside a bucket treats that whole bucket as bad."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                return 0, 0
            index = bisect_right(histogram.buckets, threshold_s)
            return sum(histogram.counts[:index]), histogram.count

    def snapshot(self) -> dict:
        with self._lock:
            latency = {}
            for name, histogram in sorted(self._histograms.items()):
                summary = histogram.summary()
                exemplars = histogram.exemplar_map()
                if exemplars:
                    summary["exemplars"] = exemplars
                latency[name] = summary
            payload = {
                "uptime_s": round(time.time() - self.started_at, 3),
                "counters": dict(sorted(self._counters.items())),
                "latency": latency,
            }
            if self._values:
                payload["values"] = {
                    name: histogram.summary()
                    for name, histogram in sorted(self._values.items())
                }
            return payload

    def render_prometheus(
        self, extra: Iterable[tuple] = ()
    ) -> str:
        """The Prometheus text exposition (format 0.0.4) of this sink.

        Counters become ``pxdb_<name>_total``; each latency histogram
        becomes a classic ``pxdb_request_duration_seconds`` series (with
        *cumulative* ``le`` buckets, as the format requires — the internal
        buckets are disjoint).  ``extra`` rows are (metric name, label
        dict, value) triples rendered as gauges, or (name, labels, value,
        type) 4-tuples for explicitly typed series (the cost observatory
        emits counters this way).  Every metric gets exactly one
        ``# HELP`` and one ``# TYPE`` line, before its first sample.
        """
        with self._lock:
            counters = sorted(self._counters.items())
            histograms = [
                (name, self._routes.get(name), histogram.buckets,
                 list(histogram.counts), histogram.count, histogram.total)
                for name, histogram in sorted(self._histograms.items())
            ]
            values = [
                (name, histogram.buckets, list(histogram.counts),
                 histogram.count, histogram.total)
                for name, histogram in sorted(self._values.items())
            ]
            uptime = time.time() - self.started_at
        lines: list[str] = []
        described: set[str] = set()

        def header(metric: str, kind: str) -> None:
            # One HELP + TYPE pair per metric, before its first sample —
            # repeated headers are illegal in the exposition format.
            if metric in described:
                return
            described.add(metric)
            lines.append(f"# HELP {metric} {_help_text(metric, kind)}")
            lines.append(f"# TYPE {metric} {kind}")

        header("pxdb_uptime_seconds", "gauge")
        lines.append(f"pxdb_uptime_seconds {_format_value(uptime)}")
        for name, value in counters:
            metric = f"pxdb_{_sanitize(name)}_total"
            header(metric, "counter")
            lines.append(f"{metric} {value}")
        if histograms:
            metric = "pxdb_request_duration_seconds"
            header(metric, "histogram")
            for name, route, buckets, counts, count, total in histograms:
                label = f'op="{_sanitize(name)}"'
                if route is not None:
                    label += f',route="{_escape_label(route)}"'
                cumulative = 0
                for bound, bucket_count in zip(buckets, counts):
                    cumulative += bucket_count
                    lines.append(
                        f'{metric}_bucket{{{label},le="{_format_value(bound)}"}}'
                        f" {cumulative}"
                    )
                lines.append(f'{metric}_bucket{{{label},le="+Inf"}} {count}')
                lines.append(f"{metric}_sum{{{label}}} {_format_value(total)}")
                lines.append(f"{metric}_count{{{label}}} {count}")
        for name, buckets, counts, count, total in values:
            metric = f"pxdb_{_sanitize(name)}"
            header(metric, "histogram")
            cumulative = 0
            for bound, bucket_count in zip(buckets, counts):
                cumulative += bucket_count
                lines.append(
                    f'{metric}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
                )
            lines.append(f'{metric}_bucket{{le="+Inf"}} {count}')
            lines.append(f"{metric}_sum {_format_value(total)}")
            lines.append(f"{metric}_count {count}")
        # Extras must be grouped by metric: a metric's samples have to be
        # contiguous under a single header, and callers interleave
        # per-label rows (e.g. per-shard gauges).
        grouped: dict[str, tuple[str, list]] = {}
        for row in extra:
            name, labels, value = row[0], row[1], row[2]
            kind = row[3] if len(row) > 3 else "gauge"
            metric = _sanitize(name)
            grouped.setdefault(metric, (kind, []))[1].append((labels, value))
        for metric, (kind, samples) in grouped.items():
            header(metric, kind)
            for labels, value in samples:
                rendered = ",".join(
                    f'{key}="{_escape_label(item)}"'
                    for key, item in sorted(labels.items())
                )
                lines.append(
                    f"{metric}{{{rendered}}} {_format_value(value)}"
                    if rendered else f"{metric} {_format_value(value)}"
                )
        return "\n".join(lines) + "\n"


# Curated HELP strings for the families a dashboard actually reads;
# everything else falls back to a generated one-liner so the exposition
# is always complete (every series carries # HELP and # TYPE).
_HELP = {
    "pxdb_uptime_seconds": "Seconds since this metrics sink was created.",
    "pxdb_request_duration_seconds":
        "Request latency in seconds, by op and HTTP route.",
    "pxdb_scheduler_batch_size":
        "Requests packed per joint scheduler batch.",
    "pxdb_cost_requests_total":
        "Requests attributed per route, PXDB entry and shard.",
    "pxdb_cost_units_total":
        "Structural work units (DP nodes + gates + edges + samples) attributed.",
    "pxdb_cost_nodes_computed_total":
        "DP subtree signature distributions computed, attributed per route/db/shard.",
    "pxdb_cost_max_sig_width":
        "Widest signature distribution seen for this route/db/shard.",
    "pxdb_slo_burn_rate":
        "Error-budget burn rate over the trailing window (1.0 = budget pace).",
    "pxdb_slo_state":
        "SLO alert state: 0 ok, 1 warn, 2 page.",
    "pxdb_slo_budget": "Configured error budget (fraction of requests).",
}


def _help_text(metric: str, kind: str) -> str:
    text = _HELP.get(metric)
    if text is not None:
        return text
    stem = metric[5:] if metric.startswith("pxdb_") else metric
    if kind == "counter":
        stem = stem[:-6] if stem.endswith("_total") else stem
        return f"Monotonic count of {stem.replace('_', ' ')}."
    if kind == "histogram":
        return f"Distribution of {stem.replace('_', ' ')}."
    return f"Current {stem.replace('_', ' ')}."


def _sanitize(name: str) -> str:
    """A Prometheus-legal metric-name fragment ("query.cache_hits" →
    "query_cache_hits")."""
    return re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _escape_label(value) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value) -> str:
    """Shortest faithful rendering (integral floats print as integers)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    return str(int(value)) if value.is_integer() else repr(value)


class _Timer:
    __slots__ = ("metrics", "name", "route", "start")

    def __init__(self, metrics: Metrics, name: str, route: str | None = None):
        self.metrics = metrics
        self.name = name
        self.route = route

    def __enter__(self) -> "_Timer":
        self.metrics.increment(f"{self.name}.requests")
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # The active trace (if any) becomes the bucket's exemplar — the
        # timer runs inside the request's root span, so this is the id the
        # /trace endpoint resolves.
        self.metrics.observe(
            self.name,
            time.perf_counter() - self.start,
            TRACER.current_trace_id(),
            route=self.route,
        )
        if exc_type is not None:
            self.metrics.increment(f"{self.name}.errors")
