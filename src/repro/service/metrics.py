"""Service observability: request counters and latency histograms.

Everything here is stdlib-only and thread-safe; the server surfaces one
:class:`Metrics` snapshot at ``/metrics`` (request counts and error counts
per endpoint, latency histograms with estimated quantiles, store and
engine cache statistics merged in by the service).

Counters are deliberately coarse-grained — the point is to answer "is the
warm path actually warm" (engine hit rates, coalescer batch sizes, result
cache hits) and "where does request time go", not to replace a real APM.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left

# Bucket upper bounds in seconds (the last bucket is +inf).  Spans the
# range from a cache-hit response (~100 µs) to a cold multi-second pass.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class LatencyHistogram:
    """A fixed-bucket latency histogram (cumulative-style, Prometheus-like).

    ``observe`` is O(log buckets); ``summary`` reports count, total and
    mean alongside quantile estimates interpolated from the buckets —
    coarse by construction, but plenty to see a warm/cold split.
    """

    __slots__ = ("buckets", "counts", "count", "total")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last slot: > buckets[-1]
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        self.counts[bisect_left(self.buckets, seconds)] += 1
        self.count += 1
        self.total += seconds

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket containing the q-quantile (seconds)."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                if index < len(self.buckets):
                    return self.buckets[index]
                return float("inf")
        return float("inf")

    def summary(self) -> dict:
        return {
            "count": self.count,
            "total_ms": round(self.total * 1000, 3),
            "mean_ms": round(self.total / self.count * 1000, 3) if self.count else 0.0,
            "p50_ms": round(self.quantile(0.5) * 1000, 3),
            "p90_ms": round(self.quantile(0.9) * 1000, 3),
            "p99_ms": round(self.quantile(0.99) * 1000, 3),
        }


class Metrics:
    """Named counters plus per-key latency histograms, behind one lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self.started_at = time.time()

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
            histogram.observe(seconds)

    def timed(self, name: str) -> "_Timer":
        """``with metrics.timed("query"): …`` — counts the request, times
        it, and counts ``<name>.errors`` when the block raises."""
        return _Timer(self, name)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "uptime_s": round(time.time() - self.started_at, 3),
                "counters": dict(sorted(self._counters.items())),
                "latency": {
                    name: histogram.summary()
                    for name, histogram in sorted(self._histograms.items())
                },
            }


class _Timer:
    __slots__ = ("metrics", "name", "start")

    def __init__(self, metrics: Metrics, name: str):
        self.metrics = metrics
        self.name = name

    def __enter__(self) -> "_Timer":
        self.metrics.increment(f"{self.name}.requests")
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.metrics.observe(self.name, time.perf_counter() - self.start)
        if exc_type is not None:
            self.metrics.increment(f"{self.name}.errors")
