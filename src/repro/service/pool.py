"""Process-pool execution for CPU-bound evaluation.

The evaluator is pure Python over exact ``Fraction`` arithmetic, so under
the GIL the threaded server serializes DP passes no matter how many
request threads run.  This module moves the three problem operations
(``sat``, ``query``, ``sample``) into worker *processes*:

* **per-worker warm-up** — each worker is initialized with the store's
  file specs and builds its own :class:`~repro.service.store.DocumentStore`
  (parse once, compile once, denominator cached), so after the first
  request per worker the pool serves from hot state exactly like the
  in-process path;
* **bounded queue** — at most ``queue_limit`` requests are in flight;
  further submissions are rejected immediately rather than queued without
  bound;
* **graceful degradation** — a full queue, a result timeout, a broken
  pool, or a database the workers cannot load all raise
  :class:`PoolUnavailable`, which the server translates into silent
  in-process fallback (the warm store answers; ``pool.fallbacks`` counts
  it).  The service never returns an error *because* the pool is sick.

Workers execute the same payload builders as the in-process path
(:mod:`repro.service.server`), and the arithmetic is exact, so pooled
responses are byte-identical to in-process ones.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool

from ..obs.spans import TRACER
from .store import DocumentStore

# Worker-process global, set by the initializer.  Plain module state is
# the supported ProcessPoolExecutor idiom for per-worker caches.
_WORKER_STORE: DocumentStore | None = None


def _init_worker(
    specs: list[tuple[str, str, str | None]],
    engine_cache_cap: int | None,
    query_cache_cap: int,
) -> None:
    """Build this worker's warm store from the parent's file specs.

    A spec that fails to load is skipped (not fatal): the name simply
    stays unregistered in this worker, requests for it raise ``KeyError``
    and the parent falls back to its own in-process entry.
    """
    global _WORKER_STORE
    store = DocumentStore(
        max_entries=max(len(specs), 1),
        check_mtime=False,  # workers are warmed once; parent handles reloads
        engine_cache_cap=engine_cache_cap,
        query_cache_cap=query_cache_cap,
        coalesce_window=0.0,  # single-request workers have nobody to wait for
    )
    store.register_specs(specs)
    _WORKER_STORE = store


def _worker_run(op: str, name: str, payload: dict) -> dict:
    """Execute one operation against the worker's warm store.

    When the payload carries a ``_trace`` context (the parent's trace and
    span ids), the worker adopts it, records its spans against the same
    trace id, and returns them alongside the untouched result payload —
    the parent splices them into its own ring buffer, so the trace tree
    crosses the process boundary seamlessly.
    """
    trace_ctx = payload.pop("_trace", None)
    if trace_ctx is None:
        return _worker_op(op, name, payload)
    token = TRACER.activate(trace_ctx)
    try:
        with TRACER.span("pool.worker", op=op, db=name, worker_pid=os.getpid()):
            result = _worker_op(op, name, payload)
    finally:
        TRACER.deactivate(token)
        TRACER.enabled = False
    return {
        "__pool_payload__": result,
        "__pool_spans__": TRACER.drain(trace_ctx["trace_id"]),
    }


def _worker_op(op: str, name: str, payload: dict) -> dict:
    if op == "sleep":  # test hook: occupy a worker for a controlled time
        time.sleep(float(payload.get("seconds", 0.0)))
        return {"slept": float(payload.get("seconds", 0.0))}
    if op == "worker_stats":
        # Observability probe (see EvaluationPool.worker_stats): a tiny
        # stagger spreads concurrent probes across distinct idle workers.
        time.sleep(float(payload.get("stagger", 0.0)))
        return _worker_stats_payload()
    from .server import (
        approx_payload,
        batch_payloads,
        query_payload,
        sample_payload,
        sat_payload,
    )

    if _WORKER_STORE is None:
        raise KeyError("worker store is not initialized")
    entry = _WORKER_STORE.get(name)
    if op == "batch":
        # One heterogeneous scheduler batch → ONE joint pass in this
        # worker (per-request errors come back as __error__ markers).
        return {"payloads": batch_payloads(entry, payload["requests"])}
    if op == "sat":
        return sat_payload(
            entry,
            backend=payload.get("backend"),
            approx=payload.get("approx"),
        )
    if op == "query":
        return query_payload(
            entry,
            payload["query_text"],
            coalesce=False,
            backend=payload.get("backend"),
            approx=payload.get("approx"),
        )
    if op == "approx":
        return approx_payload(
            entry, payload["event_text"], options=payload.get("options")
        )
    if op == "sample":
        return sample_payload(
            entry,
            count=payload.get("count", 1),
            seed=payload.get("seed"),
            backend=payload.get("backend"),
        )
    raise ValueError(f"unknown pool operation {op!r}")


def _worker_stats_payload() -> dict:
    """This worker's warm-store and per-entry engine counters."""
    store = _WORKER_STORE
    if store is None:
        return {"pid": os.getpid(), "store": None, "engines": {}, "names": []}
    return {
        "pid": os.getpid(),
        "store": store.stats(),
        "engines": {
            entry.name: entry.engine.stats() for entry in store.loaded_entries()
        },
        # Which PXDBs this worker actually holds — the shard-confinement
        # witness (a sharded worker must list only its shard's names).
        "names": sorted(name for name, _, _ in store.specs()),
    }


class PoolUnavailable(RuntimeError):
    """The pool cannot serve this request *right now* — callers should
    degrade to in-process execution, not fail the request."""


class EvaluationPool:
    """A bounded process pool with warm per-worker document stores.

    ``specs`` is ``DocumentStore.specs()`` output — the (name, p-document
    path, constraints path) triples the workers load at startup.  Only
    file-backed entries can be pooled; in-memory entries always execute
    in-process via the fallback path.
    """

    def __init__(
        self,
        specs: list[tuple[str, str, str | None]] = (),
        *,
        workers: int = 2,
        timeout: float = 30.0,
        queue_limit: int | None = None,
        engine_cache_cap: int | None = None,
        query_cache_cap: int = 128,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.timeout = timeout
        self.queue_limit = queue_limit if queue_limit is not None else workers * 2
        self._slots = threading.BoundedSemaphore(self.queue_limit)
        self._lock = threading.Lock()
        self._active = 0  # futures submitted but not yet done
        self._quiet = threading.Condition(self._lock)
        self._broken = False
        self.submitted = 0
        self.completed = 0
        self.timeouts = 0
        self.rejected = 0
        self._worker_stats_cache: tuple[float, dict] | None = None
        self._executor = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(list(specs), engine_cache_cap, query_cache_cap),
        )

    def run(self, op: str, name: str, payload: dict | None = None,
            timeout: float | None = None) -> dict:
        """One pooled operation; raises :class:`PoolUnavailable` when the
        pool cannot answer in time (the request may still complete in the
        worker — the result is simply dropped) and re-raises the worker's
        own exception (``KeyError``/``ValueError``) when it fails."""
        if not TRACER.enabled:
            return self._run(op, name, payload or {}, timeout)
        with TRACER.span("pool.dispatch", op=op, db=name) as span:
            task = dict(payload or {})
            context = TRACER.context()
            if context is not None:
                task["_trace"] = context
            result = self._run(op, name, task, timeout)
            if isinstance(result, dict) and "__pool_payload__" in result:
                spans = result["__pool_spans__"]
                TRACER.ingest(spans)
                span.set(worker_spans=len(spans))
                result = result["__pool_payload__"]
        return result

    def _run(self, op: str, name: str, payload: dict,
             timeout: float | None) -> dict:
        if self._broken:
            raise PoolUnavailable("process pool is broken")
        if not self._slots.acquire(blocking=False):
            with self._lock:
                self.rejected += 1
            raise PoolUnavailable(
                f"pool queue is full ({self.queue_limit} requests in flight)"
            )
        try:
            future = self._executor.submit(_worker_run, op, name, payload)
        except Exception as error:  # shut down or broken executor
            self._slots.release()
            self._broken = True
            raise PoolUnavailable(f"pool submit failed: {error}") from error
        except BaseException:
            # KeyboardInterrupt/SystemExit must propagate — swallowing them
            # into the in-process fallback would make ^C evaluate the
            # request instead of stopping the server.  Release the slot so
            # a surviving pool stays usable.
            self._slots.release()
            raise
        with self._lock:
            self.submitted += 1
            self._active += 1
        future.add_done_callback(self._task_done)
        deadline = self.timeout if timeout is None else timeout
        try:
            result = future.result(deadline)
        except FuturesTimeout:
            future.cancel()
            with self._lock:
                self.timeouts += 1
            raise PoolUnavailable(
                f"pool result timed out after {deadline:g}s"
            ) from None
        except BrokenProcessPool as error:
            self._broken = True
            raise PoolUnavailable(f"process pool broke: {error}") from error
        with self._lock:
            self.completed += 1
        return result

    def _task_done(self, _future) -> None:
        self._slots.release()
        with self._quiet:
            self._active -= 1
            if self._active == 0:
                self._quiet.notify_all()

    def quiesce(self, timeout: float = 5.0) -> bool:
        """Wait until no submitted work is still running in the workers
        (or ``timeout`` expires) — the graceful-stop half of SIGTERM.
        Timed-out requests count: their futures run to completion in the
        worker even after the caller gave up on the result."""
        deadline = time.monotonic() + timeout
        with self._quiet:
            while self._active:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._quiet.wait(remaining)
        return True

    def worker_stats(self, timeout: float = 5.0, max_age: float = 5.0) -> dict:
        """Per-worker warm-store/engine counters, plus a summed view.

        ``ProcessPoolExecutor`` cannot address individual workers, so one
        probe task per worker is submitted with a small stagger (an idle
        worker picks each up; staggering keeps one worker from answering
        them all) and the results are deduplicated by pid.  Best-effort:
        busy workers are simply missing from the report.  Results are
        cached for ``max_age`` seconds so /metrics scrapes do not hammer
        the pool.
        """
        with self._lock:
            cached = self._worker_stats_cache
        if cached is not None and time.monotonic() - cached[0] < max_age:
            return cached[1]
        workers: dict[str, dict] = {}
        if not self._broken:
            futures = []
            try:
                for index in range(self.workers):
                    futures.append(
                        self._executor.submit(
                            _worker_run, "worker_stats", "",
                            {"stagger": 0.02 * index},
                        )
                    )
            except Exception:  # shut down mid-probe: report what we have
                futures = futures or []
            deadline = time.monotonic() + timeout
            for future in futures:
                remaining = max(deadline - time.monotonic(), 0.0)
                try:
                    row = future.result(remaining)
                except Exception:  # timeout/broken pool: skip this probe
                    continue
                workers[str(row["pid"])] = {
                    "store": row["store"],
                    "engines": row["engines"],
                    "names": row.get("names", []),
                }
        summed = _sum_worker_stats(workers)
        report = {"workers": workers, "summed": summed, "probed": len(workers)}
        with self._lock:
            self._worker_stats_cache = (time.monotonic(), report)
        return report

    def stats(self) -> dict:
        with self._lock:
            return {
                "workers": self.workers,
                "queue_limit": self.queue_limit,
                "timeout_s": self.timeout,
                "submitted": self.submitted,
                "completed": self.completed,
                "timeouts": self.timeouts,
                "rejected": self.rejected,
                "broken": self._broken,
            }

    def shutdown(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "EvaluationPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()


class ShardedEvaluationPool:
    """N per-shard :class:`EvaluationPool`\\ s behind one consistent-hash
    router — the memory-partitioned counterpart of the flat pool.

    The flat pool warms *every* spec in *every* worker (k workers = k full
    copies of the warm state).  Here each PXDB name is pinned to one shard
    by :class:`~repro.service.frontend.shards.ShardRouter`, and each
    shard's workers are initialized with **only that shard's specs**:
    per-worker memory is confined to its shard, every request for a name
    lands on the one pool whose caches are hot for it, and the batch
    scheduler's per-entry batches execute where the entry lives.

    The surface mirrors :class:`EvaluationPool` (``run`` / ``stats`` /
    ``worker_stats`` / ``quiesce`` / ``shutdown``), so
    :class:`~repro.service.server.PXDBService` uses either interchangeably;
    ``run_batch`` adds the scheduler's heterogeneous-batch entry point.
    """

    def __init__(
        self,
        specs: list[tuple[str, str, str | None]] = (),
        *,
        shards: int = 2,
        workers_per_shard: int = 1,
        replicas: int = 64,
        timeout: float = 30.0,
        queue_limit: int | None = None,
        engine_cache_cap: int | None = None,
        query_cache_cap: int = 128,
    ):
        from .frontend.shards import ShardRouter

        if shards < 1:
            raise ValueError("shards must be at least 1")
        self.router = ShardRouter(shards, replicas)
        self.shards = shards
        self.workers = shards * workers_per_shard
        self.timeout = timeout
        assignment = self.router.assign(name for name, _, _ in specs)
        by_name = {name: (name, pdoc, cons) for name, pdoc, cons in specs}
        self._shard_names = [assignment[shard] for shard in range(shards)]
        self.pools = [
            EvaluationPool(
                [by_name[name] for name in self._shard_names[shard]],
                workers=workers_per_shard,
                timeout=timeout,
                queue_limit=queue_limit,
                engine_cache_cap=engine_cache_cap,
                query_cache_cap=query_cache_cap,
            )
            for shard in range(shards)
        ]

    def pool_for(self, name: str) -> EvaluationPool:
        return self.pools[self.router.shard_for(name)]

    def run(self, op: str, name: str, payload: dict | None = None,
            timeout: float | None = None) -> dict:
        return self.pool_for(name).run(op, name, payload, timeout)

    def run_batch(self, name: str, requests: list[dict],
                  timeout: float | None = None) -> list[dict]:
        """Execute one heterogeneous scheduler batch inside the shard
        worker that owns ``name``; returns the per-request payloads."""
        return self.run("batch", name, {"requests": requests}, timeout)["payloads"]

    def quiesce(self, timeout: float = 5.0) -> bool:
        deadline = time.monotonic() + timeout
        drained = True
        for pool in self.pools:
            remaining = max(deadline - time.monotonic(), 0.0)
            drained = pool.quiesce(remaining) and drained
        return drained

    def stats(self) -> dict:
        per_shard = []
        totals = {"submitted": 0, "completed": 0, "timeouts": 0, "rejected": 0}
        broken = False
        for shard, pool in enumerate(self.pools):
            row = pool.stats()
            broken = broken or row["broken"]
            for key in totals:
                totals[key] += row[key]
            per_shard.append(
                {"shard": shard, "entries": len(self._shard_names[shard]), **row}
            )
        return {
            "workers": self.workers,
            "shards": self.shards,
            "queue_limit": sum(pool.queue_limit for pool in self.pools),
            "timeout_s": self.timeout,
            **totals,
            "broken": broken,
            "per_shard": per_shard,
        }

    def shard_assignment(self) -> dict[int, list[str]]:
        """{shard → the PXDB names its workers warm} (confinement view)."""
        return {
            shard: list(names) for shard, names in enumerate(self._shard_names)
        }

    def worker_stats(self, timeout: float = 5.0, max_age: float = 5.0) -> dict:
        workers: dict[str, dict] = {}
        per_shard = []
        deadline = time.monotonic() + timeout
        for shard, pool in enumerate(self.pools):
            remaining = max(deadline - time.monotonic(), 0.1)
            report = pool.worker_stats(timeout=remaining, max_age=max_age)
            per_shard.append({"shard": shard, "probed": report["probed"]})
            for pid, row in report["workers"].items():
                workers[pid] = {**row, "shard": shard}
        return {
            "workers": workers,
            "summed": _sum_worker_stats(workers),
            "probed": len(workers),
            "per_shard": per_shard,
        }

    def shutdown(self) -> None:
        for pool in self.pools:
            pool.shutdown()

    def __enter__(self) -> "ShardedEvaluationPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()


def _sum_worker_stats(workers: dict[str, dict]) -> dict:
    """Element-wise sums of the numeric per-worker counters (rates and
    gauges like ``hit_rate``/``max_entries`` are deliberately excluded)."""
    summable_store = ("loads", "reloads", "param_reloads", "evictions", "hits",
                      "registered", "loaded")
    summable_engine = ("runs", "cache_hits", "cache_misses", "nodes_computed",
                       "cache_entries", "cache_evictions")
    store_sum = {key: 0 for key in summable_store}
    engine_sum = {key: 0 for key in summable_engine}
    for info in workers.values():
        store = info.get("store") or {}
        for key in summable_store:
            store_sum[key] += int(store.get(key, 0))
        for engine in (info.get("engines") or {}).values():
            for key in summable_engine:
                engine_sum[key] += int(engine.get(key, 0))
    return {"store": store_sum, "engines": engine_sum}
