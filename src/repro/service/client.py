"""The thin Python client for the PXDB service.

Stdlib-only (``urllib``); probabilities round-trip as exact ``Fraction``
strings, so a client-side comparison against a direct
:class:`~repro.core.pxdb.PXDB` call can demand *equality*, not closeness.
Used by the test suite, the service benchmark, and the CI smoke job.

    client = ServiceClient("http://127.0.0.1:8642")
    client.sat("uni")                      # Fraction(5, 8)
    client.query("uni", "*//'ph.d. st.'/$name")
    client.sample("uni", count=3, seed=7)  # three XML documents
"""

from __future__ import annotations

import json
import random
import time
from fractions import Fraction
from urllib import error as urlerror
from urllib import request as urlrequest
from urllib.parse import urlencode


class ServiceError(RuntimeError):
    """A failed service call; ``status`` is the HTTP code (None when the
    server was unreachable)."""

    def __init__(self, message: str, status: int | None = None):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """One service endpoint, many calls.  Thread-safe (no shared state
    beyond the base URL), so concurrent-client tests share one instance.

    ``retries``/``backoff`` turn on bounded retry for *idempotent* calls
    (sat/query/topk/stats/metrics/…): a connection failure or reset is
    retried up to ``retries`` times with jittered exponential backoff
    (``backoff``, ``2·backoff``, ``4·backoff``, … seconds, each scaled by
    a random factor in [0.5, 1.0) so a thundering herd of clients does
    not re-synchronize).  HTTP *errors* are never retried — the server
    answered; asking again will not change a 400/404/500.  ``sample`` and
    ``approx`` are never retried regardless of the setting: they draw
    from the server's RNG, so a retry after an ambiguous failure could
    consume entropy twice (non-idempotent).
    """

    def __init__(self, base_url: str, timeout: float = 60.0, *,
                 retries: int = 0, backoff: float = 0.05):
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if backoff < 0:
            raise ValueError("backoff must be non-negative")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff

    # -- transport ------------------------------------------------------------
    def _request(self, path: str, payload: dict | None = None,
                 params: dict | None = None, *, idempotent: bool = True) -> dict:
        attempts = self.retries + 1 if idempotent else 1
        for attempt in range(attempts):
            try:
                return self._request_once(path, payload, params)
            except ServiceError as error:
                # status set → an HTTP response arrived: never retry.
                if error.status is not None or attempt == attempts - 1:
                    raise
                delay = self.backoff * (2 ** attempt)
                time.sleep(delay * (0.5 + random.random() / 2))
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(self, path: str, payload: dict | None,
                      params: dict | None) -> dict:
        url = self.base_url + path
        if params:
            url += "?" + urlencode(params)
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urlrequest.Request(url, data=data, headers=headers)
        try:
            with urlrequest.urlopen(request, timeout=self.timeout) as response:
                body = json.loads(response.read().decode("utf-8"))
        except urlerror.HTTPError as error:
            try:
                message = json.loads(error.read().decode("utf-8")).get(
                    "error", str(error)
                )
            except (ValueError, OSError):
                message = str(error)
            raise ServiceError(message, status=error.code) from None
        except urlerror.URLError as error:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {error.reason}"
            ) from None
        except (ConnectionResetError, ConnectionRefusedError) as error:
            # A reset mid-response bypasses urllib's URLError wrapping.
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {error}"
            ) from None
        if not body.get("ok", False):
            raise ServiceError(str(body.get("error", "service error")))
        return body

    def _request_text(self, path: str, params: dict | None = None) -> str:
        """GET a text-rendering route (``/profile?format=collapsed``,
        ``/debug/dashboard``) — same retry policy as idempotent JSON
        calls, but the body is returned verbatim."""
        attempts = self.retries + 1
        for attempt in range(attempts):
            try:
                return self._request_text_once(path, params)
            except ServiceError as error:
                if error.status is not None or attempt == attempts - 1:
                    raise
                delay = self.backoff * (2 ** attempt)
                time.sleep(delay * (0.5 + random.random() / 2))
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_text_once(self, path: str, params: dict | None) -> str:
        url = self.base_url + path
        if params:
            url += "?" + urlencode(params)
        try:
            with urlrequest.urlopen(url, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urlerror.HTTPError as error:
            try:
                message = json.loads(error.read().decode("utf-8")).get(
                    "error", str(error)
                )
            except (ValueError, OSError):
                message = str(error)
            raise ServiceError(message, status=error.code) from None
        except urlerror.URLError as error:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {error.reason}"
            ) from None
        except (ConnectionResetError, ConnectionRefusedError) as error:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {error}"
            ) from None

    # -- the three problems ---------------------------------------------------
    def sat(self, db: str) -> Fraction:
        """Pr(P ⊨ C) of the stored PXDB, exact."""
        return Fraction(self.sat_info(db)["constraint_probability"])

    def sat_info(self, db: str) -> dict:
        return self._request("/sat", {"db": db})

    def query(self, db: str, query: str) -> dict[tuple, Fraction]:
        """Per-answer probabilities keyed by label tuples, exact — the
        same shape as ``PXDB.query_labels``."""
        return {
            tuple(row["answer"]): Fraction(row["probability"])
            for row in self.query_info(db, query)["answers"]
        }

    def query_info(self, db: str, query: str) -> dict:
        return self._request("/query", {"db": db, "query": query})

    def topk(self, db: str, query: str, k: int = 10) -> dict[tuple, Fraction]:
        """The ``k`` most probable answers of ``query``, exact — same
        shape as :meth:`query`, truncated after the probability sort."""
        return {
            tuple(row["answer"]): Fraction(row["probability"])
            for row in self.topk_info(db, query, k)["answers"]
        }

    def topk_info(self, db: str, query: str, k: int = 10) -> dict:
        return self._request("/topk", {"db": db, "query": query, "k": k})

    def sample(self, db: str, count: int = 1, seed: int | None = None) -> list[str]:
        """``count`` sampled documents as XML strings (deterministic given
        ``seed`` — identical to ``PXDB.sample(random.Random(seed))``)."""
        body = self._request(
            "/sample", {"db": db, "count": count, "seed": seed},
            idempotent=False,
        )
        return body["documents"]

    def approx(
        self,
        db: str,
        event: str,
        *,
        epsilon: float | None = None,
        delta: float | None = None,
        max_samples: int | None = None,
        seed: int | None = None,
        rule: str | None = None,
    ) -> dict:
        """A certified Monte-Carlo estimate of an aggregate event (the
        ``/approx`` route): the payload carries ``estimate``, the
        confidence ``interval`` [lo, hi], ``n_samples`` and the echoed
        ``seed`` — pass the same seed to reproduce the answer exactly."""
        body = {
            "db": db,
            "event": event,
            "epsilon": epsilon,
            "delta": delta,
            "max_samples": max_samples,
            "seed": seed,
            "rule": rule,
        }
        return self._request(
            "/approx",
            {key: value for key, value in body.items() if value is not None},
            idempotent=False,
        )

    def check(self, db: str, document_xml: str) -> dict:
        return self._request("/check", {"db": db, "document": document_xml})

    def sweep(self, db: str, bindings, pattern: str | None = None) -> dict:
        """Batched parameter sweep: ``bindings`` is a list of parameter
        vectors (numbers or fraction strings, canonical slot order); the
        response carries per-binding ``constraint_probability`` (and
        ``event_probability`` when a Boolean ``pattern`` is given)."""
        body: dict = {"db": db, "bindings": [list(map(str, row)) for row in bindings]}
        if pattern is not None:
            body["pattern"] = pattern
        return self._request("/sweep", body)

    # -- management -----------------------------------------------------------
    def register(self, name: str, pdocument_path: str,
                 constraints_path: str | None = None) -> dict:
        return self._request(
            "/register",
            {
                "name": name,
                "pdocument": str(pdocument_path),
                "constraints": (
                    str(constraints_path) if constraints_path is not None else None
                ),
            },
        )

    def stats(self) -> dict:
        return self._request("/stats")

    def metrics(self) -> dict:
        return self._request("/metrics")

    def health(self) -> bool:
        return self._request("/health").get("status") == "ok"

    def health_info(self) -> dict:
        """The full /health payload (status, version, tracing flag)."""
        return self._request("/health")

    # -- cost observatory -----------------------------------------------------
    def costs(self) -> dict:
        """The /costs payload: per-(route, db, shard) aggregates plus the
        most expensive entries and requests."""
        return self._request("/costs")

    def slo(self) -> dict:
        """The /slo payload: burn rates and alert state per objective."""
        return self._request("/slo")

    def profile(self, fmt: str = "collapsed", source: str | None = None):
        """The cumulative profile — a collapsed-stack string when ``fmt``
        is ``"collapsed"`` (flamegraph-compatible), the JSON payload
        otherwise.  ``source`` forces ``"spans"`` or ``"stacks"``."""
        params: dict = {"format": fmt}
        if source is not None:
            params["source"] = source
        if fmt == "collapsed":
            return self._request_text("/profile", params)
        return self._request("/profile", params)

    # -- tracing --------------------------------------------------------------
    def trace(self, trace_id: str) -> dict:
        """One recorded trace: flat ``spans`` plus the nested ``tree``."""
        return self._request(f"/trace/{trace_id}")

    def traces(self, slow_ms: float = 0.0, limit: int = 50) -> list[dict]:
        """Recent root-span summaries, slowest first."""
        return self._request(
            "/traces", params={"slow_ms": slow_ms, "limit": limit}
        )["traces"]
