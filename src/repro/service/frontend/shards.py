"""Consistent-hash shard routing: every PXDB name pins to one worker.

The threaded pool warms *every* store entry in *every* worker — k workers
hold k copies of the full warm state, and a request may land on any of
them, so per-worker caches see a k-way diluted request stream.  The
sharded front end instead pins each PXDB name to exactly one shard: the
worker behind that shard warms only its shard's entries (memory is
partitioned, not replicated) and sees *all* traffic for them (its
engine/circuit caches stay maximally hot, and the batch scheduler can
pack every pending request for an entry into one pass, because they all
route to the same place).

Routing is a classic consistent-hash ring with virtual nodes: each shard
owns ``replicas`` pseudo-random ring positions (blake2b of
``"shard-<i>/<r>"`` — deterministic across processes and Python runs,
unlike ``hash()``), and a name maps to the first shard position at or
after the name's own ring position.  Consistency is the point: growing
the ring from N to N+1 shards moves only ~1/(N+1) of the names, so a
redeploy with a different ``--shards`` re-warms a fraction of the corpus
instead of all of it.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

_RING_BITS = 64


def _position(key: str) -> int:
    """A stable 64-bit ring position for ``key``."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardRouter:
    """Maps PXDB names to shard indexes ``0..shards-1`` consistently.

    ``replicas`` virtual nodes per shard smooth the partition (with one
    position per shard, a 2-shard ring can split 90/10; with 64 replicas
    the imbalance is a few percent).  Routers built with the same
    ``(shards, replicas)`` agree in every process — the front end and the
    pool workers never need to exchange assignments.
    """

    __slots__ = ("shards", "replicas", "_positions", "_owners")

    def __init__(self, shards: int, replicas: int = 64):
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self.shards = shards
        self.replicas = replicas
        ring = sorted(
            (_position(f"shard-{shard}/{replica}"), shard)
            for shard in range(shards)
            for replica in range(replicas)
        )
        self._positions = [position for position, _ in ring]
        self._owners = [shard for _, shard in ring]

    def shard_for(self, name: str) -> int:
        """The shard owning ``name`` — first ring position clockwise."""
        index = bisect_right(self._positions, _position(name))
        if index == len(self._positions):
            index = 0  # wrap around the ring
        return self._owners[index]

    def assign(self, names) -> dict[int, list[str]]:
        """{shard → its names} for a whole corpus (warming plan order is
        the caller's iteration order)."""
        assignment: dict[int, list[str]] = {shard: [] for shard in range(self.shards)}
        for name in names:
            assignment[self.shard_for(name)].append(name)
        return assignment

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return f"ShardRouter(shards={self.shards}, replicas={self.replicas})"
