"""The async sharded front end: event loop + shard router + batch scheduler.

Three cooperating pieces (each documented in its module):

* :mod:`~repro.service.frontend.shards` — consistent-hash routing pinning
  each PXDB name to one shard, so workers warm only their shard's entries;
* :mod:`~repro.service.frontend.scheduler` — per-entry heterogeneous batch
  scheduling packing pending sat/query/topk requests into one joint pass;
* :mod:`~repro.service.frontend.aserver` — the asyncio HTTP server that
  awaits scheduler futures without holding threads.

:func:`build_sharded_service` wires them to a store:
``repro serve --frontend async --shards N`` is this factory plus
:func:`~repro.service.frontend.aserver.serve_async`.
"""

from __future__ import annotations

from .scheduler import BatchScheduler
from .shards import ShardRouter

__all__ = [
    "BatchScheduler",
    "ShardRouter",
    "build_sharded_service",
    "AsyncHTTPFrontend",
    "AsyncServerHandle",
    "serve_async",
    "start_async_server",
]

# aserver pulls in the whole route table (repro.service.server), which
# itself imports the pool → this package: expose it lazily to keep the
# import graph acyclic.
_ASERVER_EXPORTS = {
    "AsyncHTTPFrontend",
    "AsyncServerHandle",
    "serve_async",
    "start_async_server",
}


def __getattr__(name: str):
    if name in _ASERVER_EXPORTS:
        from . import aserver

        return getattr(aserver, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def build_sharded_service(
    store,
    *,
    shards: int = 2,
    workers_per_shard: int = 1,
    replicas: int = 64,
    window: float = 0.002,
    max_batch: int = 64,
    metrics=None,
    slow_ms: float | None = None,
    default_backend: str = "exact",
    pool_timeout: float = 30.0,
    queue_limit: int | None = None,
    slos: dict | None = None,
):
    """A :class:`~repro.service.server.PXDBService` wired for the async
    front end: sharded pool + batch scheduler over ``store``.

    The scheduler's runner executes each batch inside the owning shard
    worker and degrades to an in-process joint pass on the parent store
    when the pool cannot take it (full queue, broken pool, a name the
    workers do not hold) — the same silent-fallback contract as the
    flat pool, counted in ``scheduler.fallbacks``.
    """
    from ..metrics import Metrics
    from ..pool import PoolUnavailable, ShardedEvaluationPool
    from ..server import PXDBService, batch_payloads

    metrics = metrics if metrics is not None else Metrics()
    pool = ShardedEvaluationPool(
        store.specs(),
        shards=shards,
        workers_per_shard=workers_per_shard,
        replicas=replicas,
        timeout=pool_timeout,
        queue_limit=queue_limit,
    )

    def runner(db: str, requests: list[dict]) -> list[dict]:
        try:
            return pool.run_batch(db, requests)
        except (PoolUnavailable, KeyError):
            metrics.increment("scheduler.fallbacks")
            return batch_payloads(store.get(db), requests)

    scheduler = BatchScheduler(
        runner,
        window=window,
        max_batch=max_batch,
        max_workers=max(shards, 1),
        metrics=metrics,
    )
    return PXDBService(
        store,
        metrics=metrics,
        pool=pool,
        scheduler=scheduler,
        slow_ms=slow_ms,
        default_backend=default_backend,
        slos=slos,
    )
