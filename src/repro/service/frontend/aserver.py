"""Asyncio HTTP front end: thousands of connections, few threads.

The threaded server spends one OS thread per in-flight request, and that
thread *blocks* for the whole evaluation — under heavy concurrency most
of the process is parked threads.  This front end accepts connections on
a single event loop, parses the same JSON routes, and splits requests by
shape:

* **batchable** exact ``/sat``, ``/query``, ``/topk`` requests are handed
  to the :class:`~repro.service.frontend.scheduler.BatchScheduler` and
  awaited via ``asyncio.wrap_future`` — the event loop holds *no thread*
  while a request waits inside a batching window or a shard worker, which
  is exactly what lets thousands of clients pile onto a handful of joint
  DP passes;
* everything else (``/sample``, ``/approx``, ``/metrics``, …) runs the
  shared transport-agnostic :func:`repro.service.server.dispatch_route`
  on the default executor, preserving the threaded server's semantics
  and error contract verbatim.

The HTTP surface is deliberately identical to the threaded front end —
same routes, same params, same status mapping, same Prometheus content
negotiation — so :class:`~repro.service.client.ServiceClient` and every
existing test speak to either interchangeably.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from urllib.parse import parse_qs, urlparse

from ...obs.logs import get_logger
from ..server import (
    PXDBService,
    _message as _key_message,
    dispatch_route,
    text_content_type,
    wants_prometheus,
)

_log = get_logger("service.aserver")

_ROUTE_OPS = {"/sat": "sat", "/query": "query", "/topk": "topk"}
_MAX_HEAD_BYTES = 64 * 1024
_MAX_BODY_BYTES = 16 * 1024 * 1024
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}
_PROMETHEUS_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _BadRequest(Exception):
    """Malformed HTTP — answer 400 and drop the connection."""


def _encode_response(
    status: int, body: bytes, content_type: str, keep_alive: bool
) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Server: PXDBService/1.0 (async)\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


async def _read_request(reader: asyncio.StreamReader):
    """One parsed request: (method, target, headers, body) — or ``None``
    on a clean end-of-stream between keep-alive requests."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise _BadRequest("truncated request head") from error
    except asyncio.LimitOverrunError as error:
        raise _BadRequest("request head too large") from error
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) < 3:
        raise _BadRequest(f"malformed request line: {lines[0]!r}")
    method, target = parts[0], parts[1]
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise _BadRequest(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length") or 0)
    except ValueError as error:
        raise _BadRequest("malformed Content-Length") from error
    if length < 0 or length > _MAX_BODY_BYTES:
        raise _BadRequest("request body too large")
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


class AsyncHTTPFrontend:
    """Connection/request handling over one :class:`PXDBService`."""

    def __init__(self, service: PXDBService, *, verbose: bool = False):
        self.service = service
        self.verbose = verbose

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _BadRequest as error:
                    body = json.dumps({"ok": False, "error": str(error)})
                    writer.write(
                        _encode_response(
                            400, body.encode("utf-8"), "application/json", False
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, target, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                status, payload = await self._handle_request(
                    method, target, headers, body
                )
                if isinstance(payload, str):
                    data = _encode_response(
                        status,
                        payload.encode("utf-8"),
                        text_content_type(urlparse(target).path),
                        keep_alive,
                    )
                else:
                    data = _encode_response(
                        status,
                        json.dumps(payload).encode("utf-8"),
                        "application/json",
                        keep_alive,
                    )
                writer.write(data)
                await writer.drain()
                if self.verbose:
                    _log.info(
                        "request", extra={"target": target, "status": status}
                    )
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass  # client went away (or server stopping) mid-request
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_request(
        self, method: str, target: str, headers: dict, body: bytes
    ) -> tuple[int, dict | str]:
        parsed = urlparse(target)
        route = parsed.path
        if method == "GET":
            params = {
                key: values[-1] for key, values in parse_qs(parsed.query).items()
            }
        elif method == "POST":
            try:
                params = json.loads(body) if body else {}
                if not isinstance(params, dict):
                    raise ValueError("request body must be a JSON object")
            except json.JSONDecodeError as error:
                return 400, {"ok": False, "error": f"invalid JSON body: {error}"}
            except ValueError as error:
                return 400, {"ok": False, "error": str(error)}
        else:
            return 405, {"ok": False, "error": f"unsupported method: {method}"}

        op = _ROUTE_OPS.get(route)
        if op is not None:
            try:
                request = self.service.batchable_request(op, params)
            except ValueError as error:
                return 400, {"ok": False, "error": str(error)}
            if request is not None:
                return await self._handle_batched(op, route, params, request)

        prometheus = route == "/metrics" and wants_prometheus(
            params, headers.get("accept")
        )
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None,
            lambda: dispatch_route(
                self.service, route, params, prometheus=prometheus
            ),
        )

    async def _handle_batched(
        self, op: str, route: str, params: dict, request: dict
    ) -> tuple[int, dict]:
        """Scheduler path: same error contract as :func:`dispatch_route`."""
        db = params.get("db")
        if db is None:
            return 400, {"ok": False, "error": "missing required parameter 'db'"}
        try:
            future = self.service.submit_batched(op, db, request)
            payload = await asyncio.wrap_future(future)
        except KeyError as error:
            return 404, {"ok": False, "error": _key_message(error)}
        except ValueError as error:
            return 400, {"ok": False, "error": str(error)}
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 — last-resort 500
            self.service.metrics.increment("http.internal_errors")
            _log.exception("internal error", extra={"route": route})
            return 500, {"ok": False, "error": f"{type(error).__name__}: {error}"}
        return 200, {"ok": True, **payload}


async def _serve(
    service: PXDBService,
    host: str,
    port: int,
    *,
    verbose: bool = False,
    drain_timeout: float = 5.0,
    on_bound=None,
    install_signals: bool = False,
    handle: "AsyncServerHandle | None" = None,
) -> None:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    frontend = AsyncHTTPFrontend(service, verbose=verbose)
    server = await asyncio.start_server(
        frontend.handle_connection, host, port, limit=_MAX_HEAD_BYTES
    )
    address = server.sockets[0].getsockname()[:2]
    if install_signals:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread / platform without loop signals
    if handle is not None:
        handle._bind(loop, stop, address)
    _log.info("serving (async)", extra={"host": address[0], "port": address[1]})
    if on_bound is not None:
        on_bound(address)
    try:
        await stop.wait()
    finally:
        server.close()
        await server.wait_closed()
        # Drain blocks (scheduler flush + pool quiesce): keep it off the
        # loop thread so in-flight handlers can still finish responding.
        await loop.run_in_executor(None, service.drain, drain_timeout)


def serve_async(
    service: PXDBService,
    host: str = "127.0.0.1",
    port: int = 8642,
    *,
    verbose: bool = False,
    drain_timeout: float = 5.0,
    on_bound=None,
) -> None:
    """Blocking serve loop for ``repro serve --frontend async``.

    SIGTERM and Ctrl-C both stop it cleanly: stop accepting, let
    in-flight handlers respond, drain the scheduler and quiesce the
    shard pool — the same graceful-stop contract as the threaded
    :func:`repro.service.server.serve_forever`.
    """
    try:
        asyncio.run(
            _serve(
                service,
                host,
                port,
                verbose=verbose,
                drain_timeout=drain_timeout,
                on_bound=on_bound,
                install_signals=True,
            )
        )
    except KeyboardInterrupt:
        pass  # loop signal handler unavailable (e.g. Windows): exit quietly


class AsyncServerHandle:
    """A running async front end on a background thread (tests/benches).

    ``start_async_server`` returns one; read the bound ``address`` and
    call :meth:`stop` when done."""

    def __init__(self):
        self.address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None

    def _bind(self, loop, stop, address) -> None:
        self._loop = loop
        self._stop = stop
        self.address = address
        self._ready.set()

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "AsyncServerHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def start_async_server(
    service: PXDBService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    verbose: bool = False,
    drain_timeout: float = 5.0,
) -> AsyncServerHandle:
    """Serve on a daemon thread; returns once the port is bound."""
    handle = AsyncServerHandle()

    def _run() -> None:
        try:
            asyncio.run(
                _serve(
                    service,
                    host,
                    port,
                    verbose=verbose,
                    drain_timeout=drain_timeout,
                    handle=handle,
                )
            )
        except BaseException as error:  # noqa: BLE001 — surface via handle
            handle._error = error
            handle._ready.set()

    handle._thread = threading.Thread(
        target=_run, name="pxdb-aserver", daemon=True
    )
    handle._thread.start()
    handle._ready.wait(timeout=10.0)
    if handle._error is not None:
        raise RuntimeError("async front end failed to start") from handle._error
    if handle.address is None:
        raise RuntimeError("async front end did not bind within 10s")
    return handle
