"""Per-entry heterogeneous batch scheduling: many requests, one pass.

The coalescer (:mod:`repro.service.coalesce`) batches concurrent
*event-probability* requests; everything else — /sat, /topk, a mixed
stream — evaluates alone.  This scheduler generalizes it into the front
end's central packing primitive: **any** pending sat/query/topk requests
against one stored PXDB are drained per window into a single
heterogeneous batch, executed as ONE joint DP (or circuit) pass by
:func:`repro.service.server.batch_payloads` — in-process, or inside the
entry's pinned shard worker (:class:`~repro.service.pool.
ShardedEvaluationPool.run_batch`).  Exact ``Fraction`` arithmetic is
per-formula independent, so batched results are provably identical to
sequential execution; only the traversal is shared.

Unlike the coalescer — whose leader is a blocked request thread — the
scheduler is future-first: ``submit`` returns immediately, a single
dispatcher thread watches group deadlines, and batches run on a small
internal thread pool (one slot per shard is enough: a batch mostly
blocks on worker IPC).  That shape is what the asyncio front end needs —
the event loop awaits the future without holding any thread.

Window semantics (same contract the coalescer established):

* a group's batch closes ``window`` seconds after its *first* request
  arrived, or immediately at ``max_batch`` pending — whichever is first;
* a *lone* request only waits ``window/8`` (the grace slice): sequential
  clients must not pay the whole window as a latency floor, while truly
  concurrent arrivals still meet inside the window.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor

from ...obs.logs import get_logger
from ...obs.spans import TRACER
from ..metrics import COUNT_BUCKETS, Metrics

_log = get_logger("service.scheduler")

# Error markers (per-request failures inside a batch) back to exceptions.
_ERROR_TYPES = {"ValueError": ValueError, "KeyError": KeyError}


def error_marker(payload) -> dict | None:
    """The ``__error__`` marker of a batched payload slot, if any."""
    if isinstance(payload, dict):
        return payload.get("__error__")
    return None


def raise_marker(marker: dict) -> None:
    """Re-raise a batched per-request error as its original type."""
    raise _ERROR_TYPES.get(marker.get("type"), RuntimeError)(
        marker.get("message", "batched request failed")
    )


class _Group:
    """Pending requests against one PXDB name."""

    __slots__ = ("pending", "first_at", "deadline")

    def __init__(self):
        self.pending: list[tuple[dict, Future]] = []
        self.first_at = 0.0
        self.deadline = 0.0


class BatchScheduler:
    """Packs pending heterogeneous requests into per-entry joint passes.

    ``runner(db, requests) -> payloads`` executes one closed batch (the
    front end wires it to the shard pool with in-process fallback);
    ``window``/``max_batch`` are the packing knobs; ``max_workers``
    bounds concurrently running batches (≈ number of shards).
    """

    def __init__(
        self,
        runner,
        *,
        window: float = 0.002,
        max_batch: int = 64,
        max_workers: int = 4,
        metrics: Metrics | None = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self.runner = runner
        self.window = window
        self.max_batch = max_batch
        self.metrics = metrics
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._groups: dict[str, _Group] = {}
        self._inflight = 0  # batches currently executing
        self._idle = threading.Condition(self._lock)  # drain() waits here
        self._closed = False
        self._thread: threading.Thread | None = None
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="pxdb-batch"
        )
        # Counters (read under the lock by stats()).
        self.batches = 0
        self.batched_requests = 0
        self.largest_batch = 0
        self.errors = 0

    # -- the request side -----------------------------------------------------
    def submit(self, db: str, request: dict) -> Future:
        """Enqueue one request dict; the future resolves to its payload
        (or raises its per-request error).  Thread-safe; never blocks on
        evaluation."""
        future: Future = Future()
        now = time.monotonic()
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            group = self._groups.get(db)
            if group is None:
                group = self._groups[db] = _Group()
            group.pending.append((request, future))
            if len(group.pending) == 1:
                group.first_at = now
                # Lone request: close after the grace slice unless a
                # follower arrives and stretches the deadline below.
                group.deadline = now + self.window / 8
            else:
                group.deadline = group.first_at + self.window
            self._ensure_thread()
            self._wake.notify_all()
        return future

    # -- the dispatcher -------------------------------------------------------
    def _ensure_thread(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._loop, name="pxdb-scheduler", daemon=True
            )
            self._thread.start()

    def _loop(self) -> None:
        while True:
            with self._lock:
                if self._closed and not self._groups:
                    return
                now = time.monotonic()
                ready: list[tuple[str, list]] = []
                next_deadline: float | None = None
                for db, group in list(self._groups.items()):
                    due = (
                        self._closed
                        or group.deadline <= now
                        or len(group.pending) >= self.max_batch
                    )
                    if due:
                        ready.append((db, group.pending))
                        del self._groups[db]
                    elif next_deadline is None or group.deadline < next_deadline:
                        next_deadline = group.deadline
                if not ready:
                    timeout = (
                        None if next_deadline is None else max(next_deadline - now, 0.0)
                    )
                    self._wake.wait(timeout)
                    continue
                self._inflight += len(ready)
            for db, batch in ready:
                self._pool.submit(self._run_batch, db, batch)

    def _run_batch(self, db: str, batch: list[tuple[dict, Future]]) -> None:
        requests = [request for request, _ in batch]
        span_attrs = {}
        if TRACER.enabled:
            # Per-op composition of the batch: cost attribution splits the
            # joint pass across routes proportionally to these counts.
            ops: dict[str, int] = {}
            for request in requests:
                key = str(request.get("op", "?"))
                ops[key] = ops.get(key, 0) + 1
            span_attrs["ops"] = ops
        try:
            with TRACER.span(
                "scheduler.batch", db=db, requests=len(batch), **span_attrs
            ):
                payloads = self.runner(db, requests)
            if len(payloads) != len(batch):
                raise RuntimeError(
                    f"batch runner returned {len(payloads)} payloads "
                    f"for {len(batch)} requests"
                )
        except BaseException as error:  # noqa: BLE001 — fan the failure out
            with self._lock:
                self.errors += 1
            for _, future in batch:
                if not future.done():
                    future.set_exception(error)
            self._batch_done()
            return
        with self._lock:
            self.batches += 1
            self.batched_requests += len(batch)
            self.largest_batch = max(self.largest_batch, len(batch))
        if self.metrics is not None:
            self.metrics.increment("scheduler.batches")
            self.metrics.observe_value(
                "scheduler.batch_size", len(batch), buckets=COUNT_BUCKETS
            )
        for (_, future), payload in zip(batch, payloads):
            marker = error_marker(payload)
            if marker is None:
                future.set_result(payload)
            else:
                try:
                    raise_marker(marker)
                except Exception as error:  # noqa: BLE001 — per-request error
                    future.set_exception(error)
        self._batch_done()

    def _batch_done(self) -> None:
        with self._lock:
            self._inflight -= 1
            if self._inflight == 0 and not self._groups:
                self._idle.notify_all()

    # -- lifecycle ------------------------------------------------------------
    def drain(self, timeout: float = 5.0) -> bool:
        """Block until every pending request has been batched and every
        running batch finished (or ``timeout`` expired).  Returns True
        when fully drained — the SIGTERM/graceful-stop hook."""
        deadline = time.monotonic() + timeout
        with self._lock:
            # Close out waiting windows immediately: a drain should not
            # sit out the full coalescing window per pending group.
            for group in self._groups.values():
                group.deadline = 0.0
            self._wake.notify_all()
            while self._groups or self._inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def close(self, timeout: float = 5.0) -> None:
        """Drain, then stop the dispatcher and the batch thread pool."""
        self.drain(timeout)
        with self._lock:
            self._closed = True
            self._wake.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
        self._pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def stats(self) -> dict:
        with self._lock:
            pending = sum(len(g.pending) for g in self._groups.values())
            return {
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "largest_batch": self.largest_batch,
                "mean_batch_size": (
                    round(self.batched_requests / self.batches, 2)
                    if self.batches
                    else 0.0
                ),
                "errors": self.errors,
                "pending": pending,
                "inflight_batches": self._inflight,
                "window_s": self.window,
                "max_batch": self.max_batch,
            }
