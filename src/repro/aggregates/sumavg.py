"""SUM and AVG over p-documents (Section 7.2, the intractable side).

Proposition 7.2: deciding Pr(P ⊨ ξ) > 0 is NP-complete already for the
a-formulae ξ_Σall (the total of all numeric labels equals R) and ξ_avg-all
(their average equals R) — so no polynomial algorithm in the style of
Theorem 5.3 can exist for SUM/AVG unless P = NP, and by the paper's remark
not even an approximation can (unless NP ⊆ BPP).

What *can* be done, and is provided here:

* :func:`sum_count_distribution` — the exact joint distribution of
  (Σ numeric labels, #selected nodes) over the whole random document.
  This is a *pseudo-polynomial* dynamic program: its table is indexed by
  attainable partial sums, so it is polynomial in the magnitude of the
  labels but exponential in their bit-length — exactly the loophole
  Subset-Sum reductions exploit (their labels grow exponentially).
* :func:`sum_formula_probability` — Pr(P ⊨ agg(* ∨ *//*) θ R) for
  agg ∈ {SUM, AVG} via that distribution.
* For *general* SUM/AVG a-formulae, fall back to the exponential baseline
  (``repro.baseline.naive``), which evaluates Definition 5.2 per world.

AVG needs the joint (sum, count) distribution since AVG = SUM/CNT; note
that the paper's AVG divides by CNT(U) — the number of *selected* nodes,
numeric or not — and AVG(∅) = 0.
"""

from __future__ import annotations

from fractions import Fraction

from .. import ops
from ..pdoc.pdocument import EXP, IND, MUX, ORD, PDocument, PNode
from ..xmltree.predicates import is_numeric_label, numeric_value
from ..core.formulas import AvgAtom, SumAtom

# Joint distribution over (sum, count) pairs of the selected nodes.
SumCountDist = dict[tuple[Fraction, int], Fraction]

_ZERO: tuple[Fraction, int] = (Fraction(0), 0)


def _convolve(left: SumCountDist, right: SumCountDist) -> SumCountDist:
    result: SumCountDist = {}
    for (s1, c1), p1 in left.items():
        for (s2, c2), p2 in right.items():
            key = (s1 + s2, c1 + c2)
            result[key] = result.get(key, Fraction(0)) + p1 * p2
    return result


def _mix(parts: list[tuple[Fraction, SumCountDist]]) -> SumCountDist:
    result: SumCountDist = {}
    for weight, dist in parts:
        if weight == 0:
            continue
        for key, p in dist.items():
            result[key] = result.get(key, Fraction(0)) + weight * p
    return result


def sum_count_distribution(pdoc: PDocument) -> SumCountDist:
    """Joint distribution of (Σ numeric labels, #nodes) over all nodes of a
    random document of P̃.

    The number of distinct sums is bounded by the number of attainable
    subset sums — pseudo-polynomial for small integer labels, exponential
    for adversarial (Subset-Sum) inputs.
    """

    def forest(node: PNode) -> SumCountDist:
        if node.kind == ORD:
            dist: SumCountDist = {_ZERO: Fraction(1)}
            for child in node.children:
                dist = _convolve(dist, forest(child))
            own = (
                numeric_value(node.label) if is_numeric_label(node.label) else Fraction(0)
            )
            return {(s + own, c + 1): p for (s, c), p in dist.items()}
        if node.kind == IND:
            dist = {_ZERO: Fraction(1)}
            for index, child in enumerate(node.children):
                p = node.probs[index]
                dist = _convolve(
                    dist, _mix([(p, forest(child)), (1 - p, {_ZERO: Fraction(1)})])
                )
            return dist
        if node.kind == MUX:
            total = sum(node.probs, Fraction(0))
            parts = [(1 - total, {_ZERO: Fraction(1)})]
            parts += [
                (node.probs[i], forest(child)) for i, child in enumerate(node.children)
            ]
            return _mix(parts)
        if node.kind == EXP:
            parts = []
            for subset, q in node.subsets:
                dist = {_ZERO: Fraction(1)}
                for index in sorted(subset):
                    dist = _convolve(dist, forest(node.children[index]))
                parts.append((q, dist))
            return _mix(parts)
        raise AssertionError(f"unknown node kind {node.kind}")

    return forest(pdoc.root)


def sum_formula_probability(pdoc: PDocument, atom: SumAtom | AvgAtom) -> Fraction:
    """Pr(P ⊨ agg(all nodes) θ R) for the whole-document SUM/AVG formulae
    ξ_Σall and ξ_avg-all of Proposition 7.2.

    The atom's selectors must be the all-nodes disjunction (* ∨ *//*);
    general selectors require the exponential baseline.
    """
    if not _selects_all_nodes(atom):
        raise ValueError(
            "the pseudo-polynomial DP supports only the all-nodes selectors "
            "(* ∨ *//*); use repro.baseline.naive for general SUM/AVG atoms"
        )
    dist = sum_count_distribution(pdoc)
    result = Fraction(0)
    for (total, count), p in dist.items():
        if isinstance(atom, SumAtom):
            value = total
        else:
            value = total / count if count else Fraction(0)
        if ops.apply(atom.op, value, atom.bound):
            result += p
    return result


def sum_positive_probability(pdoc: PDocument, target) -> bool:
    """Decide Pr(P ⊨ ξ_Σall) > 0, i.e. whether some world's total equals
    ``target`` — the NP-complete decision problem of Proposition 7.2,
    solved here in pseudo-polynomial time."""
    target = Fraction(target)
    return any(
        total == target and p > 0 for (total, _), p in sum_count_distribution(pdoc).items()
    )


def _selects_all_nodes(atom: SumAtom | AvgAtom) -> bool:
    """Check the atom's selectors cover exactly {root} ∪ {proper descendants}."""
    from ..xmltree.pattern import DESC
    from ..xmltree.predicates import AnyLabel

    shapes = set()
    for sformula in atom.disjuncts:
        if not sformula.is_plain():
            return False
        pattern = sformula.pattern
        nodes = list(pattern.nodes())
        if not all(isinstance(n.predicate, AnyLabel) for n in nodes):
            return False
        if len(nodes) == 1 and sformula.projected is pattern.root:
            shapes.add("root")
        elif (
            len(nodes) == 2
            and nodes[1].axis == DESC
            and sformula.projected is nodes[1]
        ):
            shapes.add("descendants")
        else:
            return False
    return shapes == {"root", "descendants"}


def xi_sum_all(target) -> SumAtom:
    """The a-formula ξ_Σall: SUM(* ∨ *//*) = R (Proposition 7.2)."""
    return _all_nodes_atom(SumAtom, target)


def xi_avg_all(target) -> AvgAtom:
    """The a-formula ξ_avg-all: AVG(* ∨ *//*) = R (Proposition 7.2)."""
    return _all_nodes_atom(AvgAtom, target)


def _all_nodes_atom(cls, target):
    from ..core.formulas import SFormula
    from ..xmltree.pattern import pattern as make_pattern

    root_pattern, root_node = make_pattern()
    root_selector = SFormula(root_pattern, root_node)
    desc_pattern, desc_root = make_pattern()
    descendant = desc_root.descendant()
    desc_selector = SFormula(desc_pattern, descendant)
    return cls([root_selector, desc_selector], ops.EQ, Fraction(target))
