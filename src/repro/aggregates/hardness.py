"""The Subset-Sum reduction behind Proposition 7.2.

Proposition 7.2 states that deciding Pr(P ⊨ ξ_Σall) > 0 (and likewise for
ξ_avg-all) is NP-complete, by reduction from Subset-Sum.  This module
builds the reduction's gadget so that the hardness boundary can be
exercised empirically (experiment E6):

given items a_1, …, a_n and target R, the p-document is a root (with a
non-numeric label) whose single ``ind`` node carries one numeric leaf a_i
per item, each with probability 1/2.  A random document retains an
arbitrary subset of the leaves, so

    Pr(P ⊨ SUM(* ∨ *//*) = R) > 0   ⟺   some subset of the items sums to R.

Every algorithm for SUM positivity therefore decides Subset-Sum.  The
solvers here make the two regimes of the problem tangible:

* :func:`decide_by_enumeration` — explicit world enumeration, Θ(2ⁿ);
* :func:`decide_by_dp` — the pseudo-polynomial subset-sum DP, polynomial
  in n·Σa_i (fast for small magnitudes, useless for the exponentially
  large values a true NP-hard instance can carry).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from ..core.formulas import SumAtom
from ..pdoc.pdocument import PDocument, pdocument
from .sumavg import xi_sum_all


def subset_sum_pdocument(items: Sequence[int]) -> PDocument:
    """The reduction gadget: one ind edge of probability 1/2 per item."""
    if not items:
        raise ValueError("subset-sum instance needs at least one item")
    pd, root = pdocument("items")
    ind = root.ind()
    for value in items:
        ind.add_edge(int(value), Fraction(1, 2))
    pd.validate()
    return pd


def reduction(items: Sequence[int], target: int) -> tuple[PDocument, SumAtom]:
    """Subset-Sum instance ↦ (P̃, ξ_Σall) with
    Pr(P ⊨ ξ_Σall) > 0 ⟺ the instance is solvable."""
    return subset_sum_pdocument(items), xi_sum_all(target)


def decide_by_enumeration(items: Sequence[int], target: int) -> bool:
    """Decide solvability by enumerating all 2ⁿ worlds of the gadget and
    evaluating the a-formula on each (the generic — exponential — route)."""
    from ..baseline.naive import naive_probability

    pdoc, formula = reduction(items, target)
    return naive_probability(pdoc, formula) > 0


def decide_by_dp(items: Sequence[int], target: int) -> bool:
    """Decide solvability with the classic pseudo-polynomial DP over
    attainable sums.  Note this does not contradict NP-hardness: its cost
    scales with the *magnitude* of the items, which can be exponential in
    the instance's bit-length."""
    sums = {0}
    for value in items:
        sums |= {s + int(value) for s in sums}
        if target in sums:
            return True
    return target in sums


def solving_subsets(items: Sequence[int], target: int) -> list[tuple[int, ...]]:
    """All index subsets whose items sum to the target (exponential;
    ground truth for tests)."""
    result: list[tuple[int, ...]] = []

    def extend(index: int, chosen: tuple[int, ...], remaining: int) -> None:
        if index == len(items):
            if remaining == 0:
                result.append(chosen)
            return
        extend(index + 1, chosen, remaining)
        extend(index + 1, chosen + (index,), remaining - int(items[index]))

    extend(0, (), int(target))
    return result
