"""Convenience constructors for RATIO constraints (Section 7.2).

RATIO is supported *natively* by the polynomial evaluator (the automaton
of a RATIO atom carries the exact pair (accepted-and-γ, accepted); see
``repro.core.compiler``), so this module only provides ergonomic builders
for the common shapes the paper motivates, e.g. "at least 40% of all
professors (in each department) have an active grant".
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

from ..core.formulas import (
    CFormula,
    RatioAtom,
    SFormula,
    exists,
)


def ratio_atom(
    selectors: SFormula | Iterable[SFormula],
    inner: CFormula,
    op: str,
    bound,
) -> RatioAtom:
    """RATIO(σ1 ∨ … ∨ σk, γ) θ R."""
    if isinstance(selectors, SFormula):
        selectors = [selectors]
    return RatioAtom(selectors, inner, op, Fraction(bound))


def at_least_fraction(
    selectors: SFormula | Iterable[SFormula], inner: CFormula, bound
) -> RatioAtom:
    """"At least ``bound`` of the selected nodes satisfy γ" — e.g. the
    paper's "at least 40% of all professors have an active grant" with
    bound = 2/5."""
    return ratio_atom(selectors, inner, ">=", bound)


def at_most_fraction(
    selectors: SFormula | Iterable[SFormula], inner: CFormula, bound
) -> RatioAtom:
    """"At most ``bound`` of the selected nodes satisfy γ"."""
    return ratio_atom(selectors, inner, "<=", bound)


def fraction_with_child(selectors: SFormula | Iterable[SFormula], label, op: str, bound) -> RatioAtom:
    """Ratio of selected nodes that have a child with the given label —
    a common idiom ("the fraction of chairs that are full professors")."""
    from ..xmltree.pattern import pattern
    from ..xmltree.predicates import LabelEquals

    witness, root = pattern()
    root.child(LabelEquals(label))
    return ratio_atom(selectors, exists(witness), op, bound)
