"""Aggregate-function extensions of the constraint language (Section 7.2)."""
