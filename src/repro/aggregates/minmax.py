"""MIN/MAX aggregate atoms and their reduction to CNT atoms (Theorem 7.1).

The paper extends c-formulae to a-formulae over MIN and MAX (Section 7.2)
and states that tractability is preserved.  The reason is that comparisons
of an extremum decompose into counting comparisons over *refined*
selectors: e.g. ``MAX(σ) > R`` holds iff σ selects some node whose label
is numeric and > R, i.e. ``CNT(σ↾_{>R}) ≥ 1`` where σ↾ conjoins a
:class:`~repro.xmltree.predicates.NumericCompare` predicate onto the
projected node.  The empty-set conventions (MAX(∅) = −∞, MIN(∅) = ∞) fall
out of the same rewriting.

:func:`rewrite` maps any a-formula of AF^{CNT,MAX,MIN,RATIO} to an
equivalent formula that uses only CNT and RATIO atoms — the fragment the
polynomial evaluator executes natively.  Formula sharing (the DAG) is
preserved, and fully CNT/RATIO formulae come back unchanged (identity),
so rewriting is idempotent and free for the common case.
"""

from __future__ import annotations

from .. import ops
from ..xmltree.predicates import NumericCompare
from ..core.formulas import (
    CAnd,
    CFormula,
    CountAtom,
    FALSE,
    MaxAtom,
    MinAtom,
    RatioAtom,
    SFormula,
    TRUE,
    conjunction,
    disjunction,
)


def rewrite(formula: CFormula) -> CFormula:
    """Rewrite MIN/MAX atoms into CNT atoms, recursively (including inside
    α attachments and RATIO inner formulae).  SUM/AVG atoms are left in
    place — the evaluator rejects them with Proposition 7.2's justification.
    """
    memo: dict[int, CFormula] = {}

    def visit(f: CFormula) -> CFormula:
        cached = memo.get(id(f))
        if cached is not None:
            return cached
        result = _rewrite_one(f, visit)
        memo[id(f)] = result
        return result

    return visit(formula)


def _rewrite_one(formula: CFormula, visit) -> CFormula:
    if formula is TRUE or formula is FALSE:
        return formula
    if isinstance(formula, CAnd):
        parts = [visit(p) for p in formula.parts]
        if all(new is old for new, old in zip(parts, formula.parts)):
            return formula
        return conjunction(parts)
    if isinstance(formula, CountAtom):
        disjuncts = [_rewrite_sformula(sf, visit) for sf in formula.disjuncts]
        if all(new is old for new, old in zip(disjuncts, formula.disjuncts)):
            return formula
        return CountAtom(disjuncts, formula.op, formula.bound)
    if isinstance(formula, RatioAtom):
        disjuncts = [_rewrite_sformula(sf, visit) for sf in formula.disjuncts]
        inner = visit(formula.inner)
        if inner is formula.inner and all(
            new is old for new, old in zip(disjuncts, formula.disjuncts)
        ):
            return formula
        return RatioAtom(disjuncts, inner, formula.op, formula.bound)
    if isinstance(formula, (MinAtom, MaxAtom)):
        return _rewrite_extremum(formula, visit)
    return formula  # SUM/AVG atoms pass through; the evaluator rejects them


def _rewrite_sformula(sformula: SFormula, visit) -> SFormula:
    new_alpha = {key: visit(value) for key, value in sformula.alpha.items()}
    if all(new_alpha[key] is sformula.alpha[key] for key in new_alpha):
        return sformula
    return SFormula(sformula.pattern, sformula.projected, new_alpha)


def _refined(atom: MinAtom | MaxAtom, op: str, visit) -> list[SFormula]:
    """Clone the atom's selectors, conjoining ``numeric op bound`` onto the
    projected node (and rewriting any α attachments along the way)."""
    predicate = NumericCompare(op, atom.bound)
    return [
        _rewrite_sformula(sf, visit).clone(refine_projected=predicate)
        for sf in atom.disjuncts
    ]


def _rewrite_extremum(atom: MinAtom | MaxAtom, visit) -> CFormula:
    is_max = isinstance(atom, MaxAtom)
    # "strict" / "weak": selectors refined with > , >= for MAX (<, <= for MIN).
    strict_op = ops.GT if is_max else ops.LT
    weak_op = ops.GE if is_max else ops.LE

    def some(selectors: list[SFormula]) -> CFormula:
        return CountAtom(selectors, ops.GE, 1)

    def none(selectors: list[SFormula]) -> CFormula:
        return CountAtom(selectors, ops.EQ, 0)

    op = atom.op
    # Normalize MIN comparisons to the mirrored MAX logic by swapping the
    # direction of the comparison operator.
    if not is_max:
        op = {ops.LT: ops.GT, ops.LE: ops.GE, ops.GT: ops.LT, ops.GE: ops.LE}.get(op, op)

    # After normalization, read 'op' as a comparison of MAX (resp. the
    # mirrored MIN): e.g. op == GT means MAX > R, or MIN < R.
    if op == ops.GT:
        return some(_refined(atom, strict_op, visit))
    if op == ops.GE:
        return some(_refined(atom, weak_op, visit))
    if op == ops.LE:
        return none(_refined(atom, strict_op, visit))
    if op == ops.LT:
        return none(_refined(atom, weak_op, visit))
    if op == ops.EQ:
        return conjunction(
            [
                none(_refined(atom, strict_op, visit)),
                some(_refined(atom, ops.EQ, visit)),
            ]
        )
    # op == NE: the negation of the EQ case.
    return disjunction(
        [
            some(_refined(atom, strict_op, visit)),
            none(_refined(atom, ops.EQ, visit)),
        ]
    )
