"""Distributional statistics of selector counts over a PXDB.

The paper evaluates *threshold* comparisons of aggregates (Section 7.2);
this module derives richer statistics from the same machinery — the
natural follow-up the paper's conclusion points to (aggregate queries in
the style of Re & Suciu's HAVING work):

* :func:`membership_probabilities` — Pr(v ∈ σ(D)) for every candidate
  node v, via the node-binding device of Section 5;
* :func:`expected_count` — E[CNT(σ(D))] by linearity (a sum of membership
  probabilities; polynomial);
* :func:`count_variance` — Var[CNT(σ(D))] from pairwise joint
  memberships (quadratically many evaluator calls; still polynomial);
* :func:`count_distribution` — the full distribution of CNT(σ(D)), one
  evaluator call per attainable value;
* :func:`expected_sum` — E[SUM of numeric labels of σ(D)].  Notable:
  although *threshold* questions about SUM are NP-hard (Proposition 7.2),
  the expectation is polynomial — linearity sidesteps the Subset-Sum
  structure entirely.

All results are conditional on the PXDB's constraints when a condition is
supplied, and exact (Fractions).
"""

from __future__ import annotations

from fractions import Fraction

from ..pdoc.pdocument import PDocument
from ..xmltree.predicates import NodeIs, PredAnd, is_numeric_label, numeric_value
from ..xmltree.pattern import Pattern, PatternNode
from .evaluator import probabilities, probability
from .formulas import CFormula, CountAtom, SFormula, TRUE, conjunction, exists


def _bound_event(sformula: SFormula, uid: int) -> CFormula:
    """The event 'the node with this uid is selected by σ' — the pattern
    with the projected node pinned to the uid (Section 5's label trick)."""
    mapping: dict[int, PatternNode] = {}

    def clone(node: PatternNode) -> PatternNode:
        copy = PatternNode(node.predicate, node.axis, node.name)
        mapping[id(node)] = copy
        for child in node.children:
            copy.add_child(clone(child))
        return copy

    new_root = clone(sformula.pattern.root)
    bound = mapping[id(sformula.projected)]
    bound.predicate = PredAnd((bound.predicate, NodeIs(uid)))
    new_alpha = {
        id(mapping[old_id]): formula
        for old_id, formula in sformula.alpha.items()
        if old_id in mapping
    }
    return exists(Pattern(new_root), new_alpha)


def candidate_uids(sformula: SFormula, pdoc: PDocument) -> list[int]:
    """Uids of every node that could possibly be selected (skeleton pass)."""
    from ..xmltree.matching import selected_set

    skeleton = pdoc.skeleton()
    selected = selected_set(sformula.pattern, sformula.projected, skeleton.root)
    return sorted(node.uid for node in selected)


def membership_probabilities(
    sformula: SFormula, pdoc: PDocument, condition: CFormula = TRUE
) -> dict[int, Fraction]:
    """{uid: Pr(v ∈ σ(D))} over the PXDB (P̃, condition).

    All per-node events are evaluated *jointly* with the condition in a
    single DP pass (one registry compilation, one bottom-up traversal),
    instead of one evaluator run per candidate node — the same batching
    :func:`count_distribution` uses.
    """
    uids = candidate_uids(sformula, pdoc)
    events = [
        conjunction([condition, _bound_event(sformula, uid)]) for uid in uids
    ]
    values = probabilities(pdoc, events + [condition])
    denominator = values[-1]
    if denominator == 0:
        raise ValueError("the p-document is not consistent with the constraints")
    return {uid: values[i] / denominator for i, uid in enumerate(uids)}


def expected_count(
    sformula: SFormula, pdoc: PDocument, condition: CFormula = TRUE
) -> Fraction:
    """E[CNT(σ(D))] = Σ_v Pr(v ∈ σ(D)) — linearity of expectation."""
    return sum(
        membership_probabilities(sformula, pdoc, condition).values(), Fraction(0)
    )


def count_variance(
    sformula: SFormula, pdoc: PDocument, condition: CFormula = TRUE
) -> Fraction:
    """Var[CNT(σ(D))] from pairwise joint membership probabilities.

    E[X²] = Σ_u Σ_v Pr(u ∈ σ ∧ v ∈ σ); the diagonal terms are the
    marginals, the off-diagonal ones need one evaluator call per unordered
    pair — O(n²) calls, each polynomial.
    """
    uids = candidate_uids(sformula, pdoc)
    denominator = probability(pdoc, condition)
    if denominator == 0:
        raise ValueError("the p-document is not consistent with the constraints")
    marginals = membership_probabilities(sformula, pdoc, condition)
    mean = sum(marginals.values(), Fraction(0))
    second_moment = sum(marginals.values(), Fraction(0))  # diagonal: Pr(u ∈ σ)
    for i, u in enumerate(uids):
        for v in uids[i + 1 :]:
            joint_event = conjunction(
                [condition, _bound_event(sformula, u), _bound_event(sformula, v)]
            )
            joint = probability(pdoc, joint_event) / denominator
            second_moment += 2 * joint
    return second_moment - mean * mean


def count_distribution(
    sformula: SFormula, pdoc: PDocument, condition: CFormula = TRUE
) -> dict[int, Fraction]:
    """The exact distribution {k: Pr(CNT(σ(D)) = k)}.

    One joint evaluator pass per attainable k (0 … #candidates), each with
    the atom CNT(σ) = k conjoined to the condition.
    """
    upper = len(candidate_uids(sformula, pdoc))
    queries = [
        conjunction([condition, CountAtom([sformula], "=", k)])
        for k in range(upper + 1)
    ]
    values = probabilities(pdoc, queries + [condition])
    denominator = values[-1]
    if denominator == 0:
        raise ValueError("the p-document is not consistent with the constraints")
    distribution = {
        k: values[k] / denominator for k in range(upper + 1) if values[k] > 0
    }
    return distribution


def expected_sum(
    sformula: SFormula, pdoc: PDocument, condition: CFormula = TRUE
) -> Fraction:
    """E[Σ numeric labels of σ(D)] — polynomial despite Proposition 7.2:
    linearity of expectation needs only per-node membership marginals,
    never the (NP-hard) distribution of the sum itself."""
    marginals = membership_probabilities(sformula, pdoc, condition)
    total = Fraction(0)
    for uid, prob in marginals.items():
        label = pdoc.node_by_uid(uid).label
        if is_numeric_label(label):
            total += numeric_value(label) * prob
    return total
