"""Queries Q = π_X T (Section 2.4) and their semantics over documents.

A query applies a projection sequence X = (n1, …, nk) to the matches of a
(possibly augmented, Section 7.2) pattern:

    Q(d) = { (φ(n1), …, φ(nk)) | φ ∈ M(αT, d) }.

A *selector* is the special case of a single projected node.  Boolean
queries (empty X) are handled through c-formulae (``formulas.exists``).

Probabilistic evaluation — Pr(t ∈ Q(D)) per tuple over a PXDB — lives in
``repro.core.query_eval``.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..xmltree.document import DocNode, Document
from ..xmltree.matching import enumerate_matches
from ..xmltree.parser import parse_pattern
from ..xmltree.pattern import Pattern, PatternNode
from .formulas import CFormula, DocumentEvaluator, SFormula


class Query:
    """A query π_X αT: pattern, projection sequence and α attachments."""

    __slots__ = ("pattern", "projection", "alpha")

    def __init__(
        self,
        pattern: Pattern,
        projection: Iterable[PatternNode],
        alpha: Mapping[int, CFormula] | None = None,
    ):
        self.pattern = pattern
        self.projection = tuple(projection)
        for node in self.projection:
            if not pattern.contains(node):
                raise ValueError("projection node does not belong to the pattern")
        self.alpha: dict[int, CFormula] = dict(alpha or {})

    @classmethod
    def parse(cls, text: str) -> "Query":
        """Build a query from the textual pattern syntax; the ``$``/``$k:``
        markers define the projection sequence."""
        pattern, projections = parse_pattern(text)
        if not projections:
            raise ValueError(f"query needs at least one projected node: {text!r}")
        projection = [projections[i] for i in sorted(projections)]
        return cls(pattern, projection)

    def is_selector(self) -> bool:
        return len(self.projection) == 1

    def as_sformula(self) -> SFormula:
        """The s-formula of a selector query (single projected node)."""
        if not self.is_selector():
            raise ValueError("only single-projection queries are selectors")
        return SFormula(self.pattern, self.projection[0], self.alpha)

    # -- deterministic semantics ---------------------------------------------
    def answers(self, document: Document | DocNode) -> set[tuple[DocNode, ...]]:
        """Q(d): the set of projected tuples over the matches M(αT, d)."""
        root = document.root if isinstance(document, Document) else document
        evaluator = DocumentEvaluator()
        alpha = self.alpha

        def extra_test(pattern_node: PatternNode, doc_node: DocNode) -> bool:
            formula = alpha.get(id(pattern_node))
            return formula is None or evaluator.satisfies(doc_node, formula)

        test = extra_test if alpha else None
        return {
            tuple(match[id(node)] for node in self.projection)
            for match in enumerate_matches(self.pattern, root, test)
        }

    def answer_labels(self, document: Document | DocNode) -> set[tuple]:
        """Convenience: the answers as tuples of labels."""
        return {
            tuple(node.label for node in answer) for answer in self.answers(document)
        }

    def __repr__(self) -> str:
        return f"Query(π over {len(self.projection)} nodes of {self.pattern!r})"


def selector(text: str) -> SFormula:
    """Parse a selector string directly into an s-formula."""
    return Query.parse(text).as_sformula()
