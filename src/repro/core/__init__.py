"""Core PXDB machinery: formulae, constraints, evaluation, queries, sampling.

This package implements the paper's contribution proper: the c-formula
language (Section 5), the polynomial evaluation algorithm (Theorem 5.3),
constraint translation (Section 5.1), PXDBs (Section 3.2), query
evaluation (Corollary 5.4), the conditional sampler (Figure 3 / Theorem
6.2) and probabilistic constraints (Section 7.4).
"""

from .explain import Violation, explain_violations, why_inconsistent
from .statistics import (
    count_distribution,
    count_variance,
    expected_count,
    expected_sum,
    membership_probabilities,
)
from .constraint_parser import (
    ConstraintSyntaxError,
    parse_constraint,
    parse_constraints,
)
from .constraints import Constraint, always, constraints_formula, satisfies_all
from .evaluator import Evaluation, probabilities, probability
from .formulas import (
    FALSE,
    TRUE,
    AvgAtom,
    CAnd,
    CFormula,
    CountAtom,
    DocumentEvaluator,
    MaxAtom,
    MinAtom,
    RatioAtom,
    SFormula,
    SumAtom,
    conjunction,
    disjunction,
    exists,
    implies,
    negation,
    not_exists,
    satisfies,
    select,
)
from .probconstraints import (
    SNC,
    WNC,
    ProbabilisticConstraint,
    ProbabilisticPXDB,
)
from .pxdb import PXDB
from .query import Query, selector
from .query_eval import (
    boolean_query_probability,
    candidate_tuples,
    decode_answers,
    evaluate_query,
)
from .sampler import deterministic_instance, sample
from .templates import (
    at_least,
    at_most,
    between,
    conditional_presence,
    exactly,
    excludes,
    implies_within,
    requires,
    unique,
)
from .topk import has_stacked_distributional_nodes, top_k_worlds

__all__ = [
    "FALSE",
    "TRUE",
    "AvgAtom",
    "CAnd",
    "CFormula",
    "Constraint",
    "ConstraintSyntaxError",
    "CountAtom",
    "DocumentEvaluator",
    "Evaluation",
    "MaxAtom",
    "MinAtom",
    "PXDB",
    "ProbabilisticConstraint",
    "ProbabilisticPXDB",
    "Query",
    "RatioAtom",
    "SFormula",
    "SNC",
    "SumAtom",
    "WNC",
    "Violation",
    "always",
    "count_distribution",
    "count_variance",
    "expected_count",
    "expected_sum",
    "explain_violations",
    "membership_probabilities",
    "why_inconsistent",
    "at_least",
    "at_most",
    "between",
    "conditional_presence",
    "exactly",
    "excludes",
    "has_stacked_distributional_nodes",
    "implies_within",
    "requires",
    "top_k_worlds",
    "unique",
    "boolean_query_probability",
    "candidate_tuples",
    "conjunction",
    "constraints_formula",
    "decode_answers",
    "deterministic_instance",
    "disjunction",
    "evaluate_query",
    "exists",
    "implies",
    "negation",
    "not_exists",
    "parse_constraint",
    "parse_constraints",
    "probabilities",
    "probability",
    "sample",
    "satisfies",
    "satisfies_all",
    "select",
    "selector",
]
