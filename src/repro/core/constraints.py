"""Constraints (Definition 2.2) and their translation to c-formulae (Sec 5.1).

A constraint has the form

    ∀S ( CNT(S1) θ1 N1  →  CNT(S2) θ2 N2 )

where S, S1 and S2 are selectors.  A document d satisfies it when, for
every node v selected by S, evaluating S1 and S2 on the subtree d^v makes
the implication true.  The integers N1, N2 form the constraint's
*numerical specification* (Section 4): they are inputs of the evaluation
problems, not part of the fixed query.

The translation of Section 5.1: let S = π_n T.  Attach to n the violation
witness CNT(S1) θ1 N1 ∧ CNT(S2) θ̄2 N2 (θ̄2 the complement of θ2), leaving
**true** on the other nodes of T; the constraint is the anti-congruent of
the resulting augmented pattern — "no selected node violates the
implication".
"""

from __future__ import annotations

from typing import Iterable

from .. import ops
from ..xmltree.document import DocNode, Document
from .formulas import (
    CFormula,
    CountAtom,
    DocumentEvaluator,
    SFormula,
    conjunction,
    not_exists,
)


class Constraint:
    """One constraint ∀S(CNT(S1) θ1 N1 → CNT(S2) θ2 N2).

    ``name`` is a human-readable tag (e.g. "C1" in the paper's Figure 1).
    """

    __slots__ = ("scope", "s1", "op1", "n1", "s2", "op2", "n2", "name")

    def __init__(
        self,
        scope: SFormula,
        s1: SFormula,
        op1: str,
        n1: int,
        s2: SFormula,
        op2: str,
        n2: int,
        name: str | None = None,
    ):
        self.scope = scope
        self.s1 = s1
        self.op1 = ops.normalize(op1)
        self.n1 = int(n1)
        self.s2 = s2
        self.op2 = ops.normalize(op2)
        self.n2 = int(n2)
        self.name = name

    # -- document semantics (Definition 2.2) --------------------------------
    def satisfied_by(self, document: Document | DocNode) -> bool:
        """Decide d ⊨ C by direct application of Definition 2.2."""
        root = document.root if isinstance(document, Document) else document
        evaluator = DocumentEvaluator()
        for v in evaluator.select(root, self.scope):
            count1 = len(evaluator.select(v, self.s1))
            if not ops.apply(self.op1, count1, self.n1):
                continue
            count2 = len(evaluator.select(v, self.s2))
            if not ops.apply(self.op2, count2, self.n2):
                return False
        return True

    # -- translation to a c-formula (Section 5.1) ---------------------------
    def to_cformula(self) -> CFormula:
        """The equivalent c-formula: the anti-congruent of αT where T is the
        scope's pattern and its selected node carries the violation witness."""
        witness = conjunction(
            [
                self.scope.alpha_of(self.scope.projected),  # keep any existing attachment
                CountAtom([self.s1], self.op1, self.n1),
                CountAtom([self.s2], ops.complement(self.op2), self.n2),
            ]
        )
        augmented = self.scope.with_alpha(self.scope.projected, witness)
        return not_exists(augmented.pattern, augmented.alpha)

    def __repr__(self) -> str:
        tag = f"{self.name}: " if self.name else ""
        return (
            f"{tag}∀{self.scope!r}(CNT({self.s1!r}) {self.op1} {self.n1} → "
            f"CNT({self.s2!r}) {self.op2} {self.n2})"
        )


def always(scope: SFormula, s2: SFormula, op2: str, n2: int, name: str | None = None) -> Constraint:
    """A constraint with a trivially-true antecedent: ∀S(CNT(S2) θ2 N2).

    The paper's Example 2.3 uses the same shorthand (its C1: "a department
    has at most one chair" is ∀S_dep(CNT(*) ≥ 0 → CNT(S_chr) ≤ 1)).
    """
    from ..xmltree.pattern import trivial_pattern

    star_pattern, star_root = trivial_pattern()
    star = SFormula(star_pattern, star_root)
    return Constraint(scope, star, ops.GE, 0, s2, op2, n2, name=name)


def satisfies_all(document: Document | DocNode, constraints: Iterable[Constraint]) -> bool:
    """d ⊨ C for a finite set of constraints (Section 2.5)."""
    return all(constraint.satisfied_by(document) for constraint in constraints)


def constraints_formula(constraints: Iterable[Constraint | CFormula]) -> CFormula:
    """The single c-formula expressing a whole constraint set (used by the
    evaluation pipeline: C-SAT computes Pr(P ⊨ C) of this formula).

    Accepts a mix of :class:`Constraint` objects and raw c-formulae, since
    Section 7.1 generalizes constraints to arbitrary c-formulae.
    """
    parts = [
        item.to_cformula() if isinstance(item, Constraint) else item
        for item in constraints
    ]
    return conjunction(parts)
