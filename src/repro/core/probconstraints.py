"""Probabilistic constraints (Section 7.4): SNC and WNC semantics.

A probabilistic constraint is a pair (C, p_C): the constraint C should hold
with likelihood p_C.  The paper gives two semantics, each defined by a
reduction to mixtures of PXDBs with deterministic constraints; constraint
choices are made independently across the set:

* **SNC** (strict negated compliance) — with probability p_C the document
  must satisfy C, and with probability 1 − p_C it must satisfy ¬C.  The
  mixture component for a subset S of imposed constraints conditions on
  (∧_{C∈S} C) ∧ (∧_{C∉S} ¬C).  SNC can be *ill-defined*: if some subset
  with positive weight yields an unsatisfiable conjunction, there is a
  nonzero probability that no document qualifies.  The paper's example:
  "a full professor has ≥ 1 Ph.D. student" w.p. 0.7 and "≤ 15 Ph.D.
  students" w.p. 0.9 — with probability 0.03 both *negations* are imposed,
  which is unsatisfiable.
* **WNC** (weak negated compliance) — with probability p_C the constraint
  is imposed, otherwise it is simply disregarded.  The component for S
  conditions on ∧_{C∈S} C only.  WNC is well-defined whenever the
  conjunction of all constraints is satisfiable.

Both semantics support the three computational problems: constraint
satisfaction is a weighted sum over the (constantly many) components,
query evaluation mixes the components' conditional probabilities, and
sampling first draws a component and then runs Figure 3's algorithm with
that component's (possibly negated) deterministic constraints.
"""

from __future__ import annotations

import itertools
import random
from fractions import Fraction
from typing import Iterable, Sequence

from ..pdoc.pdocument import PDocument
from ..xmltree.document import Document
from .constraints import Constraint
from .evaluator import probabilities, probability
from .formulas import CFormula, conjunction, negation
from .sampler import bernoulli, sample

SNC = "snc"
WNC = "wnc"


class ProbabilisticConstraint:
    """A constraint C together with its likelihood p_C ∈ [0, 1]."""

    __slots__ = ("constraint", "prob", "name")

    def __init__(self, constraint: Constraint | CFormula, prob, name: str | None = None):
        self.constraint = constraint
        self.prob = Fraction(prob)
        if not 0 <= self.prob <= 1:
            raise ValueError(f"constraint probability {self.prob} outside [0, 1]")
        self.name = name or getattr(constraint, "name", None)

    def formula(self) -> CFormula:
        if isinstance(self.constraint, Constraint):
            return self.constraint.to_cformula()
        return self.constraint

    def __repr__(self) -> str:
        tag = f"{self.name}: " if self.name else ""
        return f"⟨{tag}p={self.prob}⟩"


Component = tuple[Fraction, CFormula]  # (mixture weight, imposed condition)


class ProbabilisticPXDB:
    """A p-document plus probabilistic constraints under SNC or WNC.

    The probability space is the mixture over constraint subsets S:
    weight(S) = ∏_{C∈S} p_C · ∏_{C∉S} (1 − p_C), with each component the
    PXDB conditioned on the subset's condition (S's constraints, plus —
    under SNC — the negations of the others).
    """

    __slots__ = ("pdoc", "pconstraints", "semantics", "_components")

    def __init__(
        self,
        pdoc: PDocument,
        pconstraints: Iterable[ProbabilisticConstraint],
        semantics: str = WNC,
    ):
        if semantics not in (SNC, WNC):
            raise ValueError(f"semantics must be '{SNC}' or '{WNC}'")
        self.pdoc = pdoc
        self.pconstraints = tuple(pconstraints)
        self.semantics = semantics
        self._components: list[Component] | None = None

    def components(self) -> list[Component]:
        """The mixture: (weight, condition) per constraint subset with
        nonzero weight.  2^k components for k constraints — the constraint
        set is fixed, so this is a constant (Section 4's complexity model)."""
        if self._components is not None:
            return self._components
        formulas = [pc.formula() for pc in self.pconstraints]
        components: list[Component] = []
        for chosen in itertools.product((True, False), repeat=len(formulas)):
            weight = Fraction(1)
            parts: list[CFormula] = []
            for pc, formula, imposed in zip(self.pconstraints, formulas, chosen):
                weight *= pc.prob if imposed else 1 - pc.prob
                if imposed:
                    parts.append(formula)
                elif self.semantics == SNC:
                    parts.append(negation(formula))
            if weight > 0:
                components.append((weight, conjunction(parts)))
        self._components = components
        return components

    def is_well_defined(self) -> bool:
        """SNC: every positive-weight component must be satisfiable.
        WNC: satisfiability of the full conjunction suffices (and is also
        necessary for the all-imposed component when every p_C > 0)."""
        if self.semantics == WNC:
            all_constraints = conjunction([pc.formula() for pc in self.pconstraints])
            return probability(self.pdoc, all_constraints) > 0
        conditions = [condition for _, condition in self.components()]
        values = probabilities(self.pdoc, conditions)
        return all(value > 0 for value in values)

    def event_probability(self, event: CFormula) -> Fraction:
        """Pr(D ⊨ γ) = Σ_S weight(S) · Pr(P ⊨ γ | condition_S).

        Raises ``ValueError`` when the space is ill-defined.
        """
        components = self.components()
        queries: list[CFormula] = []
        for _, condition in components:
            queries.append(conjunction([condition, event]))
            queries.append(condition)
        values = probabilities(self.pdoc, queries)
        total = Fraction(0)
        for index, (weight, _) in enumerate(components):
            joint = values[2 * index]
            denominator = values[2 * index + 1]
            if denominator == 0:
                raise ValueError(
                    "ill-defined probabilistic PXDB: a positive-weight "
                    "component has an unsatisfiable condition"
                )
            total += weight * joint / denominator
        return total

    def sample(self, rng: random.Random | None = None) -> Document:
        """Draw a document: pick a component by its weight, then run the
        Figure 3 sampler conditioned on that component's condition."""
        rng = rng if rng is not None else random.Random()
        components = self.components()
        roll = _rational_roll(rng, [w for w, _ in components])
        _, condition = components[roll]
        return sample(self.pdoc, condition, rng)

    def __repr__(self) -> str:
        return (
            f"ProbabilisticPXDB({self.pdoc!r}, k={len(self.pconstraints)}, "
            f"semantics={self.semantics})"
        )


def _rational_roll(rng: random.Random, weights: Sequence[Fraction]) -> int:
    """Pick an index with exact rational probabilities (weights sum to 1)."""
    remaining = Fraction(1)
    for index, weight in enumerate(weights[:-1]):
        if remaining == 0:
            return index
        if bernoulli(weight / remaining, rng):
            return index
        remaining -= weight
    return len(weights) - 1
