"""Query evaluation over PXDBs — the problem EVAL⟨Q, C⟩ (Section 4).

The result of a query Q over the PXDB D̃ = (P̃, C) maps every possible
answer tuple t to Pr(t ∈ Q(D)).  Following Section 5, the non-Boolean case
reduces to Boolean queries by "extending the notion of labels": for each
candidate tuple t, the pattern's projected nodes are *bound* to t's
document nodes (the :class:`~repro.xmltree.predicates.NodeIs` predicate),
which yields a Boolean pattern T_t, and then

    Pr(t ∈ Q(D)) = Pr(P ⊨ C ∧ T_t) / Pr(P ⊨ C).

Candidate tuples are harvested from the p-document's *skeleton* (the
document retaining every ordinary node): every match in every world is a
match in the skeleton, because a retained node keeps its lowest ordinary
ancestor as parent in all worlds.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from ..numeric import maybe_positive, surely_zero
from ..obs.spans import TRACER
from ..pdoc.pdocument import PDocument
from ..xmltree.matching import enumerate_matches
from ..xmltree.pattern import Pattern, PatternNode
from ..xmltree.predicates import NodeIs, PredAnd
from .evaluator import probabilities
from .formulas import CFormula, TRUE, conjunction, exists
from .query import Query

AnswerTable = dict[tuple[int, ...], Fraction]


def bound_formula(query: Query, tuple_uids: tuple[int, ...]) -> CFormula:
    """The Boolean c-formula T_t: the query's pattern with each projected
    node pinned to the corresponding document node of the candidate tuple."""
    mapping: dict[int, PatternNode] = {}

    def clone(node: PatternNode) -> PatternNode:
        copy = PatternNode(node.predicate, node.axis, node.name)
        mapping[id(node)] = copy
        for child in node.children:
            copy.add_child(clone(child))
        return copy

    new_root = clone(query.pattern.root)
    for position, node in enumerate(query.projection):
        bound = mapping[id(node)]
        bound.predicate = PredAnd((bound.predicate, NodeIs(tuple_uids[position])))
    new_alpha = {
        id(mapping[old_id]): formula
        for old_id, formula in query.alpha.items()
        if old_id in mapping
    }
    return exists(Pattern(new_root), new_alpha)


def candidate_tuples(query: Query, pdoc: PDocument) -> list[tuple[int, ...]]:
    """All tuples (as uid vectors) that any world could possibly return,
    read off the skeleton document.  α attachments are deliberately
    ignored here — they may hold in some world even if not in the
    skeleton — so this is a sound over-approximation."""
    if not TRACER.enabled:
        return _candidate_tuples(query, pdoc)[0]
    with TRACER.span("query.match") as span:
        ordered, matches = _candidate_tuples(query, pdoc)
        span.set(candidates=len(ordered), matches=matches)
    return ordered


def _candidate_tuples(
    query: Query, pdoc: PDocument
) -> tuple[list[tuple[int, ...]], int]:
    skeleton = pdoc.skeleton()
    seen: set[tuple[int, ...]] = set()
    ordered: list[tuple[int, ...]] = []
    matches = 0
    for match in enumerate_matches(query.pattern, skeleton.root):
        matches += 1
        answer = tuple(match[id(node)].uid for node in query.projection)
        if answer not in seen:
            seen.add(answer)
            ordered.append(answer)
    return ordered, matches


def _check_denominator(denominator, backend) -> None:
    """Refuse a zero Pr(P ⊨ C) — with an underflow-aware error for
    float64, where 0.0 is not proof of inconsistency."""
    if backend == "float64":
        if denominator == 0.0:
            raise ValueError(
                "float64 evaluation of Pr(P |= C) underflowed to 0 "
                "(underflow is not proof of impossibility); use "
                "backend='auto' or 'exact'"
            )
        return
    if surely_zero(denominator):
        raise ValueError("the p-document is not consistent with the constraints")


def evaluate_query(
    query: Query,
    pdoc: PDocument,
    condition: CFormula = TRUE,
    keep_zero: bool = False,
    backend: str | None = None,
) -> AnswerTable:
    """EVAL⟨Q, C⟩: {tuple of uids → Pr(t ∈ Q(D))} over the PXDB (P̃, C).

    ``condition`` is the constraint set as a single c-formula (see
    ``repro.core.constraints.constraints_formula``); TRUE evaluates over
    the unconstrained p-document.  Tuples with probability 0 are dropped
    unless ``keep_zero`` is set.

    Raises ``ValueError`` when Pr(P ⊨ C) = 0 (the PXDB is not well-defined).

    All candidate tuples are evaluated *jointly* with the condition in one
    DP pass (one registry compilation, one bottom-up traversal) — the same
    batching as ``repro.core.statistics.membership_probabilities`` — rather
    than one evaluator run per candidate.

    ``backend`` selects the arithmetic (``repro.numeric``).  The keep/drop
    decision is *sound* in every guaranteed backend: a tuple is dropped
    only when its probability cannot be positive (``maybe_positive``), so
    an interval evaluation never drops a tuple the exact evaluation would
    keep, and ``auto`` keeps exactly the tuples ``exact`` keeps (the
    evaluator certifies every output's sign).
    """
    answers = candidate_tuples(query, pdoc)
    events = [
        conjunction([condition, bound_formula(query, answer)]) for answer in answers
    ]
    values = probabilities(pdoc, events + [condition], backend=backend)
    denominator = values[-1]
    if backend in (None, "exact"):
        if denominator == 0:
            raise ValueError(
                "the p-document is not consistent with the constraints"
            )
    else:
        _check_denominator(denominator, backend)
    table: AnswerTable = {}
    for answer, joint in zip(answers, values):
        value = joint / denominator
        if keep_zero or maybe_positive(value):
            table[answer] = value
    return table


def boolean_query_probability(
    pattern: Pattern,
    pdoc: PDocument,
    condition: CFormula = TRUE,
    alpha: Mapping[int, CFormula] | None = None,
    backend: str | None = None,
) -> Fraction:
    """Pr(D ⊨ T′) for a Boolean query over the PXDB (P̃, C) (Section 5):
    Pr(P ⊨ C ∧ T′) / Pr(P ⊨ C), both computed in one joint DP pass."""
    query_formula = exists(pattern, alpha)
    joint, denominator = probabilities(
        pdoc, [conjunction([condition, query_formula]), condition], backend=backend
    )
    if backend in (None, "exact"):
        if denominator == 0:
            raise ValueError(
                "the p-document is not consistent with the constraints"
            )
    else:
        _check_denominator(denominator, backend)
    return joint / denominator


def decode_answers(table: AnswerTable, pdoc: PDocument) -> dict[tuple, Fraction]:
    """Human-readable view of an answer table: uid tuples become label tuples.

    Distinct nodes may share labels; colliding label tuples keep the
    highest probability (this is a presentation helper, not semantics).
    """
    decoded: dict[tuple, Fraction] = {}
    for answer, value in table.items():
        labels = tuple(pdoc.node_by_uid(uid).label for uid in answer)
        if labels not in decoded or decoded[labels] < value:
            decoded[labels] = value
    return decoded
