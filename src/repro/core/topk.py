"""Exact top-k most probable worlds of a PXDB.

Ranking by probability is a staple of probabilistic data management (the
paper cites Re, Dalvi & Suciu's top-k work as context).  For a PXDB
D̃ = (P̃, C), the k most probable documents are the k most probable
*satisfying* worlds of P̃, rescaled by 1/Pr(P ⊨ C).

Two regimes:

* **Flat p-documents** (no distributional node has a distributional
  child): every assignment of the distributional edges yields a distinct
  document, so a best-first branch-and-bound over edge decisions is exact.
  A search node is a partially conditioned p-document (reusing the Norm
  subroutine, :meth:`PDocument.conditioned_on_edge`, so mux
  renormalization lives in one place); its priority is an admissible upper
  bound on the attainable world probability; branches whose conditioning
  makes Pr(P ⊨ C) = 0 are pruned with one evaluator call.  The first k
  fully decided nodes popped are exactly the top-k.
* **Stacked distributional nodes**: several assignments may generate the
  *same* document (the paper's footnote 3), so assignment-level search
  cannot rank documents without aggregation; :func:`top_k_worlds` then
  falls back to exact enumeration (with a size guard).
"""

from __future__ import annotations

import heapq
import itertools
from fractions import Fraction

from ..numeric import surely_zero
from ..pdoc.pdocument import IND, PDocument
from ..xmltree.document import Document
from .evaluator import probability
from .formulas import CFormula, DocumentEvaluator, TRUE
from .sampler import deterministic_instance


def has_stacked_distributional_nodes(pdoc: PDocument) -> bool:
    """Whether some distributional node has a distributional child."""
    return any(
        child.is_distributional()
        for node in pdoc.distributional_nodes()
        for child in node.children
    )


def _bound_suffixes(pdoc: PDocument) -> list[Fraction]:
    """suffix[i] = an admissible bound on the mass the edges i.. can still
    multiply in.  Only an ind edge whose parent has *no distributional
    ancestor* contributes a factor below 1:

    * its probability never changes under conditioning of other edges, and
    * it can never be skipped as unreachable (skipped edges multiply by 1
      — bounding them below 1 is exactly the non-admissibility this
      replaces; the regression test pins it).

    Mux/exp edges bound at 1 too: their priors can *rise* when a sibling
    is conditioned away (renormalization).
    """
    edges = pdoc.dist_edges()
    factors: list[Fraction] = []
    for node, child_index in edges:
        skippable = any(
            ancestor.is_distributional()
            for ancestor in _proper_ancestors(node)
        )
        if node.kind == IND and not skippable:
            p = node.probs[child_index]
            factors.append(max(p, 1 - p))
        else:
            factors.append(Fraction(1))
    suffixes = [Fraction(1)] * (len(edges) + 1)
    for index in range(len(edges) - 1, -1, -1):
        suffixes[index] = factors[index] * suffixes[index + 1]
    return suffixes


def _proper_ancestors(node):
    current = node.parent
    while current is not None:
        yield current
        current = current.parent


def _is_reachable(pdoc: PDocument, node) -> bool:
    """Whether the top-down process can still reach ``node``: no ancestor
    distributional edge on its path has been forced to probability 0.
    (Edges are processed in preorder, so every ancestor edge of the edge
    being decided is either undecided-fractional or already 0/1.)"""
    current = node
    while current.parent is not None:
        parent = current.parent
        if parent.is_distributional():
            index = next(
                i for i, child in enumerate(parent.children) if child is current
            )
            if pdoc.edge_prob(parent, index) == 0:
                return False
        current = parent
    return True


def _top_k_flat(
    pdoc: PDocument,
    k: int,
    condition: CFormula,
    normalizer: Fraction,
    backend: str | None = None,
) -> list[tuple[Document, Fraction]]:
    total = len(pdoc.dist_edges())
    counter = itertools.count()  # tie-breaker so heap never compares p-docs
    suffixes = _bound_suffixes(pdoc)  # constant across the whole search

    # Heap entries: (-bound, tiebreak, decided mass, decided count, p-doc).
    heap = [(-suffixes[0], next(counter), Fraction(1), 0, pdoc)]
    results: list[tuple[Document, Fraction]] = []
    while heap and len(results) < k:
        neg_bound, _, mass, decided, current = heapq.heappop(heap)
        if decided == total:
            results.append((deterministic_instance(current), mass / normalizer))
            continue
        edge = current.dist_edges()[decided]
        node, child_index = edge
        prior = current.edge_prob(node, child_index)
        if prior in (0, 1) or not _is_reachable(current, node):
            # The decision is already forced, or moot (the edge sits inside
            # a subtree an ancestor decision removed): branching here would
            # split one document's mass across several search leaves.
            bound = mass * suffixes[decided + 1]
            heapq.heappush(heap, (-bound, next(counter), mass, decided + 1, current))
            continue
        for chosen in (True, False):
            weight = prior if chosen else 1 - prior
            conditioned = current.conditioned_on_edge(edge, chosen)
            # Prune on certain inconsistency: exact 0, an interval with
            # upper bound exactly 0, or (for auto) a sign the guard
            # certified or resolved exactly.  float64 is the unguarded
            # mode: a 0.0 here may be underflow and prunes anyway.
            if surely_zero(probability(conditioned, condition, backend=backend)):
                continue
            new_mass = mass * weight
            new_bound = new_mass * suffixes[decided + 1]
            heapq.heappush(
                heap, (-new_bound, next(counter), new_mass, decided + 1, conditioned)
            )
    return results


def _top_k_by_enumeration(
    pdoc: PDocument, k: int, condition: CFormula, normalizer: Fraction
) -> list[tuple[Document, Fraction]]:
    from ..pdoc.enumerate import world_distribution

    satisfying: list[tuple[Fraction, frozenset[int]]] = []
    for uids, p in world_distribution(pdoc).items():
        if p == 0:
            continue
        document = pdoc.document_from_uids(uids)
        if DocumentEvaluator().satisfies(document.root, condition):
            satisfying.append((p, uids))
    satisfying.sort(key=lambda item: (-item[0], sorted(item[1])))
    return [
        (pdoc.document_from_uids(uids), p / normalizer)
        for p, uids in satisfying[:k]
    ]


def top_k_worlds(
    pdoc: PDocument,
    k: int,
    condition: CFormula = TRUE,
    max_enumeration_edges: int = 20,
    backend: str | None = None,
) -> list[tuple[Document, Fraction]]:
    """The k most probable documents of the PXDB (P̃, condition), with
    their conditional probabilities Pr(D = d), in decreasing order.

    Flat p-documents use the exact branch-and-bound; p-documents with
    stacked distributional nodes fall back to enumeration and refuse
    inputs with more than ``max_enumeration_edges`` distributional edges.

    ``backend`` selects the arithmetic for the *pruning* probabilities
    (``repro.numeric``); the search itself — edge masses, bounds, heap
    order — is always exact ``Fraction`` arithmetic, so the ranking is
    backend-independent whenever pruning is sound (every backend except
    raw ``float64``, whose underflow may over-prune).
    """
    if k <= 0:
        return []
    normalizer = probability(pdoc, condition, backend=backend)
    if backend == "float64" and normalizer == 0.0:
        raise ValueError(
            "float64 evaluation of Pr(P |= C) underflowed to 0 "
            "(underflow is not proof of impossibility); use "
            "backend='auto' or 'exact'"
        )
    if surely_zero(normalizer):
        raise ValueError("the p-document is not consistent with the constraints")
    if not has_stacked_distributional_nodes(pdoc):
        return _top_k_flat(pdoc, k, condition, normalizer, backend=backend)
    edges = len(pdoc.dist_edges())
    if edges > max_enumeration_edges:
        raise ValueError(
            f"stacked distributional nodes require enumeration, but the "
            f"p-document has {edges} > {max_enumeration_edges} edges"
        )
    return _top_k_by_enumeration(pdoc, k, condition, normalizer)
