"""Compilation of c-formulae for the polynomial evaluation algorithm.

The paper proves Theorem 5.3 through a system of eight formula
transformations plus a recursion that peels the p-document apart, with
memoing to stay polynomial.  This module realizes the same computation as
an explicit *compilation*: every atom of the formula becomes a small
automaton over the positions of its selectors' spines, and the evaluator
(``repro.core.evaluator``) then runs one bottom-up dynamic program over
the p-document whose per-node state — the *signature* — has polynomial
size for a fixed formula.

Key notions
-----------

**Spine.**  For a selector σ = π_n αT the spine is the path from root(T)
to n.  A document node u is selected iff the spine embeds into the path
eval-root .. u such that every spine node's *local test* holds at its
image: its label predicate, its attached c-formula (on the image's
subtree) and all its side branches (matched inside the image's subtree).

**Spine automaton.**  Walking down a document path, the state after a node
is the pair (placed, pending): the spine positions placed exactly at the
node, and the positions with an outgoing descendant edge placed at or
above it.  Reading the vector of local-test bits of the next node advances
the state; the walk *accepts* a node when the last spine position lands on
it.  States are canonicalized (placed positions that no future transition
inspects are dropped) to keep the table small.

**Atoms.**  ``CNT(σ1 ∨ … ∨ σk) θ N`` runs the product of the selectors'
automata and counts nodes accepted by *any* component — which is exactly
the union semantics |σ1(d) ∪ … ∪ σk(d)|, each node being consumed once.
Counts saturate at ``cap = max(0, N) + 1``; by ``ops.compare_saturated``
the comparison θ N is still decided exactly.  ``RATIO(σ⃗, γ) θ R`` counts
the pair (accepted-and-γ, accepted), compared as b·yes θ a·tot.

**Registry.**  Formulae form a DAG (via the α attachments and RATIO inner
formulae).  The registry holds them in dependency (topological) order, so
a node's local tests can consult the truth values of deeper formulae that
were computed first, plus the flat slot layout of the DP signature: one
Boolean slot per (plan, side-branch pattern node, self/below) and one
counter slot per (atom, live automaton state).
"""

from __future__ import annotations

import itertools
from typing import Iterable

from .. import ops
from ..xmltree.pattern import CHILD, DESC, PatternNode
from .formulas import (
    CAnd,
    CFormula,
    CountAtom,
    FALSE,
    MaxAtom,
    MinAtom,
    RatioAtom,
    SFormula,
    TRUE,
)

# A per-selector automaton state: (placed, pending) frozensets of spine
# positions.  The dead state is (∅, ∅).
SelState = tuple[frozenset[int], frozenset[int]]
DEAD: SelState = (frozenset(), frozenset())

# Counts in RATIO atoms must stay exact; they are bounded by the document
# size, so a cap far above any realistic tree never saturates.
EXACT_CAP = 10**18


class SelectorPlan:
    """The compiled form of one selector σ = π_n αT inside an atom.

    ``canonicalize`` controls the state-compression optimization (dropping
    placed positions no future transition inspects); turning it off is the
    ablation baseline of experiment E10 — still correct, more states.
    """

    __slots__ = ("sformula", "spine", "axes", "branches", "branch_nodes", "last",
                 "canonicalize")

    def __init__(self, sformula: SFormula, canonicalize: bool = True):
        self.canonicalize = canonicalize
        self.sformula = sformula
        self.spine = sformula.pattern.spine_to(sformula.projected)
        # axes[i] = edge type between spine[i-1] and spine[i]; axes[0] unused.
        self.axes = [None] + [node.axis for node in self.spine[1:]]
        self.branches = sformula.pattern.side_branches(self.spine)
        self.last = len(self.spine) - 1
        # All pattern nodes inside side branches need match bits in the DP.
        self.branch_nodes: list[PatternNode] = []
        for roots in self.branches.values():
            for root in roots:
                stack = [root]
                while stack:
                    node = stack.pop()
                    self.branch_nodes.append(node)
                    stack.extend(node.children)

    # -- the spine automaton -------------------------------------------------
    def canonical(self, placed: frozenset[int], pending: frozenset[int]) -> SelState:
        """Drop placed positions that no future transition inspects: only a
        position whose outgoing edge is a child edge is consulted later
        (descendant sources were already folded into ``pending``)."""
        if not self.canonicalize:
            if not placed and not pending:
                return DEAD
            return (placed, pending)
        useful = frozenset(
            i for i in placed if i < self.last and self.axes[i + 1] == CHILD
        )
        return (useful, pending)

    def start(self, bits: tuple[bool, ...]) -> tuple[SelState, bool]:
        """Consume the eval-root; returns (state, accepted)."""
        if not bits[0]:
            return DEAD, False
        placed = frozenset([0])
        pending = frozenset(
            i for i in placed if i < self.last and self.axes[i + 1] == DESC
        )
        return self.canonical(placed, pending), self.last == 0

    def step(self, state: SelState, bits: tuple[bool, ...]) -> tuple[SelState, bool]:
        """Consume a non-root node; returns (state, accepted)."""
        placed, pending = state
        new_placed = frozenset(
            i
            for i in range(1, self.last + 1)
            if bits[i]
            and (
                (self.axes[i] == CHILD and i - 1 in placed)
                or (self.axes[i] == DESC and i - 1 in pending)
            )
        )
        new_pending = pending | frozenset(
            i for i in new_placed if i < self.last and self.axes[i + 1] == DESC
        )
        accepted = self.last in new_placed
        return self.canonical(new_placed, new_pending), accepted


# A product state across an atom's selectors.
AtomState = tuple[SelState, ...]


class CompiledAtom:
    """A compiled CNT or RATIO atom: selector plans + product automaton."""

    __slots__ = (
        "atom",
        "plans",
        "cap",
        "is_ratio",
        "inner",
        "live_states",
        "state_slot",
    )

    def __init__(self, atom: CountAtom | RatioAtom, canonicalize: bool = True):
        self.atom = atom
        self.plans = [SelectorPlan(sf, canonicalize) for sf in atom.disjuncts]
        self.is_ratio = isinstance(atom, RatioAtom)
        self.inner = atom.inner if self.is_ratio else None
        self.cap = EXACT_CAP if self.is_ratio else max(0, atom.bound) + 1
        self.live_states: list[AtomState] = []
        self.state_slot: dict[AtomState, int] = {}
        self._analyze()

    @property
    def dead(self) -> AtomState:
        return tuple(DEAD for _ in self.plans)

    def start(self, bit_vectors: list[tuple[bool, ...]]) -> tuple[AtomState, bool]:
        parts = [plan.start(bits) for plan, bits in zip(self.plans, bit_vectors)]
        return tuple(s for s, _ in parts), any(acc for _, acc in parts)

    def step(
        self, state: AtomState, bit_vectors: list[tuple[bool, ...]]
    ) -> tuple[AtomState, bool]:
        parts = [
            plan.step(component, bits)
            for plan, component, bits in zip(self.plans, state, bit_vectors)
        ]
        return tuple(s for s, _ in parts), any(acc for _, acc in parts)

    def _joint_bit_space(self) -> list[list[tuple[bool, ...]]]:
        """All joint local-bit vectors (a conservative superset of what any
        document can realize — sound for reachability/liveness analysis)."""
        per_selector = [
            [tuple(bits) for bits in itertools.product((False, True), repeat=plan.last + 1)]
            for plan in self.plans
        ]
        return [list(combo) for combo in itertools.product(*per_selector)]

    def _analyze(self) -> None:
        """Enumerate reachable product states and prune the non-live ones
        (states from which no acceptance can ever occur contribute count 0
        and need no slot in the signature; with canonicalization on, most
        reachable states are live — the pruning mainly matters for the
        uncanonicalized ablation)."""
        joint_space = self._joint_bit_space()
        reachable: set[AtomState] = set()
        frontier: list[AtomState] = []
        for joint in joint_space:
            state, _ = self.start(joint)
            if state != self.dead and state not in reachable:
                reachable.add(state)
                frontier.append(state)
        edges: dict[AtomState, set[AtomState]] = {}
        accepts_from: set[AtomState] = set()
        while frontier:
            state = frontier.pop()
            outgoing = edges.setdefault(state, set())
            for joint in joint_space:
                nxt, accepted = self.step(state, joint)
                if accepted:
                    accepts_from.add(state)
                if nxt == self.dead:
                    continue
                outgoing.add(nxt)
                if nxt not in reachable:
                    reachable.add(nxt)
                    frontier.append(nxt)
        # Backward propagation of liveness.
        live = set(accepts_from)
        changed = True
        while changed:
            changed = False
            for state in reachable:
                if state in live:
                    continue
                if any(nxt in live for nxt in edges.get(state, ())):
                    live.add(state)
                    changed = True
        self.live_states = sorted(live, key=repr)
        self.state_slot = {state: i for i, state in enumerate(self.live_states)}

    def compare(self, value: int) -> bool:
        """Decide the atom's comparison from a saturated count (CNT only)."""
        return ops.compare_saturated(value, self.cap, self.atom.op, self.atom.bound)

    def compare_ratio(self, yes: int, total: int) -> bool:
        """Decide yes/total θ R exactly (RATIO only); 0 θ R when total = 0."""
        bound = self.atom.bound
        if total == 0:
            return ops.apply(self.atom.op, 0, bound)
        return ops.apply(
            self.atom.op, yes * bound.denominator, bound.numerator * total
        )


class Registry:
    """Everything the evaluator needs, with flat slot layouts.

    * ``order``       — all formulae, dependencies first;
    * ``atoms``       — compiled CNT/RATIO atoms (dedup by identity);
    * ``bit_slots``   — (plan, branch pattern node, self|below) → index;
    * ``count_slots`` — (atom, live state) → index (RATIO uses two
      consecutive indices: yes, total).
    """

    __slots__ = (
        "top",
        "order",
        "atoms",
        "atom_of",
        "bit_index",
        "bit_count",
        "count_layout",
        "count_caps",
        "count_len",
        "label_only",
    )

    def __init__(self, top_formulas: Iterable[CFormula], canonicalize: bool = True):
        self.top = list(top_formulas)
        self.order: list[CFormula] = []
        self.atoms: list[CompiledAtom] = []
        self.atom_of: dict[int, CompiledAtom] = {}
        self._collect(canonicalize)
        self._layout()
        # Label-only registries license the evaluator's structural cache:
        # if no predicate can distinguish nodes beyond their labels, two
        # structurally identical subtrees have identical signature
        # distributions.
        self.label_only = all(
            node.predicate.is_label_only()
            for compiled in self.atoms
            for plan in compiled.plans
            for node in plan.sformula.pattern.nodes()
        )

    @property
    def fingerprint_mode(self) -> str:
        """Which structural fingerprint makes signature-distribution caching
        sound for this registry: ``"shape"`` (uid-free — maximal sharing,
        label-only predicates) or ``"identity"`` (uid-including — required
        once some predicate inspects node identity, still sound across
        clones because cloning preserves uids)."""
        return "shape" if self.label_only else "identity"

    def _collect(self, canonicalize: bool = True) -> None:
        visited: set[int] = set()
        visiting: set[int] = set()

        def visit(formula: CFormula) -> None:
            key = id(formula)
            if key in visited:
                return
            if key in visiting:
                raise ValueError("cyclic formula graph")
            visiting.add(key)
            if formula is TRUE or formula is FALSE:
                pass
            elif isinstance(formula, CAnd):
                for part in formula.parts:
                    visit(part)
            elif isinstance(formula, (CountAtom, RatioAtom)):
                compiled = CompiledAtom(formula, canonicalize)
                for plan in compiled.plans:
                    for node in plan.sformula.pattern.nodes():
                        attached = plan.sformula.alpha_of(node)
                        visit(attached)
                if isinstance(formula, RatioAtom):
                    visit(formula.inner)
                self.atoms.append(compiled)
                self.atom_of[key] = compiled
            elif isinstance(formula, (MinAtom, MaxAtom)):
                raise TypeError(
                    "MIN/MAX atoms must be rewritten to CNT atoms first "
                    "(repro.aggregates.minmax.rewrite)"
                )
            else:
                raise TypeError(
                    f"the polynomial evaluator does not support "
                    f"{type(formula).__name__} (Proposition 7.2: SUM/AVG make "
                    f"evaluation NP-hard); use the baseline or "
                    f"repro.aggregates.sumavg"
                )
            visiting.discard(key)
            visited.add(key)
            self.order.append(formula)

        for formula in self.top:
            visit(formula)

    def _layout(self) -> None:
        self.bit_index: dict[tuple[int, int, str], int] = {}
        index = 0
        for compiled in self.atoms:
            for plan in compiled.plans:
                for node in plan.branch_nodes:
                    self.bit_index[(id(plan), id(node), "self")] = index
                    self.bit_index[(id(plan), id(node), "below")] = index + 1
                    index += 2
        self.bit_count = index

        self.count_layout: dict[tuple[int, AtomState], int] = {}
        caps: list[int] = []
        offset = 0
        for compiled in self.atoms:
            width = 2 if compiled.is_ratio else 1
            for state in compiled.live_states:
                self.count_layout[(id(compiled), state)] = offset
                caps.extend([compiled.cap] * width)
                offset += width
        self.count_caps = tuple(caps)
        self.count_len = offset
