"""The polynomial-time evaluation algorithm for c-formulae (Theorem 5.3).

Given a p-document P̃ and c-formulae γ1…γq, :func:`probabilities` computes
the exact values Pr(P ⊨ γi) — *jointly*, in one bottom-up dynamic program,
which both shares work and lets callers obtain correlated quantities such
as Pr(P ⊨ C ∧ T′) and Pr(P ⊨ C) from a single pass (the two probabilities
query evaluation divides, Section 5).

The DP state is the *signature* of the random forest generated below a
p-document node (see ``repro.core.compiler`` for the slot layout):

* one bit per (selector plan, side-branch pattern node, self/below) —
  "some root of the forest matches the branch node" / "some node of the
  forest does";
* one saturated counter per (atom, live automaton state) — "how many nodes
  of the forest are selected, given the spine walk arrives at the forest's
  parent in that state" (two counters for RATIO atoms).

Signatures form a commutative monoid under sibling combination (bits OR,
counters saturating-add), so distributional nodes reduce to mixtures and
convolutions of their children's signature *distributions*:

* ``ind``  — convolve each child's distribution mixed with "absent";
* ``mux``  — mixture of the children plus "all absent";
* ``exp``  — mixture over the explicitly listed subsets, each a convolution;
* ordinary — convolve the children, then *consume* the node: evaluate every
  registered formula at it (dependencies first, via the START entries),
  derive its side-branch match bits and advance every automaton state.

All arithmetic is exact (``fractions.Fraction``).  For a fixed formula the
signature space is polynomial in |P̃| and the numerical specification,
matching the paper's data-complexity claim; the exponential ground truth
(``repro.baseline.naive``) is used to validate the implementation.

:class:`IncrementalEngine` persists the subtree-distribution cache *across*
evaluation runs (keyed by the stable structural fingerprints of
``repro.pdoc.pdocument``), which turns the m evaluator calls of SAMPLE⟨C⟩
from m full passes into one full pass plus m spine-sized re-evaluations.
"""

from __future__ import annotations

import math
from fractions import Fraction

from ..numeric import GUARD, NumericBackend, get_backend
from ..numeric.backends import _imul
from ..obs.spans import TRACER
from ..pdoc.pdocument import EXP, IND, MUX, ORD, PDocument, PNode
from .compiler import CompiledAtom, Registry, SelectorPlan
from .formulas import CAnd, CFormula, FALSE, TRUE
from ..xmltree.pattern import CHILD

Signature = tuple[int, tuple[int, ...]]  # (bit mask, counter vector)
# Values are Fractions under the default exact backend; float64/interval
# evaluations (repro.numeric) store their own scalar type instead.
SigDist = dict[Signature, Fraction]


class IncrementalEngine:
    """A persistent, cross-run signature-distribution cache for one registry.

    The per-run structural cache of :class:`Evaluation` shares work *within*
    one bottom-up pass; this engine extends the sharing *across* passes: it
    keeps the ``fingerprint → SigDist`` table alive between evaluations, so
    re-evaluating a document that differs from a previously seen one in a
    single spine (the SAMPLE⟨C⟩ loop conditions one distributional edge per
    iteration) recomputes only the changed root-to-edge path — every
    untouched subtree is a cache hit, and the traversal does not even
    descend into it.

    Cache keys are the stable structural fingerprints of
    ``repro.pdoc.pdocument`` in the registry's
    :attr:`~repro.core.compiler.Registry.fingerprint_mode`:

    * ``"shape"`` (label-only registries) — uid-free, so identical
      fragments share an entry even within one document;
    * ``"identity"`` — uids included; sharing only between clones /
      in-place-conditioned versions of the same nodes, which keeps the
      cache sound when predicates inspect node identity (``NodeIs``).

    Counters (cumulative across the engine's lifetime):

    * ``runs``            — completed evaluation passes;
    * ``hits`` / ``misses`` — cache lookups during those passes;
    * ``nodes_computed``  — subtree signature distributions actually
      recomputed (the quantity the incremental sampler minimizes).

    ``max_entries`` bounds the cache for long-lived engines (the service
    layer keeps one warm engine per stored PXDB indefinitely): after each
    run the oldest entries — dict order is insertion order, i.e. bottom-up
    discovery order — are evicted down to the bound.  ``None`` (the
    default) keeps the cache unbounded, the original behavior.
    """

    __slots__ = ("registry", "identity_keys", "cache", "hits", "misses",
                 "runs", "nodes_computed", "max_entries", "evictions", "backend",
                 "combine_cache", "consume_cache", "root_cache")

    def __init__(
        self,
        registry: Registry,
        max_entries: int | None = None,
        backend: str | NumericBackend | None = None,
    ):
        self.registry = registry
        self.identity_keys = registry.fingerprint_mode == "identity"
        self.cache: dict[int, SigDist] = {}
        self.hits = 0
        self.misses = 0
        self.runs = 0
        self.nodes_computed = 0
        self.max_entries = max_entries
        self.evictions = 0
        # Cached distributions hold backend-typed scalars, so one engine is
        # permanently bound to one backend (PXDB keeps one per backend).
        self.backend = get_backend(backend)
        # Structure caches: pure functions of the registry and signatures /
        # node content, independent of the document's probabilities and of
        # the backend — sound to keep across runs, and the reason repeated
        # spine re-evaluations pay almost no signature bookkeeping.
        self.combine_cache: dict = {}
        self.consume_cache: dict = {}
        self.root_cache: dict = {}

    @classmethod
    def for_formulas(
        cls,
        formulas: list[CFormula],
        max_entries: int | None = None,
        backend: str | NumericBackend | None = None,
    ) -> "IncrementalEngine":
        """Compile ``formulas`` once (MIN/MAX rewritten, Theorem 7.1) and
        wrap the registry in a fresh engine."""
        from ..aggregates.minmax import rewrite

        return cls(Registry([rewrite(f) for f in formulas]), max_entries, backend)

    @classmethod
    def for_formula(
        cls,
        formula: CFormula,
        max_entries: int | None = None,
        backend: str | NumericBackend | None = None,
    ) -> "IncrementalEngine":
        return cls.for_formulas([formula], max_entries, backend)

    def evaluation(self, pdoc: PDocument) -> "Evaluation":
        """A fresh evaluation of ``pdoc`` backed by this engine's cache."""
        return Evaluation(self.registry, pdoc, engine=self)

    def probabilities(self, pdoc: PDocument) -> list[Fraction]:
        """[Pr(P ⊨ γ) for γ in registry.top], reusing all cached subtrees."""
        self.runs += 1
        with TRACER.span("engine.pass", run=self.runs) as span:
            results = self.evaluation(pdoc).run()
            span.set(cache_entries=len(self.cache))
        if self.max_entries is not None and len(self.cache) > self.max_entries:
            excess = len(self.cache) - self.max_entries
            for key in list(self.cache)[:excess]:
                del self.cache[key]
            self.evictions += excess
        if self.max_entries is not None:
            # Structure-cache entries are tiny (signature tuples); allow a
            # generous multiple before trimming oldest-first.
            bound = 8 * self.max_entries
            for cache in (self.combine_cache, self.consume_cache, self.root_cache):
                if len(cache) > bound:
                    for key in list(cache)[: len(cache) - bound]:
                        del cache[key]
        return results

    def probability(self, pdoc: PDocument) -> Fraction:
        return self.probabilities(pdoc)[0]

    def clear(self) -> None:
        """Drop the cached distributions (counters are kept)."""
        self.cache.clear()
        self.combine_cache.clear()
        self.consume_cache.clear()
        self.root_cache.clear()

    def stats(self) -> dict[str, int | float]:
        """Cumulative observability counters, plus derived rates."""
        lookups = self.hits + self.misses
        return {
            "runs": self.runs,
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "hit_rate": self.hits / lookups if lookups else 0.0,
            "nodes_computed": self.nodes_computed,
            "cache_entries": len(self.cache),
            "cache_evictions": self.evictions,
        }


class Evaluation:
    """One evaluation run: a compiled registry bound to a p-document.

    ``use_cache`` enables structure sharing: when the registry contains
    only label-only predicates, the signature distribution of a subtree is
    a function of its *shape* (kinds, labels, probabilities), so the
    distributions of the many identical fragments large workloads contain
    (e.g. the departments of the scaled university) are computed once.
    Without an engine the cache is automatically disabled when some
    predicate inspects node identity (``NodeIs``), where sharing by shape
    would be unsound; an :class:`IncrementalEngine` re-enables it with
    uid-including identity fingerprints (sound across clones).

    ``cache_hits`` / ``cache_misses`` / ``nodes_computed`` are *per-run*
    counters: :meth:`run` resets them, so repeated runs on one object
    report that run's work only (the engine keeps the cumulative view).
    """

    def __init__(
        self,
        registry: Registry,
        pdoc: PDocument,
        use_cache: bool = True,
        engine: IncrementalEngine | None = None,
        backend: str | NumericBackend | None = None,
    ):
        if engine is not None and engine.registry is not registry:
            raise ValueError("the engine was compiled for a different registry")
        if engine is not None:
            resolved = engine.backend if backend is None else get_backend(backend)
            if resolved is not engine.backend:
                raise ValueError(
                    f"the engine is bound to the {engine.backend.name!r} backend, "
                    f"cannot evaluate with {resolved.name!r}"
                )
        else:
            resolved = get_backend(backend)
        self.registry = registry
        self.pdoc = pdoc
        self.engine = engine
        self.backend = resolved
        self.empty: Signature = (0, (0,) * registry.count_len)
        self.use_cache = use_cache and (registry.label_only or engine is not None)
        self._identity_keys = not registry.label_only
        self._memo: dict[int, SigDist] = {}
        self._local_cache: dict[int, SigDist] = {}
        self._lift_memo: dict[Fraction, object] = {}
        if engine is not None:
            self._combine_cache = engine.combine_cache
            self._consume_cache = engine.consume_cache
            self._root_cache = engine.root_cache
        else:
            self._combine_cache = {}
            self._consume_cache = {}
            self._root_cache = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.nodes_computed = 0
        self.max_sig_width = 0

    # -- signature monoid ----------------------------------------------------
    def combine(self, left: Signature, right: Signature) -> Signature:
        # Zero count vectors dominate in practice (counting atoms touch few
        # nodes); adding one is the identity, so skip the capped zip.  The
        # general case is memoized (on the engine, when there is one): the
        # signature space is polynomial, so the same pairs recur endlessly
        # across convolutions and runs.
        lc = left[1]
        rc = right[1]
        zeros = self.empty[1]
        if lc == zeros:
            return (left[0] | right[0], rc)
        if rc == zeros:
            return (left[0] | right[0], lc)
        key = (lc, rc)
        counts = self._combine_cache.get(key)
        if counts is None:
            counts = tuple(
                value if (value := a + b) <= cap else cap
                for a, b, cap in zip(lc, rc, self.registry.count_caps)
            )
            self._combine_cache[key] = counts
        return (left[0] | right[0], counts)

    def _lift(self, value: Fraction):
        """The backend scalar for an exact document probability (memoized:
        documents reuse few distinct probabilities, and interval lifting
        checks representability)."""
        lifted = self._lift_memo.get(value)
        if lifted is None:
            lifted = self._lift_memo[value] = self.backend.lift(value)
        return lifted

    def convolve(self, left: SigDist, right: SigDist) -> SigDist:
        # Singleton-empty operands (IND p=1 children, fresh accumulators)
        # reduce to a scalar rescale — no signature work at all.
        backend = self.backend
        if len(left) == 1 and self.empty in left:
            p1 = left[self.empty]
            if p1 == backend.one:
                return dict(right)
            mul = backend.mul
            return {sig: mul(p1, p) for sig, p in right.items()}
        if len(right) == 1 and self.empty in right:
            p2 = right[self.empty]
            if p2 == backend.one:
                return dict(left)
            mul = backend.mul
            return {sig: mul(p, p2) for sig, p in left.items()}
        if backend.name == "interval":
            return self._convolve_interval(left, right)
        result: SigDist = {}
        combine = self.combine
        add = backend.add
        mul = backend.mul
        get = result.get
        for sig1, p1 in left.items():
            for sig2, p2 in right.items():
                key = combine(sig1, sig2)
                term = mul(p1, p2)
                current = get(key)
                result[key] = term if current is None else add(current, term)
        return result

    def _convolve_interval(self, left: SigDist, right: SigDist) -> SigDist:
        """convolve with the directed-rounding arithmetic inlined: the DP's
        weights are nonnegative up to rounding slack, so the nonneg product
        fast path applies almost always and each term costs two ``nextafter``
        calls instead of two Python-level operator calls."""
        result: SigDist = {}
        combine = self.combine
        get = result.get
        na = math.nextafter
        inf = math.inf
        imul = _imul
        for sig1, a in left.items():
            alo, ahi = a
            nonneg = alo >= 0.0
            for sig2, b in right.items():
                blo, bhi = b
                if nonneg and blo >= 0.0:
                    # Same zero-exactness rules as _imul: a 0.0 lower bound
                    # is already valid, and an upper 0.0 widens only when it
                    # is underflow (both factors nonzero) — exact zeros stay
                    # [0, 0] so downstream guards can certify them.
                    tlo = alo * blo
                    if tlo != 0.0:
                        tlo = na(tlo, -inf)
                    thi = ahi * bhi
                    if ahi != 0.0 and bhi != 0.0:
                        thi = na(thi, inf)
                else:
                    tlo, thi = imul(a, b)
                key = combine(sig1, sig2)
                current = get(key)
                if current is None:
                    result[key] = (tlo, thi)
                else:
                    clo, chi = current
                    slo = clo + tlo
                    if clo != 0.0 and tlo != 0.0:
                        slo = na(slo, -inf)
                    shi = chi + thi
                    if chi != 0.0 and thi != 0.0:
                        shi = na(shi, inf)
                    result[key] = (slo, shi)
        return result

    def mix(self, parts: list[tuple[Fraction, SigDist]]) -> SigDist:
        result: SigDist = {}
        backend = self.backend
        add = backend.add
        mul = backend.mul
        get = result.get
        for weight, dist in parts:
            # Prune only weights that are *certainly* zero: a float64 0.0
            # may be the underflow of a tiny positive rational, and an
            # interval is zero only when its upper bound is exactly 0
            # (underflow ≠ impossible — see docs/NUMERIC.md).
            if backend.is_zero(weight):
                continue
            for sig, p in dist.items():
                term = mul(weight, p)
                current = get(sig)
                result[sig] = term if current is None else add(current, term)
        return result

    # -- forest distributions --------------------------------------------------
    def forest_dist(self, node: PNode) -> SigDist:
        """Distribution over signatures of the forest generated by ``node``
        (given the node is reached by the top-down process).

        Computed iteratively (explicit postorder), so arbitrarily deep
        p-documents do not hit the interpreter's recursion limit, with
        memoization by structural fingerprint when the registry permits it.
        A cache hit *prunes the traversal*: the subtree below a known
        fingerprint is never visited, so with a warm engine cache the work
        is proportional to the changed spine, not the document size.
        """
        memo = self._memo
        if id(node) in memo:
            return memo[id(node)]
        cache = self.engine.cache if self.engine is not None else self._local_cache
        stack: list[tuple[PNode, bool]] = [(node, False)]
        while stack:
            current, expanded = stack.pop()
            if id(current) in memo:
                continue
            if not expanded:
                if self.use_cache:
                    dist = cache.get(self._cache_key(current))
                    if dist is not None:
                        memo[id(current)] = dist
                        self._hit()
                        continue
                stack.append((current, True))
                stack.extend((child, False) for child in current.children)
                continue
            dist = self._forest_dist_local(current, memo)
            memo[id(current)] = dist
            self.nodes_computed += 1
            if len(dist) > self.max_sig_width:
                self.max_sig_width = len(dist)
            if self.engine is not None:
                self.engine.nodes_computed += 1
            if self.use_cache:
                cache[self._cache_key(current)] = dist
                self._miss()
        return memo[id(node)]

    def _cache_key(self, node: PNode) -> int:
        """The node's stable structural fingerprint in the registry's mode
        (cached on the node itself; O(1) when already computed)."""
        if self._identity_keys:
            return node.identity_fingerprint()
        return node.shape_fingerprint()

    def _hit(self) -> None:
        self.cache_hits += 1
        if self.engine is not None:
            self.engine.hits += 1

    def _miss(self) -> None:
        self.cache_misses += 1
        if self.engine is not None:
            self.engine.misses += 1

    def _forest_dist_local(self, node: PNode, memo: dict[int, SigDist]) -> SigDist:
        """One node's forest distribution, children's results in ``memo``."""
        one = self.backend.one
        if node.kind == ORD:
            dist = self._combine_children(node, memo)
            out: SigDist = {}
            add = self.backend.add
            get = out.get
            for forest_sig, p in dist.items():
                sig = self.consume(node, forest_sig)
                current = get(sig)
                out[sig] = p if current is None else add(current, p)
            return out
        # Zero/one short-circuits below test the *exact* document rationals
        # (always available, whatever the arithmetic backend), never their
        # lifted values: a float64 weight of 0.0 may be the underflow of a
        # tiny positive probability, and pruning it would silently drop
        # possible worlds (underflow ≠ impossible — docs/NUMERIC.md).  Both
        # weights are lifted from the exact values (1 - p computed as a
        # rational), so interval lifts stay as tight as representability
        # allows.
        lift = self._lift
        if node.kind == IND:
            dist = {self.empty: one}
            for index, child in enumerate(node.children):
                p = node.probs[index]
                if p == 0:
                    continue  # surely absent: convolving with "absent" is identity
                if p == 1:
                    dist = self.convolve(dist, memo[id(child)])
                    continue
                child_dist = self.mix(
                    [(lift(p), memo[id(child)]), (lift(1 - p), {self.empty: one})]
                )
                dist = self.convolve(dist, child_dist)
            return dist
        if node.kind == MUX:
            total = sum(node.probs, Fraction(0))
            parts = [] if total == 1 else [(lift(1 - total), {self.empty: one})]
            parts += [
                (lift(node.probs[i]), memo[id(child)])
                for i, child in enumerate(node.children)
                if node.probs[i] != 0
            ]
            return self.mix(parts)
        if node.kind == EXP:
            parts = []
            for subset, q in node.subsets:
                if q == 0:
                    continue
                dist = {self.empty: one}
                for index in sorted(subset):
                    dist = self.convolve(dist, memo[id(node.children[index])])
                parts.append((lift(q), dist))
            return self.mix(parts)
        raise AssertionError(f"unknown node kind {node.kind}")

    def _combine_children(self, node: PNode, memo: dict[int, SigDist]) -> SigDist:
        dist: SigDist = {self.empty: self.backend.one}
        for child in node.children:
            dist = self.convolve(dist, memo[id(child)])
        return dist

    def children_dist(self, node: PNode) -> SigDist:
        """Convolution of the forests of an ordinary node's children."""
        dist: SigDist = {self.empty: self.backend.one}
        for child in node.children:
            dist = self.convolve(dist, self.forest_dist(child))
        return dist

    # -- consuming an ordinary node ---------------------------------------------
    def consume(self, node: PNode, forest: Signature) -> Signature:
        """Signature of the tree rooted at ``node`` given its children's
        combined forest signature.

        Memoized on the engine: every predicate reads only ``node.label``
        (or ``node.uid`` for ``NodeIs``), so the result is a pure function
        of (uid, label, forest) for a fixed registry — independent of the
        document's probabilities, hence stable across conditioning."""
        key = (node.uid, node.label, forest)
        cached = self._consume_cache.get(key)
        if cached is None:
            truths, plan_bits = self._local_analysis(node, forest)
            cached = self._emit(node, forest, truths, plan_bits)
            self._consume_cache[key] = cached
        return cached

    def _local_analysis(
        self, node: PNode, forest: Signature
    ) -> tuple[dict[int, bool], dict[int, tuple[bool, ...]]]:
        """Compute the truth of every registered formula at ``node`` and the
        local-test bit vector of every selector plan, dependencies first."""
        registry = self.registry
        truths: dict[int, bool] = {}
        plan_bits: dict[int, tuple[bool, ...]] = {}

        def local_bits(compiled: CompiledAtom) -> list[tuple[bool, ...]]:
            vectors = []
            for plan in compiled.plans:
                cached = plan_bits.get(id(plan))
                if cached is None:
                    cached = tuple(
                        self._local_test(plan, i, node, forest, truths)
                        for i in range(plan.last + 1)
                    )
                    plan_bits[id(plan)] = cached
                vectors.append(cached)
            return vectors

        for formula in registry.order:
            if formula is TRUE:
                truths[id(formula)] = True
            elif formula is FALSE:
                truths[id(formula)] = False
            elif isinstance(formula, CAnd):
                truths[id(formula)] = all(truths[id(part)] for part in formula.parts)
            else:  # CountAtom / RatioAtom
                compiled = registry.atom_of[id(formula)]
                vectors = local_bits(compiled)
                state, accepted = compiled.start(vectors)
                if compiled.is_ratio:
                    yes, tot = self._state_pair(compiled, state, forest)
                    if accepted:
                        tot += 1
                        if truths[id(compiled.inner)]:
                            yes += 1
                    truths[id(formula)] = compiled.compare_ratio(yes, tot)
                else:
                    count = self._state_count(compiled, state, forest)
                    if accepted:
                        count = min(count + 1, compiled.cap)
                    truths[id(formula)] = compiled.compare(count)
        # Make sure every plan's bits exist for the emit phase.
        for compiled in registry.atoms:
            local_bits(compiled)
        return truths, plan_bits

    def _local_test(
        self,
        plan: SelectorPlan,
        position: int,
        node: PNode,
        forest: Signature,
        truths: dict[int, bool],
    ) -> bool:
        """L_i(node): predicate ∧ attached formula ∧ side branches."""
        spine_node = plan.spine[position]
        if not spine_node.predicate.matches(node):
            return False
        attached = plan.sformula.alpha_of(spine_node)
        if not truths[id(attached)]:
            return False
        bits, _ = forest
        bit_index = self.registry.bit_index
        for branch_root in plan.branches[position]:
            kind = "self" if branch_root.axis == CHILD else "below"
            slot = bit_index[(id(plan), id(branch_root), kind)]
            if not (bits >> slot) & 1:
                return False
        return True

    def _branch_bit(
        self,
        plan: SelectorPlan,
        pattern_node,
        node: PNode,
        forest: Signature,
        truths: dict[int, bool],
    ) -> bool:
        """B_m(node): the sub-pattern rooted at the branch node m matches
        with m ↦ node (within node's subtree)."""
        if not pattern_node.predicate.matches(node):
            return False
        attached = plan.sformula.alpha_of(pattern_node)
        if not truths[id(attached)]:
            return False
        bits, _ = forest
        bit_index = self.registry.bit_index
        for child in pattern_node.children:
            kind = "self" if child.axis == CHILD else "below"
            slot = bit_index[(id(plan), id(child), kind)]
            if not (bits >> slot) & 1:
                return False
        return True

    def _state_count(
        self, compiled: CompiledAtom, state, forest: Signature
    ) -> int:
        offset = self.registry.count_layout.get((id(compiled), state))
        return 0 if offset is None else forest[1][offset]

    def _state_pair(
        self, compiled: CompiledAtom, state, forest: Signature
    ) -> tuple[int, int]:
        offset = self.registry.count_layout.get((id(compiled), state))
        if offset is None:
            return 0, 0
        counts = forest[1]
        return counts[offset], counts[offset + 1]

    def _emit(
        self,
        node: PNode,
        forest: Signature,
        truths: dict[int, bool],
        plan_bits: dict[int, tuple[bool, ...]],
    ) -> Signature:
        """Build the tree signature of ``node`` from its forest signature."""
        registry = self.registry
        forest_bits = forest[0]
        bits = 0
        for compiled in registry.atoms:
            for plan in compiled.plans:
                for pattern_node in plan.branch_nodes:
                    self_slot = registry.bit_index[(id(plan), id(pattern_node), "self")]
                    below_slot = registry.bit_index[(id(plan), id(pattern_node), "below")]
                    matched = self._branch_bit(plan, pattern_node, node, forest, truths)
                    if matched:
                        bits |= 1 << self_slot
                    if matched or (forest_bits >> below_slot) & 1:
                        bits |= 1 << below_slot

        counts = [0] * registry.count_len
        for compiled in registry.atoms:
            vectors = [plan_bits[id(plan)] for plan in compiled.plans]
            inner_true = (
                truths[id(compiled.inner)] if compiled.is_ratio else False
            )
            for state in compiled.live_states:
                offset = registry.count_layout[(id(compiled), state)]
                nxt, accepted = compiled.step(state, vectors)
                if compiled.is_ratio:
                    yes, tot = self._state_pair(compiled, nxt, forest)
                    if accepted:
                        tot += 1
                        if inner_true:
                            yes += 1
                    counts[offset] = min(yes, compiled.cap)
                    counts[offset + 1] = min(tot, compiled.cap)
                else:
                    count = self._state_count(compiled, nxt, forest)
                    if accepted:
                        count += 1
                    counts[offset] = min(count, compiled.cap)
        return (bits, tuple(counts))

    # -- the root -----------------------------------------------------------------
    def run(self) -> list[Fraction]:
        """Pr(P ⊨ γ) for every top formula of the registry.

        Resets the per-run counters and the per-document memo first, so
        ``cache_hits`` / ``cache_misses`` / ``nodes_computed`` /
        ``max_sig_width`` afterwards describe exactly this run (the memo
        must not survive either: the p-document may have been conditioned
        in place since the last run).

        When tracing is on, the run is recorded as a ``dp.run`` span
        carrying those structural counters; when off, the cost is one
        attribute load and a branch.
        """
        if not TRACER.enabled:
            return self._run()
        with TRACER.span(
            "dp.run", formulas=len(self.registry.top), backend=self.backend.name
        ) as span:
            results = self._run()
            span.set(
                nodes_computed=self.nodes_computed,
                cache_hits=self.cache_hits,
                cache_misses=self.cache_misses,
                max_sig_width=self.max_sig_width,
            )
        return results

    def _run(self) -> list[Fraction]:
        self._memo.clear()
        self.cache_hits = 0
        self.cache_misses = 0
        self.nodes_computed = 0
        self.max_sig_width = 0
        root = self.pdoc.root
        dist = self.children_dist(root)
        add = self.backend.add
        top = self.registry.top
        results = [self.backend.zero for _ in top]
        root_cache = self._root_cache
        root_key = (root.uid, root.label)
        for forest_sig, p in dist.items():
            key = (root_key, forest_sig)
            top_truths = root_cache.get(key)
            if top_truths is None:
                truths, _ = self._local_analysis(root, forest_sig)
                top_truths = tuple(truths[id(formula)] for formula in top)
                root_cache[key] = top_truths
            for index, true in enumerate(top_truths):
                if true:
                    results[index] = add(results[index], p)
        return results


def probabilities(
    pdoc: PDocument,
    formulas: list[CFormula],
    backend: str | NumericBackend | None = None,
) -> list[Fraction]:
    """[Pr(P ⊨ γ) for γ in formulas], in one joint DP pass.

    MIN/MAX atoms are rewritten to CNT atoms on the way in (Theorem 7.1);
    SUM/AVG atoms are rejected (Proposition 7.2 — use the baseline).

    ``backend`` selects the arithmetic (``repro.numeric``): the default
    ``exact`` returns the exact ``Fraction``s of Theorem 5.3; ``float64``
    returns doubles; ``interval`` returns
    :class:`~repro.numeric.Interval` enclosures that always contain the
    exact value; ``"auto"`` evaluates in interval arithmetic and re-runs
    the pass exactly for the outputs whose sign the bounds cannot certify
    — those come back as exact ``Fraction``s, every other output as a
    midpoint float, so a ``> 0`` test on any output matches ``exact``.
    """
    from ..aggregates.minmax import rewrite

    rewritten = [rewrite(f) for f in formulas]
    registry = Registry(rewritten)
    if backend == "auto":
        return _auto_probabilities(registry, pdoc)
    evaluation = Evaluation(registry, pdoc, backend=backend)
    finalize = evaluation.backend.finalize
    return [finalize(value) for value in evaluation.run()]


def _auto_probabilities(registry: Registry, pdoc: PDocument) -> list:
    enclosures = Evaluation(registry, pdoc, backend="interval").run()
    straddling = [
        index for index, (lo, hi) in enumerate(enclosures) if lo <= 0.0 < hi
    ]
    certified = len(enclosures) - len(straddling)
    if certified:
        GUARD.decided(certified)
    if not straddling:
        return [_interval_mid(value) for value in enclosures]
    # One joint exact pass resolves every straddling output at once.
    GUARD.fell_back(len(straddling))
    exact_values = Evaluation(registry, pdoc).run()
    resolved = set(straddling)
    return [
        exact_values[index] if index in resolved else _interval_mid(value)
        for index, value in enumerate(enclosures)
    ]


def _interval_mid(value: tuple[float, float]) -> float:
    lo, hi = value
    if lo == hi:
        return lo
    mid = (max(lo, 0.0) + min(hi, 1.0)) / 2.0
    return min(max(mid, lo), hi)


def probability(
    pdoc: PDocument,
    formula: CFormula,
    backend: str | NumericBackend | None = None,
) -> Fraction:
    """Pr(P ⊨ γ) (Theorem 5.3), in the requested backend's arithmetic."""
    return probabilities(pdoc, [formula], backend=backend)[0]
