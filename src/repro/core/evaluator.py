"""The polynomial-time evaluation algorithm for c-formulae (Theorem 5.3).

Given a p-document P̃ and c-formulae γ1…γq, :func:`probabilities` computes
the exact values Pr(P ⊨ γi) — *jointly*, in one bottom-up dynamic program,
which both shares work and lets callers obtain correlated quantities such
as Pr(P ⊨ C ∧ T′) and Pr(P ⊨ C) from a single pass (the two probabilities
query evaluation divides, Section 5).

The DP state is the *signature* of the random forest generated below a
p-document node (see ``repro.core.compiler`` for the slot layout):

* one bit per (selector plan, side-branch pattern node, self/below) —
  "some root of the forest matches the branch node" / "some node of the
  forest does";
* one saturated counter per (atom, live automaton state) — "how many nodes
  of the forest are selected, given the spine walk arrives at the forest's
  parent in that state" (two counters for RATIO atoms).

Signatures form a commutative monoid under sibling combination (bits OR,
counters saturating-add), so distributional nodes reduce to mixtures and
convolutions of their children's signature *distributions*:

* ``ind``  — convolve each child's distribution mixed with "absent";
* ``mux``  — mixture of the children plus "all absent";
* ``exp``  — mixture over the explicitly listed subsets, each a convolution;
* ordinary — convolve the children, then *consume* the node: evaluate every
  registered formula at it (dependencies first, via the START entries),
  derive its side-branch match bits and advance every automaton state.

All arithmetic is exact (``fractions.Fraction``).  For a fixed formula the
signature space is polynomial in |P̃| and the numerical specification,
matching the paper's data-complexity claim; the exponential ground truth
(``repro.baseline.naive``) is used to validate the implementation.

:class:`IncrementalEngine` persists the subtree-distribution cache *across*
evaluation runs (keyed by the stable structural fingerprints of
``repro.pdoc.pdocument``), which turns the m evaluator calls of SAMPLE⟨C⟩
from m full passes into one full pass plus m spine-sized re-evaluations.
"""

from __future__ import annotations

from fractions import Fraction

from ..obs.spans import TRACER
from ..pdoc.pdocument import EXP, IND, MUX, ORD, PDocument, PNode
from .compiler import CompiledAtom, Registry, SelectorPlan
from .formulas import CAnd, CFormula, FALSE, TRUE
from ..xmltree.pattern import CHILD

Signature = tuple[int, tuple[int, ...]]  # (bit mask, counter vector)
SigDist = dict[Signature, Fraction]


class IncrementalEngine:
    """A persistent, cross-run signature-distribution cache for one registry.

    The per-run structural cache of :class:`Evaluation` shares work *within*
    one bottom-up pass; this engine extends the sharing *across* passes: it
    keeps the ``fingerprint → SigDist`` table alive between evaluations, so
    re-evaluating a document that differs from a previously seen one in a
    single spine (the SAMPLE⟨C⟩ loop conditions one distributional edge per
    iteration) recomputes only the changed root-to-edge path — every
    untouched subtree is a cache hit, and the traversal does not even
    descend into it.

    Cache keys are the stable structural fingerprints of
    ``repro.pdoc.pdocument`` in the registry's
    :attr:`~repro.core.compiler.Registry.fingerprint_mode`:

    * ``"shape"`` (label-only registries) — uid-free, so identical
      fragments share an entry even within one document;
    * ``"identity"`` — uids included; sharing only between clones /
      in-place-conditioned versions of the same nodes, which keeps the
      cache sound when predicates inspect node identity (``NodeIs``).

    Counters (cumulative across the engine's lifetime):

    * ``runs``            — completed evaluation passes;
    * ``hits`` / ``misses`` — cache lookups during those passes;
    * ``nodes_computed``  — subtree signature distributions actually
      recomputed (the quantity the incremental sampler minimizes).

    ``max_entries`` bounds the cache for long-lived engines (the service
    layer keeps one warm engine per stored PXDB indefinitely): after each
    run the oldest entries — dict order is insertion order, i.e. bottom-up
    discovery order — are evicted down to the bound.  ``None`` (the
    default) keeps the cache unbounded, the original behavior.
    """

    __slots__ = ("registry", "identity_keys", "cache", "hits", "misses",
                 "runs", "nodes_computed", "max_entries", "evictions")

    def __init__(self, registry: Registry, max_entries: int | None = None):
        self.registry = registry
        self.identity_keys = registry.fingerprint_mode == "identity"
        self.cache: dict[int, SigDist] = {}
        self.hits = 0
        self.misses = 0
        self.runs = 0
        self.nodes_computed = 0
        self.max_entries = max_entries
        self.evictions = 0

    @classmethod
    def for_formulas(
        cls, formulas: list[CFormula], max_entries: int | None = None
    ) -> "IncrementalEngine":
        """Compile ``formulas`` once (MIN/MAX rewritten, Theorem 7.1) and
        wrap the registry in a fresh engine."""
        from ..aggregates.minmax import rewrite

        return cls(Registry([rewrite(f) for f in formulas]), max_entries)

    @classmethod
    def for_formula(
        cls, formula: CFormula, max_entries: int | None = None
    ) -> "IncrementalEngine":
        return cls.for_formulas([formula], max_entries)

    def evaluation(self, pdoc: PDocument) -> "Evaluation":
        """A fresh evaluation of ``pdoc`` backed by this engine's cache."""
        return Evaluation(self.registry, pdoc, engine=self)

    def probabilities(self, pdoc: PDocument) -> list[Fraction]:
        """[Pr(P ⊨ γ) for γ in registry.top], reusing all cached subtrees."""
        self.runs += 1
        with TRACER.span("engine.pass", run=self.runs) as span:
            results = self.evaluation(pdoc).run()
            span.set(cache_entries=len(self.cache))
        if self.max_entries is not None and len(self.cache) > self.max_entries:
            excess = len(self.cache) - self.max_entries
            for key in list(self.cache)[:excess]:
                del self.cache[key]
            self.evictions += excess
        return results

    def probability(self, pdoc: PDocument) -> Fraction:
        return self.probabilities(pdoc)[0]

    def clear(self) -> None:
        """Drop the cached distributions (counters are kept)."""
        self.cache.clear()

    def stats(self) -> dict[str, int | float]:
        """Cumulative observability counters, plus derived rates."""
        lookups = self.hits + self.misses
        return {
            "runs": self.runs,
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "hit_rate": self.hits / lookups if lookups else 0.0,
            "nodes_computed": self.nodes_computed,
            "cache_entries": len(self.cache),
            "cache_evictions": self.evictions,
        }


class Evaluation:
    """One evaluation run: a compiled registry bound to a p-document.

    ``use_cache`` enables structure sharing: when the registry contains
    only label-only predicates, the signature distribution of a subtree is
    a function of its *shape* (kinds, labels, probabilities), so the
    distributions of the many identical fragments large workloads contain
    (e.g. the departments of the scaled university) are computed once.
    Without an engine the cache is automatically disabled when some
    predicate inspects node identity (``NodeIs``), where sharing by shape
    would be unsound; an :class:`IncrementalEngine` re-enables it with
    uid-including identity fingerprints (sound across clones).

    ``cache_hits`` / ``cache_misses`` / ``nodes_computed`` are *per-run*
    counters: :meth:`run` resets them, so repeated runs on one object
    report that run's work only (the engine keeps the cumulative view).
    """

    def __init__(
        self,
        registry: Registry,
        pdoc: PDocument,
        use_cache: bool = True,
        engine: IncrementalEngine | None = None,
    ):
        if engine is not None and engine.registry is not registry:
            raise ValueError("the engine was compiled for a different registry")
        self.registry = registry
        self.pdoc = pdoc
        self.engine = engine
        self.empty: Signature = (0, (0,) * registry.count_len)
        self.use_cache = use_cache and (registry.label_only or engine is not None)
        self._identity_keys = not registry.label_only
        self._memo: dict[int, SigDist] = {}
        self._local_cache: dict[int, SigDist] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.nodes_computed = 0
        self.max_sig_width = 0

    # -- signature monoid ----------------------------------------------------
    def combine(self, left: Signature, right: Signature) -> Signature:
        caps = self.registry.count_caps
        bits = left[0] | right[0]
        counts = tuple(
            value if (value := a + b) <= cap else cap
            for a, b, cap in zip(left[1], right[1], caps)
        )
        return (bits, counts)

    def convolve(self, left: SigDist, right: SigDist) -> SigDist:
        result: SigDist = {}
        for sig1, p1 in left.items():
            for sig2, p2 in right.items():
                key = self.combine(sig1, sig2)
                result[key] = result.get(key, Fraction(0)) + p1 * p2
        return result

    def mix(self, parts: list[tuple[Fraction, SigDist]]) -> SigDist:
        result: SigDist = {}
        for weight, dist in parts:
            if weight == 0:
                continue
            for sig, p in dist.items():
                result[sig] = result.get(sig, Fraction(0)) + weight * p
        return result

    # -- forest distributions --------------------------------------------------
    def forest_dist(self, node: PNode) -> SigDist:
        """Distribution over signatures of the forest generated by ``node``
        (given the node is reached by the top-down process).

        Computed iteratively (explicit postorder), so arbitrarily deep
        p-documents do not hit the interpreter's recursion limit, with
        memoization by structural fingerprint when the registry permits it.
        A cache hit *prunes the traversal*: the subtree below a known
        fingerprint is never visited, so with a warm engine cache the work
        is proportional to the changed spine, not the document size.
        """
        memo = self._memo
        if id(node) in memo:
            return memo[id(node)]
        cache = self.engine.cache if self.engine is not None else self._local_cache
        stack: list[tuple[PNode, bool]] = [(node, False)]
        while stack:
            current, expanded = stack.pop()
            if id(current) in memo:
                continue
            if not expanded:
                if self.use_cache:
                    dist = cache.get(self._cache_key(current))
                    if dist is not None:
                        memo[id(current)] = dist
                        self._hit()
                        continue
                stack.append((current, True))
                stack.extend((child, False) for child in current.children)
                continue
            dist = self._forest_dist_local(current, memo)
            memo[id(current)] = dist
            self.nodes_computed += 1
            if len(dist) > self.max_sig_width:
                self.max_sig_width = len(dist)
            if self.engine is not None:
                self.engine.nodes_computed += 1
            if self.use_cache:
                cache[self._cache_key(current)] = dist
                self._miss()
        return memo[id(node)]

    def _cache_key(self, node: PNode) -> int:
        """The node's stable structural fingerprint in the registry's mode
        (cached on the node itself; O(1) when already computed)."""
        if self._identity_keys:
            return node.identity_fingerprint()
        return node.shape_fingerprint()

    def _hit(self) -> None:
        self.cache_hits += 1
        if self.engine is not None:
            self.engine.hits += 1

    def _miss(self) -> None:
        self.cache_misses += 1
        if self.engine is not None:
            self.engine.misses += 1

    def _forest_dist_local(self, node: PNode, memo: dict[int, SigDist]) -> SigDist:
        """One node's forest distribution, children's results in ``memo``."""
        if node.kind == ORD:
            dist = self._combine_children(node, memo)
            out: SigDist = {}
            for forest_sig, p in dist.items():
                sig = self.consume(node, forest_sig)
                out[sig] = out.get(sig, Fraction(0)) + p
            return out
        if node.kind == IND:
            dist = {self.empty: Fraction(1)}
            for index, child in enumerate(node.children):
                p = node.probs[index]
                child_dist = self.mix(
                    [(p, memo[id(child)]), (1 - p, {self.empty: Fraction(1)})]
                )
                dist = self.convolve(dist, child_dist)
            return dist
        if node.kind == MUX:
            total = sum(node.probs, Fraction(0))
            parts = [(1 - total, {self.empty: Fraction(1)})]
            parts += [
                (node.probs[i], memo[id(child)])
                for i, child in enumerate(node.children)
            ]
            return self.mix(parts)
        if node.kind == EXP:
            parts = []
            for subset, q in node.subsets:
                dist = {self.empty: Fraction(1)}
                for index in sorted(subset):
                    dist = self.convolve(dist, memo[id(node.children[index])])
                parts.append((q, dist))
            return self.mix(parts)
        raise AssertionError(f"unknown node kind {node.kind}")

    def _combine_children(self, node: PNode, memo: dict[int, SigDist]) -> SigDist:
        dist: SigDist = {self.empty: Fraction(1)}
        for child in node.children:
            dist = self.convolve(dist, memo[id(child)])
        return dist

    def children_dist(self, node: PNode) -> SigDist:
        """Convolution of the forests of an ordinary node's children."""
        dist: SigDist = {self.empty: Fraction(1)}
        for child in node.children:
            dist = self.convolve(dist, self.forest_dist(child))
        return dist

    # -- consuming an ordinary node ---------------------------------------------
    def consume(self, node: PNode, forest: Signature) -> Signature:
        """Signature of the tree rooted at ``node`` given its children's
        combined forest signature."""
        truths, plan_bits = self._local_analysis(node, forest)
        return self._emit(node, forest, truths, plan_bits)

    def _local_analysis(
        self, node: PNode, forest: Signature
    ) -> tuple[dict[int, bool], dict[int, tuple[bool, ...]]]:
        """Compute the truth of every registered formula at ``node`` and the
        local-test bit vector of every selector plan, dependencies first."""
        registry = self.registry
        truths: dict[int, bool] = {}
        plan_bits: dict[int, tuple[bool, ...]] = {}

        def local_bits(compiled: CompiledAtom) -> list[tuple[bool, ...]]:
            vectors = []
            for plan in compiled.plans:
                cached = plan_bits.get(id(plan))
                if cached is None:
                    cached = tuple(
                        self._local_test(plan, i, node, forest, truths)
                        for i in range(plan.last + 1)
                    )
                    plan_bits[id(plan)] = cached
                vectors.append(cached)
            return vectors

        for formula in registry.order:
            if formula is TRUE:
                truths[id(formula)] = True
            elif formula is FALSE:
                truths[id(formula)] = False
            elif isinstance(formula, CAnd):
                truths[id(formula)] = all(truths[id(part)] for part in formula.parts)
            else:  # CountAtom / RatioAtom
                compiled = registry.atom_of[id(formula)]
                vectors = local_bits(compiled)
                state, accepted = compiled.start(vectors)
                if compiled.is_ratio:
                    yes, tot = self._state_pair(compiled, state, forest)
                    if accepted:
                        tot += 1
                        if truths[id(compiled.inner)]:
                            yes += 1
                    truths[id(formula)] = compiled.compare_ratio(yes, tot)
                else:
                    count = self._state_count(compiled, state, forest)
                    if accepted:
                        count = min(count + 1, compiled.cap)
                    truths[id(formula)] = compiled.compare(count)
        # Make sure every plan's bits exist for the emit phase.
        for compiled in registry.atoms:
            local_bits(compiled)
        return truths, plan_bits

    def _local_test(
        self,
        plan: SelectorPlan,
        position: int,
        node: PNode,
        forest: Signature,
        truths: dict[int, bool],
    ) -> bool:
        """L_i(node): predicate ∧ attached formula ∧ side branches."""
        spine_node = plan.spine[position]
        if not spine_node.predicate.matches(node):
            return False
        attached = plan.sformula.alpha_of(spine_node)
        if not truths[id(attached)]:
            return False
        bits, _ = forest
        bit_index = self.registry.bit_index
        for branch_root in plan.branches[position]:
            kind = "self" if branch_root.axis == CHILD else "below"
            slot = bit_index[(id(plan), id(branch_root), kind)]
            if not (bits >> slot) & 1:
                return False
        return True

    def _branch_bit(
        self,
        plan: SelectorPlan,
        pattern_node,
        node: PNode,
        forest: Signature,
        truths: dict[int, bool],
    ) -> bool:
        """B_m(node): the sub-pattern rooted at the branch node m matches
        with m ↦ node (within node's subtree)."""
        if not pattern_node.predicate.matches(node):
            return False
        attached = plan.sformula.alpha_of(pattern_node)
        if not truths[id(attached)]:
            return False
        bits, _ = forest
        bit_index = self.registry.bit_index
        for child in pattern_node.children:
            kind = "self" if child.axis == CHILD else "below"
            slot = bit_index[(id(plan), id(child), kind)]
            if not (bits >> slot) & 1:
                return False
        return True

    def _state_count(
        self, compiled: CompiledAtom, state, forest: Signature
    ) -> int:
        offset = self.registry.count_layout.get((id(compiled), state))
        return 0 if offset is None else forest[1][offset]

    def _state_pair(
        self, compiled: CompiledAtom, state, forest: Signature
    ) -> tuple[int, int]:
        offset = self.registry.count_layout.get((id(compiled), state))
        if offset is None:
            return 0, 0
        counts = forest[1]
        return counts[offset], counts[offset + 1]

    def _emit(
        self,
        node: PNode,
        forest: Signature,
        truths: dict[int, bool],
        plan_bits: dict[int, tuple[bool, ...]],
    ) -> Signature:
        """Build the tree signature of ``node`` from its forest signature."""
        registry = self.registry
        forest_bits = forest[0]
        bits = 0
        for compiled in registry.atoms:
            for plan in compiled.plans:
                for pattern_node in plan.branch_nodes:
                    self_slot = registry.bit_index[(id(plan), id(pattern_node), "self")]
                    below_slot = registry.bit_index[(id(plan), id(pattern_node), "below")]
                    matched = self._branch_bit(plan, pattern_node, node, forest, truths)
                    if matched:
                        bits |= 1 << self_slot
                    if matched or (forest_bits >> below_slot) & 1:
                        bits |= 1 << below_slot

        counts = [0] * registry.count_len
        for compiled in registry.atoms:
            vectors = [plan_bits[id(plan)] for plan in compiled.plans]
            inner_true = (
                truths[id(compiled.inner)] if compiled.is_ratio else False
            )
            for state in compiled.live_states:
                offset = registry.count_layout[(id(compiled), state)]
                nxt, accepted = compiled.step(state, vectors)
                if compiled.is_ratio:
                    yes, tot = self._state_pair(compiled, nxt, forest)
                    if accepted:
                        tot += 1
                        if inner_true:
                            yes += 1
                    counts[offset] = min(yes, compiled.cap)
                    counts[offset + 1] = min(tot, compiled.cap)
                else:
                    count = self._state_count(compiled, nxt, forest)
                    if accepted:
                        count += 1
                    counts[offset] = min(count, compiled.cap)
        return (bits, tuple(counts))

    # -- the root -----------------------------------------------------------------
    def run(self) -> list[Fraction]:
        """Pr(P ⊨ γ) for every top formula of the registry.

        Resets the per-run counters and the per-document memo first, so
        ``cache_hits`` / ``cache_misses`` / ``nodes_computed`` /
        ``max_sig_width`` afterwards describe exactly this run (the memo
        must not survive either: the p-document may have been conditioned
        in place since the last run).

        When tracing is on, the run is recorded as a ``dp.run`` span
        carrying those structural counters; when off, the cost is one
        attribute load and a branch.
        """
        if not TRACER.enabled:
            return self._run()
        with TRACER.span("dp.run", formulas=len(self.registry.top)) as span:
            results = self._run()
            span.set(
                nodes_computed=self.nodes_computed,
                cache_hits=self.cache_hits,
                cache_misses=self.cache_misses,
                max_sig_width=self.max_sig_width,
            )
        return results

    def _run(self) -> list[Fraction]:
        self._memo.clear()
        self.cache_hits = 0
        self.cache_misses = 0
        self.nodes_computed = 0
        self.max_sig_width = 0
        root = self.pdoc.root
        dist = self.children_dist(root)
        results = [Fraction(0) for _ in self.registry.top]
        for forest_sig, p in dist.items():
            truths, _ = self._local_analysis(root, forest_sig)
            for index, formula in enumerate(self.registry.top):
                if truths[id(formula)]:
                    results[index] += p
        return results


def probabilities(pdoc: PDocument, formulas: list[CFormula]) -> list[Fraction]:
    """Exact [Pr(P ⊨ γ) for γ in formulas], in one joint DP pass.

    MIN/MAX atoms are rewritten to CNT atoms on the way in (Theorem 7.1);
    SUM/AVG atoms are rejected (Proposition 7.2 — use the baseline).
    """
    from ..aggregates.minmax import rewrite

    rewritten = [rewrite(f) for f in formulas]
    registry = Registry(rewritten)
    return Evaluation(registry, pdoc).run()


def probability(pdoc: PDocument, formula: CFormula) -> Fraction:
    """Exact Pr(P ⊨ γ) (Theorem 5.3)."""
    return probabilities(pdoc, [formula])[0]
