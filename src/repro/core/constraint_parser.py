"""A textual syntax for constraints (Definition 2.2).

Grammar (whitespace-insensitive)::

    constraint := "forall" selector ":" [comparison "->"] comparison
    comparison := "count" "(" selector ")" op integer
    op         := "=" | "!=" | "<" | "<=" | ">" | ">="

where ``selector`` uses the pattern syntax of ``repro.xmltree.parser``
(exactly one ``$``-marked node).  Omitting the antecedent yields a
constraint with a trivially-true antecedent (CNT(*) ≥ 0), like the
paper's C1.  Examples, from Figure 1::

    forall university/$department : count(*//$member[position/~'professor'][position/chair]) <= 1
    forall university/$department : count(*//$member[//~'professor']) >= 3
        -> count(*//$member[position/~'professor'][position/chair]) >= 1
"""

from __future__ import annotations

import re

from ..xmltree.parser import PatternSyntaxError, parse_selector
from .constraints import Constraint, always
from .formulas import SFormula

_OP_RE = re.compile(r"(<=|>=|!=|=|<|>)")


class ConstraintSyntaxError(ValueError):
    """Raised when a constraint string cannot be parsed."""


def _parse_selector_text(text: str) -> SFormula:
    pattern, node = parse_selector(text.strip())
    return SFormula(pattern, node)


def _parse_comparison(text: str) -> tuple[SFormula, str, int]:
    text = text.strip()
    if not text.startswith("count"):
        raise ConstraintSyntaxError(f"comparison must start with 'count': {text!r}")
    rest = text[len("count"):].lstrip()
    if not rest.startswith("("):
        raise ConstraintSyntaxError(f"expected '(' after count: {text!r}")
    depth = 0
    for index, char in enumerate(rest):
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth == 0:
                selector_text = rest[1:index]
                tail = rest[index + 1:].strip()
                break
    else:
        raise ConstraintSyntaxError(f"unbalanced parentheses in {text!r}")
    match = _OP_RE.match(tail)
    if not match:
        raise ConstraintSyntaxError(f"expected a comparison operator in {tail!r}")
    op = match.group(1)
    bound_text = tail[match.end():].strip()
    try:
        bound = int(bound_text)
    except ValueError:
        raise ConstraintSyntaxError(f"expected an integer bound, got {bound_text!r}") from None
    return _parse_selector_text(selector_text), op, bound


def parse_constraint(text: str, name: str | None = None) -> Constraint:
    """Parse one constraint string into a :class:`Constraint`."""
    stripped = text.strip()
    if not stripped.startswith("forall"):
        raise ConstraintSyntaxError(f"constraint must start with 'forall': {text!r}")
    body = stripped[len("forall"):]
    try:
        scope_text, _, rest = body.partition(":")
        if not rest:
            raise ConstraintSyntaxError(f"missing ':' in constraint: {text!r}")
        scope = _parse_selector_text(scope_text)
        if "->" in rest:
            antecedent_text, _, consequent_text = rest.partition("->")
            s1, op1, n1 = _parse_comparison(antecedent_text)
            s2, op2, n2 = _parse_comparison(consequent_text)
            return Constraint(scope, s1, op1, n1, s2, op2, n2, name=name)
        s2, op2, n2 = _parse_comparison(rest)
        return always(scope, s2, op2, n2, name=name)
    except PatternSyntaxError as error:
        raise ConstraintSyntaxError(str(error)) from error


def parse_constraints(text: str) -> list[Constraint]:
    """Parse one constraint per non-empty line; ``# comments`` allowed.
    A line may name its constraint with a leading ``NAME:`` tag only when
    the name contains no whitespace and the line continues with 'forall'."""
    constraints = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        name = None
        head, _, tail = line.partition(":")
        if tail.strip().startswith("forall") and " " not in head.strip():
            name = head.strip()
            line = tail.strip()
        constraints.append(parse_constraint(line, name=name))
    return constraints
