"""Sampling PXDBs — the algorithm Sample⟨C⟩(P̃) of Figure 3 (Section 6).

Drawing a random document *conditioned on the constraints* is nontrivial:
naive generation followed by rejection runs forever when Pr(P ⊨ C) is
small, and the constraints induce dependencies across the whole tree.  The
paper's algorithm processes the distributional edges (v1,w1)…(vm,wm) one
at a time; for edge i it computes the *posterior* probability of choosing
the edge given that the final sample satisfies C —

    p_i = P̃_{i-1}(v_i, w_i) · Pr(P_i ⊨ C) / q_{i-1}        (Bayes),

tosses an exact Bernoulli coin, and *conditions* the p-document on the
outcome (the Norm subroutine:
:meth:`~repro.pdoc.pdocument.PDocument.conditioned_on_edge`).  After all m
edges every edge probability is 0 or 1, so the remaining p-document is a
single document, which is returned.  Theorem 6.2: each document d is
produced with probability exactly Pr(D = d).

Each iteration costs one run of the polynomial evaluator, so the whole
sampler is polynomial (Theorem 6.1).  Lines 5–9 of Figure 3 — skipping
edges whose current probability is already 0 or 1 — are implemented
verbatim; as the paper notes, this is needed for correctness, not just
speed (conditioning on a sure/impossible edge is undefined).
"""

from __future__ import annotations

import random
from fractions import Fraction

from ..pdoc.pdocument import EXP, IND, MUX, ORD, PDocument, PNode
from ..xmltree.document import DocNode, Document
from .evaluator import probability
from .formulas import CFormula, TRUE


def bernoulli(p: Fraction, rng: random.Random) -> bool:
    """An exact Bernoulli(p) coin for rational p (no float rounding)."""
    if p <= 0:
        return False
    if p >= 1:
        return True
    return rng.randrange(p.denominator) < p.numerator


def sample(
    pdoc: PDocument,
    condition: CFormula = TRUE,
    rng: random.Random | None = None,
) -> Document:
    """Draw one document of the PXDB (P̃, C) with probability Pr(D = d).

    ``condition`` is the constraint set as a single c-formula; TRUE yields
    unconditioned sampling (in that case every posterior equals the prior
    and the algorithm degenerates to the two-step process of Section 3.1).

    Raises ``ValueError`` when Pr(P ⊨ C) = 0.
    """
    rng = rng if rng is not None else random.Random()
    current = pdoc
    q = probability(current, condition)  # q_0 ← Pr(P_0 ⊨ C)
    if q == 0:
        raise ValueError("the p-document is not consistent with the constraints")

    total_edges = len(pdoc.dist_edges())
    for i in range(total_edges):
        # Clones preserve shape and child order, so the i-th edge of the
        # current p-document is the i-th edge of the original.
        edge = current.dist_edges()[i]
        node, index = edge
        prior = current.edge_prob(node, index)  # q̂_i
        if prior == 0 or prior == 1:
            continue  # lines 5–9: the choice is already determined
        chosen_doc = current.conditioned_on_edge(edge, True)  # Norm(P, v→w)
        q_chosen = probability(chosen_doc, condition)  # q′
        posterior = prior * q_chosen / q  # p_i (Bayes' theorem)
        if bernoulli(posterior, rng):
            current, q = chosen_doc, q_chosen
        else:
            current = current.conditioned_on_edge(edge, False)  # Norm(P, v↛w)
            q = (q - q_chosen * prior) / (1 - prior)
    return deterministic_instance(current)


def deterministic_instance(pdoc: PDocument) -> Document:
    """Materialize a p-document whose every distributional choice is fixed
    (all ind/mux edge probabilities 0/1; all positive exp subsets equal)."""

    def chosen_children(node: PNode) -> list[PNode]:
        if node.kind == IND:
            return [c for c, p in zip(node.children, node.probs) if _sure(p)]
        if node.kind == MUX:
            return [c for c, p in zip(node.children, node.probs) if _sure(p)]
        if node.kind == EXP:
            positive = [s for s, p in node.subsets if p > 0]
            first = positive[0]
            if any(s != first for s in positive):
                raise ValueError("exp node is not fully determined")
            return [node.children[i] for i in sorted(first)]
        raise AssertionError

    def _sure(p: Fraction) -> bool:
        if p == 1:
            return True
        if p == 0:
            return False
        raise ValueError("p-document is not fully determined")

    def build(pnode: PNode) -> DocNode:
        doc_node = DocNode(pnode.label, uid=pnode.uid)
        attach(pnode, doc_node)
        return doc_node

    def attach(pnode: PNode, doc_parent: DocNode) -> None:
        children = pnode.children if pnode.kind == ORD else chosen_children(pnode)
        for child in children:
            if child.kind == ORD:
                doc_parent.add_child(build(child))
            else:
                attach(child, doc_parent)

    return Document(build(pdoc.root))
