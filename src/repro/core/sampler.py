"""Sampling PXDBs — the algorithm Sample⟨C⟩(P̃) of Figure 3 (Section 6).

Drawing a random document *conditioned on the constraints* is nontrivial:
naive generation followed by rejection runs forever when Pr(P ⊨ C) is
small, and the constraints induce dependencies across the whole tree.  The
paper's algorithm processes the distributional edges (v1,w1)…(vm,wm) one
at a time; for edge i it computes the *posterior* probability of choosing
the edge given that the final sample satisfies C —

    p_i = P̃_{i-1}(v_i, w_i) · Pr(P_i ⊨ C) / q_{i-1}        (Bayes),

tosses an exact Bernoulli coin, and *conditions* the p-document on the
outcome (the Norm subroutine:
:meth:`~repro.pdoc.pdocument.PDocument.conditioned_on_edge`).  After all m
edges every edge probability is 0 or 1, so the remaining p-document is a
single document, which is returned.  Theorem 6.2: each document d is
produced with probability exactly Pr(D = d).

Each iteration costs one run of the polynomial evaluator, so the whole
sampler is polynomial (Theorem 6.1).  Lines 5–9 of Figure 3 — skipping
edges whose current probability is already 0 or 1 — are implemented
verbatim; as the paper notes, this is needed for correctness, not just
speed (conditioning on a sure/impossible edge is undefined).

The loop is driven by an :class:`~repro.core.evaluator.IncrementalEngine`:
the constraint formula is compiled once, the sampler works on a private
copy of the p-document that it conditions *in place* (Figure 3 only ever
moves forward), and after each conditioning only the root-to-edge spine
has a stale fingerprint — every other subtree's signature distribution is
a warm cache hit, so iteration i costs O(spine) evaluator work instead of
a full pass.  The Bayes step evaluates the tentatively-chosen document;
when the coin rejects, the snapshot is restored, the complement is applied
in place, and q is updated algebraically — no second evaluation, and the
spine distributions cached for the chosen variant stay available for later
iterations that revisit the same local distributions.
"""

from __future__ import annotations

import random
from fractions import Fraction

from ..numeric import GUARD, exact_bernoulli, guarded_bernoulli
from ..obs.spans import TRACER
from ..pdoc.pdocument import EXP, IND, MUX, ORD, PDocument, PNode
from ..xmltree.document import DocNode, Document
from .evaluator import IncrementalEngine
from .formulas import CFormula, TRUE

#: Backends SAMPLE⟨C⟩ accepts.  ``interval`` alone is rejected: a branch
#: coin needs a decision every iteration, which bounds cannot always give;
#: ``auto`` is the sound way to sample on interval arithmetic.
SAMPLER_BACKENDS = ("exact", "float64", "auto")


def bernoulli(p: Fraction, rng: random.Random) -> bool:
    """An exact Bernoulli(p) coin for rational p (no float rounding).

    Implemented by the lazy-bisection protocol of
    :func:`repro.numeric.guard.exact_bernoulli`: RNG consumption depends
    only on where the uniform's 64-bit cells fall relative to p, which is
    what lets the guarded ``auto`` sampler reproduce the exact backend's
    draws bit-for-bit from interval bounds alone.
    """
    return exact_bernoulli(p, rng)


def sample(
    pdoc: PDocument,
    condition: CFormula = TRUE,
    rng: random.Random | None = None,
    *,
    engine: IncrementalEngine | None = None,
    incremental: bool = True,
    backend: str | None = None,
    fallback_engine: IncrementalEngine | None = None,
) -> Document:
    """Draw one document of the PXDB (P̃, C) with probability Pr(D = d).

    ``condition`` is the constraint set as a single c-formula; TRUE yields
    unconditioned sampling (in that case every posterior equals the prior
    and the algorithm degenerates to the two-step process of Section 3.1).

    ``engine`` — an :class:`~repro.core.evaluator.IncrementalEngine`
    compiled for ``condition``; pass one to share the compiled registry
    and the signature-distribution cache across samples (and to read the
    hit/miss/evaluation counters afterwards).  By default a fresh engine
    is created per call.  ``incremental=False`` clears the engine cache
    before every evaluation — the from-scratch reference mode used by the
    benchmarks and the differential tests.

    ``backend`` selects the arithmetic of the conditioned evaluator passes
    (``repro.numeric``): ``exact`` (default), ``float64`` (fast,
    unguarded — branch decisions may drift near ties), or ``auto``
    (interval evaluation; every coin whose posterior enclosure cannot
    certify the branch falls back to exact posteriors computed on
    ``fallback_engine``, so the draw sequence is identical to ``exact``
    under the same seed).  An ``engine`` passed explicitly must be bound
    to the evaluation backend (``interval`` when ``backend="auto"``).

    Raises ``ValueError`` when Pr(P ⊨ C) = 0.
    """
    backend = backend or "exact"
    if backend not in SAMPLER_BACKENDS:
        raise ValueError(
            f"sampling supports backends {SAMPLER_BACKENDS}, not {backend!r}"
        )
    eval_backend = "interval" if backend == "auto" else backend
    rng = rng if rng is not None else random.Random()
    if engine is None:
        engine = IncrementalEngine.for_formula(condition, backend=eval_backend)
    elif engine.backend.name != eval_backend:
        raise ValueError(
            f"the engine is bound to the {engine.backend.name!r} backend; "
            f"backend={backend!r} sampling needs {eval_backend!r}"
        )
    if backend == "auto":
        if fallback_engine is None:
            fallback_engine = IncrementalEngine.for_formula(condition)
        elif fallback_engine.backend.name != "exact":
            raise ValueError("the fallback engine must be exact")
    else:
        fallback_engine = None
    if not TRACER.enabled:
        return _draw(pdoc, condition, rng, engine, incremental, fallback_engine)[0]
    runs_before = engine.runs
    nodes_before = engine.nodes_computed
    fallbacks_before = GUARD.fallbacks
    with TRACER.span("sample.draw", incremental=incremental, backend=backend) as span:
        document, edges, conditioned = _draw(
            pdoc, condition, rng, engine, incremental, fallback_engine
        )
        span.set(
            edges=edges,
            conditioned=conditioned,
            evaluations=engine.runs - runs_before,
            nodes_computed=engine.nodes_computed - nodes_before,
            numeric_fallbacks=GUARD.fallbacks - fallbacks_before,
        )
    return document


def _draw(
    pdoc: PDocument,
    condition: CFormula,
    rng: random.Random,
    engine: IncrementalEngine,
    incremental: bool,
    fallback_engine: IncrementalEngine | None,
) -> tuple[Document, int, int]:
    """The Figure 3 loop; returns (document, #dist edges, #edges conditioned)."""
    backend = engine.backend

    def evaluate(target: PDocument):
        if not incremental:
            engine.clear()
        return engine.probability(target)

    # A private copy: the loop conditions it in place (the caller's
    # p-document is never touched), so the distributional-edge list is
    # enumerated once and stays valid — the node objects are stable for
    # the whole run, no per-iteration re-enumeration or index remapping.
    current = pdoc.clone()
    if backend.name == "exact":
        return _draw_exact(current, rng, engine, evaluate)
    if backend.name == "float64":
        return _draw_float(current, rng, evaluate)
    return _draw_guarded(current, rng, evaluate, fallback_engine, incremental)


def _draw_exact(current, rng, engine, evaluate):
    q = evaluate(current)  # q_0 ← Pr(P_0 ⊨ C)
    if q == 0:
        raise ValueError("the p-document is not consistent with the constraints")
    edges = 0
    conditioned = 0
    for edge in current.dist_edges():
        node, index = edge
        edges += 1
        prior = current.edge_prob(node, index)  # q̂_i
        if prior == 0 or prior == 1:
            continue  # lines 5–9: the choice is already determined
        conditioned += 1
        if q == 1:
            # Every world of the current conditioned document satisfies C,
            # and conditioning an edge only restricts the world set — so
            # q′ = 1, the posterior equals the prior, and no evaluation is
            # needed.  Same coin on the same value: the draw sequence is
            # unchanged, only the evaluator calls disappear (a large win
            # once a monotone constraint is already met by kept edges).
            current.condition_edge_in_place(edge, bernoulli(prior, rng))
            continue
        snapshot = current.edge_snapshot(edge)
        current.condition_edge_in_place(edge, True)  # Norm(P, v→w)
        q_chosen = evaluate(current)  # q′
        posterior = prior * q_chosen / q  # p_i (Bayes' theorem)
        if bernoulli(posterior, rng):
            q = q_chosen
        else:
            current.restore_edge(edge, snapshot)
            current.condition_edge_in_place(edge, False)  # Norm(P, v↛w)
            q = (q - q_chosen * prior) / (1 - prior)
    return deterministic_instance(current), edges, conditioned


def _draw_float(current, rng, evaluate):
    """The float64 loop: float posteriors fed to the exact coin.  Fast and
    unguarded — a posterior rounded across a cell boundary can flip a
    branch vs exact.  Rejections update q algebraically like the exact
    loop; only when the subtraction cancels catastrophically (the update
    lost ~9 digits) is q re-evaluated from the document."""
    q = evaluate(current)
    if q == 0.0:
        raise ValueError("the p-document is not consistent with the constraints")
    edges = 0
    conditioned = 0
    for edge in current.dist_edges():
        node, index = edge
        edges += 1
        prior = current.edge_prob(node, index)
        if prior == 0 or prior == 1:
            continue
        conditioned += 1
        if q == 1.0:
            # Certain satisfaction: posteriors equal priors (see the exact
            # loop).  q stays 1.0 — restricting an all-satisfying world
            # set cannot unsatisfy it.
            current.condition_edge_in_place(edge, bernoulli(prior, rng))
            continue
        snapshot = current.edge_snapshot(edge)
        current.condition_edge_in_place(edge, True)
        q_chosen = evaluate(current)
        p = float(prior)
        posterior = p * q_chosen / q
        if bernoulli(Fraction(min(max(posterior, 0.0), 1.0)), rng):
            q = q_chosen
        else:
            current.restore_edge(edge, snapshot)
            current.condition_edge_in_place(edge, False)
            update = (q - q_chosen * p) / (1.0 - p)
            if update > 1e-9 * q:
                q = update
            else:  # cancellation ate the digits: recompute from scratch
                q = evaluate(current)
            if q <= 0.0:  # underflow: the float posterior lied; bail out
                raise ValueError(
                    "float64 sampling underflowed to an impossible state; "
                    "use backend='auto' or 'exact'"
                )
    return deterministic_instance(current), edges, conditioned


def _draw_guarded(current, rng, evaluate, fallback_engine, incremental):
    """The guarded loop: interval q/posteriors, exact only on straddles.

    Invariant kept per iteration: ``q`` encloses (and ``q_exact``, when
    not None, *is*) Pr(P_i ⊨ C) for the current conditioning state.  A
    coin fallback evaluates the exact q and q′ on the warm fallback
    engine and re-runs the identical coin protocol on the exact
    posterior, so draws match the exact backend bit-for-bit.
    """
    from ..numeric.backends import INTERVAL, _idiv, _imul, _isub

    lift = INTERVAL.lift

    def evaluate_exact(target):
        if not incremental:
            fallback_engine.clear()
        return fallback_engine.probability(target)

    q = evaluate(current)
    q_exact: Fraction | None = None
    if q[1] <= 0.0:
        raise ValueError("the p-document is not consistent with the constraints")
    if q[0] <= 0.0:
        GUARD.fell_back()
        q_exact = evaluate_exact(current)
        if q_exact == 0:
            raise ValueError(
                "the p-document is not consistent with the constraints"
            )
        q = lift(q_exact)
    else:
        GUARD.decided()

    edges = 0
    conditioned = 0
    last_uncertified = None
    for edge in current.dist_edges():
        node, index = edge
        edges += 1
        prior = current.edge_prob(node, index)  # always an exact Fraction
        if prior == 0 or prior == 1:
            continue
        conditioned += 1
        if q_exact is None and q is not last_uncertified and (
            q[1] >= 1.0 and q[0] > 1.0 - 1e-9
        ):
            # The enclosure brushes 1 but outward rounding keeps the lower
            # bound a few ulps short, so it can never *prove* q = 1.  One
            # exact evaluation on the warm fallback engine settles it; on
            # success every remaining edge short-circuits below.  A failed
            # attempt is remembered (by enclosure identity) so a q that
            # truly hovers below 1 costs at most one extra evaluation per
            # conditioning state, not one per edge.
            certified = evaluate_exact(current)
            if certified == 1:
                q_exact = certified
                q = lift(certified)
            else:
                last_uncertified = q
        if q_exact == 1 or q[0] >= 1.0:
            # The enclosure proves q = 1 (or the exact fallback computed
            # it): the posterior is exactly the prior, so flip the same
            # exact coin the exact backend would — bit-identical draws,
            # zero evaluator runs.
            current.condition_edge_in_place(edge, bernoulli(prior, rng))
            continue
        snapshot = current.edge_snapshot(edge)
        current.condition_edge_in_place(edge, True)
        q_chosen = evaluate(current)
        prior_iv = lift(prior)
        plo, phi = _idiv(_imul(prior_iv, q_chosen), q)
        resolved: dict = {}

        def resolve(edge=edge, snapshot=snapshot, prior=prior,
                    resolved=resolved):
            nonlocal q_exact
            # Exact q of the *pre-conditioning* state: roll the edge back,
            # evaluate, re-apply — the warm exact engine pays spine-only.
            if q_exact is None:
                current.restore_edge(edge, snapshot)
                q_exact = evaluate_exact(current)
                current.condition_edge_in_place(edge, True)
            resolved["q_chosen"] = evaluate_exact(current)
            return prior * resolved["q_chosen"] / q_exact

        if guarded_bernoulli(plo, min(phi, 1.0), resolve, rng):
            if "q_chosen" in resolved:
                q_exact = resolved["q_chosen"]
                q = lift(q_exact)
            else:
                q_exact = None
                q = q_chosen
        else:
            current.restore_edge(edge, snapshot)
            current.condition_edge_in_place(edge, False)
            if "q_chosen" in resolved:
                q_exact = (q_exact - resolved["q_chosen"] * prior) / (1 - prior)
                q = lift(q_exact)
            else:
                update = _idiv(
                    _isub(q, _imul(q_chosen, lift(prior))), lift(1 - prior)
                )
                q_exact = None
                if update[0] > 0.0 and update[1] - update[0] <= 1e-9 * update[1]:
                    # The algebraic enclosure is still tight: keep it.
                    q = update
                else:
                    # Interval subtraction lost too much width; a spine-only
                    # interval re-evaluation restores a tight q, intersected
                    # with the algebraic update (both enclose q_i).
                    q = evaluate(current)
                    q = (max(q[0], update[0]), min(q[1], update[1]))
    return deterministic_instance(current), edges, conditioned


def deterministic_instance(pdoc: PDocument) -> Document:
    """Materialize a p-document whose every distributional choice is fixed
    (all ind/mux edge probabilities 0/1; all positive exp subsets equal)."""

    def chosen_children(node: PNode) -> list[PNode]:
        if node.kind == IND:
            return [c for c, p in zip(node.children, node.probs) if _sure(p)]
        if node.kind == MUX:
            return [c for c, p in zip(node.children, node.probs) if _sure(p)]
        if node.kind == EXP:
            positive = [s for s, p in node.subsets if p > 0]
            if not positive:
                raise ValueError("p-document is not fully determined")
            first = positive[0]
            if any(s != first for s in positive):
                raise ValueError("exp node is not fully determined")
            return [node.children[i] for i in sorted(first)]
        raise AssertionError

    def _sure(p: Fraction) -> bool:
        if p == 1:
            return True
        if p == 0:
            return False
        raise ValueError("p-document is not fully determined")

    def build(pnode: PNode) -> DocNode:
        doc_node = DocNode(pnode.label, uid=pnode.uid)
        attach(pnode, doc_node)
        return doc_node

    def attach(pnode: PNode, doc_parent: DocNode) -> None:
        children = pnode.children if pnode.kind == ORD else chosen_children(pnode)
        for child in children:
            if child.kind == ORD:
                doc_parent.add_child(build(child))
            else:
                attach(child, doc_parent)

    return Document(build(pdoc.root))
