"""Sampling PXDBs — the algorithm Sample⟨C⟩(P̃) of Figure 3 (Section 6).

Drawing a random document *conditioned on the constraints* is nontrivial:
naive generation followed by rejection runs forever when Pr(P ⊨ C) is
small, and the constraints induce dependencies across the whole tree.  The
paper's algorithm processes the distributional edges (v1,w1)…(vm,wm) one
at a time; for edge i it computes the *posterior* probability of choosing
the edge given that the final sample satisfies C —

    p_i = P̃_{i-1}(v_i, w_i) · Pr(P_i ⊨ C) / q_{i-1}        (Bayes),

tosses an exact Bernoulli coin, and *conditions* the p-document on the
outcome (the Norm subroutine:
:meth:`~repro.pdoc.pdocument.PDocument.conditioned_on_edge`).  After all m
edges every edge probability is 0 or 1, so the remaining p-document is a
single document, which is returned.  Theorem 6.2: each document d is
produced with probability exactly Pr(D = d).

Each iteration costs one run of the polynomial evaluator, so the whole
sampler is polynomial (Theorem 6.1).  Lines 5–9 of Figure 3 — skipping
edges whose current probability is already 0 or 1 — are implemented
verbatim; as the paper notes, this is needed for correctness, not just
speed (conditioning on a sure/impossible edge is undefined).

The loop is driven by an :class:`~repro.core.evaluator.IncrementalEngine`:
the constraint formula is compiled once, the sampler works on a private
copy of the p-document that it conditions *in place* (Figure 3 only ever
moves forward), and after each conditioning only the root-to-edge spine
has a stale fingerprint — every other subtree's signature distribution is
a warm cache hit, so iteration i costs O(spine) evaluator work instead of
a full pass.  The Bayes step evaluates the tentatively-chosen document;
when the coin rejects, the snapshot is restored, the complement is applied
in place, and q is updated algebraically — no second evaluation, and the
spine distributions cached for the chosen variant stay available for later
iterations that revisit the same local distributions.
"""

from __future__ import annotations

import random
from fractions import Fraction

from ..obs.spans import TRACER
from ..pdoc.pdocument import EXP, IND, MUX, ORD, PDocument, PNode
from ..xmltree.document import DocNode, Document
from .evaluator import IncrementalEngine
from .formulas import CFormula, TRUE


def bernoulli(p: Fraction, rng: random.Random) -> bool:
    """An exact Bernoulli(p) coin for rational p (no float rounding)."""
    if p <= 0:
        return False
    if p >= 1:
        return True
    return rng.randrange(p.denominator) < p.numerator


def sample(
    pdoc: PDocument,
    condition: CFormula = TRUE,
    rng: random.Random | None = None,
    *,
    engine: IncrementalEngine | None = None,
    incremental: bool = True,
) -> Document:
    """Draw one document of the PXDB (P̃, C) with probability Pr(D = d).

    ``condition`` is the constraint set as a single c-formula; TRUE yields
    unconditioned sampling (in that case every posterior equals the prior
    and the algorithm degenerates to the two-step process of Section 3.1).

    ``engine`` — an :class:`~repro.core.evaluator.IncrementalEngine`
    compiled for ``condition``; pass one to share the compiled registry
    and the signature-distribution cache across samples (and to read the
    hit/miss/evaluation counters afterwards).  By default a fresh engine
    is created per call.  ``incremental=False`` clears the engine cache
    before every evaluation — the from-scratch reference mode used by the
    benchmarks and the differential tests.

    Raises ``ValueError`` when Pr(P ⊨ C) = 0.
    """
    rng = rng if rng is not None else random.Random()
    if engine is None:
        engine = IncrementalEngine.for_formula(condition)
    if not TRACER.enabled:
        return _draw(pdoc, condition, rng, engine, incremental)[0]
    runs_before = engine.runs
    nodes_before = engine.nodes_computed
    with TRACER.span("sample.draw", incremental=incremental) as span:
        document, edges, conditioned = _draw(pdoc, condition, rng, engine, incremental)
        span.set(
            edges=edges,
            conditioned=conditioned,
            evaluations=engine.runs - runs_before,
            nodes_computed=engine.nodes_computed - nodes_before,
        )
    return document


def _draw(
    pdoc: PDocument,
    condition: CFormula,
    rng: random.Random,
    engine: IncrementalEngine,
    incremental: bool,
) -> tuple[Document, int, int]:
    """The Figure 3 loop; returns (document, #dist edges, #edges conditioned)."""

    def evaluate(target: PDocument) -> Fraction:
        if not incremental:
            engine.clear()
        return engine.probability(target)

    # A private copy: the loop conditions it in place (the caller's
    # p-document is never touched), so the distributional-edge list is
    # enumerated once and stays valid — the node objects are stable for
    # the whole run, no per-iteration re-enumeration or index remapping.
    current = pdoc.clone()
    q = evaluate(current)  # q_0 ← Pr(P_0 ⊨ C)
    if q == 0:
        raise ValueError("the p-document is not consistent with the constraints")

    edges = 0
    conditioned = 0
    for edge in current.dist_edges():
        node, index = edge
        edges += 1
        prior = current.edge_prob(node, index)  # q̂_i
        if prior == 0 or prior == 1:
            continue  # lines 5–9: the choice is already determined
        conditioned += 1
        snapshot = current.edge_snapshot(edge)
        current.condition_edge_in_place(edge, True)  # Norm(P, v→w)
        q_chosen = evaluate(current)  # q′
        posterior = prior * q_chosen / q  # p_i (Bayes' theorem)
        if bernoulli(posterior, rng):
            q = q_chosen
        else:
            current.restore_edge(edge, snapshot)
            current.condition_edge_in_place(edge, False)  # Norm(P, v↛w)
            q = (q - q_chosen * prior) / (1 - prior)
    return deterministic_instance(current), edges, conditioned


def deterministic_instance(pdoc: PDocument) -> Document:
    """Materialize a p-document whose every distributional choice is fixed
    (all ind/mux edge probabilities 0/1; all positive exp subsets equal)."""

    def chosen_children(node: PNode) -> list[PNode]:
        if node.kind == IND:
            return [c for c, p in zip(node.children, node.probs) if _sure(p)]
        if node.kind == MUX:
            return [c for c, p in zip(node.children, node.probs) if _sure(p)]
        if node.kind == EXP:
            positive = [s for s, p in node.subsets if p > 0]
            if not positive:
                raise ValueError("p-document is not fully determined")
            first = positive[0]
            if any(s != first for s in positive):
                raise ValueError("exp node is not fully determined")
            return [node.children[i] for i in sorted(first)]
        raise AssertionError

    def _sure(p: Fraction) -> bool:
        if p == 1:
            return True
        if p == 0:
            return False
        raise ValueError("p-document is not fully determined")

    def build(pnode: PNode) -> DocNode:
        doc_node = DocNode(pnode.label, uid=pnode.uid)
        attach(pnode, doc_node)
        return doc_node

    def attach(pnode: PNode, doc_parent: DocNode) -> None:
        children = pnode.children if pnode.kind == ORD else chosen_children(pnode)
        for child in children:
            if child.kind == ORD:
                doc_parent.add_child(build(child))
            else:
                attach(child, doc_parent)

    return Document(build(pdoc.root))
