"""Constraint-violation explanation for documents, and parameter
sensitivity for p-documents.

When a document fails a constraint set, knowing *which* constraint failed
and *where* matters in practice (the paper's motivation is data cleaning
over screen-scraped inputs).  :func:`explain_violations` reruns Definition
2.2's quantifier and reports, per violated constraint, the witnesses: the
scope nodes at which the implication failed, with the offending counts.

:func:`most_influential_edges` is the probabilistic counterpart: which
probability annotations of the *p-document* matter most for an event?  It
compiles the event into an arithmetic circuit (``repro.circuit``) and
reads off ∂Pr(P ⊨ γ)/∂θ for every ind/mux edge probability and exp subset
weight in one backward sweep — the edges whose mis-estimation moves the
answer the most, i.e. where cleaning effort pays off first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .. import ops
from ..xmltree.document import DocNode, Document
from .constraints import Constraint
from .formulas import DocumentEvaluator


@dataclass(frozen=True)
class Violation:
    """One failed quantifier instance of one constraint."""

    constraint: Constraint
    scope_node: DocNode
    antecedent_count: int
    consequent_count: int

    def describe(self) -> str:
        name = self.constraint.name or "constraint"
        return (
            f"{name} violated at node {self.scope_node.label!r} "
            f"(uid {self.scope_node.uid}): CNT(S1) = {self.antecedent_count} "
            f"{self.constraint.op1} {self.constraint.n1} holds but CNT(S2) = "
            f"{self.consequent_count} {self.constraint.op2} {self.constraint.n2} fails"
        )


def explain_violations(
    document: Document | DocNode, constraints: Iterable[Constraint]
) -> list[Violation]:
    """All violations of the constraints on the document (empty = d ⊨ C)."""
    root = document.root if isinstance(document, Document) else document
    evaluator = DocumentEvaluator()
    violations: list[Violation] = []
    for constraint in constraints:
        for scope_node in evaluator.select(root, constraint.scope):
            antecedent = len(evaluator.select(scope_node, constraint.s1))
            if not ops.apply(constraint.op1, antecedent, constraint.n1):
                continue
            consequent = len(evaluator.select(scope_node, constraint.s2))
            if not ops.apply(constraint.op2, consequent, constraint.n2):
                violations.append(
                    Violation(constraint, scope_node, antecedent, consequent)
                )
    return violations


def most_influential_edges(
    pdoc, formula, top: int | None = 10, constraints: Iterable = ()
) -> list[dict]:
    """Rank the p-document's probability parameters by how strongly they
    influence Pr(P ⊨ γ) — or Pr(P ⊨ γ ∧ C) when constraints are given.

    Returns up to ``top`` rows (all of them when ``top`` is None), largest
    |∂Pr/∂θ| first; each row carries the parameter's description (node
    kind, path, edge/subset index), its current value, and the exact
    derivative.  One circuit compilation plus one backward sweep computes
    every derivative at once — no per-edge re-evaluation.
    """
    from ..circuit import compile_formula
    from .constraints import constraints_formula
    from .formulas import conjunction

    constraints = tuple(constraints)
    if constraints:
        formula = conjunction([formula, constraints_formula(constraints)])
    rows = compile_formula(pdoc, formula).sensitivities(0)
    return rows if top is None else rows[:top]


def why_inconsistent(
    pdoc, constraints: Iterable[Constraint], max_worlds: int = 512
) -> str:
    """A diagnostic for ill-defined PXDBs: scan the most probable worlds
    and report the violations of the likeliest one.  Enumeration-based —
    intended for debugging small inputs, not production evaluation."""
    from ..pdoc.enumerate import world_documents

    constraints = list(constraints)
    worlds = world_documents(pdoc)[:max_worlds]
    for document, prob in worlds:
        violations = explain_violations(document, constraints)
        if not violations:
            return "consistent: a satisfying world exists"
    document, prob = worlds[0]
    lines = [
        f"no satisfying world among the {len(worlds)} most probable;",
        f"the likeliest world (Pr = {prob}) fails because:",
    ]
    lines += [f"  - {v.describe()}" for v in explain_violations(document, constraints)]
    return "\n".join(lines)
