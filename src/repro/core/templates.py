"""A library of common integrity-constraint templates.

The paper argues that constraints "can be derived immediately from
user-knowledge about real-world requirements, and as such, are expected to
be easy to formulate" (Section 1).  These constructors capture the shapes
that cover most such requirements, each returning a plain
:class:`~repro.core.constraints.Constraint` (Definition 2.2) or c-formula,
so everything downstream (evaluation, sampling, SNC/WNC) applies:

* :func:`at_most` / :func:`at_least` / :func:`exactly` / :func:`between`
  — cardinality of a selector inside each scope subtree;
* :func:`unique` — "at most one X per Y" (the key-style constraints that
  earlier probabilistic work [20] supported);
* :func:`requires` — co-occurrence: a witness of A forces a witness of B;
* :func:`excludes` — mutual exclusion: A and B never co-occur in a scope;
* :func:`implies_within` — the full conditional form with explicit
  thresholds on both sides.

All selectors can be given as s-formulae or as pattern strings
(``"university/$department"``).
"""

from __future__ import annotations

from .. import ops
from ..xmltree.parser import parse_selector
from .constraints import Constraint, always
from .formulas import SFormula

SelectorLike = "SFormula | str"


def _selector(value) -> SFormula:
    if isinstance(value, SFormula):
        return value
    pattern, node = parse_selector(value)
    return SFormula(pattern, node)


def at_most(scope, selector, bound: int, name: str | None = None) -> Constraint:
    """∀scope: CNT(selector) ≤ bound — e.g. the paper's C1 with bound 1."""
    return always(_selector(scope), _selector(selector), ops.LE, bound, name=name)


def at_least(scope, selector, bound: int, name: str | None = None) -> Constraint:
    """∀scope: CNT(selector) ≥ bound."""
    return always(_selector(scope), _selector(selector), ops.GE, bound, name=name)


def exactly(scope, selector, bound: int, name: str | None = None) -> Constraint:
    """∀scope: CNT(selector) = bound."""
    return always(_selector(scope), _selector(selector), ops.EQ, bound, name=name)


def between(
    scope, selector, low: int, high: int, name: str | None = None
) -> list[Constraint]:
    """∀scope: low ≤ CNT(selector) ≤ high, as two constraints."""
    if low > high:
        raise ValueError(f"empty range [{low}, {high}]")
    tag = name or "between"
    return [
        at_least(scope, selector, low, name=f"{tag}-low"),
        at_most(scope, selector, high, name=f"{tag}-high"),
    ]


def unique(scope, selector, name: str | None = None) -> Constraint:
    """At most one selected node per scope subtree — the key-style
    constraint (the only kind prior probabilistic work supported)."""
    return at_most(scope, selector, 1, name=name or "unique")


def requires(scope, antecedent, consequent, name: str | None = None) -> Constraint:
    """∀scope: CNT(antecedent) ≥ 1 → CNT(consequent) ≥ 1."""
    return Constraint(
        _selector(scope),
        _selector(antecedent),
        ops.GE,
        1,
        _selector(consequent),
        ops.GE,
        1,
        name=name or "requires",
    )


def excludes(scope, first, second, name: str | None = None) -> Constraint:
    """∀scope: CNT(first) ≥ 1 → CNT(second) = 0 (mutual exclusion; by
    symmetry of the contrapositive one direction suffices)."""
    return Constraint(
        _selector(scope),
        _selector(first),
        ops.GE,
        1,
        _selector(second),
        ops.EQ,
        0,
        name=name or "excludes",
    )


def implies_within(
    scope,
    antecedent,
    op1: str,
    n1: int,
    consequent,
    op2: str,
    n2: int,
    name: str | None = None,
) -> Constraint:
    """The full Definition 2.2 form with explicit thresholds."""
    return Constraint(
        _selector(scope),
        _selector(antecedent),
        op1,
        n1,
        _selector(consequent),
        op2,
        n2,
        name=name,
    )


def conditional_presence(scope, trigger_label, required_label, name=None) -> Constraint:
    """Sugar: inside each scope subtree, a child labeled ``trigger_label``
    forces a child labeled ``required_label`` (both as quoted labels)."""
    return requires(
        scope,
        f"*/$'{trigger_label}'" if isinstance(trigger_label, str) else trigger_label,
        f"*/$'{required_label}'" if isinstance(required_label, str) else required_label,
        name=name or f"{trigger_label}-needs-{required_label}",
    )
