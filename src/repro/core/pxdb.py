"""PXDBs: probabilistic XML databases (Section 3.2) — the user-facing API.

A PXDB D̃ = (P̃, C) is the probability sub-space of the p-document P̃
comprising the documents that satisfy the constraint set C, with

    Pr(D = d) = Pr(P = d) / Pr(P ⊨ C)     when d ⊨ C, else 0.

The class bundles the three computational problems of Section 4:

* :meth:`constraint_probability` / :meth:`is_well_defined` — CONSTRAINT-SAT⟨C⟩;
* :meth:`query` / :meth:`boolean_query` / :meth:`event_probability` — EVAL⟨Q, C⟩;
* :meth:`sample` — SAMPLE⟨C⟩ (Figure 3).

Constraints may be :class:`~repro.core.constraints.Constraint` objects
(Definition 2.2) or arbitrary c-formulae (Section 7.1 observes that all
results carry over to constraints expressed as c-formulae).
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Iterable, Sequence

from ..numeric import surely_zero
from ..obs.spans import TRACER
from ..pdoc.enumerate import world_probability
from ..pdoc.pdocument import PDocument
from ..xmltree.document import Document
from ..xmltree.pattern import Pattern
from .constraints import Constraint, constraints_formula
from .evaluator import probabilities, probability
from .formulas import CFormula, conjunction
from .query import Query
from .query_eval import (
    AnswerTable,
    bound_formula,
    candidate_tuples,
    decode_answers,
    evaluate_query,
)
from .sampler import sample as _sample


def _check_denominator(denominator, backend) -> None:
    """Refuse to normalize by a zero Pr(P ⊨ C).

    ``surely_zero`` is proof of inconsistency in every guaranteed backend
    (exact zero, or an interval whose upper bound is exactly 0); a plain
    float64 zero is ambiguous — it may be the underflow of a tiny positive
    rational — and gets its own error instead of a false "inconsistent".
    """
    if backend == "float64":
        if denominator == 0.0:
            raise ValueError(
                "float64 evaluation of Pr(P |= C) underflowed to 0 "
                "(underflow is not proof of impossibility); use "
                "backend='auto' or 'exact'"
            )
        return
    if surely_zero(denominator):
        raise ValueError(
            "the p-document is not consistent with the constraints"
        )


class PXDB:
    """The probability space D̃ = (P̃, C)."""

    #: Retained compiled circuits per event batch (see :meth:`compile_circuit`).
    CIRCUIT_CACHE_CAP = 8

    __slots__ = ("pdoc", "constraints", "_condition", "_constraint_prob",
                 "_sample_engine", "_event_circuits", "_aux_engines",
                 "_approx_estimators")

    def __init__(
        self,
        pdoc: PDocument,
        constraints: Iterable[Constraint | CFormula] = (),
        check: bool = True,
    ):
        self.pdoc = pdoc
        self.constraints: tuple[Constraint | CFormula, ...] = tuple(constraints)
        self._condition = constraints_formula(self.constraints)
        self._constraint_prob: Fraction | None = None
        self._sample_engine = None
        # Compiled arithmetic circuits, keyed by the (identity-compared)
        # event tuple they answer.  Formula objects are immutable and the
        # cache holds references, so identity keys cannot be recycled.
        self._event_circuits: dict[tuple, object] = {}
        # Warm non-exact sampler engines, keyed by arithmetic name (an
        # engine is permanently bound to one backend — see
        # IncrementalEngine).  The exact engine stays in _sample_engine so
        # the store's warm-engine injection keeps working unchanged.
        self._aux_engines: dict = {}
        # Warm Monte-Carlo estimators (repro.approx), keyed by sampler
        # backend — one per backend so counters and engines stay warm
        # across approx_probability / approx_query calls.
        self._approx_estimators: dict = {}
        if check and not self.is_well_defined():
            raise ValueError(
                "the p-document is not consistent with the constraints "
                "(Pr(P ⊨ C) = 0): the PXDB is not well-defined"
            )

    # -- CONSTRAINT-SAT⟨C⟩ ----------------------------------------------------
    @property
    def condition(self) -> CFormula:
        """The constraint set as one c-formula."""
        return self._condition

    def constraint_probability(self, backend: str | None = None) -> Fraction:
        """Pr(P ⊨ C), computed by the polynomial algorithm (Theorem 5.3).

        ``backend`` selects the arithmetic (``repro.numeric``); only the
        exact value is cached — non-exact requests always re-evaluate (the
        evaluation itself is the cheap part in those backends)."""
        if backend not in (None, "exact"):
            return probability(self.pdoc, self._condition, backend=backend)
        if self._constraint_prob is None:
            self._constraint_prob = probability(self.pdoc, self._condition)
        return self._constraint_prob

    def is_well_defined(self) -> bool:
        """Whether the sub-space is nonempty: Pr(P ⊨ C) > 0."""
        return self.constraint_probability() > 0

    def prime_constraint_probability(self, value: Fraction) -> None:
        """Install a precomputed Pr(P ⊨ C) — e.g. the store warms an
        :class:`~repro.core.evaluator.IncrementalEngine` with one pass and
        hands the denominator over instead of paying a second cold pass."""
        if value < 0 or value > 1:
            raise ValueError(f"Pr(P |= C) must lie in [0, 1], got {value}")
        self._constraint_prob = value

    # -- EVAL⟨Q, C⟩ ------------------------------------------------------------
    def event_probability(
        self, event: CFormula, backend: str | None = None
    ) -> Fraction:
        """Pr(D ⊨ γ) = Pr(P ⊨ γ ∧ C) / Pr(P ⊨ C) for any c-formula event."""
        return self.event_probabilities([event], backend=backend)[0]

    def event_probabilities(
        self,
        events: Sequence[CFormula],
        via: str = "dp",
        backend: str | None = None,
        bindings=None,
    ) -> list:
        """[Pr(D ⊨ γ) for γ in events] in one joint DP pass.

        The conditional probabilities of all events are computed together
        (one registry compilation, one bottom-up traversal — the batching
        of :func:`~repro.core.evaluator.probabilities`).  The denominator
        Pr(P ⊨ C) is taken from the :meth:`constraint_probability` cache
        when warm; when cold it joins the same pass and the cache is
        populated as a side effect, so no caller ever pays for it twice.

        ``via="circuit"`` answers from a compiled arithmetic circuit
        instead (compiled on first use for this event tuple, retained, and
        re-bound to the p-document's current probabilities on every call
        — so after probability-only edits the cost is one O(|circuit|)
        sweep, not a fresh DP).  Results are identical exact ``Fraction``s.

        ``backend`` selects the arithmetic on either route
        (``repro.numeric``); the circuit keeps per-backend kernels, so a
        float64 re-ask of a compiled event tuple is one tight float sweep.

        ``backend="batch"`` (circuit route only, requires ``bindings``)
        evaluates all events at N parameter bindings in one vectorized
        numpy sweep; each returned entry is then the float64 array of
        that event's conditional probability across the bindings — see
        :meth:`sweep_probabilities`.
        """
        if backend == "batch":
            if via != "circuit":
                raise ValueError("backend='batch' requires via='circuit'")
            if bindings is None:
                raise ValueError(
                    "backend='batch' requires bindings= (N parameter "
                    "vectors, one per sweep point)"
                )
            conditionals, _ = self.sweep_probabilities(events, bindings)
            return [conditionals[i] for i in range(len(tuple(events)))]
        if via == "circuit":
            if not TRACER.enabled:
                return self._event_probabilities_circuit(tuple(events), backend)
            with TRACER.span("pxdb.events", via=via, events=len(events)):
                return self._event_probabilities_circuit(tuple(events), backend)
        if via != "dp":
            raise ValueError(f"unknown evaluation route {via!r}")
        if not TRACER.enabled:
            return self._event_probabilities_dp(events, backend)
        with TRACER.span(
            "pxdb.events",
            via=via,
            events=len(events),
            denominator_warm=self._constraint_prob is not None,
        ):
            return self._event_probabilities_dp(events, backend)

    def _event_probabilities_dp(
        self, events: Sequence[CFormula], backend: str | None = None
    ) -> list[Fraction]:
        events = list(events)
        joints = [conjunction([self._condition, event]) for event in events]
        if backend not in (None, "exact"):
            values = probabilities(
                self.pdoc, joints + [self._condition], backend=backend
            )
            denominator = values[-1]
            _check_denominator(denominator, backend)
            return [joint / denominator for joint in values[:-1]]
        if self._constraint_prob is None:
            values = probabilities(self.pdoc, joints + [self._condition])
            self._constraint_prob = values[-1]
            joint_values = values[:-1]
        elif events:
            joint_values = probabilities(self.pdoc, joints)
        else:
            joint_values = []
        denominator = self._constraint_prob
        if denominator == 0:
            raise ValueError(
                "the p-document is not consistent with the constraints"
            )
        return [joint / denominator for joint in joint_values]

    # -- arithmetic-circuit route (repro.circuit) -------------------------------
    def compile_circuit(self, events: Sequence[CFormula] = ()):
        """Compile [Pr(P ⊨ γ ∧ C) for γ in events] + [Pr(P ⊨ C)] into one
        shared arithmetic circuit (:class:`repro.circuit.CompiledCircuit`).

        The constraint probability is always the *last* output, so a
        circuit compiled with no events is exactly the CONSTRAINT-SAT⟨C⟩
        circuit.  The circuit is bound to the p-document's structure:
        probability-only edits re-bind in O(|params|), structural edits
        require recompiling.
        """
        from ..circuit import compile_formulas

        joints = [conjunction([self._condition, event]) for event in events]
        return compile_formulas(self.pdoc, joints + [self._condition])

    def circuit_for(self, events: Sequence[CFormula] = ()):
        """The retained compiled circuit for this event tuple (compiled on
        first use, then cached up to :data:`CIRCUIT_CACHE_CAP` tuples)."""
        key = tuple(events)
        circuit = self._event_circuits.get(key)
        if circuit is None:
            circuit = self.compile_circuit(key)
            while len(self._event_circuits) >= self.CIRCUIT_CACHE_CAP:
                self._event_circuits.pop(next(iter(self._event_circuits)))
            self._event_circuits[key] = circuit
        return circuit

    def _event_probabilities_circuit(
        self, events: tuple[CFormula, ...], backend: str | None = None
    ) -> list[Fraction]:
        circuit = self.circuit_for(events)
        # Re-bind unconditionally: O(|params|) and keeps the circuit honest
        # after in-place probability edits (repro.pdoc.parameters).
        values = circuit.rebind(self.pdoc).forward(backend)
        denominator = values[-1]
        if backend in (None, "exact"):
            self._constraint_prob = denominator
            if denominator == 0:
                raise ValueError(
                    "the p-document is not consistent with the constraints"
                )
        else:
            _check_denominator(denominator, backend)
        return [joint / denominator for joint in values[:-1]]

    def sweep_probabilities(self, events: Sequence[CFormula], bindings):
        """Vectorized parameter sweep over the compiled circuit (numpy).

        ``bindings`` is a :class:`~repro.circuit.BatchBinding` or an
        iterable of N parameter vectors in canonical slot order
        (:func:`repro.pdoc.parameters.parameter_slots`).  Returns
        ``(conditionals, denominators)``: conditionals is the float64
        array of shape ``(len(events), N)`` with ``conditionals[i, j] =
        Pr(D ⊨ γ_i)`` at binding j, denominators the ``(N,)`` array of
        ``Pr(P ⊨ C)`` per binding.  Every joint/denominator entry is
        bitwise identical to the per-binding float64 circuit forward —
        the differential suite certifies this against the scalar and
        interval backends.
        """
        events = tuple(events)
        circuit = self.circuit_for(events)

        def _run():
            from ..circuit.batch import as_batch

            batch = as_batch(bindings, circuit.num_params)
            outputs = circuit.forward_batch(batch)
            denominators = outputs[-1]
            if (denominators <= 0.0).any():
                raise ValueError(
                    "float64 sweep evaluation of Pr(P |= C) reached 0 at "
                    "some binding (underflow is not proof of "
                    "impossibility); evaluate those bindings with "
                    "backend='auto' or 'exact'"
                )
            return outputs[:-1] / denominators, denominators

        if not TRACER.enabled:
            return _run()
        with TRACER.span("pxdb.sweep", events=len(events)):
            return _run()

    def circuit_stats(self) -> dict:
        """Aggregate statistics over the retained compiled circuits (the
        service's /metrics surfaces these per stored entry)."""
        circuits = list(self._event_circuits.values())
        return {
            "cached": len(circuits),
            "nodes": sum(len(circuit) for circuit in circuits),
            "params": sum(circuit.num_params for circuit in circuits),
            "rebinds": sum(circuit.rebinds for circuit in circuits),
        }

    def boolean_query(
        self, pattern: Pattern, backend: str | None = None
    ) -> Fraction:
        """Pr(D ⊨ T′) for a Boolean twig query (Section 5)."""
        from .formulas import exists

        return self.event_probability(exists(pattern), backend=backend)

    def query(
        self, query: Query | str, backend: str | None = None
    ) -> AnswerTable:
        """EVAL⟨Q, C⟩: per-tuple probabilities, keyed by uid tuples."""
        if isinstance(query, str):
            query = Query.parse(query)
        return evaluate_query(query, self.pdoc, self._condition, backend=backend)

    def query_labels(
        self, query: Query | str, backend: str | None = None
    ) -> dict[tuple, Fraction]:
        """Like :meth:`query`, with tuples decoded to node labels."""
        return decode_answers(self.query(query, backend=backend), self.pdoc)

    # -- SAMPLE⟨C⟩ --------------------------------------------------------------
    @property
    def sample_engine(self):
        """The incremental evaluation engine backing :meth:`sample` —
        compiled once per PXDB and warm across samples, so consecutive
        draws share every subtree distribution the constraint DP has ever
        computed.  Exposes the observability counters
        (:meth:`~repro.core.evaluator.IncrementalEngine.stats`)."""
        if self._sample_engine is None:
            from .evaluator import IncrementalEngine

            self._sample_engine = IncrementalEngine.for_formula(self._condition)
        return self._sample_engine

    @sample_engine.setter
    def sample_engine(self, engine) -> None:
        """Inject a pre-warmed engine (the document store compiles one per
        entry, runs the CONSTRAINT-SAT pass on it, and hands it over so the
        first sample request already starts from a hot cache).  The engine
        must have been compiled for this PXDB's condition."""
        self._sample_engine = engine

    def _engine_for(self, backend_name: str):
        """A warm engine bound to ``backend_name`` (built on first use)."""
        engine = self._aux_engines.get(backend_name)
        if engine is None:
            from .evaluator import IncrementalEngine

            engine = IncrementalEngine(
                self.sample_engine.registry, backend=backend_name
            )
            self._aux_engines[backend_name] = engine
        return engine

    def sample(
        self,
        rng: random.Random | None = None,
        incremental: bool = True,
        backend: str | None = None,
    ) -> Document:
        """Draw one document with probability exactly Pr(D = d) (Fig. 3).

        ``backend`` selects the sampler arithmetic: ``exact`` (default),
        ``float64`` (fast, distribution may drift by rounding) or ``auto``
        (interval evaluation, exact fallback on uncertified coins — draws
        are bit-identical to ``exact`` for the same rng).  Non-exact
        backends run on their own warm engines; ``auto`` additionally uses
        the exact sample engine for its fallbacks, so all modes share the
        compiled registry.
        """
        if backend in (None, "exact"):
            engine = self.sample_engine
            fallback = None
        elif backend == "float64":
            engine = self._engine_for("float64")
            fallback = None
        elif backend == "auto":
            engine = self._engine_for("interval")
            fallback = self.sample_engine
        else:
            raise ValueError(
                f"unknown sampler backend {backend!r} "
                "(expected 'exact', 'float64' or 'auto')"
            )
        return _sample(
            self.pdoc,
            self._condition,
            rng,
            engine=engine,
            incremental=incremental,
            backend=backend,
            fallback_engine=fallback,
        )

    # -- the approximation tier (repro.approx) ----------------------------------
    def approx_estimator(self, backend: str = "auto"):
        """The warm Monte-Carlo estimator for ``backend`` (built on first
        use, retained — its sampler engines and draw counters survive
        across calls, which is what makes repeated approximate queries
        cheap)."""
        estimator = self._approx_estimators.get(backend)
        if estimator is None:
            from ..approx.estimator import ApproxEstimator

            estimator = ApproxEstimator(self, backend=backend)
            self._approx_estimators[backend] = estimator
        return estimator

    def approx_probability(
        self,
        event: CFormula,
        *,
        epsilon: float = 0.05,
        delta: float = 0.05,
        max_samples: int = 200_000,
        rule: str | None = None,
        seed: int | None = None,
        rng: random.Random | None = None,
        backend: str = "auto",
        conditioned: bool = True,
    ):
        """Certified Monte-Carlo estimate of Pr(D ⊨ event): an
        :class:`~repro.approx.estimator.ApproxResult` whose
        ``[lo, hi]`` contains the exact value with probability 1 − δ,
        with ``hi − lo ≤ 2ε`` unless ``max_samples`` truncated sampling.

        This is the serving tier for the NP-hard SUM/AVG events of
        Proposition 7.2: unlike :meth:`event_probability` it accepts
        *any* c-formula, at the price of an ε that is additive (the
        proposition rules out relative-error guarantees, not additive
        ones).  ``backend`` picks the sampler arithmetic (``auto`` by
        default: float-fast, bit-identical draws to ``exact``); ``rule``
        picks the stopping rule (empirical-Bernstein by default — see
        :mod:`repro.approx.bounds`).  Deterministic given ``seed``.
        """
        return self.approx_estimator(backend).estimate(
            event,
            epsilon=epsilon,
            delta=delta,
            rule=rule,
            max_samples=max_samples,
            seed=seed,
            rng=rng,
            conditioned=conditioned,
        )

    def approx_query(
        self,
        query: Query | str,
        *,
        epsilon: float = 0.05,
        delta: float = 0.05,
        max_samples: int = 200_000,
        rule: str | None = None,
        seed: int | None = None,
        rng: random.Random | None = None,
        backend: str = "auto",
    ) -> dict:
        """Approximate EVAL⟨Q, C⟩: every candidate answer's event is
        evaluated against *shared* conditioned draws (one sampler pass
        serves all answers), returning ``{uid tuple: ApproxResult}``.
        Answers whose interval is [0, 0]-adjacent are still reported —
        dropping them is the caller's decision, since a zero estimate
        only certifies Pr ≤ hi, never impossibility."""
        if isinstance(query, str):
            query = Query.parse(query)
        answers = candidate_tuples(query, self.pdoc)
        results = self.approx_estimator(backend).estimate_many(
            [bound_formula(query, answer) for answer in answers],
            epsilon=epsilon,
            delta=delta,
            rule=rule,
            max_samples=max_samples,
            seed=seed,
            rng=rng,
        )
        return dict(zip(answers, results))

    def approx_stats(self) -> dict:
        """Per-backend estimator counters (the service's /metrics and
        /stats surface these per stored entry)."""
        return {
            backend: estimator.stats()
            for backend, estimator in self._approx_estimators.items()
        }

    # -- document probabilities --------------------------------------------------
    def document_probability(self, document: Document) -> Fraction:
        """Pr(D = d) for a concrete world (identified by its uid set)."""
        from .formulas import DocumentEvaluator

        if not DocumentEvaluator().satisfies(document.root, self._condition):
            return Fraction(0)
        prior = world_probability(self.pdoc, document.uid_set())
        return prior / self.constraint_probability()

    def __repr__(self) -> str:
        return f"PXDB({self.pdoc!r}, constraints={len(self.constraints)})"
