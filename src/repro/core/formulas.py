"""C-formulae, s-formulae and augmented patterns (Definitions 5.1 and 5.2),
their evaluation over ordinary documents, and the closure operations of
Section 5.1 (congruents, anti-congruents, negation, disjunction).

The mutually recursive grammar of the paper:

1. ``true`` / ``false`` are c-formulae                      (:data:`TRUE`, :data:`FALSE`);
2. conjunctions of c-formulae are c-formulae                 (:class:`CAnd`);
3. a pattern T plus a map α from its nodes to c-formulae is
   an *augmented pattern* αT                                 (the ``alpha`` dict of :class:`SFormula`);
4. π_n αT is an *s-formula* — a generalized selector          (:class:`SFormula`);
5. ``CNT(σ1 ∨ … ∨ σk) θ N`` is a c-formula                   (:class:`CountAtom`).

Section 7.2 generalizes item 5 to *a-formulae* over other aggregate
functions; :class:`MinAtom`, :class:`MaxAtom`, :class:`RatioAtom`,
:class:`SumAtom` and :class:`AvgAtom` realize AF^{agg}.  MIN/MAX/RATIO
remain tractable (Theorem 7.1): MIN/MAX are rewritten into CNT atoms (see
``repro.aggregates.minmax``) and RATIO is supported natively by the
evaluation algorithm.  SUM/AVG make the probabilistic problems NP-hard
(Proposition 7.2); they are supported here over *documents* and by the
exponential baseline, but the polynomial evaluator rejects them.

Formula objects are immutable and compared by identity; they may share
subformulae (the object graph is a DAG) but must not contain cycles.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Mapping

from .. import ops
from ..xmltree.document import DocNode
from ..xmltree.matching import selected_set
from ..xmltree.pattern import Pattern, PatternNode, trivial_pattern
from ..xmltree.predicates import (
    PredAnd,
    Predicate,
    is_numeric_label,
    numeric_value,
)


class CFormula:
    """Base class of c-formulae (and, more generally, a-formulae)."""

    __slots__ = ()

    # Closure sugar (Section 5.1): c-formulae are closed under ∧, ¬, ∨.
    def __and__(self, other: "CFormula") -> "CFormula":
        return conjunction([self, other])

    def __or__(self, other: "CFormula") -> "CFormula":
        return disjunction([self, other])

    def __invert__(self) -> "CFormula":
        return negation(self)


class _CTrue(CFormula):
    __slots__ = ()

    def __repr__(self) -> str:
        return "true"


class _CFalse(CFormula):
    __slots__ = ()

    def __repr__(self) -> str:
        return "false"


TRUE = _CTrue()
FALSE = _CFalse()


class CAnd(CFormula):
    """Conjunction γ1 ∧ … ∧ γm (Definition 5.1, item 2)."""

    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[CFormula]):
        self.parts = tuple(parts)

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self.parts)) + ")"


class SFormula:
    """An s-formula π_n αT (Definition 5.1, items 3–4).

    ``alpha`` maps pattern nodes (keyed by ``id``) to the c-formulae
    attached to them; nodes without an entry carry **true** — "from now
    on, we view every pattern as an augmented one" (Section 5.1).
    """

    __slots__ = ("pattern", "projected", "alpha")

    def __init__(
        self,
        pattern: Pattern,
        projected: PatternNode,
        alpha: Mapping[int, CFormula] | None = None,
    ):
        if not pattern.contains(projected):
            raise ValueError("projected node does not belong to the pattern")
        self.pattern = pattern
        self.projected = projected
        self.alpha: dict[int, CFormula] = dict(alpha or {})

    def alpha_of(self, node: PatternNode) -> CFormula:
        return self.alpha.get(id(node), TRUE)

    def is_plain(self) -> bool:
        """True when every attached formula is trivially **true**."""
        return all(f is TRUE for f in self.alpha.values())

    def with_alpha(self, node: PatternNode, formula: CFormula) -> "SFormula":
        """Return a copy with ``formula`` attached to ``node`` (replacing
        whatever was attached before)."""
        alpha = dict(self.alpha)
        alpha[id(node)] = formula
        return SFormula(self.pattern, self.projected, alpha)

    def clone(self, refine_projected: Predicate | None = None) -> "SFormula":
        """Deep-copy the pattern (formulae are shared, they are immutable).

        ``refine_projected`` optionally conjoins an extra predicate onto the
        projected node — the device behind the MIN/MAX rewriting and the
        tuple-binding of query evaluation.
        """
        mapping: dict[int, PatternNode] = {}

        def rec(node: PatternNode) -> PatternNode:
            copy = PatternNode(node.predicate, node.axis, node.name)
            mapping[id(node)] = copy
            for child in node.children:
                copy.add_child(rec(child))
            return copy

        new_root = rec(self.pattern.root)
        new_projected = mapping[id(self.projected)]
        if refine_projected is not None:
            new_projected.predicate = PredAnd((new_projected.predicate, refine_projected))
        new_alpha = {
            id(mapping[old_id]): formula
            for old_id, formula in self.alpha.items()
            if old_id in mapping
        }
        return SFormula(Pattern(new_root), new_projected, new_alpha)

    def __repr__(self) -> str:
        return f"π({self.pattern!r})"


class _AggAtom(CFormula):
    """Common shape of aggregate comparisons agg(σ1 ∨ … ∨ σk) θ bound."""

    __slots__ = ("disjuncts", "op", "bound")

    AGG = "?"

    def __init__(self, disjuncts: Iterable[SFormula], op: str, bound):
        self.disjuncts = tuple(disjuncts)
        if not self.disjuncts:
            raise ValueError("an aggregate atom needs at least one s-formula")
        self.op = ops.normalize(op)
        self.bound = bound

    def __repr__(self) -> str:
        sel = " OR ".join(map(repr, self.disjuncts))
        return f"{self.AGG}({sel}) {self.op} {self.bound}"


class CountAtom(_AggAtom):
    """CNT(σ1 ∨ … ∨ σk) θ N (Definition 5.1, item 5).  N is an integer
    given by the *numerical specification* (Section 4)."""

    __slots__ = ()
    AGG = "CNT"

    def __init__(self, disjuncts: Iterable[SFormula], op: str, bound: int):
        super().__init__(disjuncts, op, int(bound))


class MinAtom(_AggAtom):
    """MIN(σ1 ∨ … ∨ σk) θ R (Section 7.2); MIN(∅) = ∞."""

    __slots__ = ()
    AGG = "MIN"

    def __init__(self, disjuncts: Iterable[SFormula], op: str, bound):
        super().__init__(disjuncts, op, Fraction(bound))


class MaxAtom(_AggAtom):
    """MAX(σ1 ∨ … ∨ σk) θ R (Section 7.2); MAX(∅) = −∞."""

    __slots__ = ()
    AGG = "MAX"

    def __init__(self, disjuncts: Iterable[SFormula], op: str, bound):
        super().__init__(disjuncts, op, Fraction(bound))


class SumAtom(_AggAtom):
    """SUM(σ1 ∨ … ∨ σk) θ R (Section 7.2).  Probabilistic evaluation is
    NP-hard (Proposition 7.2) — only document-level and baseline
    evaluation support this atom."""

    __slots__ = ()
    AGG = "SUM"

    def __init__(self, disjuncts: Iterable[SFormula], op: str, bound):
        super().__init__(disjuncts, op, Fraction(bound))


class AvgAtom(_AggAtom):
    """AVG(σ1 ∨ … ∨ σk) θ R (Section 7.2); AVG(∅) = 0.  Probabilistic
    evaluation is NP-hard (Proposition 7.2)."""

    __slots__ = ()
    AGG = "AVG"

    def __init__(self, disjuncts: Iterable[SFormula], op: str, bound):
        super().__init__(disjuncts, op, Fraction(bound))


class RatioAtom(CFormula):
    """RATIO(σ1 ∨ … ∨ σk, γ) θ R (Section 7.2): the fraction r of the
    selected nodes n with d^n ⊨ γ satisfies r θ R; r = 0 when nothing is
    selected.  Tractable (Theorem 7.1)."""

    __slots__ = ("disjuncts", "inner", "op", "bound")

    def __init__(self, disjuncts: Iterable[SFormula], inner: CFormula, op: str, bound):
        self.disjuncts = tuple(disjuncts)
        if not self.disjuncts:
            raise ValueError("a RATIO atom needs at least one s-formula")
        self.inner = inner
        self.op = ops.normalize(op)
        self.bound = Fraction(bound)

    def __repr__(self) -> str:
        sel = " OR ".join(map(repr, self.disjuncts))
        return f"RATIO({sel}, {self.inner!r}) {self.op} {self.bound}"


# ---------------------------------------------------------------------------
# Closure operations (Section 5.1)
# ---------------------------------------------------------------------------


def exists(pattern: Pattern, alpha: Mapping[int, CFormula] | None = None) -> CFormula:
    """The *congruent* c-formula of the augmented pattern αT:
    true on d iff M(αT, d) ≠ ∅.  (Paper: CNT(π_r αT) = 1.)"""
    return CountAtom([SFormula(pattern, pattern.root, alpha)], ops.GE, 1)


def not_exists(pattern: Pattern, alpha: Mapping[int, CFormula] | None = None) -> CFormula:
    """The *anti-congruent*: true on d iff M(αT, d) = ∅
    (paper: CNT(π_r αT) = 0)."""
    return CountAtom([SFormula(pattern, pattern.root, alpha)], ops.EQ, 0)


def negation(formula: CFormula) -> CFormula:
    """¬γ, via the construction of Section 5.1: convert γ to a congruent
    augmented pattern (the trivial pattern with γ attached to its root) and
    take its anti-congruent."""
    if formula is TRUE:
        return FALSE
    if formula is FALSE:
        return TRUE
    pattern, root = trivial_pattern()
    return not_exists(pattern, {id(root): formula})


def conjunction(formulas: Iterable[CFormula]) -> CFormula:
    """γ1 ∧ … ∧ γm, flattening nested conjunctions and constant-folding."""
    parts: list[CFormula] = []
    for formula in formulas:
        if formula is TRUE:
            continue
        if formula is FALSE:
            return FALSE
        if isinstance(formula, CAnd):
            parts.extend(formula.parts)
        else:
            parts.append(formula)
    if not parts:
        return TRUE
    if len(parts) == 1:
        return parts[0]
    return CAnd(parts)


def disjunction(formulas: Iterable[CFormula]) -> CFormula:
    """γ1 ∨ … ∨ γm = ¬(¬γ1 ∧ … ∧ ¬γm) (c-formulae are closed under ∨)."""
    formulas = list(formulas)
    if any(f is TRUE for f in formulas):
        return TRUE
    formulas = [f for f in formulas if f is not FALSE]
    if not formulas:
        return FALSE
    if len(formulas) == 1:
        return formulas[0]
    return negation(conjunction([negation(f) for f in formulas]))


def implies(antecedent: CFormula, consequent: CFormula) -> CFormula:
    """γ1 → γ2, i.e. ¬(γ1 ∧ ¬γ2)."""
    return negation(conjunction([antecedent, negation(consequent)]))


# ---------------------------------------------------------------------------
# Evaluation over documents (Definition 5.2)
# ---------------------------------------------------------------------------


class DocumentEvaluator:
    """Evaluates c-formulae and s-formulae on a concrete document.

    Memoizes (formula, node) truth values, so repeated evaluation over the
    subtrees of one document — which the recursive semantics of augmented
    patterns triggers constantly — stays polynomial.
    """

    __slots__ = ("_truth_memo", "_select_memo")

    def __init__(self) -> None:
        self._truth_memo: dict[tuple[int, int], bool] = {}
        self._select_memo: dict[tuple[int, int], set[DocNode]] = {}

    # -- c-formulae ---------------------------------------------------------
    def satisfies(self, root: DocNode, formula: CFormula) -> bool:
        """Decide d ⊨ γ where d is the subtree rooted at ``root``."""
        key = (id(formula), id(root))
        cached = self._truth_memo.get(key)
        if cached is not None:
            return cached
        value = self._satisfies(root, formula)
        self._truth_memo[key] = value
        return value

    def _satisfies(self, root: DocNode, formula: CFormula) -> bool:
        if formula is TRUE:
            return True
        if formula is FALSE:
            return False
        if isinstance(formula, CAnd):
            return all(self.satisfies(root, part) for part in formula.parts)
        if isinstance(formula, CountAtom):
            return ops.apply(formula.op, len(self._union(root, formula.disjuncts)), formula.bound)
        if isinstance(formula, (MinAtom, MaxAtom)):
            numeric = [
                numeric_value(v.label)
                for v in self._union(root, formula.disjuncts)
                if is_numeric_label(v.label)
            ]
            if isinstance(formula, MaxAtom):
                value = max(numeric) if numeric else -math.inf
            else:
                value = min(numeric) if numeric else math.inf
            return ops.apply(formula.op, value, formula.bound)
        if isinstance(formula, SumAtom):
            total = sum(
                (
                    numeric_value(v.label)
                    for v in self._union(root, formula.disjuncts)
                    if is_numeric_label(v.label)
                ),
                Fraction(0),
            )
            return ops.apply(formula.op, total, formula.bound)
        if isinstance(formula, AvgAtom):
            selected = self._union(root, formula.disjuncts)
            if not selected:
                return ops.apply(formula.op, Fraction(0), formula.bound)
            total = sum(
                (numeric_value(v.label) for v in selected if is_numeric_label(v.label)),
                Fraction(0),
            )
            return ops.apply(formula.op, total / len(selected), formula.bound)
        if isinstance(formula, RatioAtom):
            selected = self._union(root, formula.disjuncts)
            if not selected:
                return ops.apply(formula.op, Fraction(0), formula.bound)
            hits = sum(1 for v in selected if self.satisfies(v, formula.inner))
            return ops.apply(formula.op, Fraction(hits, len(selected)), formula.bound)
        raise TypeError(f"cannot evaluate formula of type {type(formula).__name__}")

    # -- s-formulae ---------------------------------------------------------
    def select(self, root: DocNode, sformula: SFormula) -> set[DocNode]:
        """σ(d) for d the subtree rooted at ``root`` (Definition 5.2, item 4)."""
        key = (id(sformula), id(root))
        cached = self._select_memo.get(key)
        if cached is not None:
            return cached

        def extra_test(pattern_node: PatternNode, doc_node: DocNode) -> bool:
            return self.satisfies(doc_node, sformula.alpha_of(pattern_node))

        test = None if sformula.is_plain() else extra_test
        result = selected_set(sformula.pattern, sformula.projected, root, test)
        self._select_memo[key] = result
        return result

    def _union(self, root: DocNode, disjuncts: tuple[SFormula, ...]) -> set[DocNode]:
        result: set[DocNode] = set()
        for sformula in disjuncts:
            result |= self.select(root, sformula)
        return result


def satisfies(root: DocNode, formula: CFormula) -> bool:
    """One-shot d ⊨ γ (builds a fresh evaluator; see :class:`DocumentEvaluator`)."""
    return DocumentEvaluator().satisfies(root, formula)


def select(root: DocNode, sformula: SFormula) -> set[DocNode]:
    """One-shot σ(d)."""
    return DocumentEvaluator().select(root, sformula)
