"""Numerical comparison operators shared by constraints, atoms and predicates.

The paper draws comparison operators from {=, ≠, <, ≤, >, ≥} (Definition
2.2).  This module gives them a single canonical representation, plus the
complement operation used by the constraint-to-c-formula translation of
Section 5.1 (e.g. the complement of ``<`` is ``≥``).
"""

from __future__ import annotations

import operator
from typing import Callable

# Canonical operator names.
EQ, NE, LT, LE, GT, GE = "=", "!=", "<", "<=", ">", ">="

ALL_OPS: tuple[str, ...] = (EQ, NE, LT, LE, GT, GE)

_FUNCS: dict[str, Callable] = {
    EQ: operator.eq,
    NE: operator.ne,
    LT: operator.lt,
    LE: operator.le,
    GT: operator.gt,
    GE: operator.ge,
}

_COMPLEMENT: dict[str, str] = {EQ: NE, NE: EQ, LT: GE, GE: LT, GT: LE, LE: GT}

_ALIASES: dict[str, str] = {
    "==": EQ,
    "=": EQ,
    "!=": NE,
    "<>": NE,
    "≠": NE,
    "<": LT,
    "<=": LE,
    "≤": LE,
    ">": GT,
    ">=": GE,
    "≥": GE,
}


def normalize(op: str) -> str:
    """Return the canonical form of a comparison operator string."""
    try:
        return _ALIASES[op]
    except KeyError:
        raise ValueError(f"unknown comparison operator: {op!r}") from None


def apply(op: str, left, right) -> bool:
    """Evaluate ``left op right``."""
    return _FUNCS[normalize(op)](left, right)


def complement(op: str) -> str:
    """Return the complementary operator θ̄ (paper, Section 5.1)."""
    return _COMPLEMENT[normalize(op)]


def compare_saturated(value: int, cap: int, op: str, bound) -> bool:
    """Evaluate ``count op bound`` when only ``min(count, cap)`` is known.

    The evaluation algorithm saturates counts at ``cap``; the choice of cap
    (see ``repro.core.compiler``) guarantees that the comparison against
    ``bound`` is still decided exactly: if ``value < cap`` the count is
    exact, and if ``value == cap`` the count is known to be >= cap > bound.
    """
    op = normalize(op)
    if value < cap:
        return _FUNCS[op](value, bound)
    # The true count is some integer >= cap, and cap > bound by construction.
    if op in (GT, GE, NE):
        return True
    return False  # =, <, <= are all false for counts strictly above bound
