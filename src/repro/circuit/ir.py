"""The arithmetic-circuit IR: nodes, hash-consing builder, forward and
backward passes.

A circuit is a flat, topologically ordered array of nodes over exact
rationals:

* ``PARAM``  — a free probability parameter (an ind/mux edge probability
  or an exp subset weight of the compiled p-document);
* ``CONST``  — a fixed ``Fraction``;
* ``ADD`` / ``MUL`` — n-ary sums and products of earlier nodes.

Every output of the compilation (one per registered c-formula) is a
*multilinear polynomial* in the parameters: each parameter belongs to one
distributional node and the DP combines distinct subtrees purely by
sum-of-products, so no parameter is ever multiplied with itself.  Two
consequences the rest of the subsystem leans on:

* the **backward pass** (reverse-mode differentiation) computes exact
  ∂output/∂θ for *every* parameter in one sweep, and
* central finite differences are *exact* for multilinear functions, which
  is how the tests validate the backward pass against plain re-evaluation.

The builder hash-conses: structurally identical gates (same operation,
same operand multiset) are created once, and constants are folded eagerly
(x·0 → 0, x·1 → x, sums/products of constants collapse).  Evaluation cost
is therefore |circuit| exact-Fraction operations with none of the
signature bookkeeping of the DP — which is where the re-bind-and-sweep
speedup over a fresh evaluator run comes from (experiment E12).
"""

from __future__ import annotations

import math
from fractions import Fraction
from math import prod
from typing import Sequence

from ..numeric import GUARD, get_backend
from ..numeric.backends import Interval, _imul, _lift_interval
from ..obs.spans import TRACER

PARAM = 0
CONST = 1
ADD = 2
MUL = 3

KIND_NAMES = ("param", "const", "add", "mul")

_ZERO = Fraction(0)
_ONE = Fraction(1)


class Builder:
    """Constructs a circuit bottom-up with hash-consing and constant
    folding.  Node ids are dense ints; operands always precede their
    gates, so the arrays are topologically ordered by construction."""

    def __init__(self):
        self.kinds: list[int] = []
        # args[i]: PARAM -> parameter index, CONST -> Fraction,
        #          ADD/MUL -> tuple of operand node ids.
        self.args: list = []
        self.param_nodes: list[int] = []
        self._const_memo: dict[Fraction, int] = {}
        self._gate_memo: dict[tuple, int] = {}
        self.zero = self.const(_ZERO)
        self.one = self.const(_ONE)
        self._minus_one = self.const(Fraction(-1))

    def _append(self, kind: int, arg) -> int:
        self.kinds.append(kind)
        self.args.append(arg)
        return len(self.kinds) - 1

    def const(self, value) -> int:
        value = Fraction(value)
        node = self._const_memo.get(value)
        if node is None:
            node = self._const_memo[value] = self._append(CONST, value)
        return node

    def param(self) -> int:
        """A fresh parameter node (never shared: distinct parameters are
        distinct even when their current values coincide)."""
        node = self._append(PARAM, len(self.param_nodes))
        self.param_nodes.append(node)
        return node

    def add(self, operands: Sequence[int]) -> int:
        """Σ operands (a multiset — duplicates mean 2x, kept as given)."""
        total = _ZERO
        rest: list[int] = []
        for node in operands:
            if self.kinds[node] == CONST:
                total += self.args[node]
            else:
                rest.append(node)
        if not rest:
            return self.const(total)
        if total != 0:
            rest.append(self.const(total))
        if len(rest) == 1:
            return rest[0]
        key = (ADD, tuple(sorted(rest)))
        node = self._gate_memo.get(key)
        if node is None:
            node = self._gate_memo[key] = self._append(ADD, key[1])
        return node

    def mul(self, operands: Sequence[int]) -> int:
        """Π operands (again a multiset; x·x is a degree-2 term)."""
        product = _ONE
        rest: list[int] = []
        for node in operands:
            if self.kinds[node] == CONST:
                product *= self.args[node]
            else:
                rest.append(node)
        if product == 0 or not rest:
            return self.const(product)
        if product != 1:
            rest.append(self.const(product))
        if len(rest) == 1:
            return rest[0]
        key = (MUL, tuple(sorted(rest)))
        node = self._gate_memo.get(key)
        if node is None:
            node = self._gate_memo[key] = self._append(MUL, key[1])
        return node

    def one_minus(self, node: int) -> int:
        """1 - x, expressed with the four node kinds only."""
        return self.add([self.one, self.mul([self._minus_one, node])])


def _compact(kinds, args, param_nodes, outputs):
    """Dead-code elimination: keep only nodes reachable from the outputs.

    The tracer materializes the *full* signature distribution at every
    document position, but the root analysis consumes only the satisfying
    signatures — typically ~90% of the traced gates never feed an output.
    Parameters are exempt (kept even when dead) so parameter positions
    keep lining up with :func:`repro.pdoc.parameters.parameter_slots`;
    their gradients are simply 0.
    """
    count = len(kinds)
    live = bytearray(count)
    stack = list(outputs)
    while stack:
        node = stack.pop()
        if live[node]:
            continue
        live[node] = 1
        if kinds[node] >= ADD:
            stack.extend(args[node])
    for node in param_nodes:
        live[node] = 1
    remap = [0] * count
    new_kinds: list[int] = []
    new_args: list = []
    for node in range(count):
        if not live[node]:
            continue
        remap[node] = len(new_kinds)
        new_kinds.append(kinds[node])
        if kinds[node] >= ADD:
            new_args.append(tuple(remap[operand] for operand in args[node]))
        else:
            new_args.append(args[node])
    return (
        new_kinds,
        new_args,
        [remap[node] for node in param_nodes],
        [remap[node] for node in outputs],
    )


class Circuit:
    """An immutable compiled circuit plus its current parameter binding.

    ``forward()`` evaluates every gate once (exact ``Fraction``s) and
    returns the output values; ``gradient(k)`` runs one reverse sweep and
    returns ∂output_k/∂θ for every parameter θ.  ``set_param_values``
    re-binds the parameters in O(1) per parameter — evaluation cost after
    a re-bind is one forward sweep, never a recompilation.
    """

    __slots__ = ("kinds", "args", "param_nodes", "param_values", "outputs",
                 "_template", "_gates", "_values",
                 "_float_template", "_float_params", "_float_values",
                 "_interval_template", "_interval_params", "_interval_values",
                 "_batch_kernel")

    def __init__(
        self,
        kinds: Sequence[int],
        args: Sequence,
        param_nodes: Sequence[int],
        param_values: Sequence[Fraction],
        outputs: Sequence[int],
    ):
        kinds, args, param_nodes, outputs = _compact(
            kinds, args, param_nodes, outputs
        )
        self.kinds = tuple(kinds)
        self.args = tuple(args)
        self.param_nodes = tuple(param_nodes)
        self.param_values = [Fraction(v) for v in param_values]
        if len(self.param_values) != len(self.param_nodes):
            raise ValueError("one value per parameter required")
        self.outputs = tuple(outputs)
        # Pre-filled evaluation template: constants are fixed forever,
        # parameter and gate slots are overwritten by every forward pass.
        self._template = [
            arg if kind == CONST else None for kind, arg in zip(kinds, args)
        ]
        # The gate program: only ADD/MUL slots need per-sweep work.
        self._gates = tuple(
            (kind == ADD, node, args[node])
            for node, kind in enumerate(kinds)
            if kind >= ADD
        )
        self._values: list | None = None
        # Per-backend evaluation state (repro.numeric): templates are
        # compile-time constants, params and values are invalidated on
        # every re-bind.  Keeping them per backend is what makes the
        # float64 fast path a tight array loop over pre-lowered floats.
        self._float_template: list | None = None
        self._float_params: list | None = None
        self._float_values: list | None = None
        self._interval_template: list | None = None
        self._interval_params: list | None = None
        self._interval_values: list | None = None
        # Lazily codegen'd numpy kernel for the batch backend.  Structure
        # never changes after construction, so it is never invalidated
        # (False marks "codegen declined, use the interpreted sweep").
        self._batch_kernel = None

    @classmethod
    def from_builder(
        cls, builder: Builder, outputs: Sequence[int],
        param_values: Sequence[Fraction],
    ) -> "Circuit":
        return cls(
            builder.kinds, builder.args, builder.param_nodes, param_values, outputs
        )

    def __len__(self) -> int:
        return len(self.kinds)

    @property
    def num_params(self) -> int:
        return len(self.param_nodes)

    # -- parameter re-binding -------------------------------------------------
    def set_param_values(self, values: Sequence[Fraction]) -> None:
        if len(values) != len(self.param_nodes):
            raise ValueError(
                f"expected {len(self.param_nodes)} parameter values, "
                f"got {len(values)}"
            )
        self.param_values = [Fraction(v) for v in values]
        self._values = None
        self._float_params = None
        self._float_values = None
        self._interval_params = None
        self._interval_values = None

    # -- forward pass ---------------------------------------------------------
    def forward(self, backend: str | None = None) -> list:
        """Evaluate every output at the current parameter binding.

        ``backend`` selects the arithmetic (``repro.numeric``): ``exact``
        (default) returns ``Fraction``s, ``float64`` doubles, ``interval``
        :class:`~repro.numeric.Interval` enclosures that always contain
        the exact outputs, and ``"auto"`` the guarded mix — exact
        ``Fraction``s for outputs whose sign the interval sweep cannot
        certify, midpoint floats for the rest.
        """
        name = "auto" if backend == "auto" else get_backend(backend).name
        if not TRACER.enabled:
            return self._forward_backend(name)
        with TRACER.span(
            "circuit.forward",
            gates=len(self._gates),
            nodes=len(self.kinds),
            params=len(self.param_nodes),
            outputs=len(self.outputs),
            backend=name,
        ):
            return self._forward_backend(name)

    def _forward_backend(self, name: str) -> list:
        if name == "exact":
            return self._forward()
        if name == "float64":
            return self._forward_float()
        if name == "interval":
            return [Interval(*pair) for pair in self._forward_interval()]
        return self._forward_auto()

    def _forward(self) -> list[Fraction]:
        values = self._template[:]
        params = self.param_values
        for position, node in enumerate(self.param_nodes):
            values[node] = params[position]
        # CONST slots are pre-filled by the template; only gates compute.
        get = values.__getitem__
        for is_add, node, operands in self._gates:
            if is_add:
                values[node] = sum(map(get, operands), _ZERO)
            else:
                values[node] = prod(map(get, operands))
        self._values = values
        return [values[o] for o in self.outputs]

    def _forward_float(self) -> list[float]:
        """The float64 kernel: one round-to-nearest double per operation,
        over pre-lowered constant/parameter arrays — no Fraction ever
        touches the sweep."""
        if self._float_template is None:
            self._float_template = [
                float(arg) if kind == CONST else None
                for kind, arg in zip(self.kinds, self.args)
            ]
        if self._float_params is None:
            self._float_params = [float(v) for v in self.param_values]
        values = self._float_template[:]
        params = self._float_params
        for position, node in enumerate(self.param_nodes):
            values[node] = params[position]
        get = values.__getitem__
        for is_add, node, operands in self._gates:
            if is_add:
                values[node] = sum(map(get, operands))
            else:
                values[node] = prod(map(get, operands))
        self._float_values = values
        return [values[o] for o in self.outputs]

    def _forward_interval(self) -> list[tuple[float, float]]:
        """The interval kernel: every operation outward-rounded by one ulp,
        so each raw (lo, hi) result encloses the exact output."""
        if self._interval_template is None:
            self._interval_template = [
                _lift_interval(arg) if kind == CONST else None
                for kind, arg in zip(self.kinds, self.args)
            ]
        if self._interval_params is None:
            self._interval_params = [_lift_interval(v) for v in self.param_values]
        values = self._interval_template[:]
        params = self._interval_params
        for position, node in enumerate(self.param_nodes):
            values[node] = params[position]
        na = math.nextafter
        inf = math.inf
        for is_add, node, operands in self._gates:
            first = operands[0]
            acc = values[first]
            if is_add:
                lo, hi = acc
                for j in operands[1:]:
                    vlo, vhi = values[j]
                    # Adding an exact 0.0 endpoint is exact: exact zeros
                    # stay [0, 0] point intervals through the circuit.
                    s = lo + vlo
                    lo = s if lo == 0.0 or vlo == 0.0 else na(s, -inf)
                    s = hi + vhi
                    hi = s if hi == 0.0 or vhi == 0.0 else na(s, inf)
                values[node] = (lo, hi)
            else:
                # _imul handles the sign cases (the ``1 - x`` encoding
                # multiplies by the constant -1).
                for j in operands[1:]:
                    acc = _imul(acc, values[j])
                values[node] = acc
        self._interval_values = values
        return [values[o] for o in self.outputs]

    def _forward_auto(self) -> list:
        """The guarded forward: interval sweep, one exact sweep only when
        some output's sign is uncertified (its enclosure straddles 0)."""
        enclosures = self._forward_interval()
        straddling = {
            index for index, (lo, hi) in enumerate(enclosures) if lo <= 0.0 < hi
        }
        certified = len(enclosures) - len(straddling)
        if certified:
            GUARD.decided(certified)
        if not straddling:
            return [Interval(*pair).mid for pair in enclosures]
        GUARD.fell_back(len(straddling))
        exact = self._forward()
        return [
            exact[index] if index in straddling else Interval(*pair).mid
            for index, pair in enumerate(enclosures)
        ]

    # -- batched (vectorized) passes ------------------------------------------
    def forward_batch(self, bindings, *, use_kernel: bool = True):
        """Evaluate every output at N parameter bindings in one sweep.

        ``bindings`` is a :class:`~repro.circuit.batch.BatchBinding` (or
        any iterable of per-binding parameter vectors); the result is the
        float64 array of shape ``(n_outputs, N)``.  Column ``i`` is
        bitwise identical to ``forward(backend="float64")`` after
        ``set_param_values(bindings[i])`` — the batch backend inherits
        the scalar fast path's certification (and sits inside the
        interval backend's enclosures) by construction.  Requires numpy.
        """
        from .batch import as_batch, run_forward_batch
        from .kernel import compile_kernel

        batch = as_batch(bindings, len(self.param_nodes))
        kernel = None
        if use_kernel:
            if self._batch_kernel is None:
                compiled = compile_kernel(self)
                self._batch_kernel = compiled if compiled is not None else False
            kernel = self._batch_kernel or None

        def _run():
            if kernel is not None:
                import numpy

                out = numpy.empty(
                    (len(self.outputs), batch.n), dtype=numpy.float64
                )
                kernel(batch.values, out)
                return out
            return run_forward_batch(self, batch.values)

        if not TRACER.enabled:
            return _run()
        with TRACER.span(
            "circuit.forward_batch",
            gates=len(self._gates),
            params=len(self.param_nodes),
            outputs=len(self.outputs),
            bindings=batch.n,
            kernel=kernel is not None,
        ):
            return _run()

    def gradient_batch(self, bindings, output: int = 0):
        """[∂output/∂θ] at N bindings: a ``(num_params, N)`` float64 array.

        One vectorized reverse sweep with the same division-free
        prefix/suffix MUL adjoints as :meth:`gradient`; column ``i`` is
        bitwise identical to the scalar ``gradient(output,
        backend="float64")`` at binding ``i``.  Requires numpy.
        """
        from .batch import as_batch, run_gradient_batch

        batch = as_batch(bindings, len(self.param_nodes))
        if not TRACER.enabled:
            return run_gradient_batch(self, batch.values, output)
        with TRACER.span(
            "circuit.gradient_batch",
            gates=len(self._gates),
            params=len(self.param_nodes),
            bindings=batch.n,
        ):
            return run_gradient_batch(self, batch.values, output)

    # -- backward pass --------------------------------------------------------
    def gradient(self, output: int = 0, backend: str | None = None) -> list:
        """[∂output/∂θ for every parameter θ] in one reverse sweep.

        Products distribute their adjoint via prefix/suffix partial
        products, so zero-valued operands need no special casing (and no
        division is ever performed).  ``backend`` selects the arithmetic:
        ``exact`` Fractions (default), ``float64`` doubles or ``interval``
        enclosures of the exact derivatives (``auto`` is a decision policy
        and has no meaning for gradients).
        """
        name = get_backend(backend).name
        if not TRACER.enabled:
            return self._gradient_backend(output, name)
        with TRACER.span(
            "circuit.gradient", gates=len(self._gates),
            params=len(self.param_nodes), backend=name,
        ):
            return self._gradient_backend(output, name)

    def _gradient_backend(self, output: int, name: str) -> list:
        if name == "exact":
            return self._gradient(output)
        if name == "float64":
            return self._gradient_float(output)
        return self._gradient_interval(output)

    def _gradient(self, output: int = 0) -> list[Fraction]:
        values = self._values
        if values is None:
            self.forward()
            values = self._values
        adjoint = [_ZERO] * len(self.kinds)
        adjoint[self.outputs[output]] = _ONE
        # Reverse sweep over the gate program; PARAM/CONST adjoints never
        # propagate further, so gates are the only nodes that do work.
        for is_add, node, operands in reversed(self._gates):
            seed = adjoint[node]
            if seed == 0:
                continue
            if is_add:
                for j in operands:
                    adjoint[j] += seed
            else:
                count = len(operands)
                prefix = [_ONE] * (count + 1)
                for k in range(count):
                    prefix[k + 1] = prefix[k] * values[operands[k]]
                suffix = _ONE
                for k in range(count - 1, -1, -1):
                    adjoint[operands[k]] += seed * prefix[k] * suffix
                    suffix *= values[operands[k]]
        return [adjoint[node] for node in self.param_nodes]

    def _gradient_float(self, output: int = 0) -> list[float]:
        values = self._float_values
        if values is None:
            self._forward_float()
            values = self._float_values
        adjoint = [0.0] * len(self.kinds)
        adjoint[self.outputs[output]] = 1.0
        for is_add, node, operands in reversed(self._gates):
            seed = adjoint[node]
            if seed == 0.0:
                continue
            if is_add:
                for j in operands:
                    adjoint[j] += seed
            else:
                count = len(operands)
                prefix = [1.0] * (count + 1)
                for k in range(count):
                    prefix[k + 1] = prefix[k] * values[operands[k]]
                suffix = 1.0
                for k in range(count - 1, -1, -1):
                    adjoint[operands[k]] += seed * prefix[k] * suffix
                    suffix *= values[operands[k]]
        return [adjoint[node] for node in self.param_nodes]

    def _gradient_interval(self, output: int = 0) -> list[Interval]:
        values = self._interval_values
        if values is None:
            self._forward_interval()
            values = self._interval_values
        na = math.nextafter
        inf = math.inf
        zero = (0.0, 0.0)
        one = (1.0, 1.0)
        adjoint = [zero] * len(self.kinds)
        adjoint[self.outputs[output]] = one
        for is_add, node, operands in reversed(self._gates):
            seed = adjoint[node]
            if seed == zero:
                continue
            if is_add:
                slo, shi = seed
                for j in operands:
                    alo, ahi = adjoint[j]
                    adjoint[j] = (na(alo + slo, -inf), na(ahi + shi, inf))
            else:
                count = len(operands)
                prefix = [one] * (count + 1)
                for k in range(count):
                    prefix[k + 1] = _imul(prefix[k], values[operands[k]])
                suffix = one
                for k in range(count - 1, -1, -1):
                    term = _imul(_imul(seed, prefix[k]), suffix)
                    alo, ahi = adjoint[operands[k]]
                    adjoint[operands[k]] = (
                        na(alo + term[0], -inf), na(ahi + term[1], inf),
                    )
                    suffix = _imul(suffix, values[operands[k]])
        return [Interval(*adjoint[node]) for node in self.param_nodes]

    # -- observability --------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Node counts by kind plus size/shape summary (CLI ``circuit
        stats`` and the service's /metrics surface this)."""
        by_kind = [0, 0, 0, 0]
        operands = 0
        for i, kind in enumerate(self.kinds):
            by_kind[kind] += 1
            if kind in (ADD, MUL):
                operands += len(self.args[i])
        return {
            "nodes": len(self.kinds),
            "params": by_kind[PARAM],
            "consts": by_kind[CONST],
            "adds": by_kind[ADD],
            "muls": by_kind[MUL],
            "edges": operands,
            "outputs": len(self.outputs),
        }
