"""Arithmetic-circuit compilation of the c-formula DP (docs/CIRCUIT.md).

Compile once, evaluate many: for a fixed p-document *structure* and fixed
formulas, the Theorem 5.3 dynamic program is a polynomial-size arithmetic
circuit over the probability parameters.  This package traces one
evaluator run into that circuit (:func:`compile_formulas`), after which

* a **forward pass** reproduces the evaluator's exact ``Fraction``
  probabilities in |circuit| scalar operations,
* a **backward pass** yields ∂Pr(P ⊨ γ)/∂θ for *every* parameter in one
  sweep (the sensitivity API of ``repro.core.explain``), and
* **re-binding** swaps in new probability values — for probability-only
  edits of the p-document — in O(|params|) without recompiling.
"""

from .batch import HAVE_NUMPY, BatchBinding
from .ir import ADD, CONST, MUL, PARAM, Builder, Circuit
from .trace import CircuitTracer, CompiledCircuit, ParamInfo, compile_formula, compile_formulas

__all__ = [
    "ADD",
    "CONST",
    "HAVE_NUMPY",
    "MUL",
    "PARAM",
    "BatchBinding",
    "Builder",
    "Circuit",
    "CircuitTracer",
    "CompiledCircuit",
    "ParamInfo",
    "compile_formula",
    "compile_formulas",
]
