"""Batched (vectorized) circuit execution over numpy arrays.

A :class:`BatchBinding` packs N parameter bindings column-wise into one
float64 array of shape ``(num_params, N)``; :func:`run_forward_batch`
then sweeps the dense gate program once with one numpy operation per
gate operand, evaluating all N bindings simultaneously.  The payoff is
amortization: the Python-level interpreter overhead (~the entire cost of
the scalar float64 sweep) is paid once per *gate*, not once per gate per
binding, so a 1000-binding sweep runs orders of magnitude faster than
1000 re-bind-and-sweep passes (experiment E13's batch rows).

Bitwise contract
----------------
Column ``i`` of every output is **bitwise identical** to the scalar
float64 forward pass at binding ``i``.  Both sweeps perform the same
round-to-nearest double operations in the same order:

* ADD gates accumulate left-to-right over the stored operand order,
  seeded with ``0.0`` — exactly mirroring the scalar ``sum(...)``, whose
  integer-zero start coerces ``0 + v`` first (this also pins the IEEE
  ``-0.0 + -0.0 == -0.0`` vs ``0.0 + -0.0 == 0.0`` edge the same way);
* MUL gates multiply left-to-right (``prod(...)`` starts at integer 1,
  and ``1 * x`` is bitwise ``x``).

numpy is an *optional* dependency: importing this module without numpy
installed raises a clear error, and nothing else in the package imports
it at module scope.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from .ir import Circuit

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

HAVE_NUMPY = _np is not None


def require_numpy():
    """The numpy module, or a ``RuntimeError`` explaining the extra."""
    if _np is None:  # pragma: no cover - exercised only without numpy
        raise RuntimeError(
            "the batch circuit backend requires numpy "
            "(install the 'batch' extra: pip install repro-pxml[batch])"
        )
    return _np


class BatchBinding:
    """N parameter bindings packed as one float64 array per PARAM slot.

    ``values[k, i]`` is parameter k of binding i — the same canonical
    parameter order as :func:`repro.pdoc.parameters.parameter_slots` and
    ``Circuit.param_nodes``.  Rows of exact ``Fraction`` values are
    lowered with ``float(...)``, matching the scalar float64 path's
    parameter lowering, which is what makes the bitwise contract hold.
    """

    __slots__ = ("values",)

    def __init__(self, values):
        np = require_numpy()
        array = np.asarray(values, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError(
                f"BatchBinding expects a (num_params, n_bindings) matrix, "
                f"got shape {array.shape}"
            )
        self.values = array

    @classmethod
    def from_rows(cls, rows: Sequence[Sequence]) -> "BatchBinding":
        """Build from per-binding parameter vectors (one row per binding)."""
        np = require_numpy()
        rows = list(rows)
        if not rows:
            raise ValueError("BatchBinding requires at least one binding")
        width = len(rows[0])
        lowered = np.empty((len(rows), width), dtype=np.float64)
        for i, row in enumerate(rows):
            if len(row) != width:
                raise ValueError(
                    f"binding {i} has {len(row)} values, expected {width}"
                )
            lowered[i] = list(map(float, row))
        return cls(lowered.T)

    @property
    def num_params(self) -> int:
        return self.values.shape[0]

    @property
    def n(self) -> int:
        return self.values.shape[1]

    def column(self, i: int) -> list[float]:
        """Binding i as a plain parameter-value list (test/debug helper)."""
        return [float(v) for v in self.values[:, i]]

    def __len__(self) -> int:
        return self.n


def as_batch(bindings, num_params: int) -> BatchBinding:
    """Coerce ``bindings`` (a BatchBinding, or an iterable of per-binding
    parameter vectors) and validate its width against the circuit."""
    batch = (
        bindings
        if isinstance(bindings, BatchBinding)
        else BatchBinding.from_rows(bindings)
    )
    if batch.num_params != num_params:
        raise ValueError(
            f"expected {num_params} parameter values per binding, "
            f"got {batch.num_params}"
        )
    return batch


def run_forward_batch(circuit: "Circuit", params, *, retain: bool = False):
    """Interpreted vectorized sweep: all outputs at all bindings.

    ``params`` is the ``(num_params, N)`` float64 matrix.  Returns the
    ``(n_outputs, N)`` output matrix; with ``retain=True`` returns
    ``(outputs, values)`` where ``values`` holds every node's array (the
    backward pass needs them).
    """
    np = require_numpy()
    n = params.shape[1]
    # CONST slots hold Python floats (broadcast on use); PARAM slots hold
    # row views of the binding matrix; gates fill in arrays.
    values: list = [
        float(arg) if kind == 1 else None  # CONST == 1
        for kind, arg in zip(circuit.kinds, circuit.args)
    ]
    for position, node in enumerate(circuit.param_nodes):
        values[node] = params[position]
    add, multiply = np.add, np.multiply
    ndarray = np.ndarray
    for is_add, node, operands in circuit._gates:
        if is_add:
            # 0.0 + first seeds the accumulator exactly like the scalar
            # sum()'s zero start; once it is an array (a gate has at most
            # one const operand, so after two operands at the latest) the
            # rest add in place.
            acc = 0.0 + values[operands[0]]
            for j in operands[1:]:
                if type(acc) is ndarray:
                    add(acc, values[j], out=acc)
                else:
                    acc = acc + values[j]
        else:
            acc = values[operands[0]] * values[operands[1]]
            for j in operands[2:]:
                multiply(acc, values[j], out=acc)
        values[node] = acc
    outputs = np.empty((len(circuit.outputs), n), dtype=np.float64)
    for i, node in enumerate(circuit.outputs):
        outputs[i] = values[node]
    if retain:
        return outputs, values
    return outputs


def run_gradient_batch(circuit: "Circuit", params, output: int = 0):
    """Vectorized reverse sweep: ``(num_params, N)`` of ∂output/∂θ.

    Same division-free prefix/suffix MUL adjoints as the scalar backward
    pass, with every partial product an (N,)-array.  Untouched adjoints
    stay the scalar ``0.0`` sentinel so dead subgraphs cost nothing.
    """
    np = require_numpy()
    n = params.shape[1]
    _, values = run_forward_batch(circuit, params, retain=True)
    adjoint: list = [0.0] * len(circuit.kinds)
    adjoint[circuit.outputs[output]] = np.ones(n, dtype=np.float64)
    for is_add, node, operands in reversed(circuit._gates):
        seed = adjoint[node]
        if isinstance(seed, float):  # never seeded: zero everywhere
            continue
        if is_add:
            for j in operands:
                adjoint[j] = adjoint[j] + seed
        else:
            count = len(operands)
            prefix: list = [1.0] * (count + 1)
            for k in range(count):
                prefix[k + 1] = prefix[k] * values[operands[k]]
            suffix = 1.0
            for k in range(count - 1, -1, -1):
                adjoint[operands[k]] = (
                    adjoint[operands[k]] + seed * prefix[k] * suffix
                )
                suffix = suffix * values[operands[k]]
    gradients = np.zeros((len(circuit.param_nodes), n), dtype=np.float64)
    for position, node in enumerate(circuit.param_nodes):
        row = adjoint[node]
        if not isinstance(row, float):
            gradients[position] = row
    return gradients
