"""Codegen'd numpy kernels for batched circuit execution.

:func:`emit_source` turns the dense gate program into straight-line
Python source — one assignment per gate, each a chain of elementwise
numpy operations — and :func:`compile_kernel` execs it into a callable
``kernel(P, out)`` (``P`` the ``(num_params, N)`` binding matrix, ``out``
the ``(n_outputs, N)`` result buffer).  Compared to the interpreted sweep
in :mod:`repro.circuit.batch` this removes the per-gate list indexing and
loop dispatch, leaving only the numpy calls themselves.

The emitted arithmetic preserves the bitwise contract with the scalar
float64 sweep: ADD chains are seeded with a literal ``0.0`` and evaluated
left-to-right in stored operand order (mirroring the scalar ``sum``'s
integer-zero start, including the ``-0.0`` accumulation edge); MUL chains
multiply left-to-right (``prod``'s integer-one start is a bitwise no-op).
Constants are inlined as ``repr`` literals, which round-trip doubles
exactly.

Very large circuits would make CPython's compiler the bottleneck, so
circuits above :data:`KERNEL_GATE_LIMIT` gates fall back to the
interpreted sweep (the caller handles ``None``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from .ir import Circuit

# Above this many gates, one-time codegen + compile cost stops paying for
# itself and the straight-line function gets unwieldy; interpret instead.
KERNEL_GATE_LIMIT = 20_000

CONST = 1  # mirrors ir.CONST without a circular import


def emit_source(circuit: "Circuit", name: str = "_kernel") -> str:
    """The kernel's Python source (also handy for debugging/tests)."""
    kinds = circuit.kinds
    args = circuit.args

    def term(node: int) -> str:
        if kinds[node] == CONST:
            return repr(float(args[node]))
        return f"v{node}"

    lines = [f"def {name}(P, out):"]
    for position, node in enumerate(circuit.param_nodes):
        lines.append(f"    v{node} = P[{position}]")
    for is_add, node, operands in circuit._gates:
        parts = [term(j) for j in operands]
        if is_add:
            expr = " + ".join(["0.0", *parts])
        else:
            expr = " * ".join(parts)
        lines.append(f"    v{node} = {expr}")
    for index, node in enumerate(circuit.outputs):
        lines.append(f"    out[{index}] = {term(node)}")
    if len(lines) == 1:
        lines.append("    pass")
    return "\n".join(lines) + "\n"


def compile_kernel(circuit: "Circuit") -> Callable | None:
    """A compiled ``kernel(P, out)``, or ``None`` when the circuit is too
    large for codegen (caller falls back to the interpreted sweep)."""
    gates = len(circuit._gates)
    if gates > KERNEL_GATE_LIMIT:
        return None
    source = emit_source(circuit)
    namespace: dict = {}
    exec(compile(source, f"<circuit-kernel:{gates}g>", "exec"), namespace)
    return namespace["_kernel"]
