"""Compiling the c-formula DP into an arithmetic circuit.

:class:`CircuitTracer` subclasses the Theorem 5.3 evaluator
(:class:`repro.core.evaluator.Evaluation`) and replaces only its
*arithmetic*: signature-distribution values become circuit node ids, the
``Fraction`` multiplications/additions of ``convolve``/``mix`` become
``MUL``/``ADD`` gates, and every probability the p-document contributes
(ind/mux edge probabilities, exp subset weights) becomes a ``PARAM``
node.  All discrete machinery — the signature monoid, the spine automata,
``consume`` and the per-node formula analysis — is *inherited unchanged*,
which is what makes the forward pass provably identical to the evaluator:
the same signatures flow through the same combinators; only the scalar
semiring differs.

Two deliberate deviations from the concrete evaluator:

* **no zero-weight pruning** — the evaluator's ``mix`` skips branches
  whose current probability is 0; the tracer keeps every structurally
  present branch, so the compiled circuit stays correct for *any* later
  parameter binding (including re-binding a 0 to a positive value);
* **no structural sharing across document positions** — the evaluator's
  shape cache computes identical fragments once, but two fragments at
  different positions carry *different* parameters, so the tracer traces
  every position (hash-consing in the builder still merges whatever is
  genuinely identical, e.g. fully deterministic sub-expressions).

The result, :class:`CompiledCircuit`, binds the circuit to its source
p-document's *structure*: :meth:`~CompiledCircuit.rebind` accepts any
p-document with the same structure fingerprint and re-points the
parameters at its probability values — one O(|params|) copy plus one
forward sweep instead of a fresh DP (experiment E12 quantifies the gap).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from ..core.compiler import Registry
from ..core.evaluator import Evaluation, SigDist
from ..core.formulas import CFormula
from ..obs.spans import TRACER
from ..pdoc.parameters import EDGE, SUBSET, parameter_slots
from ..pdoc.pdocument import EXP, IND, MUX, ORD, PDocument, PNode
from .ir import Builder, Circuit


class ParamInfo:
    """Compile-time description of one parameter (no live tree refs)."""

    __slots__ = ("field", "path", "index", "description")

    def __init__(self, field: str, path: tuple[int, ...], index: int, description: str):
        self.field = field
        self.path = path
        self.index = index
        self.description = description

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParamInfo({self.description})"


class CircuitTracer(Evaluation):
    """One evaluator run with circuit-node arithmetic.

    Signature distributions map signatures to circuit node ids instead of
    ``Fraction``s; the inherited traversal (``forest_dist``) and the
    inherited discrete analysis (``consume``/``_local_analysis``) are
    reused as-is.  The per-document memo keyed by ``id(node)`` is the only
    cache in play (``use_cache=False``): structural sharing would merge
    distinct parameters.
    """

    def __init__(
        self,
        registry: Registry,
        pdoc: PDocument,
        builder: Builder,
        param_ids: dict[tuple[int, str, int], int],
    ):
        super().__init__(registry, pdoc, use_cache=False)
        self.builder = builder
        self.param_ids = param_ids

    # -- semiring swap --------------------------------------------------------
    def convolve(self, left: SigDist, right: SigDist) -> SigDist:
        builder = self.builder
        terms: dict = {}
        for sig1, v1 in left.items():
            for sig2, v2 in right.items():
                key = self.combine(sig1, sig2)
                terms.setdefault(key, []).append(builder.mul((v1, v2)))
        return {sig: builder.add(parts) for sig, parts in terms.items()}

    def mix(self, parts) -> SigDist:
        builder = self.builder
        terms: dict = {}
        for weight, dist in parts:
            for sig, v in dist.items():
                terms.setdefault(sig, []).append(builder.mul((weight, v)))
        return {sig: builder.add(ts) for sig, ts in terms.items()}

    def _unit(self) -> SigDist:
        return {self.empty: self.builder.one}

    def children_dist(self, node: PNode) -> SigDist:
        dist = self._unit()
        for child in node.children:
            dist = self.convolve(dist, self.forest_dist(child))
        return dist

    def _combine_children(self, node: PNode, memo: dict) -> SigDist:
        dist = self._unit()
        for child in node.children:
            dist = self.convolve(dist, memo[id(child)])
        return dist

    def _forest_dist_local(self, node: PNode, memo: dict) -> SigDist:
        builder = self.builder
        if node.kind == ORD:
            dist = self._combine_children(node, memo)
            out: dict = {}
            for forest_sig, value in dist.items():
                sig = self.consume(node, forest_sig)
                out.setdefault(sig, []).append(value)
            return {sig: builder.add(parts) for sig, parts in out.items()}
        if node.kind == IND:
            dist = self._unit()
            for index, child in enumerate(node.children):
                p = self.param_ids[(id(node), EDGE, index)]
                child_dist = self.mix(
                    [(p, memo[id(child)]), (builder.one_minus(p), self._unit())]
                )
                dist = self.convolve(dist, child_dist)
            return dist
        if node.kind == MUX:
            total = builder.add(
                [
                    self.param_ids[(id(node), EDGE, index)]
                    for index in range(len(node.children))
                ]
            )
            parts = [(builder.one_minus(total), self._unit())]
            parts += [
                (self.param_ids[(id(node), EDGE, index)], memo[id(child)])
                for index, child in enumerate(node.children)
            ]
            return self.mix(parts)
        if node.kind == EXP:
            parts = []
            for position, (subset, _) in enumerate(node.subsets):
                weight = self.param_ids[(id(node), SUBSET, position)]
                dist = self._unit()
                for index in sorted(subset):
                    dist = self.convolve(dist, memo[id(node.children[index])])
                parts.append((weight, dist))
            return self.mix(parts)
        raise AssertionError(f"unknown node kind {node.kind}")

    # -- the root -------------------------------------------------------------
    def trace(self) -> list[int]:
        """Output node ids, one per top formula of the registry."""
        root = self.pdoc.root
        dist = self.children_dist(root)
        terms: list[list[int]] = [[] for _ in self.registry.top]
        for forest_sig, value in dist.items():
            truths, _ = self._local_analysis(root, forest_sig)
            for index, formula in enumerate(self.registry.top):
                if truths[id(formula)]:
                    terms[index].append(value)
        return [self.builder.add(parts) for parts in terms]


class CompiledCircuit(Circuit):
    """A circuit bound to the *structure* of its source p-document."""

    __slots__ = ("param_info", "structure_fp", "formulas", "rebinds")

    def __init__(
        self,
        builder: Builder,
        outputs: Sequence[int],
        param_values: Sequence[Fraction],
        param_info: Sequence[ParamInfo],
        structure_fp: int,
        formulas: Sequence[CFormula],
    ):
        super().__init__(
            builder.kinds, builder.args, builder.param_nodes, param_values, outputs
        )
        self.param_info = tuple(param_info)
        self.structure_fp = structure_fp
        self.formulas = tuple(formulas)
        self.rebinds = 0

    # -- parameter re-binding -------------------------------------------------
    def rebind(self, pdoc: PDocument) -> "CompiledCircuit":
        """Re-point the parameters at ``pdoc``'s probability values.

        ``pdoc`` must be structurally identical to the compile-time
        document (equal structure fingerprints) — its probabilities may
        differ arbitrarily.  Cost: O(|params|); the next :meth:`forward`
        evaluates the new binding without recompilation.
        """
        if not TRACER.enabled:
            return self._rebind(pdoc)
        with TRACER.span("circuit.rebind", params=len(self.param_nodes)):
            return self._rebind(pdoc)

    def _rebind(self, pdoc: PDocument) -> "CompiledCircuit":
        if pdoc.root.structure_fingerprint() != self.structure_fp:
            raise ValueError(
                "cannot rebind: the p-document's structure differs from the "
                "one the circuit was compiled for (recompile instead)"
            )
        self.set_param_values([slot.value for slot in parameter_slots(pdoc)])
        self.rebinds += 1
        return self

    # -- convenience ----------------------------------------------------------
    def probabilities(self, backend: str | None = None) -> list:
        """[Pr(P ⊨ γ) for γ in formulas] at the current binding, in the
        requested numeric backend (``repro.numeric``; default exact)."""
        return self.forward(backend)

    def probability(self, backend: str | None = None):
        return self.forward(backend)[0]

    def sensitivities(self, output: int = 0) -> list[dict]:
        """∂Pr(P ⊨ γ_output)/∂θ for every parameter θ, most influential
        (largest |∂|) first.  One backward sweep computes them all."""
        derivatives = self.gradient(output)
        rows = [
            {
                "parameter": info.description,
                "field": info.field,
                "path": info.path,
                "index": info.index,
                "value": self.param_values[position],
                "derivative": derivative,
            }
            for position, (info, derivative) in enumerate(
                zip(self.param_info, derivatives)
            )
        ]
        rows.sort(key=lambda row: (-abs(row["derivative"]), row["path"], row["index"]))
        return rows

    def stats(self) -> dict[str, int]:
        stats = super().stats()
        stats["rebinds"] = self.rebinds
        return stats


def compile_formulas(
    pdoc: PDocument, formulas: Sequence[CFormula]
) -> CompiledCircuit:
    """Compile [Pr(P ⊨ γ) for γ in formulas] into one shared circuit.

    MIN/MAX atoms are rewritten to CNT atoms on the way in (Theorem 7.1),
    exactly as :func:`repro.core.evaluator.probabilities` does; SUM/AVG
    are rejected by the registry (Proposition 7.2).
    """
    from ..aggregates.minmax import rewrite

    registry = Registry([rewrite(f) for f in formulas])
    builder = Builder()
    slots = parameter_slots(pdoc)
    param_ids: dict[tuple[int, str, int], int] = {}
    values: list[Fraction] = []
    for slot in slots:
        param_ids[(id(slot.node), slot.field, slot.index)] = builder.param()
        values.append(slot.value)
    tracer = CircuitTracer(registry, pdoc, builder, param_ids)
    outputs = tracer.trace()
    info = [
        ParamInfo(slot.field, slot.path, slot.index, slot.describe())
        for slot in slots
    ]
    return CompiledCircuit(
        builder, outputs, values, info,
        pdoc.root.structure_fingerprint(), list(formulas),
    )


def compile_formula(pdoc: PDocument, formula: CFormula) -> CompiledCircuit:
    """Single-output convenience wrapper around :func:`compile_formulas`."""
    return compile_formulas(pdoc, [formula])
