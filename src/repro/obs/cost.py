"""Per-request cost attribution: from span trees to ``CostRecord`` rows.

Latency tells you a request was slow; the paper's complexity model
(Theorem 5.3) tells you *why*: DP nodes visited × signature widths, plus
circuit gates swept, sampler edges walked and Monte-Carlo draws burned.
All of those quantities are already on the spans the engine emits
(``dp.run``, ``circuit.*``, ``sample.draw``, ``approx.estimate``, …), so
cost attribution is a pure fold over a finished trace — no new
instrumentation in the hot path.

:func:`fold_trace` turns one finished trace into :data:`CostRecord`
dicts (one per request; a heterogeneous ``scheduler.batch`` trace is
split across its routes proportionally to the batch's per-op
composition, recorded by the scheduler as the ``ops`` attribute).
:class:`CostObservatory` subscribes to the tracer's trace-finish hook,
aggregates records per ``(route, db, shard)``, keeps top-N rings of the
most expensive entries and individual requests, and renders everything
as the ``/costs`` payload and ``pxdb_cost_*`` Prometheus series.

Because harvesting happens at root-span finish — *before* tail sampling
decides whether the ring keeps the trace — cost totals stay exact even
when trace retention is sampled down.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable

#: Additive structural counters carried by every cost record; summed in
#: the per-(route, db, shard) aggregates and scaled by ``share`` when a
#: batch is split across routes.
ADDITIVE_COUNTERS = (
    "dp_runs",
    "nodes_computed",
    "cache_hits",
    "cache_misses",
    "engine_passes",
    "circuit_sweeps",
    "gates",
    "sampler_draws",
    "sample_edges",
    "approx_samples",
    "batch_requests",
    "pool_dispatches",
    "spans",
)

#: Cost-units weights: one abstract unit per DP node computed / circuit
#: gate swept / distributional edge walked / Monte-Carlo sample drawn —
#: the structural quantities the run-time bound is linear in.  Rankings
#: use these instead of wall time so "most expensive" is deterministic
#: under scheduler jitter.
_COST_UNIT_KEYS = ("nodes_computed", "gates", "sample_edges", "approx_samples")


def _num(value, default=0):
    return value if isinstance(value, (int, float)) else default


def _fold_counters(spans: Iterable[dict]) -> dict:
    """One pass over a trace's spans → the additive counter totals."""
    c = dict.fromkeys(ADDITIVE_COUNTERS, 0)
    c["max_sig_width"] = 0
    for span in spans:
        name = span["name"]
        attrs = span["attributes"]
        c["spans"] += 1
        if name == "dp.run":
            c["dp_runs"] += 1
            c["nodes_computed"] += _num(attrs.get("nodes_computed"))
            c["cache_hits"] += _num(attrs.get("cache_hits"))
            c["cache_misses"] += _num(attrs.get("cache_misses"))
            width = _num(attrs.get("max_sig_width"))
            if width > c["max_sig_width"]:
                c["max_sig_width"] = width
        elif name == "engine.pass":
            c["engine_passes"] += 1
        elif name.startswith("circuit."):
            c["circuit_sweeps"] += 1
            c["gates"] += _num(attrs.get("gates"))
        elif name == "sample.draw":
            c["sampler_draws"] += 1
            c["sample_edges"] += _num(attrs.get("edges"))
        elif name == "approx.estimate":
            c["approx_samples"] += _num(attrs.get("n"))
        elif name == "pool.dispatch":
            c["pool_dispatches"] += 1
    return c


def cost_units(counters: dict) -> float:
    """The scalar work score used for top-N ranking (structural units,
    not wall time — deterministic for identical traffic)."""
    return float(sum(_num(counters.get(key)) for key in _COST_UNIT_KEYS))


def fold_trace(
    root: dict,
    spans: list[dict],
    shard_resolver: Callable[[str], int | None] | None = None,
) -> list[dict]:
    """Fold one finished trace into cost records.

    A ``request.<op>`` root yields one record.  A ``scheduler.batch``
    root (the async front end's joint pass over a heterogeneous batch)
    yields one record per op present, with the batch's additive cost
    split proportionally to the op's share of the batch — a batch of one
    therefore attributes its DP counters *exactly* (share 1.0).
    Non-request roots (``pxdb.sweep``, bare engine runs, …) yield one
    record under their root name.
    """
    attrs = root["attributes"]
    counters = _fold_counters(spans)
    name = root["name"]
    db = attrs.get("db")
    shard = shard_resolver(db) if (shard_resolver is not None and db) else None
    base = {
        "trace_id": root["trace_id"],
        "db": db,
        "shard": shard,
        "status": root["status"],
        "start": root["start"],
        "duration_ms": root["duration_ms"],
        "max_sig_width": counters["max_sig_width"],
    }

    def record(route: str, share: float, requests: float) -> dict:
        row = dict(base)
        row["route"] = route
        row["share"] = share
        row["requests"] = requests
        for key in ADDITIVE_COUNTERS:
            total = counters[key]
            row[key] = total if share == 1.0 else total * share
        row["duration_ms"] = base["duration_ms"] * share
        row["cost_units"] = cost_units(row)
        return row

    if name.startswith("request."):
        return [record(name[len("request."):], 1.0, 1)]
    if name == "scheduler.batch":
        width = _num(attrs.get("requests"), 1) or 1
        counters["batch_requests"] = width
        ops = attrs.get("ops")
        if not isinstance(ops, dict) or not ops:
            ops = {"batch": width}
        total = sum(_num(v, 0) for v in ops.values()) or 1
        rows = []
        for op, raw in sorted(ops.items()):
            count = _num(raw, 0)
            if count <= 0:
                continue
            share = 1.0 if count == total else count / total
            rows.append(record(str(op), share, count))
        return rows
    return [record(name, 1.0, 1)]


class CostObservatory:
    """Aggregated per-request resource attribution for one service.

    Subscribed to :meth:`repro.obs.spans.Tracer.on_trace_finish` (via the
    service's harvest hook); keeps, behind one lock:

    * cumulative totals per ``(route, db, shard)``;
    * a top-N ring of the most expensive *entries* (aggregate keys,
      ranked by cumulative cost units);
    * a top-N ring of the most expensive individual *requests*.
    """

    def __init__(
        self,
        top_n: int = 10,
        shard_resolver: Callable[[str], int | None] | None = None,
    ):
        self.top_n = top_n
        self.shard_resolver = shard_resolver
        self._lock = threading.Lock()
        self._totals: dict[tuple, dict] = {}
        self._top_requests: list[dict] = []
        self.records_harvested = 0

    # -- ingestion ------------------------------------------------------------
    def harvest(self, root: dict, spans: list[dict]) -> None:
        """Tracer trace-finish observer: fold and aggregate one trace."""
        for row in fold_trace(root, spans, self.shard_resolver):
            self.add(row)

    def add(self, row: dict) -> None:
        key = (row["route"], row["db"] or "-",
               "-" if row["shard"] is None else row["shard"])
        with self._lock:
            self.records_harvested += 1
            total = self._totals.get(key)
            if total is None:
                total = self._totals[key] = dict.fromkeys(ADDITIVE_COUNTERS, 0)
                total.update(
                    route=key[0], db=key[1], shard=key[2],
                    requests=0, errors=0, duration_ms=0.0,
                    cost_units=0.0, max_sig_width=0,
                )
            total["requests"] += row["requests"]
            if row["status"] != "ok":
                total["errors"] += 1
            total["duration_ms"] += row["duration_ms"]
            total["cost_units"] += row["cost_units"]
            if row["max_sig_width"] > total["max_sig_width"]:
                total["max_sig_width"] = row["max_sig_width"]
            for counter in ADDITIVE_COUNTERS:
                total[counter] += row[counter]
            self._push_top_locked(row)

    def _push_top_locked(self, row: dict) -> None:
        top = self._top_requests
        top.append(row)
        top.sort(key=lambda r: (-r["cost_units"], -r["duration_ms"]))
        del top[self.top_n:]

    # -- exposition -----------------------------------------------------------
    def snapshot(self) -> dict:
        """The ``/costs`` payload: aggregate rows plus both top-N rings."""
        with self._lock:
            totals = [dict(total) for total in self._totals.values()]
            top_requests = [dict(row) for row in self._top_requests]
            harvested = self.records_harvested
        totals.sort(key=lambda t: (-t["cost_units"], -t["duration_ms"]))
        for rows in (totals, top_requests):
            for row in rows:
                row["duration_ms"] = round(row["duration_ms"], 3)
        return {
            "records": harvested,
            "top_n": self.top_n,
            "entries": totals,
            "top_requests": top_requests,
        }

    def prometheus_rows(self) -> list[tuple]:
        """``pxdb_cost_*`` rows for the metrics exposition — 4-tuples
        (name, labels, value, type) fed to ``render_prometheus(extra=…)``."""
        rows: list[tuple] = []
        with self._lock:
            totals = sorted(self._totals.items())
        for (route, db, shard), total in totals:
            labels = {"route": route, "db": db, "shard": shard}
            rows.append(("pxdb_cost_requests_total", labels,
                         total["requests"], "counter"))
            rows.append(("pxdb_cost_errors_total", labels,
                         total["errors"], "counter"))
            rows.append(("pxdb_cost_duration_ms_total", labels,
                         total["duration_ms"], "counter"))
            rows.append(("pxdb_cost_units_total", labels,
                         total["cost_units"], "counter"))
            rows.append(("pxdb_cost_nodes_computed_total", labels,
                         total["nodes_computed"], "counter"))
            rows.append(("pxdb_cost_cache_hits_total", labels,
                         total["cache_hits"], "counter"))
            rows.append(("pxdb_cost_gates_total", labels,
                         total["gates"], "counter"))
            rows.append(("pxdb_cost_sampler_draws_total", labels,
                         total["sampler_draws"], "counter"))
            rows.append(("pxdb_cost_approx_samples_total", labels,
                         total["approx_samples"], "counter"))
            rows.append(("pxdb_cost_max_sig_width", labels,
                         total["max_sig_width"], "gauge"))
        return rows
