"""Benchmark telemetry: machine-readable `BENCH_<area>.json` files.

The human-readable experiment rows printed by ``benchmarks/conftest.py``
are great in a terminal and useless for trend analysis.  Every benchmark
module additionally records structured rows through a
:class:`BenchRecorder` (exposed as the ``record`` fixture), and the
session writes one ``BENCH_<area>.json`` per benchmark area at the repo
root.  A row carries the workload description, measured wall time, the
DP's structural counters (nodes computed, cache hits, …) and an optional
speedup ratio — the quantities Theorem 5.3 says drive the run time.

Schema (``docs/OBSERVABILITY.md`` is the normative description)::

    {
      "schema": "pxdb-bench/1",
      "area": "sampling",
      "generated_at": "2026-08-06T12:00:00+00:00",
      "python": "3.12.3",
      "rows": [
        {"test": "test_bench_incremental_sampling",
         "workload": "scaled university n=24",
         "wall_s": 0.0123,
         "counters": {"nodes_computed": 415, "cache_hits": 1210},
         "speedup": 6.2,
         "extra": {}}
      ]
    }

:func:`compare` diffs two payloads row-by-row (keyed by test +
workload) and flags wall-time regressions and speedup drops beyond a
threshold; :func:`main` is the regression script
(``python -m repro.obs.benchrec old.json new.json``), wired into the
benchmark session teardown so every local or CI run reports drift
against the previously committed telemetry.
"""

from __future__ import annotations

import datetime as _dt
import json
import platform
import sys
from pathlib import Path
from typing import Any, Mapping, Sequence

SCHEMA = "pxdb-bench/1"

#: Relative wall-time increase (or speedup decrease) that counts as a
#: regression.  Generous because micro-benchmarks on shared CI are noisy.
DEFAULT_THRESHOLD = 0.25
# Rows faster than this (both runs) are never flagged: a 25% swing on a
# sub-5ms row is scheduler noise, not a regression.
DEFAULT_MIN_WALL = 0.005


class BenchRecorder:
    """Accumulates benchmark rows for one area and writes BENCH_<area>.json."""

    def __init__(self, area: str, out_dir: str | Path = "."):
        if not area or not area.replace("_", "").isalnum():
            raise ValueError(f"invalid benchmark area {area!r}")
        self.area = area
        self.out_dir = Path(out_dir)
        self.rows: list[dict] = []

    def record(
        self,
        test: str,
        workload: str,
        wall_s: float | None,
        counters: Mapping[str, Any] | None = None,
        speedup: float | None = None,
        **extra: Any,
    ) -> dict:
        """Append one row.  ``counters`` holds integral structural
        quantities (DP nodes, cache hits, circuit gates); ``extra`` is a
        free-form bag for anything else worth keeping."""
        row = {
            "test": str(test),
            "workload": str(workload),
            "wall_s": None if wall_s is None else float(wall_s),
            "counters": {k: _jsonable(v) for k, v in (counters or {}).items()},
            "speedup": None if speedup is None else float(speedup),
            "extra": {k: _jsonable(v) for k, v in extra.items()},
        }
        self.rows.append(row)
        return row

    @property
    def path(self) -> Path:
        return self.out_dir / f"BENCH_{self.area}.json"

    def payload(self) -> dict:
        return {
            "schema": SCHEMA,
            "area": self.area,
            "generated_at": _dt.datetime.now(_dt.timezone.utc).isoformat(timespec="seconds"),
            "python": platform.python_version(),
            "rows": self.rows,
        }

    def write(self) -> Path:
        payload = self.payload()
        validate(payload)
        self.path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return self.path


def benchmark_mean(benchmark) -> float | None:
    """Mean seconds of a pytest-benchmark fixture's recorded runs (duck
    typed — no pytest-benchmark import; None when it never ran, e.g.
    under ``--benchmark-disable``)."""
    try:
        return float(benchmark.stats.stats.mean)
    except (AttributeError, TypeError):
        return None


def _jsonable(value: Any) -> Any:
    """Round-trippable JSON value; exact Fractions become floats, anything
    else non-serializable becomes its repr."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    try:
        return float(value)
    except (TypeError, ValueError):
        return repr(value)


def validate(payload: Mapping) -> None:
    """Raise ``ValueError`` unless ``payload`` conforms to pxdb-bench/1."""
    if payload.get("schema") != SCHEMA:
        raise ValueError(f"unknown schema {payload.get('schema')!r}, expected {SCHEMA!r}")
    for field in ("area", "generated_at", "python", "rows"):
        if field not in payload:
            raise ValueError(f"missing field {field!r}")
    if not isinstance(payload["rows"], list):
        raise ValueError("'rows' must be a list")
    for i, row in enumerate(payload["rows"]):
        for field in ("test", "workload", "wall_s", "counters", "speedup"):
            if field not in row:
                raise ValueError(f"row {i} missing field {field!r}")
        if row["wall_s"] is not None and not isinstance(row["wall_s"], (int, float)):
            raise ValueError(f"row {i}: wall_s must be a number or null")
        if not isinstance(row["counters"], Mapping):
            raise ValueError(f"row {i}: counters must be an object")


def load(path: str | Path) -> dict:
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    validate(payload)
    return payload


def compare(
    previous: Mapping, current: Mapping, threshold: float = DEFAULT_THRESHOLD,
    min_wall: float = DEFAULT_MIN_WALL,
) -> list[dict]:
    """Row-by-row regression report: current vs. previous payload.

    Rows are matched on (test, workload).  A regression is a wall-time
    increase above ``threshold`` (relative) or a speedup ratio that fell
    by more than ``threshold``.  Wall-time rows where *both* runs are
    below ``min_wall`` seconds are exempt — relative thresholds on
    sub-millisecond timings flag scheduler jitter, not code.  Returns
    one dict per flagged row.
    """
    older = {(r["test"], r["workload"]): r for r in previous["rows"]}
    flagged: list[dict] = []
    for row in current["rows"]:
        old = older.get((row["test"], row["workload"]))
        if old is None:
            continue
        if row["wall_s"] and old["wall_s"]:
            ratio = row["wall_s"] / old["wall_s"]
            noise_floor = row["wall_s"] < min_wall and old["wall_s"] < min_wall
            if ratio > 1.0 + threshold and not noise_floor:
                flagged.append(
                    {
                        "test": row["test"],
                        "workload": row["workload"],
                        "kind": "wall_s",
                        "previous": old["wall_s"],
                        "current": row["wall_s"],
                        "ratio": ratio,
                    }
                )
        if row["speedup"] and old["speedup"]:
            if row["speedup"] < old["speedup"] * (1.0 - threshold):
                flagged.append(
                    {
                        "test": row["test"],
                        "workload": row["workload"],
                        "kind": "speedup",
                        "previous": old["speedup"],
                        "current": row["speedup"],
                        "ratio": row["speedup"] / old["speedup"],
                    }
                )
    return flagged


def format_regressions(
    flagged: Sequence[Mapping], min_wall: float | None = None
) -> str:
    lines = []
    for f in flagged:
        direction = "slower" if f["kind"] == "wall_s" else "lower speedup"
        lines.append(
            f"REGRESSION {f['test']} [{f['workload']}] {f['kind']}: "
            f"{f['previous']:.6g} -> {f['current']:.6g} "
            f"({f['ratio']:.2f}x, {direction})"
        )
    if lines and min_wall is not None:
        lines.append(
            f"(wall-time rows under {min_wall * 1000:.3g} ms in both runs "
            "are exempt from the relative threshold)"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.obs.benchrec PREVIOUS.json CURRENT.json
    [--threshold X] [--min-wall SECONDS]`` — exit 1 when regressions are
    flagged."""
    args = list(sys.argv[1:] if argv is None else argv)
    threshold = DEFAULT_THRESHOLD
    min_wall = DEFAULT_MIN_WALL
    if "--threshold" in args:
        at = args.index("--threshold")
        threshold = float(args[at + 1])
        del args[at : at + 2]
    if "--min-wall" in args:
        at = args.index("--min-wall")
        min_wall = float(args[at + 1])
        del args[at : at + 2]
    if len(args) != 2:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print(
            "usage: python -m repro.obs.benchrec PREVIOUS.json CURRENT.json"
            " [--threshold X] [--min-wall SECONDS]",
            file=sys.stderr,
        )
        return 2
    previous, current = load(args[0]), load(args[1])
    flagged = compare(previous, current, threshold=threshold, min_wall=min_wall)
    if flagged:
        print(format_regressions(flagged, min_wall=min_wall))
        return 1
    print(
        f"no regressions: {len(current['rows'])} row(s) vs "
        f"{args[0]} (threshold {threshold:.0%}, "
        f"min wall {min_wall * 1000:.3g} ms)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
