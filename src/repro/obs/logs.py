"""Structured stdlib logging for the PXDB service.

One configuration entry point (:func:`configure_logging`) wires the
``repro`` logger hierarchy to stderr with either a human one-line format
or JSON records (``repro serve --log-json``).  Handlers attach to the
``repro`` root logger only — library imports never configure logging on
their own, and reconfiguring replaces previous handlers instead of
stacking duplicates.

Server code logs through child loggers (``repro.service.server``,
``repro.service.slow`` …) and passes structured fields via ``extra=``;
the JSON formatter lifts every non-standard record attribute into the
emitted object, so ``logger.warning("slow", extra={"trace_id": t})``
yields ``{"message": "slow", "trace_id": "..."}``.
"""

from __future__ import annotations

import datetime as _dt
import json
import logging
import sys
from typing import Any, TextIO

#: Attributes present on every LogRecord — anything else came in via extra=.
_STANDARD_ATTRS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}

LEVELS = {"debug", "info", "warning", "error", "critical"}


class JsonFormatter(logging.Formatter):
    """Each record as one JSON object per line, extras included."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": _dt.datetime.fromtimestamp(
                record.created, tz=_dt.timezone.utc
            ).isoformat(timespec="milliseconds"),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _STANDARD_ATTRS:
                payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


class PlainFormatter(logging.Formatter):
    """Human format that still shows structured extras as key=value."""

    def format(self, record: logging.LogRecord) -> str:
        base = (
            f"{self.formatTime(record, '%Y-%m-%d %H:%M:%S')} "
            f"{record.levelname:<7} {record.name} {record.getMessage()}"
        )
        extras = " ".join(
            f"{key}={value}"
            for key, value in record.__dict__.items()
            if key not in _STANDARD_ATTRS
        )
        if extras:
            base = f"{base} [{extras}]"
        if record.exc_info:
            base = f"{base}\n{self.formatException(record.exc_info)}"
        return base


def configure_logging(
    level: str = "info",
    json_mode: bool = False,
    stream: TextIO | None = None,
) -> logging.Logger:
    """(Re)configure the ``repro`` logger hierarchy and return its root."""
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r}; choose from {sorted(LEVELS)}")
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
        handler.close()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_mode else PlainFormatter())
    root.addHandler(handler)
    root.setLevel(getattr(logging, level.upper()))
    root.propagate = False
    return root


def get_logger(name: str) -> logging.Logger:
    """Child of the ``repro`` hierarchy (``name`` may already include it)."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
