"""Observability for the PXDB stack: span tracing, DP-phase profiling,
structured logging and benchmark telemetry.  Everything here is stdlib
only and safe to import from the hot path — the disabled-tracing cost is
one attribute load and a branch.

See ``docs/OBSERVABILITY.md`` for the span model, attribute glossary and
the ``BENCH_*.json`` telemetry schema.
"""

from .benchrec import BenchRecorder, compare as compare_bench, load as load_bench
from .cost import CostObservatory, fold_trace
from .logs import configure_logging, get_logger
from .profile import SpanProfiler, StackSampler
from .slo import SLOMonitor, default_slos, parse_slo
from .spans import NOOP_SPAN, TRACER, Span, Tracer, build_tree, tree_coverage

__all__ = [
    "BenchRecorder",
    "compare_bench",
    "load_bench",
    "CostObservatory",
    "fold_trace",
    "configure_logging",
    "get_logger",
    "SpanProfiler",
    "StackSampler",
    "SLOMonitor",
    "default_slos",
    "parse_slo",
    "NOOP_SPAN",
    "TRACER",
    "Span",
    "Tracer",
    "build_tree",
    "tree_coverage",
    "package_version",
]


def package_version() -> str:
    """The installed package version, falling back to the source tree's
    ``repro.__version__`` when no distribution metadata is available
    (PYTHONPATH=src runs)."""
    try:
        from importlib import metadata

        return metadata.version("repro")
    except Exception:
        from .. import __version__  # lazy: avoids a cycle during package init

        return __version__
