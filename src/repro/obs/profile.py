"""Span-folded profiling: collapsed-stack profiles without a profiler.

A finished trace is already a call tree — each span knows its parent,
its wall time and how much of it the children cover.  Folding every
finished trace into cumulative ``root;child;grandchild`` paths therefore
yields a flamegraph-compatible profile of where request time goes
(*self* time per span path), at zero extra cost on the hot path: the
fold runs on the tracer's trace-finish hook, off the request thread's
critical section.

:class:`SpanProfiler` keeps those cumulative paths (count / self-ms /
total-ms per path) and renders Brendan Gregg's collapsed format —
``path;segments value`` lines, value in integer microseconds of self
time — which ``flamegraph.pl``, speedscope and friends all ingest.

When tracing is off there are no spans to fold, so
:class:`StackSampler` provides the fallback: a background thread that
samples every Python thread's stack via ``sys._current_frames()`` at a
fixed interval and folds the frames into the same collapsed shape.
Sampling is wait-free for the profiled threads (the sampler only reads
frame objects) and costs nothing when not started.
"""

from __future__ import annotations

import sys
import threading
from typing import Iterable

from .spans import build_tree


def _fold_tree(node: dict, prefix: str, into: dict, max_paths: int) -> None:
    path = f"{prefix};{node['name']}" if prefix else node["name"]
    children = node.get("children", ())
    duration = max(node["duration_ms"], 0.0)
    covered = sum(max(child["duration_ms"], 0.0) for child in children)
    self_ms = max(duration - covered, 0.0)
    stats = into.get(path)
    if stats is None:
        if len(into) >= max_paths:
            return  # bounded: pathological traces cannot grow without limit
        stats = into[path] = [0, 0.0, 0.0]
    stats[0] += 1
    stats[1] += self_ms
    stats[2] += duration
    for child in children:
        _fold_tree(child, path, into, max_paths)


class SpanProfiler:
    """Cumulative collapsed-stack profile folded from finished traces.

    ``add_trace(root, spans)`` matches the tracer's trace-finish observer
    signature; everything else reads the accumulated ``path →
    (count, self_ms, total_ms)`` table.
    """

    def __init__(self, max_paths: int = 4096):
        self.max_paths = max_paths
        self._lock = threading.Lock()
        self._paths: dict[str, list] = {}
        self.traces_folded = 0

    def add_trace(self, root: dict, spans: list[dict]) -> None:
        forest = build_tree(spans if spans else [root])
        folded: dict[str, list] = {}
        for tree_root in forest:
            _fold_tree(tree_root, "", folded, self.max_paths)
        with self._lock:
            self.traces_folded += 1
            for path, (count, self_ms, total_ms) in folded.items():
                stats = self._paths.get(path)
                if stats is None:
                    if len(self._paths) >= self.max_paths:
                        continue
                    stats = self._paths[path] = [0, 0.0, 0.0]
                stats[0] += count
                stats[1] += self_ms
                stats[2] += total_ms

    def reset(self) -> None:
        with self._lock:
            self._paths.clear()
            self.traces_folded = 0

    def snapshot(self) -> dict:
        """JSON payload: rows sorted by self time, heaviest first."""
        with self._lock:
            rows = [
                {
                    "path": path,
                    "count": count,
                    "self_ms": round(self_ms, 3),
                    "total_ms": round(total_ms, 3),
                }
                for path, (count, self_ms, total_ms) in self._paths.items()
            ]
            folded = self.traces_folded
        rows.sort(key=lambda row: -row["self_ms"])
        return {"source": "spans", "traces_folded": folded, "paths": rows}

    def collapsed(self) -> str:
        """The flamegraph collapsed format: one ``path value`` line per
        span path, value in integer microseconds of cumulative self time
        (zero-self paths are kept at their fold count so pure-dispatch
        frames still appear)."""
        with self._lock:
            items = sorted(self._paths.items())
        lines = []
        for path, (count, self_ms, _total) in items:
            value = int(self_ms * 1000)
            lines.append(f"{path} {value if value > 0 else count}")
        return "\n".join(lines) + ("\n" if lines else "")


class StackSampler:
    """Background thread-stack sampler — the profile source of last
    resort when tracing (and therefore span folding) is disabled.

    Samples ``sys._current_frames()`` every ``interval`` seconds and
    folds each thread's frame stack into ``module.function`` collapsed
    paths keyed oldest-frame-first.  Values are sample counts (convert
    to time by multiplying by the interval).
    """

    def __init__(self, interval: float = 0.01, max_paths: int = 4096,
                 max_depth: int = 64):
        self.interval = interval
        self.max_paths = max_paths
        self.max_depth = max_depth
        self._lock = threading.Lock()
        self._paths: dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.samples = 0

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "StackSampler":
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="pxdb-stack-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- sampling -------------------------------------------------------------
    def _run(self) -> None:
        me = threading.get_ident()
        while not self._stop.wait(self.interval):
            self.sample_once(skip_idents=(me,))

    def sample_once(self, skip_idents: Iterable[int] = ()) -> int:
        """Take one sample of every live thread stack; returns the number
        of stacks folded (exposed for deterministic tests)."""
        skip = set(skip_idents)
        folded = 0
        frames = sys._current_frames()
        for ident, frame in frames.items():
            if ident in skip:
                continue
            stack = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                code = frame.f_code
                module = code.co_filename.rsplit("/", 1)[-1]
                if module.endswith(".py"):
                    module = module[:-3]
                stack.append(f"{module}.{code.co_name}")
                frame = frame.f_back
                depth += 1
            if not stack:
                continue
            path = ";".join(reversed(stack))
            folded += 1
            with self._lock:
                if path in self._paths or len(self._paths) < self.max_paths:
                    self._paths[path] = self._paths.get(path, 0) + 1
        with self._lock:
            self.samples += 1
        return folded

    # -- exposition -----------------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            rows = [
                {"path": path, "count": count}
                for path, count in self._paths.items()
            ]
            samples = self.samples
        rows.sort(key=lambda row: -row["count"])
        return {
            "source": "stacks",
            "samples": samples,
            "interval_s": self.interval,
            "paths": rows,
        }

    def collapsed(self) -> str:
        with self._lock:
            items = sorted(self._paths.items())
        return "\n".join(f"{path} {count}" for path, count in items) + (
            "\n" if items else ""
        )
