"""The live debug dashboard: one self-contained HTML page.

``/debug/dashboard`` renders the service's current state — request
counters and latencies, SLO burn-rate alert state, the cost
observatory's most expensive entries and requests, and the recent slow
traces — as a single HTML document with inline CSS and zero external
assets (no fonts, no JS frameworks, no CDN: it must work on an
air-gapped box through an SSH tunnel).  A ``meta refresh`` keeps it
live; everything is computed server-side from the same payloads the
JSON endpoints serve, so the dashboard can never disagree with the API.
"""

from __future__ import annotations

import html
import time

_STATE_COLORS = {"ok": "#2da44e", "warn": "#d4a72c", "page": "#cf222e"}

_STYLE = """
body { font-family: ui-monospace, SFMono-Regular, Menlo, Consolas, monospace;
       background: #0d1117; color: #c9d1d9; margin: 1.5rem; font-size: 13px; }
h1 { font-size: 18px; color: #e6edf3; margin: 0 0 0.25rem 0; }
h2 { font-size: 14px; color: #e6edf3; border-bottom: 1px solid #30363d;
     padding-bottom: 0.25rem; margin: 1.5rem 0 0.5rem 0; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 0.2rem 0.8rem 0.2rem 0;
         border-bottom: 1px solid #21262d; white-space: nowrap; }
th { color: #8b949e; font-weight: normal; }
td.num, th.num { text-align: right; }
.pill { display: inline-block; padding: 0 0.5rem; border-radius: 1rem;
        color: #0d1117; font-weight: bold; }
.muted { color: #8b949e; }
.grid { display: flex; flex-wrap: wrap; gap: 2rem; }
.grid > div { flex: 1 1 24rem; min-width: 0; }
"""


def _esc(value) -> str:
    return html.escape(str(value))


def _pill(state: str) -> str:
    color = _STATE_COLORS.get(state, "#8b949e")
    return f'<span class="pill" style="background:{color}">{_esc(state)}</span>'


def _table(headers: list[str], rows: list[list], numeric_from: int = 1) -> str:
    if not rows:
        return '<p class="muted">no data yet</p>'
    head = "".join(
        f'<th class="num">{_esc(h)}</th>' if i >= numeric_from else f"<th>{_esc(h)}</th>"
        for i, h in enumerate(headers)
    )
    body = []
    for row in rows:
        cells = "".join(
            f'<td class="num">{cell}</td>' if i >= numeric_from else f"<td>{cell}</td>"
            for i, cell in enumerate(row)
        )
        body.append(f"<tr>{cells}</tr>")
    return f"<table><tr>{head}</tr>{''.join(body)}</table>"


def render_dashboard(
    metrics: dict,
    slo: dict,
    costs: dict,
    traces: list[dict],
    version: str = "",
    refresh_s: int = 5,
) -> str:
    """Assemble the dashboard HTML from the JSON endpoint payloads."""
    # -- header ---------------------------------------------------------------
    uptime = metrics.get("uptime_s", 0.0)
    overall = slo.get("state", "ok")
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<meta http-equiv='refresh' content='{int(refresh_s)}'>",
        "<title>PXDB cost observatory</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>PXDB cost observatory {_pill(overall)}</h1>",
        f"<p class='muted'>version {_esc(version) or '?'} · uptime "
        f"{uptime:.0f}s · refreshes every {int(refresh_s)}s · "
        f"rendered {_esc(time.strftime('%H:%M:%S'))}</p>",
        "<div class='grid'>",
    ]

    # -- SLO burn rates -------------------------------------------------------
    slo_rows = []
    for row in slo.get("slos", ()):
        burns = row.get("burn", {})
        slo_rows.append([
            _esc(row.get("route")),
            _esc(row.get("objective")),
            f"{row.get('budget', 0) * 100:.3g}%",
            f"{burns.get('5m', 0):.2f}",
            f"{burns.get('1h', 0):.2f}",
            _pill(row.get("state", "ok")),
        ])
    parts.append(
        "<div><h2>SLO burn rates</h2>"
        + _table(["route", "objective", "budget", "burn 5m", "burn 1h", "state"],
                 slo_rows, numeric_from=2)
        + "</div>"
    )

    # -- request latencies ----------------------------------------------------
    latency_rows = []
    for op, summary in sorted(metrics.get("latency", {}).items()):
        latency_rows.append([
            _esc(op),
            f"{summary.get('count', 0)}",
            f"{summary.get('mean_ms', 0):.2f}",
            f"{summary.get('p50_ms', 0):.2f}",
            f"{summary.get('p99_ms', 0):.2f}",
        ])
    parts.append(
        "<div><h2>Request latency (ms)</h2>"
        + _table(["op", "count", "mean", "p50", "p99"], latency_rows)
        + "</div>"
    )

    parts.append("</div><div class='grid'>")

    # -- most expensive entries ----------------------------------------------
    entry_rows = []
    for row in costs.get("entries", ())[:10]:
        entry_rows.append([
            _esc(row.get("route")),
            _esc(row.get("db")),
            _esc(row.get("shard")),
            f"{row.get('requests', 0):g}",
            f"{row.get('cost_units', 0):.0f}",
            f"{row.get('nodes_computed', 0):.0f}",
            f"{row.get('gates', 0):.0f}",
            f"{row.get('duration_ms', 0):.1f}",
        ])
    parts.append(
        "<div><h2>Most expensive entries (route · db · shard)</h2>"
        + _table(["route", "db", "shard", "req", "cost units", "dp nodes",
                  "gates", "total ms"], entry_rows, numeric_from=3)
        + "</div>"
    )

    # -- most expensive requests ---------------------------------------------
    request_rows = []
    for row in costs.get("top_requests", ())[:10]:
        request_rows.append([
            f"<a style='color:#58a6ff' href='/trace/{_esc(row.get('trace_id'))}'>"
            f"{_esc(str(row.get('trace_id'))[:16])}</a>",
            _esc(row.get("route")),
            _esc(row.get("db") or "-"),
            f"{row.get('cost_units', 0):.0f}",
            f"{row.get('max_sig_width', 0)}",
            f"{row.get('duration_ms', 0):.2f}",
        ])
    parts.append(
        "<div><h2>Most expensive requests</h2>"
        + _table(["trace", "route", "db", "cost units", "sig width", "ms"],
                 request_rows, numeric_from=3)
        + "</div>"
    )

    parts.append("</div>")

    # -- recent slow traces ---------------------------------------------------
    trace_rows = []
    for row in traces[:15]:
        trace_rows.append([
            f"<a style='color:#58a6ff' href='/trace/{_esc(row.get('trace_id'))}'>"
            f"{_esc(str(row.get('trace_id'))[:16])}</a>",
            _esc(row.get("name")),
            _esc(row.get("status")),
            f"{row.get('spans', 0)}",
            f"{row.get('duration_ms', 0):.2f}",
        ])
    parts.append(
        "<h2>Slowest recent traces</h2>"
        + _table(["trace", "root", "status", "spans", "ms"],
                 trace_rows, numeric_from=3)
    )

    counters = metrics.get("counters", {})
    if counters:
        top = sorted(counters.items(), key=lambda kv: -kv[1])[:16]
        counter_rows = [[_esc(name), f"{value}"] for name, value in top]
        parts.append(
            "<h2>Counters</h2>" + _table(["counter", "value"], counter_rows)
        )

    parts.append(
        "<p class='muted'>endpoints: <a style='color:#58a6ff' href='/metrics'>"
        "/metrics</a> · <a style='color:#58a6ff' href='/costs'>/costs</a> · "
        "<a style='color:#58a6ff' href='/slo'>/slo</a> · "
        "<a style='color:#58a6ff' href='/profile?format=collapsed'>/profile</a>"
        " · <a style='color:#58a6ff' href='/traces'>/traces</a></p>"
    )
    parts.append("</body></html>")
    return "".join(parts)
