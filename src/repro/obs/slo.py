"""Declarative per-route SLOs with multi-window burn-rate evaluation.

An SLO here is the SRE-workbook shape: a latency objective ("p99 of
``/query`` under 50 ms") plus an error objective ("under 0.1% errors"),
each with an implied *error budget* — the fraction of requests allowed
to miss (1 − quantile for latency, the error rate itself for errors).
The **burn rate** over a trailing window is how fast that budget is
being consumed: ``bad_fraction / budget``.  Burn 1.0 spends exactly the
budget; burn 14.4 exhausts a 30-day budget in ~2 days.

Alerting uses the classic multi-window scheme: a state trips only when
the burn exceeds the threshold over **both** a fast window (5 m — quick
detection, quick reset) and a slow window (1 h — immune to blips).
Thresholds default to the workbook's page ≈ 14.4 and warn ≈ 6.

Evaluation is pull-based and cheap: :class:`SLOMonitor` snapshots the
service's existing latency histograms and error counters (no new
instrumentation) whenever ``/slo``, ``/health`` or ``/metrics`` is
served, keeps a bounded history of cumulative snapshots, and
differentiates across it to get windowed fractions.  Bucket boundaries
make the latency check conservative: only observations in buckets whose
upper bound is at or below the threshold count as good.

Specs parse from CLI strings — ``repro serve --slo query=p99:50ms:0.1%``
— via :func:`parse_slo`; :data:`DEFAULT_SLOS` covers the stock routes
with generous budgets so the dashboard has state out of the box.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque

#: (label, seconds) — fast and slow evaluation windows.
WINDOWS = (("5m", 300.0), ("1h", 3600.0))

#: Burn-rate thresholds (SRE workbook: 14.4 ≈ 2% of a 30-day budget per
#: hour; 6 ≈ 5% per 6 hours).
PAGE_BURN = 14.4
WARN_BURN = 6.0

_STATE_ORDER = {"ok": 0, "warn": 1, "page": 2}

_SPEC_RE = re.compile(
    r"^(?P<route>[A-Za-z0-9_.\-]+)=p(?P<quantile>\d{1,2}(?:\.\d+)?):"
    r"(?P<threshold>\d+(?:\.\d+)?)(?P<unit>ms|s):"
    r"(?P<errors>\d+(?:\.\d+)?)%$"
)


def parse_slo(spec: str) -> dict:
    """``"query=p99:50ms:0.1%"`` → an SLO dict (route, quantile,
    threshold_ms, latency budget, error budget).  Raises ``ValueError``
    with the expected grammar on malformed input."""
    match = _SPEC_RE.match(spec.strip())
    if match is None:
        raise ValueError(
            f"invalid SLO spec {spec!r} — expected"
            " <route>=p<quantile>:<threshold>(ms|s):<error-rate>%,"
            " e.g. query=p99:50ms:0.1%"
        )
    quantile = float(match["quantile"]) / 100.0
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"invalid SLO quantile in {spec!r}")
    threshold_ms = float(match["threshold"]) * (1000.0 if match["unit"] == "s" else 1.0)
    error_budget = float(match["errors"]) / 100.0
    if not 0.0 < error_budget < 1.0:
        raise ValueError(f"invalid SLO error budget in {spec!r}")
    return {
        "route": match["route"],
        "quantile": quantile,
        "threshold_ms": threshold_ms,
        "latency_budget": round(1.0 - quantile, 10),
        "error_budget": error_budget,
    }


def default_slos() -> dict[str, dict]:
    """Stock objectives for the built-in routes — deliberately loose
    (p99 within 1 s, 5% errors): they exist so burn-rate state renders
    out of the box, not to page anyone on a laptop."""
    return {
        op: parse_slo(f"{op}=p99:1000ms:5%")
        for op in ("sat", "query", "topk", "sample", "approx")
    }


class SLOMonitor:
    """Burn-rate evaluation of a set of SLOs against a ``Metrics`` sink.

    ``clock`` is injectable for tests (defaults to ``time.monotonic``).
    ``min_requests`` is the low-traffic guard: a window with fewer
    completed requests never trips warn/page (one slow request out of
    three is noise, not a burning budget) — its burn is still reported.
    """

    def __init__(
        self,
        metrics,
        slos: dict[str, dict] | None = None,
        clock=time.monotonic,
        min_requests: int = 10,
        min_tick_s: float = 1.0,
    ):
        self.metrics = metrics
        self.slos = dict(default_slos() if slos is None else slos)
        self._clock = clock
        self.min_requests = min_requests
        self.min_tick_s = min_tick_s
        self._lock = threading.Lock()
        # route → deque of (t, total, good_latency, errors) cumulative rows.
        self._history: dict[str, deque] = {
            route: deque() for route in self.slos
        }
        self._last_tick: float | None = None

    # -- sampling -------------------------------------------------------------
    def tick(self, now: float | None = None) -> None:
        """Append one cumulative snapshot per route (rate-limited to one
        per ``min_tick_s``; callers can tick on every scrape)."""
        now = self._clock() if now is None else now
        with self._lock:
            if (
                self._last_tick is not None
                and now - self._last_tick < self.min_tick_s
            ):
                return
            self._last_tick = now
            horizon = now - WINDOWS[-1][1] - 60.0
            for route, slo in self.slos.items():
                good, total = self.metrics.latency_within(
                    route, slo["threshold_ms"] / 1000.0
                )
                errors = self.metrics.counter(f"{route}.errors")
                history = self._history[route]
                history.append((now, total, good, errors))
                while history and history[0][0] < horizon:
                    history.popleft()

    # -- evaluation -----------------------------------------------------------
    def _window_delta(self, history, now: float, window_s: float):
        """Cumulative delta across the trailing window: latest snapshot
        minus the newest snapshot at or before ``now − window_s`` (or the
        oldest available — a truncated window — when history is young)."""
        latest = history[-1]
        cutoff = now - window_s
        baseline = history[0]
        for row in history:
            if row[0] <= cutoff:
                baseline = row
            else:
                break
        return (
            latest[1] - baseline[1],  # requests completed in window
            latest[2] - baseline[2],  # of which within the threshold
            latest[3] - baseline[3],  # errors in window
        )

    def evaluate(self, now: float | None = None) -> list[dict]:
        """Tick, then report both objectives of every SLO: windowed burn
        rates and the multi-window alert state."""
        now = self._clock() if now is None else now
        self.tick(now)
        with self._lock:
            histories = {
                route: list(history) for route, history in self._history.items()
            }
        report: list[dict] = []
        for route, slo in sorted(self.slos.items()):
            history = histories.get(route)
            if not history:
                continue
            windows: dict[str, tuple] = {
                label: self._window_delta(history, now, seconds)
                for label, seconds in WINDOWS
            }
            for objective, budget in (
                ("latency", slo["latency_budget"]),
                ("errors", slo["error_budget"]),
            ):
                burns: dict[str, float] = {}
                eligible = True
                for label, (total, good, errors) in windows.items():
                    if total <= 0:
                        burns[label] = 0.0
                        eligible = False
                        continue
                    bad = (total - good) if objective == "latency" else errors
                    burns[label] = round((bad / total) / budget, 4)
                    if total < self.min_requests:
                        eligible = False
                state = "ok"
                if eligible and all(b >= PAGE_BURN for b in burns.values()):
                    state = "page"
                elif eligible and all(b >= WARN_BURN for b in burns.values()):
                    state = "warn"
                report.append(
                    {
                        "route": route,
                        "objective": objective,
                        "quantile": slo["quantile"],
                        "threshold_ms": slo["threshold_ms"],
                        "budget": budget,
                        "burn": burns,
                        "window_requests": {
                            label: windows[label][0] for label in burns
                        },
                        "state": state,
                    }
                )
        return report

    def payload(self, now: float | None = None) -> dict:
        """The ``/slo`` response body."""
        report = self.evaluate(now)
        worst = "ok"
        for row in report:
            if _STATE_ORDER[row["state"]] > _STATE_ORDER[worst]:
                worst = row["state"]
        return {
            "state": worst,
            "page_burn": PAGE_BURN,
            "warn_burn": WARN_BURN,
            "windows": {label: seconds for label, seconds in WINDOWS},
            "min_requests": self.min_requests,
            "slos": report,
        }

    def state(self, now: float | None = None) -> str:
        """The worst alert state across every objective (for ``/health``)."""
        return self.payload(now)["state"]

    def prometheus_rows(self, now: float | None = None) -> list[tuple]:
        """``pxdb_slo_*`` rows — (name, labels, value, type) 4-tuples."""
        rows: list[tuple] = []
        for item in self.evaluate(now):
            base = {"route": item["route"], "objective": item["objective"]}
            rows.append(("pxdb_slo_budget", base, item["budget"], "gauge"))
            rows.append(
                ("pxdb_slo_state", base, _STATE_ORDER[item["state"]], "gauge")
            )
            for label, burn in item["burn"].items():
                rows.append(
                    ("pxdb_slo_burn_rate", {**base, "window": label},
                     burn, "gauge")
                )
        return rows
