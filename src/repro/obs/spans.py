"""Contextvar-scoped span tracing for the PXDB engine and service.

One global :class:`Tracer` (module singleton :data:`TRACER`) records
*spans* — named, timed regions with structural attributes — into a
lock-protected in-memory ring buffer, optionally mirroring every finished
span to a JSONL file.  Spans nest through a ``contextvars.ContextVar``:
a span opened while another is active becomes its child, so one request
yields one coherent tree across the server handler, the coalescer, the
document store, the DP evaluator, the sampler and the circuit sweeps.

Design constraints (the reason this module looks the way it does):

* **stdlib only** — no OpenTelemetry; the span model is a strict subset
  (trace id, span id, parent id, name, start, duration, attributes,
  status) so an exporter could map 1:1 later.
* **near-zero cost when disabled** — instrumentation sites guard with
  ``if TRACER.enabled:`` (one attribute load and a branch) or call
  :meth:`Tracer.span`, which returns a shared no-op singleton without
  allocating anything.  The disabled path MUST allocate no spans; the
  test suite and ``benchmarks/bench_obs.py`` assert both properties.
* **cross-process propagation** — a tracer context (trace id + parent
  span id) serializes to a small dict that rides inside a process-pool
  task payload; the worker activates it, records spans against the same
  trace id in its own ring, then *drains* them into the result so the
  parent can :meth:`~Tracer.ingest` them.  One request against a
  pool-backed server therefore still produces a single span tree.

The attribute vocabulary is documented in ``docs/OBSERVABILITY.md``;
attributes record the *structural* quantities that drive the DP's cost
(nodes computed, cache hits/misses, maximum signature-distribution
width, matcher candidate counts, circuit gate counts) — the run-time
model of Theorem 5.3 — not just wall-clock.
"""

from __future__ import annotations

import contextvars
import json
import os
import random
import threading
import time
from collections import deque
from typing import Any, Iterable

# (trace_id, span_id) of the active span; None outside any span.  Fresh
# threads start with the default (None), so a server handler thread that
# opens a request span starts a new trace.
_CONTEXT: contextvars.ContextVar[tuple[str, str] | None] = contextvars.ContextVar(
    "pxdb_trace_context", default=None
)

_IDS = random.Random()  # seeded from OS entropy; ids need uniqueness, not crypto


def _new_id() -> str:
    return f"{_IDS.getrandbits(64):016x}"


class Span:
    """One live span; use as a context manager.  Finishing records an
    immutable dict into the tracer's ring buffer."""

    __slots__ = ("tracer", "trace_id", "span_id", "parent_id", "name",
                 "attributes", "started_at", "_start", "_token", "status")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 parent_id: str | None, attributes: dict):
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.name = name
        self.attributes = attributes
        self.status = "ok"

    def set(self, **attributes) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        self._token = _CONTEXT.set((self.trace_id, self.span_id))
        self.started_at = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        _CONTEXT.reset(self._token)
        if exc_type is not None:
            self.status = f"error:{exc_type.__name__}"
        self.tracer._finish(
            {
                "trace_id": self.trace_id,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "name": self.name,
                "start": self.started_at,
                "duration_ms": duration * 1000.0,
                "status": self.status,
                "pid": os.getpid(),
                "attributes": self.attributes,
            }
        )


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is disabled.
    A singleton: the disabled path allocates nothing."""

    __slots__ = ()
    trace_id = None
    span_id = None

    def set(self, **attributes) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class Tracer:
    """The process-wide span sink: ring buffer + optional JSONL export.

    ``enabled`` is read directly by instrumentation sites (plain attribute
    access — the near-zero disabled path); everything that mutates shared
    state takes the lock.
    """

    def __init__(self, ring_size: int = 4096):
        self.enabled = False
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=ring_size)
        self._jsonl_path: str | None = None
        self._jsonl_file = None
        self.spans_recorded = 0

    # -- configuration --------------------------------------------------------
    def configure(
        self,
        enabled: bool | None = None,
        ring_size: int | None = None,
        jsonl_path: str | os.PathLike | None = None,
    ) -> "Tracer":
        """Reconfigure in place (the singleton is shared by everything in
        the process).  ``jsonl_path`` opens an append-mode exporter;
        ``None`` leaves the current exporter untouched — close it with
        :meth:`reset`."""
        with self._lock:
            if ring_size is not None:
                self._ring = deque(self._ring, maxlen=ring_size)
            if jsonl_path is not None:
                if self._jsonl_file is not None:
                    self._jsonl_file.close()
                self._jsonl_path = str(jsonl_path)
                self._jsonl_file = open(self._jsonl_path, "a", encoding="utf-8")
            if enabled is not None:
                self.enabled = enabled
        return self

    def reset(self) -> None:
        """Drop all recorded spans and close the JSONL exporter (the
        enabled flag and ring size are kept)."""
        with self._lock:
            self._ring.clear()
            self.spans_recorded = 0
            if self._jsonl_file is not None:
                self._jsonl_file.close()
                self._jsonl_file = None
                self._jsonl_path = None

    # -- span creation --------------------------------------------------------
    def span(self, name: str, **attributes):
        """A new child span of the current context (a fresh root — new
        trace id — when no span is active).  Returns the no-op singleton
        when tracing is disabled."""
        if not self.enabled:
            return NOOP_SPAN
        context = _CONTEXT.get()
        if context is None:
            return Span(self, name, _new_id(), None, attributes)
        trace_id, parent_id = context
        return Span(self, name, trace_id, parent_id, attributes)

    def current_trace_id(self) -> str | None:
        context = _CONTEXT.get()
        return context[0] if context is not None else None

    # -- cross-process propagation --------------------------------------------
    def context(self) -> dict | None:
        """The active context as a payload-embeddable dict (``None`` when
        tracing is off or no span is active)."""
        if not self.enabled:
            return None
        context = _CONTEXT.get()
        if context is None:
            return None
        return {"trace_id": context[0], "span_id": context[1]}

    def activate(self, context: dict) -> contextvars.Token:
        """Adopt a propagated context (pool workers call this; pair with
        :meth:`deactivate`).  Also enables the tracer, so worker-side
        instrumentation records against the parent's trace id."""
        self.enabled = True
        return _CONTEXT.set((context["trace_id"], context["span_id"]))

    def deactivate(self, token: contextvars.Token) -> None:
        _CONTEXT.reset(token)

    def drain(self, trace_id: str) -> list[dict]:
        """Remove and return every recorded span of ``trace_id`` (workers
        ship them back inside the task result)."""
        with self._lock:
            mine = [s for s in self._ring if s["trace_id"] == trace_id]
            if mine:
                kept = [s for s in self._ring if s["trace_id"] != trace_id]
                self._ring.clear()
                self._ring.extend(kept)
        return mine

    def ingest(self, spans: Iterable[dict]) -> None:
        """Splice foreign (worker-produced) spans into the ring buffer."""
        with self._lock:
            for span in spans:
                self._record_locked(span)

    # -- recording ------------------------------------------------------------
    def _finish(self, span: dict) -> None:
        with self._lock:
            self._record_locked(span)

    def _record_locked(self, span: dict) -> None:
        self._ring.append(span)
        self.spans_recorded += 1
        if self._jsonl_file is not None:
            self._jsonl_file.write(json.dumps(span, default=str) + "\n")
            self._jsonl_file.flush()

    # -- retrieval ------------------------------------------------------------
    def spans(self) -> list[dict]:
        with self._lock:
            return list(self._ring)

    def trace(self, trace_id: str) -> list[dict]:
        """All recorded spans of one trace, oldest first."""
        with self._lock:
            return [s for s in self._ring if s["trace_id"] == trace_id]

    def traces(self, slow_ms: float = 0.0, limit: int = 50) -> list[dict]:
        """Root-span summaries (spans with no parent), slowest first,
        filtered to those at least ``slow_ms`` long."""
        with self._lock:
            per_trace: dict[str, int] = {}
            roots: list[dict] = []
            for span in self._ring:
                per_trace[span["trace_id"]] = per_trace.get(span["trace_id"], 0) + 1
                if span["parent_id"] is None:
                    roots.append(span)
        summaries = [
            {
                "trace_id": root["trace_id"],
                "name": root["name"],
                "start": root["start"],
                "duration_ms": root["duration_ms"],
                "status": root["status"],
                "spans": per_trace.get(root["trace_id"], 1),
                "attributes": root["attributes"],
            }
            for root in roots
            if root["duration_ms"] >= slow_ms
        ]
        summaries.sort(key=lambda row: -row["duration_ms"])
        return summaries[:limit]

    def tree(self, trace_id: str) -> list[dict]:
        """The trace as a nested forest (children under ``"children"``,
        ordered by start time).  Spans whose parent was evicted from the
        ring surface as additional roots rather than disappearing."""
        return build_tree(self.trace(trace_id))

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "spans_recorded": self.spans_recorded,
                "spans_buffered": len(self._ring),
                "ring_size": self._ring.maxlen,
                "jsonl_path": self._jsonl_path,
            }


def build_tree(spans: list[dict]) -> list[dict]:
    """Nest a flat span list into a forest by parent_id (shared by the
    tracer, the server's /trace endpoint and the CLI renderer)."""
    nodes = {span["span_id"]: {**span, "children": []} for span in spans}
    roots: list[dict] = []
    for node in nodes.values():
        parent = nodes.get(node["parent_id"])
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda child: child["start"])
    roots.sort(key=lambda root: root["start"])
    return roots


def tree_coverage(root: dict) -> float:
    """Fraction of a root span's wall time covered by its direct
    children (the acceptance metric for "spans cover the request")."""
    if root["duration_ms"] <= 0:
        return 1.0
    covered = sum(child["duration_ms"] for child in root.get("children", ()))
    return min(covered / root["duration_ms"], 1.0)


#: The process-wide tracer every instrumentation site shares.
TRACER = Tracer()
