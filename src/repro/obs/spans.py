"""Contextvar-scoped span tracing for the PXDB engine and service.

One global :class:`Tracer` (module singleton :data:`TRACER`) records
*spans* — named, timed regions with structural attributes — into a
lock-protected in-memory ring buffer, optionally mirroring every finished
span to a JSONL file.  Spans nest through a ``contextvars.ContextVar``:
a span opened while another is active becomes its child, so one request
yields one coherent tree across the server handler, the coalescer, the
document store, the DP evaluator, the sampler and the circuit sweeps.

Design constraints (the reason this module looks the way it does):

* **stdlib only** — no OpenTelemetry; the span model is a strict subset
  (trace id, span id, parent id, name, start, duration, attributes,
  status) so an exporter could map 1:1 later.
* **near-zero cost when disabled** — instrumentation sites guard with
  ``if TRACER.enabled:`` (one attribute load and a branch) or call
  :meth:`Tracer.span`, which returns a shared no-op singleton without
  allocating anything.  The disabled path MUST allocate no spans; the
  test suite and ``benchmarks/bench_obs.py`` assert both properties.
* **cross-process propagation** — a tracer context (trace id + parent
  span id) serializes to a small dict that rides inside a process-pool
  task payload; the worker activates it, records spans against the same
  trace id in its own ring, then *drains* them into the result so the
  parent can :meth:`~Tracer.ingest` them.  One request against a
  pool-backed server therefore still produces a single span tree.
* **O(result) retrieval** — a per-trace index (trace id → its spans, in
  ring order) is maintained on every append, ingest and eviction, so
  :meth:`~Tracer.trace` and :meth:`~Tracer.traces` never rescan the
  whole ring.
* **tail-based retention** — when enabled, spans buffer per trace until
  the root finishes; slow and errored traces are always kept whole,
  fast/ok traces are kept at a configurable sample rate.  The keep/drop
  decision happens *after* trace-finish observers run, so cost
  attribution and profiling see every trace even when the ring doesn't.

The attribute vocabulary is documented in ``docs/OBSERVABILITY.md``;
attributes record the *structural* quantities that drive the DP's cost
(nodes computed, cache hits/misses, maximum signature-distribution
width, matcher candidate counts, circuit gate counts) — the run-time
model of Theorem 5.3 — not just wall-clock.
"""

from __future__ import annotations

import contextvars
import json
import os
import random
import threading
import time
import weakref
from collections import deque
from typing import Any, Callable, Iterable

# (trace_id, span_id) of the active span; None outside any span.  Fresh
# threads start with the default (None), so a server handler thread that
# opens a request span starts a new trace.
_CONTEXT: contextvars.ContextVar[tuple[str, str] | None] = contextvars.ContextVar(
    "pxdb_trace_context", default=None
)

_IDS = random.Random()  # seeded from OS entropy; ids need uniqueness, not crypto


def _new_id() -> str:
    return f"{_IDS.getrandbits(64):016x}"


class Span:
    """One live span; use as a context manager.  Finishing records an
    immutable dict into the tracer's ring buffer."""

    __slots__ = ("tracer", "trace_id", "span_id", "parent_id", "name",
                 "attributes", "started_at", "_start", "_token", "status")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 parent_id: str | None, attributes: dict):
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.name = name
        self.attributes = attributes
        self.status = "ok"

    def set(self, **attributes) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        self._token = _CONTEXT.set((self.trace_id, self.span_id))
        self.started_at = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        _CONTEXT.reset(self._token)
        if exc_type is not None:
            self.status = f"error:{exc_type.__name__}"
        self.tracer._finish(
            {
                "trace_id": self.trace_id,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "name": self.name,
                "start": self.started_at,
                "duration_ms": duration * 1000.0,
                "status": self.status,
                "pid": os.getpid(),
                "attributes": self.attributes,
            }
        )


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is disabled.
    A singleton: the disabled path allocates nothing."""

    __slots__ = ()
    trace_id = None
    span_id = None

    def set(self, **attributes) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class Tracer:
    """The process-wide span sink: ring buffer + optional JSONL export.

    ``enabled`` is read directly by instrumentation sites (plain attribute
    access — the near-zero disabled path); everything that mutates shared
    state takes the lock.  Trace-finish observers run *outside* the lock,
    so they may call back into the tracer freely.
    """

    #: Upper bound on distinct traces buffered while tail sampling waits
    #: for their roots; the oldest pending trace is dropped wholesale
    #: when the bound is hit (a leaked/never-finished root must not pin
    #: memory forever).
    PENDING_TRACE_CAP = 512

    def __init__(self, ring_size: int = 4096):
        self.enabled = False
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=ring_size)
        # Per-trace index over the ring: trace id → its spans in ring
        # (= finish) order.  _roots holds each indexed trace's root span.
        self._index: dict[str, deque[dict]] = {}
        self._roots: dict[str, dict] = {}
        self._jsonl_path: str | None = None
        self._jsonl_file = None
        self._jsonl_max_bytes: int | None = None
        self._jsonl_bytes = 0
        self.jsonl_rotations = 0
        self.spans_recorded = 0
        # Tail-based retention (off by default): buffer spans per trace
        # until the root finishes, then keep (slow/error/sampled-in) or
        # drop the whole trace.
        self._tail = False
        self._tail_slow_ms = 25.0
        self._tail_rate = 0.1
        self._tail_rng = random.Random()
        self._pending: dict[str, list[dict]] = {}
        self.traces_kept = 0
        self.traces_dropped = 0
        self.spans_dropped = 0
        # Trace-finish observers, held weakly (bound methods via
        # WeakMethod) so a forgotten service never leaks through the
        # process-wide singleton.
        self._observers: list = []

    # -- configuration --------------------------------------------------------
    def configure(
        self,
        enabled: bool | None = None,
        ring_size: int | None = None,
        jsonl_path: str | os.PathLike | None = None,
        jsonl_max_bytes: int | None = None,
        tail_sample: bool | None = None,
        tail_slow_ms: float | None = None,
        tail_rate: float | None = None,
        tail_seed: int | None = None,
    ) -> "Tracer":
        """Reconfigure in place (the singleton is shared by everything in
        the process).  ``jsonl_path`` opens an append-mode exporter;
        ``None`` leaves the current exporter untouched — close it with
        :meth:`reset`.  ``jsonl_max_bytes`` caps the export file: when a
        write would push it past the cap the file rotates to
        ``<path>.1`` (replacing any previous ``.1``) first, so no span is
        ever dropped by rotation.  ``tail_sample`` switches on tail-based
        retention: traces at least ``tail_slow_ms`` long or with an error
        status are always kept; the rest survive with probability
        ``tail_rate`` (``tail_seed`` makes the coin deterministic)."""
        with self._lock:
            if ring_size is not None:
                new_ring = deque(self._ring, maxlen=ring_size)
                for span in list(self._ring)[: len(self._ring) - len(new_ring)]:
                    self._unindex_locked(span)
                self._ring = new_ring
            if jsonl_max_bytes is not None:
                self._jsonl_max_bytes = jsonl_max_bytes if jsonl_max_bytes > 0 else None
            if jsonl_path is not None:
                if self._jsonl_file is not None:
                    self._jsonl_file.close()
                self._jsonl_path = str(jsonl_path)
                self._jsonl_file = open(self._jsonl_path, "a", encoding="utf-8")
                self._jsonl_file.seek(0, os.SEEK_END)
                self._jsonl_bytes = self._jsonl_file.tell()
            if tail_slow_ms is not None:
                self._tail_slow_ms = float(tail_slow_ms)
            if tail_rate is not None:
                self._tail_rate = min(max(float(tail_rate), 0.0), 1.0)
            if tail_seed is not None:
                self._tail_rng = random.Random(tail_seed)
            if tail_sample is not None:
                self._tail = bool(tail_sample)
                if not self._tail:
                    self._pending.clear()
            if enabled is not None:
                self.enabled = enabled
        return self

    def reset(self) -> None:
        """Drop all recorded spans and close the JSONL exporter (the
        enabled flag, ring size, tail-sampling policy and registered
        trace observers are kept)."""
        with self._lock:
            self._ring.clear()
            self._index.clear()
            self._roots.clear()
            self._pending.clear()
            self.spans_recorded = 0
            self.traces_kept = 0
            self.traces_dropped = 0
            self.spans_dropped = 0
            self.jsonl_rotations = 0
            if self._jsonl_file is not None:
                self._jsonl_file.close()
                self._jsonl_file = None
                self._jsonl_path = None
                self._jsonl_bytes = 0

    # -- trace-finish observers -----------------------------------------------
    def on_trace_finish(self, callback: Callable[[dict, list[dict]], None]):
        """Register ``callback(root_span, trace_spans)`` to run whenever a
        root span finishes — *before* the tail-sampling keep/drop
        decision takes effect for observers (they always see the full
        trace) and outside the tracer lock (they may call the tracer).

        Bound methods are held through ``weakref.WeakMethod`` and plain
        callables through ``weakref.ref``: the registration dies with its
        owner, so services built per-test never accumulate.  Keep a
        strong reference to the callback's owner for as long as the
        observation should live.  Returns ``callback`` for symmetric use
        with :meth:`remove_trace_observer`.
        """
        if hasattr(callback, "__self__"):
            ref = weakref.WeakMethod(callback)
        else:
            ref = weakref.ref(callback)
        with self._lock:
            self._observers.append(ref)
        return callback

    def remove_trace_observer(self, callback) -> None:
        with self._lock:
            self._observers = [
                ref for ref in self._observers
                if ref() is not None and ref() != callback
            ]

    def _live_observers_locked(self) -> list:
        live = [ref() for ref in self._observers]
        if any(cb is None for cb in live):
            self._observers = [ref for ref in self._observers if ref() is not None]
        return [cb for cb in live if cb is not None]

    # -- span creation --------------------------------------------------------
    def span(self, name: str, **attributes):
        """A new child span of the current context (a fresh root — new
        trace id — when no span is active).  Returns the no-op singleton
        when tracing is disabled."""
        if not self.enabled:
            return NOOP_SPAN
        context = _CONTEXT.get()
        if context is None:
            return Span(self, name, _new_id(), None, attributes)
        trace_id, parent_id = context
        return Span(self, name, trace_id, parent_id, attributes)

    def current_trace_id(self) -> str | None:
        context = _CONTEXT.get()
        return context[0] if context is not None else None

    # -- cross-process propagation --------------------------------------------
    def context(self) -> dict | None:
        """The active context as a payload-embeddable dict (``None`` when
        tracing is off or no span is active)."""
        if not self.enabled:
            return None
        context = _CONTEXT.get()
        if context is None:
            return None
        return {"trace_id": context[0], "span_id": context[1]}

    def activate(self, context: dict) -> contextvars.Token:
        """Adopt a propagated context (pool workers call this; pair with
        :meth:`deactivate`).  Also enables the tracer, so worker-side
        instrumentation records against the parent's trace id."""
        self.enabled = True
        return _CONTEXT.set((context["trace_id"], context["span_id"]))

    def deactivate(self, token: contextvars.Token) -> None:
        _CONTEXT.reset(token)

    def drain(self, trace_id: str) -> list[dict]:
        """Remove and return every recorded span of ``trace_id`` (workers
        ship them back inside the task result)."""
        with self._lock:
            mine: list[dict] = []
            bucket = self._index.pop(trace_id, None)
            if bucket:
                mine.extend(bucket)
                kept = [s for s in self._ring if s["trace_id"] != trace_id]
                self._ring.clear()
                self._ring.extend(kept)
                self._roots.pop(trace_id, None)
            mine.extend(self._pending.pop(trace_id, ()))
        return mine

    def ingest(self, spans: Iterable[dict]) -> None:
        """Splice foreign (worker-produced) spans into the ring buffer —
        or, under tail sampling, into the trace's pending buffer so they
        share its root's keep/drop fate."""
        with self._lock:
            for span in spans:
                if self._tail:
                    self._buffer_pending_locked(span)
                else:
                    self._record_locked(span)

    # -- recording ------------------------------------------------------------
    def _finish(self, span: dict) -> None:
        is_root = span["parent_id"] is None
        observers: list = []
        trace_spans: list[dict] | None = None
        with self._lock:
            if not is_root:
                if self._tail:
                    self._buffer_pending_locked(span)
                else:
                    self._record_locked(span)
            else:
                if self._tail:
                    trace_spans = self._pending.pop(span["trace_id"], [])
                    trace_spans.append(span)
                    if self._keep_trace_locked(span):
                        for item in trace_spans:
                            self._record_locked(item)
                        self.traces_kept += 1
                    else:
                        self.traces_dropped += 1
                        self.spans_dropped += len(trace_spans)
                else:
                    self._record_locked(span)
                    bucket = self._index.get(span["trace_id"])
                    trace_spans = list(bucket) if bucket else [span]
                observers = self._live_observers_locked()
        if is_root and observers:
            for callback in observers:
                try:
                    callback(span, trace_spans)
                except Exception:  # observers must never break the traced path
                    pass

    def _keep_trace_locked(self, root: dict) -> bool:
        if root["status"] != "ok":
            return True
        if root["duration_ms"] >= self._tail_slow_ms:
            return True
        if self._tail_rate >= 1.0:
            return True
        if self._tail_rate <= 0.0:
            return False
        return self._tail_rng.random() < self._tail_rate

    def _buffer_pending_locked(self, span: dict) -> None:
        bucket = self._pending.get(span["trace_id"])
        if bucket is None:
            if len(self._pending) >= self.PENDING_TRACE_CAP:
                oldest = next(iter(self._pending))
                self.traces_dropped += 1
                self.spans_dropped += len(self._pending.pop(oldest))
            bucket = self._pending[span["trace_id"]] = []
        bucket.append(span)

    def _record_locked(self, span: dict) -> None:
        ring = self._ring
        if ring.maxlen is not None and len(ring) == ring.maxlen and ring:
            self._unindex_locked(ring[0])
        ring.append(span)
        bucket = self._index.get(span["trace_id"])
        if bucket is None:
            bucket = self._index[span["trace_id"]] = deque()
        bucket.append(span)
        if span["parent_id"] is None:
            self._roots[span["trace_id"]] = span
        self.spans_recorded += 1
        if self._jsonl_file is not None:
            self._write_jsonl_locked(span)

    def _unindex_locked(self, span: dict) -> None:
        trace_id = span["trace_id"]
        bucket = self._index.get(trace_id)
        if bucket:
            if bucket[0] is span:
                bucket.popleft()
            else:  # ingest can interleave orders; fall back to a scan
                try:
                    bucket.remove(span)
                except ValueError:
                    pass
            if not bucket:
                del self._index[trace_id]
        if self._roots.get(trace_id) is span:
            del self._roots[trace_id]

    def _write_jsonl_locked(self, span: dict) -> None:
        line = json.dumps(span, default=str) + "\n"
        encoded = len(line.encode("utf-8"))
        if (
            self._jsonl_max_bytes is not None
            and self._jsonl_bytes > 0
            and self._jsonl_bytes + encoded > self._jsonl_max_bytes
        ):
            # Rotate BEFORE writing: the in-flight span lands at the head
            # of the fresh file, never on the floor.
            self._jsonl_file.close()
            os.replace(self._jsonl_path, self._jsonl_path + ".1")
            self._jsonl_file = open(self._jsonl_path, "a", encoding="utf-8")
            self._jsonl_bytes = 0
            self.jsonl_rotations += 1
        self._jsonl_file.write(line)
        self._jsonl_file.flush()
        self._jsonl_bytes += encoded

    # -- retrieval ------------------------------------------------------------
    def spans(self) -> list[dict]:
        with self._lock:
            return list(self._ring)

    def trace(self, trace_id: str) -> list[dict]:
        """All recorded spans of one trace, oldest first — an O(trace)
        index lookup, including spans still pending a tail decision."""
        with self._lock:
            spans = list(self._index.get(trace_id, ()))
            spans.extend(self._pending.get(trace_id, ()))
        return spans

    def traces(self, slow_ms: float = 0.0, limit: int = 50) -> list[dict]:
        """Root-span summaries (spans with no parent), slowest first,
        filtered to those at least ``slow_ms`` long.  O(#roots) via the
        per-trace index, not O(ring)."""
        with self._lock:
            rows = [
                (root, len(self._index.get(trace_id, ())) or 1)
                for trace_id, root in self._roots.items()
                if root["duration_ms"] >= slow_ms
            ]
        summaries = [
            {
                "trace_id": root["trace_id"],
                "name": root["name"],
                "start": root["start"],
                "duration_ms": root["duration_ms"],
                "status": root["status"],
                "spans": span_count,
                "attributes": root["attributes"],
            }
            for root, span_count in rows
        ]
        summaries.sort(key=lambda row: -row["duration_ms"])
        return summaries[:limit]

    def tree(self, trace_id: str) -> list[dict]:
        """The trace as a nested forest (children under ``"children"``,
        ordered by start time).  Spans whose parent was evicted from the
        ring surface as additional roots rather than disappearing."""
        return build_tree(self.trace(trace_id))

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "spans_recorded": self.spans_recorded,
                "spans_buffered": len(self._ring),
                "ring_size": self._ring.maxlen,
                "traces_indexed": len(self._roots),
                "jsonl_path": self._jsonl_path,
                "jsonl_rotations": self.jsonl_rotations,
                "tail_sample": self._tail,
                "tail_slow_ms": self._tail_slow_ms,
                "tail_rate": self._tail_rate,
                "traces_kept": self.traces_kept,
                "traces_dropped": self.traces_dropped,
                "spans_dropped": self.spans_dropped,
                "pending_traces": len(self._pending),
            }


def build_tree(spans: list[dict]) -> list[dict]:
    """Nest a flat span list into a forest by parent_id (shared by the
    tracer, the server's /trace endpoint and the CLI renderer)."""
    nodes = {span["span_id"]: {**span, "children": []} for span in spans}
    roots: list[dict] = []
    for node in nodes.values():
        parent = nodes.get(node["parent_id"])
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda child: child["start"])
    roots.sort(key=lambda root: root["start"])
    return roots


def tree_coverage(root: dict) -> float:
    """Fraction of a root span's wall time covered by its direct
    children (the acceptance metric for "spans cover the request")."""
    if root["duration_ms"] <= 0:
        return 1.0
    covered = sum(child["duration_ms"] for child in root.get("children", ()))
    return min(covered / root["duration_ms"], 1.0)


#: The process-wide tracer every instrumentation site shares.
TRACER = Tracer()
