"""Workload generators: the paper's running example, synthetic scaling
inputs, the schema-driven scenario matrix and the differential fuzz
harness built on it."""

from .fuzz import (
    FuzzConfig,
    FuzzDisagreement,
    FuzzReport,
    check_instance,
    run_fuzz,
    shrink_spec,
)
from .random_gen import DEFAULT_SEED, seeded_rng
from .scenarios import (
    AXES,
    CoverageLedger,
    GenerationError,
    ScenarioInstance,
    ScenarioSpec,
    all_pairs,
    generate,
    matrix_instances,
    standard_matrix,
)

__all__ = [
    "AXES",
    "DEFAULT_SEED",
    "seeded_rng",
    "CoverageLedger",
    "FuzzConfig",
    "FuzzDisagreement",
    "FuzzReport",
    "GenerationError",
    "ScenarioInstance",
    "ScenarioSpec",
    "all_pairs",
    "check_instance",
    "generate",
    "matrix_instances",
    "run_fuzz",
    "shrink_spec",
    "standard_matrix",
]
