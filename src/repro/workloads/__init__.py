"""Workload generators: the paper's running example and synthetic scaling inputs."""
