"""Coverage-guided differential fuzzing over the scenario matrix.

Feeds :mod:`repro.workloads.scenarios` instances through the PR-5
differential suite, one instance at a time:

1. **exact-dp** — the exact ``Fraction`` joint DP pass (Theorem 5.3) on
   ``[C] + [C ∧ e]`` for every tractable event; the reference everything
   else is judged against.
2. **float64** — doubles within ``1e-9`` relative tolerance of exact.
3. **interval** — enclosures that contain the exact value.
4. **auto** — interval-guarded evaluation whose sign decisions match
   exact, and whose exact-fallback outputs equal exact.
5. **enum** — the possible-worlds baseline (``repro.baseline.naive``),
   ``Fraction``-equal to the DP on enumerable instances; also the only
   exact oracle for the NP-hard SUM/AVG events (Proposition 7.2).
6. **circuit** — the compiled arithmetic circuit's exact forward equals
   the DP; its float64 forward is within tolerance.
7. **rebind** — the circuit rebound to a parameter-perturbed document
   equals a fresh DP on the perturbed document.
8. **batch** — ``forward_batch`` columns are *bitwise* equal to the
   scalar float64 forward per binding (numpy only).
9. **approx** — the Monte-Carlo tier's certified interval contains the
   exact conditional probability (δ = 1e-6, so a 200-instance run has
   ≈ 2·10⁻⁴ overall false-failure probability).

A disagreement is **shrunk** before it is reported: every axis of the
failing spec is reset toward its simplest value while the failure
persists, and the minimal ``(spec, seed)`` is written to
``tests/artifacts/`` as a JSON artifact that names the failing stage and
carries the serialized p-document plus the exact ``repro fuzz`` command
that reproduces it.  ``pxdb_fuzz_*`` counters make long sessions
observable (``repro fuzz --metrics``).
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ..baseline.naive import naive_probabilities
from ..circuit import HAVE_NUMPY, BatchBinding, compile_formulas
from ..core.evaluator import probabilities
from ..core.formulas import conjunction
from ..core.pxdb import PXDB
from ..pdoc.parameters import apply_parameters, parameter_slots, scaled_edge_bindings
from ..pdoc.pdocument import EXP, PDocument
from ..pdoc.serialize import pdocument_to_xml
from ..service.metrics import Metrics
from .scenarios import (
    AXES,
    CoverageLedger,
    ScenarioInstance,
    ScenarioSpec,
    generate,
    standard_matrix,
)

#: Relative tolerance of the float64 differential contract (PR 5).
REL_TOL = 1e-9

#: Instances whose documents have at most this many distributional edges
#: go through the exponential possible-worlds baseline.
DEFAULT_MAX_ENUM_EDGES = 10

DEFAULT_ARTIFACT_DIR = Path("tests") / "artifacts"

STAGES = (
    "exact-dp",
    "float64",
    "interval",
    "auto",
    "enum",
    "circuit",
    "rebind",
    "batch",
    "approx",
)


class FuzzDisagreement(AssertionError):
    """Two members of the differential suite disagreed on one instance."""

    def __init__(self, stage: str, detail: str):
        super().__init__(f"[{stage}] {detail}")
        self.stage = stage
        self.detail = detail


@dataclass
class FuzzConfig:
    """Knobs of one fuzz run (all deterministic given the run seed)."""

    backends: tuple[str, ...] = ("float64", "interval", "auto")
    max_enum_edges: int = DEFAULT_MAX_ENUM_EDGES
    check_circuit: bool = True
    check_batch: bool = True
    check_approx: bool = True
    approx_epsilon: float = 0.3
    approx_delta: float = 1e-6
    approx_max_samples: int = 400

    @classmethod
    def from_backends(cls, names: Iterable[str] | None, **overrides) -> "FuzzConfig":
        """Map CLI ``--backends`` tokens onto a config: numeric backend
        names gate stages 2–4, ``circuit``/``batch``/``approx`` gate
        their stages; ``all`` (or None) enables everything."""
        if names is None:
            return cls(**overrides)
        tokens = [token.strip() for token in names if token.strip()]
        if "all" in tokens:
            return cls(**overrides)
        known = {"float64", "interval", "auto", "circuit", "batch", "approx"}
        unknown = sorted(set(tokens) - known)
        if unknown:
            raise ValueError(
                f"unknown backend {unknown[0]!r} "
                f"(choose from {', '.join(sorted(known))} or 'all')"
            )
        numeric = tuple(t for t in tokens if t in ("float64", "interval", "auto"))
        return cls(
            backends=numeric,
            check_circuit="circuit" in tokens,
            check_batch="batch" in tokens,
            check_approx="approx" in tokens,
            **overrides,
        )


@dataclass
class FuzzFailure:
    """One shrunk disagreement, ready to persist as an artifact."""

    spec: ScenarioSpec
    seed: int
    stage: str
    detail: str
    original_spec: ScenarioSpec
    artifact_path: str | None = None

    def to_artifact(self) -> dict:
        pdoc = generate(self.spec, self.seed).pdoc
        return {
            "schema": "pxdb-fuzz-failure/1",
            "stage": self.stage,
            "detail": self.detail,
            "spec": self.spec.to_dict(),
            "seed": self.seed,
            "original_spec": self.original_spec.to_dict(),
            "pdocument_xml": pdocument_to_xml(pdoc),
            "reproduce": (
                f"repro fuzz --spec <this file> --budget 1"
            ),
        }


@dataclass
class FuzzReport:
    """The outcome of one :func:`run_fuzz` session."""

    seed: int
    budget: int
    instances: int = 0
    elapsed_s: float = 0.0
    truncated: bool = False
    checks: dict = field(default_factory=dict)
    skipped: dict = field(default_factory=dict)
    failures: list = field(default_factory=list)
    ledger: CoverageLedger = field(default_factory=CoverageLedger)

    @property
    def disagreements(self) -> int:
        return len(self.failures)

    def as_dict(self) -> dict:
        return {
            "schema": "pxdb-fuzz-report/1",
            "seed": self.seed,
            "budget": self.budget,
            "instances": self.instances,
            "elapsed_s": round(self.elapsed_s, 3),
            "truncated": self.truncated,
            "checks": dict(self.checks),
            "skipped": dict(self.skipped),
            "disagreements": self.disagreements,
            "failures": [
                {
                    "stage": failure.stage,
                    "spec": failure.spec.to_dict(),
                    "seed": failure.seed,
                    "artifact": failure.artifact_path,
                }
                for failure in self.failures
            ],
            "coverage": self.ledger.report(),
        }


# -- numeric comparisons (the PR-5 differential contract) ---------------------

def _close(approx: float, exact: Fraction) -> bool:
    target = float(exact)
    if target == 0.0:
        return abs(approx) < 1e-12
    return abs(approx - target) <= REL_TOL * abs(target)


def _contains(interval: tuple[float, float], exact: Fraction) -> bool:
    lo, hi = interval
    return lo <= float(exact) <= hi


def perturb_parameters(
    pdoc: PDocument, rng: random.Random
) -> PDocument:
    """A clone of ``pdoc`` with every probability parameter perturbed:
    ind/mux edges scaled into (0, 1], exp subset weights jittered and
    renormalized so each distribution still sums to exactly 1.  Applied
    through :func:`apply_parameters`, so the per-node laws are validated
    and only touched nodes get their fingerprints invalidated — exactly
    the path ``rebind`` consumes."""
    clone = pdoc.clone()
    slots = parameter_slots(clone)
    groups: dict[int, list] = {}
    order: list[int] = []
    for slot in slots:
        key = id(slot.node)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(slot)
    values: dict[tuple[int, str, int], Fraction] = {}
    for key in order:
        group = groups[key]
        node = group[0].node
        if node.kind == EXP:
            raw = [
                slot.value * Fraction(rng.randrange(500, 1000), 1000)
                for slot in group
            ]
            total = sum(raw)
            for slot, value in zip(group, raw):
                values[(key, slot.field, slot.index)] = value / total
        else:
            for slot in group:
                values[(key, slot.field, slot.index)] = slot.value * Fraction(
                    rng.randrange(500, 1000), 1000
                )
    vector = [values[(id(slot.node), slot.field, slot.index)] for slot in slots]
    apply_parameters(clone, vector)
    return clone


# -- the per-instance differential check --------------------------------------

def check_instance(
    instance: ScenarioInstance,
    config: FuzzConfig | None = None,
    metrics: Metrics | None = None,
) -> dict[str, int]:
    """Run one instance through every enabled differential stage.

    Returns ``{stage: 1}`` for the stages that ran (0 = skipped); raises
    :class:`FuzzDisagreement` on the first stage whose result contradicts
    the exact reference."""
    config = config or FuzzConfig()
    ran: dict[str, int] = {stage: 0 for stage in STAGES}

    def bump(stage: str) -> None:
        ran[stage] = 1
        if metrics is not None:
            metrics.increment(f"fuzz.checks.{stage.replace('-', '_')}")

    pdoc = instance.pdoc
    condition = instance.condition
    events = list(instance.dp_events)
    formulas = [condition] + [conjunction([condition, e]) for e in events]

    # 1. exact Fraction reference.
    exact = probabilities(pdoc, formulas)
    if not 0 < exact[0] <= 1:
        raise FuzzDisagreement(
            "exact-dp", f"Pr(P |= C) = {exact[0]} outside (0, 1]"
        )
    for value in exact[1:]:
        if not 0 <= value <= exact[0]:
            raise FuzzDisagreement(
                "exact-dp",
                f"Pr(C and e) = {value} outside [0, Pr(C) = {exact[0]}]",
            )
    bump("exact-dp")

    # 2–4. numeric backends against the exact reference.
    if "float64" in config.backends:
        floats = probabilities(pdoc, formulas, backend="float64")
        for index, (value, reference) in enumerate(zip(floats, exact)):
            if not _close(value, reference):
                raise FuzzDisagreement(
                    "float64",
                    f"output {index}: {value!r} vs exact {reference} "
                    f"(= {float(reference)!r})",
                )
        bump("float64")
    if "interval" in config.backends:
        enclosures = probabilities(pdoc, formulas, backend="interval")
        for index, (enclosure, reference) in enumerate(zip(enclosures, exact)):
            if not _contains(tuple(enclosure), reference):
                raise FuzzDisagreement(
                    "interval",
                    f"output {index}: enclosure {enclosure} misses exact "
                    f"{float(reference)!r}",
                )
        bump("interval")
    if "auto" in config.backends:
        auto = probabilities(pdoc, formulas, backend="auto")
        for index, (value, reference) in enumerate(zip(auto, exact)):
            if (value > 0) != (reference > 0):
                raise FuzzDisagreement(
                    "auto",
                    f"output {index}: sign of {value!r} disagrees with "
                    f"exact {reference}",
                )
            if isinstance(value, Fraction):
                if value != reference:
                    raise FuzzDisagreement(
                        "auto",
                        f"output {index}: exact fallback {value} != "
                        f"reference {reference}",
                    )
            elif not _contains((value - 1e-9, value + 1e-9), reference) and \
                    not _close(value, reference):
                raise FuzzDisagreement(
                    "auto",
                    f"output {index}: midpoint {value!r} far from exact "
                    f"{float(reference)!r}",
                )
        bump("auto")

    # 5. possible-worlds baseline — also the SUM/AVG oracle.
    hard_exact: list[Fraction] = []
    enumerable = instance.dist_edges() <= config.max_enum_edges
    if enumerable:
        hard_formulas = [
            conjunction([condition, event]) for event in instance.hard_events
        ]
        enum = naive_probabilities(pdoc, formulas + hard_formulas)
        for index, (value, reference) in enumerate(zip(enum, exact)):
            if value != reference:
                raise FuzzDisagreement(
                    "enum",
                    f"output {index}: enumeration {value} != DP {reference}",
                )
        hard_exact = enum[len(formulas):]
        bump("enum")
    elif metrics is not None:
        metrics.increment("fuzz.enum_skipped")

    # 6–8. compiled circuit: forward, rebind, batch columns.
    circuit = None
    if config.check_circuit:
        circuit = compile_formulas(pdoc, formulas)
        forward = circuit.forward()
        if forward != exact:
            raise FuzzDisagreement(
                "circuit", f"exact forward {forward} != DP {exact}"
            )
        for index, value in enumerate(circuit.forward(backend="float64")):
            if not _close(value, exact[index]):
                raise FuzzDisagreement(
                    "circuit",
                    f"float64 forward output {index}: {value!r} vs exact "
                    f"{float(exact[index])!r}",
                )
        bump("circuit")

        perturb_rng = random.Random(instance.seed ^ 0x5EED)
        perturbed = perturb_parameters(pdoc, perturb_rng)
        rebound = circuit.rebind(perturbed)
        fresh = probabilities(perturbed, formulas)
        if rebound.forward() != fresh:
            raise FuzzDisagreement(
                "rebind",
                f"rebound forward {rebound.forward()} != fresh DP {fresh} "
                "on the perturbed document",
            )
        bump("rebind")

    if config.check_batch and circuit is not None:
        if HAVE_NUMPY and circuit.num_params > 0:
            import struct

            factor_rng = random.Random(instance.seed ^ 0xBA7C4)
            factors = [
                Fraction(factor_rng.randrange(1, 1_000_000), 1_000_000)
                for _ in range(3)
            ]
            rows = scaled_edge_bindings(pdoc, factors)
            columns = circuit.forward_batch(BatchBinding.from_rows(rows))
            for i, row in enumerate(rows):
                circuit.set_param_values(row)
                scalar = circuit.forward(backend="float64")
                for j, value in enumerate(scalar):
                    if struct.pack("<d", float(value)) != struct.pack(
                        "<d", float(columns[j, i])
                    ):
                        raise FuzzDisagreement(
                            "batch",
                            f"binding {i} output {j}: batch column "
                            f"{columns[j, i]!r} not bitwise equal to scalar "
                            f"{value!r}",
                        )
            bump("batch")
        elif metrics is not None:
            metrics.increment("fuzz.batch_skipped")

    # 9. approx interval contains the exact conditional probability.
    if config.check_approx:
        if hard_exact:
            targets = list(zip(instance.hard_events, hard_exact))
        else:
            targets = [(events[0], exact[1])] if events else []
        if targets:
            pxdb = PXDB(pdoc, instance.constraints, check=False)
            for offset, (event, joint) in enumerate(targets[:2]):
                reference = joint / exact[0]
                result = pxdb.approx_probability(
                    event,
                    epsilon=config.approx_epsilon,
                    delta=config.approx_delta,
                    max_samples=config.approx_max_samples,
                    seed=instance.seed * 31 + offset,
                )
                if not result.lo <= float(reference) <= result.hi:
                    raise FuzzDisagreement(
                        "approx",
                        f"event {offset}: interval [{result.lo}, {result.hi}] "
                        f"misses exact conditional {float(reference)!r} "
                        f"(delta={config.approx_delta})",
                    )
            bump("approx")

    return ran


# -- shrinking ---------------------------------------------------------------

def _failure_stage(
    spec: ScenarioSpec, seed: int, config: FuzzConfig
) -> tuple[str, str] | None:
    """(stage, detail) if (spec, seed) still fails, else None."""
    try:
        check_instance(generate(spec, seed), config)
    except FuzzDisagreement as exc:
        return exc.stage, exc.detail
    except Exception as exc:  # generation/evaluator crash: also a failure
        return "crash", f"{type(exc).__name__}: {exc}"
    return None


def shrink_spec(
    spec: ScenarioSpec,
    seed: int,
    fails: Callable[[ScenarioSpec, int], bool],
) -> ScenarioSpec:
    """Greedily reset axes toward their simplest value (the first entry
    of each :data:`AXES` row) while the failure persists.  Terminates:
    every adoption strictly simplifies one axis."""
    current = spec
    changed = True
    while changed:
        changed = False
        for axis in AXES:
            if getattr(current, axis) == AXES[axis][0]:
                continue
            candidate = current.simplified(axis)
            if fails(candidate, seed):
                current = candidate
                changed = True
    return current


def write_artifact(failure: FuzzFailure, directory: Path) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    name = f"fuzz-{failure.stage}-{failure.spec.name}-seed{failure.seed}.json"
    path = directory / name
    artifact = failure.to_artifact()
    artifact["reproduce"] = (
        f"PYTHONPATH=src python -m repro.cli fuzz --spec {path} --budget 1"
    )
    path.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")
    failure.artifact_path = str(path)
    return path


# -- the fuzz loop ------------------------------------------------------------

def run_fuzz(
    specs: Sequence[ScenarioSpec] | None = None,
    seed: int = 0,
    budget: int = 50,
    config: FuzzConfig | None = None,
    artifact_dir: Path | str | None = DEFAULT_ARTIFACT_DIR,
    metrics: Metrics | None = None,
    time_budget: float | None = None,
    progress: Callable[[int, "FuzzReport"], None] | None = None,
) -> FuzzReport:
    """Fuzz ``budget`` instances: cycle ``specs`` (default: the standard
    matrix), instance ``i`` generated at seed ``seed + i`` — fully
    deterministic given ``seed``.  Disagreements are shrunk and persisted
    to ``artifact_dir``; the report carries per-stage check counts and
    the pairwise-coverage ledger."""
    specs = tuple(standard_matrix() if specs is None else specs)
    config = config or FuzzConfig()
    report = FuzzReport(seed=seed, budget=budget)
    report.checks = {stage: 0 for stage in STAGES}
    started = time.monotonic()
    for index in range(budget):
        if time_budget is not None and time.monotonic() - started > time_budget:
            report.truncated = True
            break
        spec = specs[index % len(specs)]
        instance_seed = seed + index
        if metrics is not None:
            metrics.increment("fuzz.instances")
        try:
            instance = generate(spec, instance_seed)
            ran = check_instance(instance, config, metrics)
        except Exception as exc:
            if isinstance(exc, FuzzDisagreement):
                stage, detail = exc.stage, exc.detail
            else:
                stage, detail = "crash", f"{type(exc).__name__}: {exc}"
            if metrics is not None:
                metrics.increment("fuzz.disagreements")
            minimal = shrink_spec(
                spec,
                instance_seed,
                lambda s, sd: _failure_stage(s, sd, config) is not None,
            )
            final = _failure_stage(minimal, instance_seed, config)
            if final is not None:
                stage, detail = final
            failure = FuzzFailure(
                spec=minimal,
                seed=instance_seed,
                stage=stage,
                detail=detail,
                original_spec=spec,
            )
            if artifact_dir is not None:
                write_artifact(failure, Path(artifact_dir))
            report.failures.append(failure)
            report.ledger.record(spec.features, tag=f"{spec.name}@{instance_seed}")
            report.instances += 1
            continue
        for stage, flag in ran.items():
            report.checks[stage] += flag
            if not flag:
                report.skipped[stage] = report.skipped.get(stage, 0) + 1
        report.ledger.record(spec.features, tag=f"{spec.name}@{instance_seed}")
        report.instances += 1
        if progress is not None:
            progress(index, report)
    report.elapsed_s = time.monotonic() - started
    return report


def load_spec_file(path: Path | str) -> tuple[list[ScenarioSpec], int | None]:
    """Parse a ``--spec`` file: a failure artifact (``{"spec": ..,
    "seed": ..}``), a single spec object, or a list of spec objects.
    Returns (specs, seed-from-artifact-or-None)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(data, dict) and "spec" in data:
        return [ScenarioSpec.from_dict(data["spec"])], data.get("seed")
    if isinstance(data, dict):
        return [ScenarioSpec.from_dict(data)], None
    if isinstance(data, list):
        return [ScenarioSpec.from_dict(entry) for entry in data], None
    raise ValueError(f"unrecognized spec file shape: {type(data).__name__}")
