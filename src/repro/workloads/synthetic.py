"""Synthetic scalable workloads for the runtime experiments.

These generators produce families of p-documents whose size grows with a
single parameter, so the scaling experiments (E2–E5, E7 in DESIGN.md) can
plot runtime-versus-size curves for the polynomial evaluator against the
exponential possible-worlds baseline.

* :func:`chain_pdocument`    — a path of optional nodes (depth stress);
* :func:`star_pdocument`     — one ind node with many optional leaves
  (the shape of the Subset-Sum gadget; width stress);
* :func:`binary_pdocument`   — a complete binary tree with a mux at each
  internal node (mixture stress);
* :func:`numeric_pdocument`  — leaves with numeric labels, for the
  MIN/MAX/RATIO experiments (E5);
* :func:`exp_pdocument`      — exp nodes with correlated child subsets
  (E7, Section 7.3).
"""

from __future__ import annotations

import random
from fractions import Fraction

from ..pdoc.pdocument import PDocument, PNode, pdocument


def chain_pdocument(depth: int, prob: Fraction = Fraction(9, 10)) -> PDocument:
    """root ── ind(p) ── a ── ind(p) ── a ── … (``depth`` optional levels)."""
    pd, root = pdocument("root")
    current = root
    for _ in range(depth):
        node = PNode("ord", "a")
        current.ind().add_edge(node, prob)
        current = node
    pd.validate()
    return pd


def star_pdocument(
    width: int, prob: Fraction = Fraction(1, 2), label: str = "a"
) -> PDocument:
    """root with one ind node carrying ``width`` optional leaves."""
    pd, root = pdocument("root")
    ind = root.ind()
    for _ in range(width):
        ind.add_edge(label, prob)
    pd.validate()
    return pd


def binary_pdocument(depth: int, seed: int = 0) -> PDocument:
    """A complete binary tree of the given depth; each internal ordinary
    node holds its two children under a mux with random probabilities."""
    rng = random.Random(seed)
    pd, root = pdocument("root")

    def grow(node: PNode, level: int) -> None:
        if level == 0:
            return
        mux = node.mux()
        left_prob = Fraction(rng.randint(1, 3), 8)
        right_prob = Fraction(rng.randint(1, 3), 8)
        left = PNode("ord", "L")
        right = PNode("ord", "R")
        mux.add_edge(left, left_prob)
        mux.add_edge(right, right_prob)
        grow(left, level - 1)
        grow(right, level - 1)

    grow(root, depth)
    pd.validate()
    return pd


def numeric_pdocument(
    width: int, value_range: int = 10, prob: Fraction = Fraction(1, 2), seed: int = 0
) -> PDocument:
    """root ── ind ── {numeric leaves}: each leaf carries a random integer
    label in [1, value_range] and is present with the given probability."""
    rng = random.Random(seed)
    pd, root = pdocument("values")
    ind = root.ind()
    for _ in range(width):
        ind.add_edge(rng.randint(1, value_range), prob)
    pd.validate()
    return pd


def exp_pdocument(groups: int, seed: int = 0) -> PDocument:
    """``groups`` exp nodes, each with three children and a correlated
    subset distribution (children 0 and 1 only ever appear together)."""
    rng = random.Random(seed)
    pd, root = pdocument("root")
    for index in range(groups):
        exp = root.exp()
        for child in range(3):
            exp.add_exp_child(f"g{index}c{child}")
        a = Fraction(rng.randint(1, 3), 10)
        b = Fraction(rng.randint(1, 3), 10)
        exp.set_exp_distribution(
            [
                ((0, 1), a),          # the correlated pair
                ((2,), b),
                ((0, 1, 2), Fraction(1, 10)),
                ((), 1 - a - b - Fraction(1, 10)),
            ]
        )
    pd.validate()
    return pd
