"""Screen-scraping simulation: from ground truth to a p-document.

The paper's opening motivation: "screen-scraping, used to automatically
derive data from Internet sites, naturally gives rise to uncertainties —
both due to the error-prone nature of the task, as well as to the possible
unreliability of data sources".  This module simulates exactly that
pipeline, turning a *ground-truth* document into the p-document a scraper
would produce:

* every extracted node carries a confidence — the p-document wraps it in
  an ``ind`` edge with that probability;
* ambiguous extractions (the scraper saw one value but OCR/parsing offers
  alternatives) become ``mux`` nodes over the variants;
* optionally, spurious nodes (false extractions) are injected with low
  confidence.

Because the generated p-document retains the ground-truth uids, the
quality of downstream inference can be *scored*: e.g. how often does the
constraint-conditioned space rank the true world higher than the raw
scraper output does (see ``examples/data_quality_report.py``).
"""

from __future__ import annotations

import random
from fractions import Fraction

from ..xmltree.document import DocNode, Document
from ..pdoc.pdocument import PDocument, PNode
from .random_gen import seeded_rng


class ScrapeModel:
    """Noise model for the simulated scraper.

    * ``confidence_low``/``confidence_high`` — per-node extraction
      confidence is drawn uniformly (as an exact rational with
      ``precision`` denominator) from this interval;
    * ``ambiguity`` — probability that a leaf's label is ambiguous, in
      which case a mux over the true label and a corrupted variant is
      emitted (the true one gets the confidence mass);
    * ``spurious`` — probability of injecting a low-confidence fake child
      under an internal node;
    * ``sure_depth`` — nodes at depth < sure_depth are extracted surely
      (page skeletons are reliable; deep content is not).
    """

    def __init__(
        self,
        confidence_low: Fraction = Fraction(3, 5),
        confidence_high: Fraction = Fraction(19, 20),
        ambiguity: float = 0.15,
        spurious: float = 0.1,
        sure_depth: int = 1,
        precision: int = 20,
    ):
        if not 0 <= confidence_low <= confidence_high <= 1:
            raise ValueError("confidence interval must satisfy 0 <= low <= high <= 1")
        self.confidence_low = Fraction(confidence_low)
        self.confidence_high = Fraction(confidence_high)
        self.ambiguity = ambiguity
        self.spurious = spurious
        self.sure_depth = sure_depth
        self.precision = precision

    def draw_confidence(self, rng: random.Random) -> Fraction:
        span = self.confidence_high - self.confidence_low
        step = Fraction(rng.randint(0, self.precision), self.precision)
        return self.confidence_low + span * step


def corrupt_label(label, rng: random.Random):
    """A plausible mis-extraction of a label."""
    if isinstance(label, str) and label:
        # drop or double a character — classic OCR noise
        index = rng.randrange(len(label))
        if rng.random() < 0.5 and len(label) > 1:
            return label[:index] + label[index + 1 :]
        return label[:index] + label[index] + label[index:]
    if isinstance(label, int):
        return label + rng.choice((-1, 1))
    return f"{label}?"


def scrape(
    truth: Document,
    model: ScrapeModel | None = None,
    rng: random.Random | None = None,
) -> PDocument:
    """Simulate scraping the ground-truth document into a p-document.

    The ordinary nodes corresponding to true data keep the ground truth's
    uids; spurious injections get fresh ones.
    """
    model = model if model is not None else ScrapeModel()
    # Deterministic default: an OS-seeded random.Random() here made
    # "scrape(truth) is reproducible" silently false (same seed ⇒ same
    # instance is the package-wide contract).
    rng = rng if rng is not None else seeded_rng()

    def build(node: DocNode, depth: int) -> PNode:
        ambiguous = (
            depth >= model.sure_depth
            and node.is_leaf()
            and rng.random() < model.ambiguity
        )
        built = PNode("ord", node.label, uid=node.uid)
        for child in node.children:
            attach_child(built, child, depth + 1)
        if rng.random() < model.spurious and not node.is_leaf():
            noise = PNode("ord", "spurious")
            built.ind().add_edge(noise, Fraction(1, 10))
        return built

    def attach_child(parent: PNode, child: DocNode, depth: int) -> None:
        confidence = (
            Fraction(1) if depth < model.sure_depth else model.draw_confidence(rng)
        )
        ambiguous = (
            depth >= model.sure_depth
            and child.is_leaf()
            and rng.random() < model.ambiguity
        )
        if ambiguous:
            mux = parent.mux()
            true_node = PNode("ord", child.label, uid=child.uid)
            wrong_node = PNode("ord", corrupt_label(child.label, rng))
            mux.add_edge(true_node, confidence * Fraction(4, 5))
            mux.add_edge(wrong_node, confidence * Fraction(1, 5))
            for grandchild in child.children:
                attach_child(true_node, grandchild, depth + 1)
            return
        built = build(child, depth)
        if confidence == 1:
            parent._attach(built)
        else:
            parent.ind().add_edge(built, confidence)

    root = build(truth.root, 0)
    pdoc = PDocument(root, validate=False)
    pdoc.validate()
    return pdoc


def truth_world(truth: Document, pdoc: PDocument) -> frozenset[int]:
    """The uid set of the ground-truth world inside the scraped p-document
    (the true nodes, none of the corrupted or spurious ones)."""
    truth_uids = truth.uid_set()
    scraped_uids = {node.uid for node in pdoc.ordinary_nodes()}
    return frozenset(truth_uids & scraped_uids)
