"""Schema-driven scenario matrix: declarative p-document + constraint specs.

Every benchmark and correctness claim before this module was measured
against the university workload plus a handful of small synthetics —
entire regions of the paper's feature space (node kinds ind/mux/exp ×
constraint forms × aggregate types × depth/fanout regimes) were never
exercised *together*.  This module closes that gap with three pieces:

* :class:`ScenarioSpec` — a declarative, schema-like description of one
  scenario shape: one value per **feature axis** (:data:`AXES`).  Specs
  are plain data (JSON round-trippable), so a failing fuzz artifact can
  name the exact shape that produced it.
* :func:`generate` — a deterministic, seedable generator that turns a
  spec into a concrete :class:`ScenarioInstance`: a validated p-document,
  a satisfiable constraint set of the requested form, and event formulas
  of the requested aggregate type.  Same ``(spec, seed)`` ⇒ byte-identical
  instance, on any machine, under any test sharding.
* :class:`CoverageLedger` + :func:`standard_matrix` — pairwise coverage
  accounting over the declared axes.  The standard matrix is a greedy
  pairwise-covering design (the ``xsdcoverage`` mindset: target coverage
  of feature *pairs*, not the full cartesian product) that benchmarks,
  the fuzz harness (:mod:`repro.workloads.fuzz`) and CI all reuse; the
  ledger reports which feature pairs each emitted instance covers and
  which remain unhit.

Instances stay deliberately small: the differential harness cross-checks
them against the exponential possible-worlds baseline, so a scenario is
useful exactly when its world set is enumerable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from fractions import Fraction
from functools import lru_cache
from typing import Iterable, Iterator

from ..core.constraints import Constraint, always, constraints_formula
from ..core.evaluator import probability
from ..core.formulas import (
    AvgAtom,
    CountAtom,
    MaxAtom,
    MinAtom,
    RatioAtom,
    SFormula,
    SumAtom,
    exists,
    negation,
)
from ..pdoc.pdocument import EXP, IND, MUX, ORD, PDocument, PNode
from ..xmltree.parser import parse_selector
from .random_gen import random_formula, random_selector

#: The declared feature axes.  Order matters twice: it is the canonical
#: spec-field order, and within each axis the FIRST value is the
#: *simplest* — the fuzz harness shrinks failing specs toward it.
AXES: dict[str, tuple[str, ...]] = {
    "kinds": ("ind", "mux", "exp", "mixed"),
    "depth": ("shallow", "deep"),
    "fanout": ("narrow", "wide"),
    "mass": ("uniform", "skewed", "extreme", "reestimated"),
    "constraint": ("none", "atmost", "atleast", "implication", "cformula"),
    "aggregate": ("count", "boolean", "minmax", "ratio", "sum"),
}

#: Content labels of generated documents (the root is always ``"r"``).
LABELS = ("a", "b", "c")


class GenerationError(ValueError):
    """A generated instance violated its spec's laws *on emission*.

    Raised by the generator itself — with the offending spec ``axis``
    named — instead of letting a malformed p-document fail deep inside
    the evaluator where the spec context is long gone.
    """

    def __init__(self, message: str, *, axis: str | None = None,
                 spec: "ScenarioSpec | None" = None, seed: int | None = None):
        detail = message
        if axis is not None:
            detail += f" [axis: {axis}]"
        if spec is not None:
            detail += f" [spec: {spec.name}]"
        if seed is not None:
            detail += f" [seed: {seed}]"
        super().__init__(detail)
        self.axis = axis
        self.spec = spec
        self.seed = seed


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario shape: a value for every feature axis."""

    kinds: str = "ind"
    depth: str = "shallow"
    fanout: str = "narrow"
    mass: str = "uniform"
    constraint: str = "none"
    aggregate: str = "count"

    def __post_init__(self):
        for axis, values in AXES.items():
            value = getattr(self, axis)
            if value not in values:
                raise GenerationError(
                    f"unknown value {value!r} (choose from {', '.join(values)})",
                    axis=axis,
                )

    @property
    def name(self) -> str:
        return "-".join(getattr(self, axis) for axis in AXES)

    @property
    def features(self) -> dict[str, str]:
        return {axis: getattr(self, axis) for axis in AXES}

    def to_dict(self) -> dict[str, str]:
        return self.features

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        unknown = set(data) - set(AXES)
        if unknown:
            raise GenerationError(
                f"unknown spec axis {sorted(unknown)[0]!r} "
                f"(declared axes: {', '.join(AXES)})",
                axis=sorted(unknown)[0],
            )
        return cls(**{axis: str(value) for axis, value in data.items()})

    def simplified(self, axis: str) -> "ScenarioSpec":
        """This spec with ``axis`` reset to its simplest value."""
        return replace(self, **{axis: AXES[axis][0]})


@dataclass(frozen=True)
class ScenarioInstance:
    """A concrete generated instance of one spec."""

    spec: ScenarioSpec
    seed: int
    pdoc: PDocument
    constraints: tuple
    #: Events the polynomial evaluator / circuits / numeric backends accept.
    dp_events: tuple
    #: NP-hard events (SUM/AVG, Proposition 7.2): enumeration + approx only.
    hard_events: tuple

    @property
    def features(self) -> dict[str, str]:
        return self.spec.features

    @property
    def condition(self):
        return constraints_formula(self.constraints)

    def dist_edges(self) -> int:
        return len(self.pdoc.dist_edges())

    def summary(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "seed": self.seed,
            "nodes": self.pdoc.size(),
            "ordinary": self.pdoc.ordinary_size(),
            "dist_edges": self.dist_edges(),
            "constraints": len(self.constraints),
            "dp_events": len(self.dp_events),
            "hard_events": len(self.hard_events),
        }


# -- emission validation ------------------------------------------------------

#: Which axis a given emission-law violation indicts.
_LAW_AXIS = {
    "structure": "fanout",
    "probability": "mass",
    "mux-sum": "mass",
    "exp-distribution": "kinds",
}


def check_emitted(
    pdoc: PDocument,
    spec: ScenarioSpec | None = None,
    seed: int | None = None,
) -> None:
    """Validate a generated p-document against the emission laws:
    distributional nodes are internal, every probability lies in (0, 1],
    mux children's probabilities sum to at most 1, and exp nodes carry a
    non-empty subset distribution summing to exactly 1 in which every
    child appears.  Raises :class:`GenerationError` naming the offending
    spec axis instead of failing deep in the evaluator."""

    def fail(law: str, message: str) -> None:
        raise GenerationError(message, axis=_LAW_AXIS[law], spec=spec, seed=seed)

    if pdoc.root.kind != ORD:
        fail("structure", "the root must be an ordinary node")
    for node in pdoc.nodes():
        if node.kind == ORD:
            continue
        if not node.children:
            fail("structure", f"distributional node {node!r} is a leaf")
        if node.kind in (IND, MUX):
            if len(node.probs) != len(node.children):
                fail("structure", f"{node.kind} node has unweighted children")
            for prob in node.probs:
                if not 0 < prob <= 1:
                    fail("probability",
                         f"edge probability {prob} outside (0, 1]")
            if node.kind == MUX and sum(node.probs) > 1:
                fail("mux-sum",
                     f"mux child probabilities sum to {sum(node.probs)} > 1")
        else:  # EXP
            if not node.subsets:
                fail("exp-distribution", "exp node has an empty subset list")
            total = Fraction(0)
            covered: set[int] = set()
            for subset, prob in node.subsets:
                if not 0 < prob <= 1:
                    fail("probability",
                         f"exp subset weight {prob} outside (0, 1]")
                total += prob
                covered |= subset
            if total != 1:
                fail("exp-distribution",
                     f"exp subset weights sum to {total}, not 1")
            if covered != set(range(len(node.children))):
                fail("exp-distribution",
                     "some exp child appears in no positive-weight subset")


# -- the generator ------------------------------------------------------------

_DEPTH_LIMIT = {"shallow": 2, "deep": 4}
_FANOUT_RANGE = {"narrow": (1, 2), "wide": (2, 4)}
_ORD_BUDGET = {
    ("shallow", "narrow"): 7,
    ("shallow", "wide"): 12,
    ("deep", "narrow"): 11,
    ("deep", "wide"): 16,
}


def _sf(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


def _edge_prob(rng: random.Random, mass: str) -> Fraction:
    """One probability in (0, 1] of the requested mass shape."""
    if mass == "uniform":
        return Fraction(1, 2)
    if mass == "skewed":
        return rng.choice(
            (Fraction(9, 10), Fraction(9, 10), Fraction(4, 5), Fraction(1, 8))
        )
    if mass == "extreme":
        return rng.choice(
            (Fraction(1, 64), Fraction(63, 64), Fraction(1), Fraction(1, 1024))
        )
    # reestimated: 6-significant-digit rationals — the regime where exact
    # Fraction denominators blow up (see tests/strategies.py).
    return Fraction(rng.randrange(1, 999_999), 1_000_000)


def _mux_probs(rng: random.Random, mass: str, count: int) -> list[Fraction]:
    """``count`` positive weights summing to at most 1 (exactly, in
    Fractions), shaped by the mass axis."""
    if mass == "uniform":
        return [Fraction(1, count + 1)] * count
    raw = [_edge_prob(rng, mass) for _ in range(count)]
    if mass == "reestimated":
        target = Fraction(rng.randrange(500_000, 999_999), 1_000_000)
    else:
        target = Fraction(1)
    total = sum(raw)
    return [value * target / total for value in raw]


def _exp_distribution(
    rng: random.Random, mass: str, count: int
) -> list[tuple[tuple[int, ...], Fraction]]:
    """A subset distribution over ``count`` children: 2–4 distinct
    subsets, every child covered, positive weights summing to exactly 1."""
    indices = list(range(count))
    subsets: list[frozenset[int]] = []
    seen: set[frozenset[int]] = set()
    for _ in range(rng.randint(2, 3)):
        subset = frozenset(i for i in indices if rng.random() < 0.6)
        if subset not in seen:
            seen.add(subset)
            subsets.append(subset)
    covered = set().union(*subsets) if subsets else set()
    for index in indices:
        if index not in covered:
            singleton = frozenset((index,))
            if singleton not in seen:
                seen.add(singleton)
                subsets.append(singleton)
    if all(not subset for subset in subsets):
        subsets.append(frozenset(indices))
    raw = [_edge_prob(rng, mass) for _ in subsets]
    total = sum(raw)
    return [
        (tuple(sorted(subset)), value / total)
        for subset, value in zip(subsets, raw)
    ]


def _grow_pdocument(spec: ScenarioSpec, rng: random.Random) -> PDocument:
    depth_limit = _DEPTH_LIMIT[spec.depth]
    fan_lo, fan_hi = _FANOUT_RANGE[spec.fanout]
    budget = [_ORD_BUDGET[(spec.depth, spec.fanout)]]
    numeric = spec.aggregate in ("minmax", "sum")

    def pick_kind() -> str:
        if spec.kinds == "mixed":
            return rng.choice((IND, MUX, EXP))
        return spec.kinds

    def pick_label(leaf: bool):
        if numeric and leaf and rng.random() < 0.5:
            return rng.randint(1, 6)
        return rng.choice(LABELS)

    root = PNode(ORD, "r")

    def grow(node: PNode, depth: int, force_deep: bool) -> None:
        if depth >= depth_limit or budget[0] <= 0:
            return
        children = rng.randint(fan_lo, fan_hi)
        for slot in range(children):
            if budget[0] <= 0:
                break
            deeper = force_deep and slot == 0
            # Interior slots favor a distributional node; the forced-deep
            # spine keeps at least one ordinary chain so the document
            # really reaches the regime's depth.
            if rng.random() < 0.6 and not (deeper and depth + 1 >= depth_limit):
                kind = pick_kind()
                dist = PNode(kind)
                node._attach(dist)
                fanout = rng.randint(1, max(fan_hi - 1, 1))
                for _ in range(fanout):
                    if budget[0] <= 0 and dist.children:
                        break
                    child = PNode(ORD, pick_label(leaf=depth + 1 >= depth_limit))
                    if kind in (IND, MUX):
                        dist._children.append(child)
                        child._parent = dist
                    else:
                        dist.add_exp_child(child)
                    budget[0] -= 1
                    grow(child, depth + 1, deeper)
                if kind in (IND, MUX):
                    if kind == IND:
                        dist.probs = [
                            _edge_prob(rng, spec.mass) for _ in dist.children
                        ]
                    else:
                        dist.probs = _mux_probs(
                            rng, spec.mass, len(dist.children)
                        )
                else:
                    dist.set_exp_distribution(
                        _exp_distribution(rng, spec.mass, len(dist.children))
                    )
                dist.invalidate_fingerprints()
            else:
                child = PNode(ORD, pick_label(leaf=depth + 1 >= depth_limit))
                node._attach(child)
                budget[0] -= 1
                grow(child, depth + 1, deeper)

    grow(root, 0, force_deep=spec.depth == "deep")
    if not root.children:  # degenerate draw: guarantee one dist node
        dist = PNode(spec.kinds if spec.kinds != "mixed" else IND)
        root._attach(dist)
        leaf = PNode(ORD, pick_label(leaf=True))
        if dist.kind in (IND, MUX):
            dist._children.append(leaf)
            leaf._parent = dist
            dist.probs = (
                [_edge_prob(rng, spec.mass)]
                if dist.kind == IND
                else _mux_probs(rng, spec.mass, 1)
            )
        else:
            dist.add_exp_child(leaf)
            dist.set_exp_distribution(_exp_distribution(rng, spec.mass, 1))
        dist.invalidate_fingerprints()
    if numeric and not any(
        isinstance(node.label, int) for node in _ordinary(root)
    ):
        # Guarantee at least one numeric leaf for MIN/MAX/SUM events.
        leaves = [n for n in _ordinary(root) if not n.children and n is not root]
        target = leaves[-1] if leaves else root
        if target is not root:
            target.label = rng.randint(1, 6)
            target.invalidate_fingerprints()
        else:
            extra = PNode(ORD, rng.randint(1, 6))
            root._attach(extra)
    return PDocument(root)


def _ordinary(root: PNode) -> Iterator[PNode]:
    stack = [root]
    while stack:
        node = stack.pop()
        if node.kind == ORD:
            yield node
        stack.extend(reversed(node.children))


# -- constraints per form -----------------------------------------------------

def _string_labels(pdoc: PDocument) -> list[str]:
    present = {
        node.label
        for node in pdoc.ordinary_nodes()
        if isinstance(node.label, str) and node.label != "r"
    }
    return sorted(present) or list(LABELS[:1])


def _satisfiable(pdoc: PDocument, constraints: Iterable) -> bool:
    return probability(pdoc, constraints_formula(tuple(constraints))) > 0


def _make_constraints(
    spec: ScenarioSpec, rng: random.Random, pdoc: PDocument
) -> tuple:
    """A constraint set of the requested form that keeps the PXDB
    well-defined (Pr(P ⊨ C) > 0) — candidates are tried in a
    deterministic order and relaxed until satisfiable."""
    if spec.constraint == "none":
        return ()
    labels = _string_labels(pdoc)
    scope_label = rng.choice(labels)
    target_label = rng.choice(labels)
    scopes = [_sf("$*"), _sf(f"*//${scope_label}")]
    target = _sf(f"*//${target_label}")

    if spec.constraint == "atmost":
        start = rng.randint(0, 2)
        for scope in scopes:
            for bound in range(start, start + 8):
                candidate = always(scope, target, "<=", bound, name="S-atmost")
                if _satisfiable(pdoc, [candidate]):
                    return (candidate,)
        # CNT ≤ (ordinary size) holds in every world.
        return (always(scopes[0], target, "<=", pdoc.ordinary_size(),
                       name="S-atmost"),)

    if spec.constraint == "atleast":
        for scope in scopes:
            for bound in (2, 1):
                candidate = always(scope, target, ">=", bound, name="S-atleast")
                if _satisfiable(pdoc, [candidate]):
                    return (candidate,)
        return (always(scopes[0], target, ">=", 0, name="S-atleast"),)

    if spec.constraint == "implication":
        antecedent = _sf(f"*//${rng.choice(labels)}")
        op2, n2 = rng.choice((("<=", 1), ("<=", 2), (">=", 1)))
        for scope in scopes:
            for relax in range(4):
                bound = n2 + relax if op2 == "<=" else max(n2 - relax, 0)
                candidate = Constraint(
                    scope, antecedent, ">=", 1, target, op2, bound,
                    name="S-implication",
                )
                if _satisfiable(pdoc, [candidate]):
                    return (candidate,)
        return (Constraint(scopes[0], antecedent, ">=", 1, target, "<=",
                           pdoc.ordinary_size(), name="S-implication"),)

    # cformula: Section 7.1 — an arbitrary c-formula as the constraint.
    for _ in range(8):
        candidate = random_formula(rng, labels=tuple(labels))
        if _satisfiable(pdoc, [candidate]):
            return (candidate,)
    return (CountAtom([_sf("$*")], ">=", 0),)


# -- events per aggregate type ------------------------------------------------

_ALL_NODES = ("$*", "*//$*")


def _make_events(
    spec: ScenarioSpec, rng: random.Random, pdoc: PDocument
) -> tuple[tuple, tuple]:
    """(dp_events, hard_events) of the requested aggregate type."""
    labels = _string_labels(pdoc)
    label = rng.choice(labels)
    every = [_sf(text) for text in _ALL_NODES]

    if spec.aggregate == "count":
        return (
            CountAtom([_sf(f"*//${label}")], rng.choice(("<=", ">=", "=")),
                      rng.randint(0, 3)),
            CountAtom(every, ">=", rng.randint(1, 4)),
        ), ()
    if spec.aggregate == "boolean":
        pattern = random_selector(rng, labels=tuple(labels)).pattern
        return (exists(pattern), negation(exists(pattern))), ()
    if spec.aggregate == "minmax":
        return (
            MinAtom(every, rng.choice(("<=", ">")), rng.randint(1, 5)),
            MaxAtom(every, rng.choice((">=", "<")), rng.randint(2, 6)),
        ), ()
    if spec.aggregate == "ratio":
        inner = CountAtom([_sf("*//$*")], ">=", 1)
        return (
            RatioAtom([_sf(f"*//${label}")], inner,
                      rng.choice(("<", ">=")), Fraction(rng.randint(0, 4), 4)),
            CountAtom(every, ">=", rng.randint(1, 3)),
        ), ()
    # sum: the NP-hard side (Proposition 7.2) — enumeration/approx only,
    # with one tractable companion event so circuits still get exercised.
    hard = (
        SumAtom(every, rng.choice((">=", "<=")), rng.randint(2, 12)),
        AvgAtom(every, rng.choice((">=", "<")), Fraction(rng.randint(1, 8), 2)),
    )
    return (CountAtom(every, ">=", rng.randint(1, 4)),), hard


def generate(spec: ScenarioSpec, seed: int) -> ScenarioInstance:
    """Emit the instance of ``spec`` at ``seed``: deterministic, validated
    on emission (:func:`check_emitted`), with a satisfiable constraint
    set.  All randomness flows through one ``random.Random(seed)``."""
    rng = random.Random(seed)
    pdoc = _grow_pdocument(spec, rng)
    check_emitted(pdoc, spec, seed)
    constraints = _make_constraints(spec, rng, pdoc)
    if constraints and not _satisfiable(pdoc, constraints):
        raise GenerationError(
            "generated constraint set is unsatisfiable (Pr(P |= C) = 0)",
            axis="constraint", spec=spec, seed=seed,
        )
    dp_events, hard_events = _make_events(spec, rng, pdoc)
    return ScenarioInstance(
        spec=spec,
        seed=seed,
        pdoc=pdoc,
        constraints=constraints,
        dp_events=dp_events,
        hard_events=hard_events,
    )


# -- pairwise coverage --------------------------------------------------------

Pair = tuple[tuple[str, str], tuple[str, str]]


def all_pairs(axes: dict[str, tuple[str, ...]] | None = None) -> set[Pair]:
    """Every feature pair ((axis_a, value_a), (axis_b, value_b)) with
    axis_a < axis_b — the pairwise coverage target set."""
    axes = AXES if axes is None else axes
    names = sorted(axes)
    pairs: set[Pair] = set()
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            for va in axes[a]:
                for vb in axes[b]:
                    pairs.add(((a, va), (b, vb)))
    return pairs


def pairs_of(features: dict[str, str],
             axes: dict[str, tuple[str, ...]] | None = None) -> set[Pair]:
    """The feature pairs one instance (or spec) covers."""
    axes = AXES if axes is None else axes
    names = sorted(set(features) & set(axes))
    covered: set[Pair] = set()
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            covered.add(((a, features[a]), (b, features[b])))
    return covered


class CoverageLedger:
    """Pairwise-coverage accounting over the declared feature axes.

    ``record`` folds one instance's features in and returns the pairs it
    newly covered; ``report`` is the JSON-ready ledger the fuzz CLI and
    CI artifacts persist: per-instance rows, the coverage fraction, and
    the explicit list of feature pairs that remain unhit."""

    def __init__(self, axes: dict[str, tuple[str, ...]] | None = None):
        self.axes = dict(AXES if axes is None else axes)
        self.universe = all_pairs(self.axes)
        self.hit: set[Pair] = set()
        self.rows: list[dict] = []

    def record(self, features: dict[str, str], tag: str | None = None) -> set[Pair]:
        covered = pairs_of(features, self.axes) & self.universe
        new = covered - self.hit
        self.hit |= covered
        self.rows.append({
            "tag": tag,
            "features": dict(features),
            "pairs": len(covered),
            "new_pairs": len(new),
        })
        return new

    def coverage(self) -> float:
        if not self.universe:
            return 1.0
        return len(self.hit) / len(self.universe)

    def unhit(self) -> list[Pair]:
        return sorted(self.universe - self.hit)

    def report(self) -> dict:
        return {
            "schema": "pxdb-fuzz-coverage/1",
            "axes": {axis: list(values) for axis, values in self.axes.items()},
            "total_pairs": len(self.universe),
            "hit_pairs": len(self.hit),
            "coverage": round(self.coverage(), 4),
            "unhit": [
                [list(first), list(second)] for first, second in self.unhit()
            ],
            "instances": self.rows,
        }


@lru_cache(maxsize=1)
def standard_matrix() -> tuple[ScenarioSpec, ...]:
    """The shipped scenario matrix: a deterministic greedy pairwise
    covering design over :data:`AXES` (full pairwise coverage, dozens of
    shapes instead of the 1600-spec cartesian product)."""
    # Deterministic enumeration of the full cartesian product.
    pool: list[dict[str, str]] = [{}]
    for axis in list(AXES):
        pool = [
            {**partial, axis: value}
            for partial in pool
            for value in AXES[axis]
        ]
    specs = [ScenarioSpec(**features) for features in pool]
    remaining = all_pairs()
    chosen: list[ScenarioSpec] = []
    while remaining:
        best = None
        best_gain = -1
        for spec in specs:
            gain = len(pairs_of(spec.features) & remaining)
            if gain > best_gain:
                best, best_gain = spec, gain
        if best is None or best_gain == 0:  # pragma: no cover - full axes
            break
        chosen.append(best)
        remaining -= pairs_of(best.features)
    return tuple(chosen)


def matrix_instances(
    specs: Iterable[ScenarioSpec] | None = None,
    seed: int = 0,
    budget: int | None = None,
) -> Iterator[ScenarioInstance]:
    """Cycle the matrix, one fresh seed per instance: instance ``i`` uses
    ``specs[i % len]`` at seed ``seed + i`` — the deterministic stream the
    fuzz harness and the scenario benchmarks share."""
    specs = tuple(standard_matrix() if specs is None else specs)
    if not specs:
        raise GenerationError("empty scenario matrix", axis="kinds")
    count = 0
    while budget is None or count < budget:
        spec = specs[count % len(specs)]
        yield generate(spec, seed + count)
        count += 1
        if budget is None and count >= len(specs):
            return
