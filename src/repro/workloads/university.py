"""The paper's running example: the university PXDB of Figure 1 and the
random instance of Figure 2.

The figure itself cannot be copied verbatim (it is a drawing), so this
module reconstructs it to satisfy *every* statement the text makes:

* Example 3.1 — Mary is a chair with probability 0.7 and is either a full
  professor (0.6) or an assistant professor (0.4), mutually exclusively
  and surely one of the two;
* Example 3.2 — the Ph.D. student Amy appears with probability 0.54, the
  product of the probabilities on the root-to-Amy path (0.9 × 0.6 here);
* Example 3.4 — Lisa has a probabilistic rank, may be a chair, and may
  have further Ph.D. students; Paul is a probabilistic third member, and
  with fewer than 3 members C2's antecedent fails;
* Example 2.1 — on Figure 2's instance, S_dep selects the single
  department, S_chr selects Mary's member node, S_mem selects all member
  nodes and S_st selects the name nodes of David and Nicole;
* Example 2.3 — Figure 2's instance satisfies C1…C4; if Mary were not a
  chair it would violate C2; if Lisa were an assistant professor it would
  violate C4 (she supervises two Ph.D. students).

Schema of a member subtree::

    member
    ├── name ── <person name>
    ├── position
    │   ├── <rank>                  rank ∈ {full professor, assistant professor}
    │   └── chair                   (optional)
    └── ph.d. st. ── name ── <student name>     (zero or more)

The selectors S_dep, S_chr, S_mem, S_st and the constraints C1–C4 follow
Example 2.3.  :func:`scaled_university` generalizes the schema into an
arbitrarily large workload for the scaling experiments (E2/E3/E4).
"""

from __future__ import annotations

import random
from fractions import Fraction

from ..core.constraints import Constraint, always
from ..core.pxdb import PXDB
from ..core.query import selector
from ..pdoc.pdocument import PDocument, PNode, pdocument
from ..xmltree.document import Document, doc

FULL = "full professor"
ASSISTANT = "assistant professor"
PHD = "ph.d. st."


# -- selectors (top part of Figure 1) -----------------------------------------

def s_dep():
    """S_dep: the departments under the root."""
    return selector("university/$department")


def s_chr():
    """S_chr: member nodes where the person is both a professor and a chair."""
    return selector("*//$member[position/~'professor'][position/chair]")


def s_mem():
    """S_mem: member nodes that are ancestors of professors."""
    return selector("*//$member[//~'professor']")


def s_st():
    """S_st: name nodes that are children of nodes labeled 'ph.d. st.'."""
    return selector("*//'ph.d. st.'/$name")


# -- constraints C1–C4 (Example 2.3) ------------------------------------------

def c1() -> Constraint:
    """C1: a department cannot have more than one chair."""
    return always(s_dep(), s_chr(), "<=", 1, name="C1")


def c2() -> Constraint:
    """C2: a department with 3 or more professors must have a chair."""
    return Constraint(s_dep(), s_mem(), ">=", 3, s_chr(), ">=", 1, name="C2")


def c3() -> Constraint:
    """C3: a member must be a full professor in order to be a chair."""
    is_full = selector(f"$*[position/'{FULL}']")
    return always(s_chr(), is_full, ">=", 1, name="C3")


def c4() -> Constraint:
    """C4: an assistant professor supervises at most one Ph.D. student."""
    assistant = selector(f"*//$member[position/'{ASSISTANT}']")
    students = selector(f"*/$'{PHD}'")
    return always(assistant, students, "<=", 1, name="C4")


def figure1_constraints() -> list[Constraint]:
    """C = {C1, C2, C3, C4}."""
    return [c1(), c2(), c3(), c4()]


# -- the p-document of Figure 1 ------------------------------------------------

class Figure1:
    """The Figure 1 p-document with handles to its interesting nodes."""

    def __init__(self) -> None:
        pd, university = pdocument("university")
        department = university.ordinary("department")

        # Mary — Example 3.1: chair w.p. 0.7; full xor assistant (0.6/0.4).
        mary = department.ordinary("member")
        mary.ordinary("name").ordinary("Mary")
        mary_pos = mary.ordinary("position")
        mary_pos.ind().add_edge("chair", Fraction(7, 10))
        mary_rank = mary_pos.mux()
        mary_rank.add_edge(FULL, Fraction(3, 5))
        mary_rank.add_edge(ASSISTANT, Fraction(2, 5))

        # Lisa — probabilistic rank and chair; students David, Nicole, Amy.
        lisa = department.ordinary("member")
        lisa.ordinary("name").ordinary("Lisa")
        lisa_pos = lisa.ordinary("position")
        lisa_pos.ind().add_edge("chair", Fraction(2, 5))
        lisa_rank = lisa_pos.mux()
        lisa_rank.add_edge(FULL, Fraction(1, 2))
        lisa_rank.add_edge(ASSISTANT, Fraction(1, 2))

        students = lisa.ind()
        david_st = PNode("ord", PHD)
        david_name = david_st.ordinary("name")
        self.david = david_name.ordinary("David")
        students.add_edge(david_st, Fraction(4, 5))

        nicole_st = PNode("ord", PHD)
        nicole_name = nicole_st.ordinary("name")
        self.nicole = nicole_name.ordinary("Nicole")
        students.add_edge(nicole_st, Fraction(13, 20))

        # Amy — present with probability 0.9 × 0.6 = 0.54 (Example 3.2):
        # the student node exists w.p. 0.9 and then carries its name w.p. 0.6
        # (stacked distributional nodes; footnote 3 of the paper).
        amy_st = PNode("ord", PHD)
        amy_name_holder = amy_st.ind()
        amy_name = PNode("ord", "name")
        self.amy = amy_name.ordinary("Amy")
        amy_name_holder.add_edge(amy_name, Fraction(3, 5))
        students.add_edge(amy_st, Fraction(9, 10))

        # Paul — a probabilistic third member (Example 3.4: without him the
        # department has fewer than 3 members and C2 is vacuous).
        paul = PNode("ord", "member")
        paul.ordinary("name").ordinary("Paul")
        paul_rank = paul.ordinary("position").mux()
        paul_rank.add_edge(FULL, Fraction(7, 10))
        paul_rank.add_edge(ASSISTANT, Fraction(3, 10))
        department.ind().add_edge(paul, Fraction(3, 4))

        pd.validate()
        self.pdoc = pd
        self.university = university
        self.department = department
        self.mary = mary
        self.mary_chair = mary_pos.children[0].children[0]
        self.mary_full = mary_rank.children[0]
        self.mary_assistant = mary_rank.children[1]
        self.lisa = lisa
        self.lisa_chair = lisa_pos.children[0].children[0]
        self.lisa_full = lisa_rank.children[0]
        self.lisa_assistant = lisa_rank.children[1]
        self.david_st = david_st
        self.nicole_st = nicole_st
        self.amy_st = amy_st
        self.paul = paul
        self.paul_full = paul_rank.children[0]
        self.paul_assistant = paul_rank.children[1]

    def figure2_uids(self) -> frozenset[int]:
        """The world of the p-document that *is* the Figure 2 instance:
        Mary full professor and chair, Lisa full professor with David and
        Nicole, Paul present as an assistant professor, Amy's student node
        absent."""
        keep: set[int] = set()

        def descend(node: PNode) -> None:
            for child in node.children:
                if child.kind == "ord":
                    keep.add(child.uid)
                descend(child)

        # Start from the sure spine and prune the probabilistic parts.
        keep.add(self.university.uid)
        descend(self.university)
        drop_roots = [self.lisa_chair, self.amy_st, self.mary_assistant,
                      self.lisa_assistant, self.paul_full]
        for root in drop_roots:
            keep.discard(root.uid)
            dropped: set[int] = set()

            def collect(node: PNode) -> None:
                for child in node.children:
                    if child.kind == "ord":
                        dropped.add(child.uid)
                    collect(child)

            collect(root)
            keep -= dropped
        return frozenset(keep)


def figure1_pdocument() -> PDocument:
    """The p-document P̃ of Figure 1."""
    return Figure1().pdoc


def figure1_pxdb() -> PXDB:
    """The PXDB D̃ = (P̃, {C1, C2, C3, C4}) of Figure 1."""
    return PXDB(figure1_pdocument(), figure1_constraints())


def figure2_document() -> Document:
    """The random instance d of Figure 2: Mary is a full professor and the
    chair, Lisa is a full professor supervising David and Nicole, and Paul
    is an assistant professor.  Satisfies C1–C4 (Example 2.3)."""
    return Document(
        doc(
            "university",
            doc(
                "department",
                doc(
                    "member",
                    doc("name", "Mary"),
                    doc("position", FULL, "chair"),
                ),
                doc(
                    "member",
                    doc("name", "Lisa"),
                    doc("position", FULL),
                    doc(PHD, doc("name", "David")),
                    doc(PHD, doc("name", "Nicole")),
                ),
                doc(
                    "member",
                    doc("name", "Paul"),
                    doc("position", ASSISTANT),
                ),
            ),
        )
    )


# -- scaled workload -------------------------------------------------------------

def scaled_university(
    departments: int = 2,
    members: int = 3,
    students: int = 1,
    seed: int = 0,
    chair_prob: Fraction = Fraction(7, 10),
    full_prob: Fraction = Fraction(3, 5),
    member_prob: Fraction = Fraction(4, 5),
    student_prob: Fraction = Fraction(1, 2),
    anonymous: bool = False,
) -> PDocument:
    """A parameterized university p-document for the scaling experiments.

    Every department gets ``members`` probabilistic members (each present
    with ``member_prob``), each with a probabilistic chair, a full/assistant
    mux and ``students`` probabilistic Ph.D. students.  The constraint set
    C1–C4 applies unchanged.  Deterministic given ``seed`` (names only).

    With ``anonymous=True`` every name leaf carries the same label, making
    all departments structurally identical — the regime where the
    evaluator's structural cache collapses the workload to a single
    department's work (ablation experiment E10).
    """
    rng = random.Random(seed)
    pd, university = pdocument("university")
    for d_index in range(departments):
        department = university.ordinary("department")
        holder = department.ind()
        for m_index in range(members):
            member = PNode("ord", "member")
            member_name = (
                "somebody" if anonymous else f"member-{d_index}-{m_index}"
            )
            member.ordinary("name").ordinary(member_name)
            position = member.ordinary("position")
            position.ind().add_edge("chair", chair_prob)
            rank = position.mux()
            rank.add_edge(FULL, full_prob)
            rank.add_edge(ASSISTANT, 1 - full_prob)
            if students:
                student_holder = member.ind()
                for s_index in range(students):
                    student = PNode("ord", PHD)
                    student_name = (
                        "somebody"
                        if anonymous
                        else f"student-{d_index}-{m_index}-{s_index}"
                    )
                    student.ordinary("name").ordinary(student_name)
                    student_holder.add_edge(student, student_prob)
            holder.add_edge(member, member_prob)
        rng.random()  # reserved for future randomized variations
    pd.validate()
    return pd
