"""Random p-documents and random c-formulae for property-based testing.

The differential test-suite (evaluator vs. possible-worlds baseline,
sampler vs. exact conditional distribution) draws its instances here.
Everything is driven by a caller-supplied ``random.Random``, so hypothesis
can feed seeds and shrinking stays meaningful.

Determinism contract: no helper in this package may touch the
module-level ``random`` functions — under pytest-xdist (or any other
import-order shuffling) the shared global state would make "same seed ⇒
same instance" false.  Callers that want a default stream use
:func:`seeded_rng`; ``tests/test_random_gen_determinism.py`` audits the
package source for violations.
"""

from __future__ import annotations

import random
from fractions import Fraction

from ..core.formulas import (
    CFormula,
    CountAtom,
    MaxAtom,
    MinAtom,
    RatioAtom,
    SFormula,
    conjunction,
    disjunction,
    negation,
)
from ..pdoc.pdocument import ORD, PDocument, PNode
from ..xmltree.pattern import CHILD, DESC, Pattern, PatternNode
from ..xmltree.predicates import ANY, LabelEquals

DEFAULT_LABELS = ("a", "b", "c")

#: The seed behind every *defaulted* rng in this package.
DEFAULT_SEED = 0


def seeded_rng(seed: int = DEFAULT_SEED) -> random.Random:
    """A fresh, independent ``random.Random(seed)`` — the only sanctioned
    way to default an rng parameter in this package (a bare
    ``random.Random()`` would seed from the OS and break reproducibility;
    the module-level ``random`` functions share cross-test state)."""
    return random.Random(seed)


def random_pdocument(
    rng: random.Random,
    max_nodes: int = 9,
    max_depth: int = 4,
    labels: tuple = DEFAULT_LABELS,
    allow_exp: bool = False,
    numeric: bool = False,
) -> PDocument:
    """A small random p-document with ind/mux (and optionally exp) nodes.

    Sizes stay tiny on purpose: the ground truth enumerates 2^|dist edges|
    worlds.  ``numeric`` labels some leaves with small integers (for the
    MIN/MAX differential tests).
    """

    def pick_label():
        if numeric and rng.random() < 0.5:
            return rng.randint(1, 4)
        return rng.choice(labels)

    root = PNode(ORD, rng.choice(labels))
    count = [1]

    def grow(node: PNode, depth: int) -> None:
        if depth >= max_depth or count[0] >= max_nodes:
            return
        for _ in range(rng.randint(0, 2)):
            if count[0] >= max_nodes:
                break
            kinds = ["ord", "ord", "ind", "mux"]
            if allow_exp:
                kinds.append("exp")
            kind = rng.choice(kinds)
            if kind == "ord":
                child = PNode(ORD, pick_label())
                _attach(node, child, rng)
                count[0] += 1
                grow(child, depth + 1)
            else:
                child = PNode(kind)
                _attach(node, child, rng)
                grow(child, depth + 1)
                if not child.children:  # distributional leaves are illegal
                    grandchild = PNode(ORD, pick_label())
                    _attach(child, grandchild, rng)
                    count[0] += 1
                if child.kind == "exp":
                    _random_exp_distribution(child, rng)

    grow(root, 0)
    return PDocument(root)


def _attach(parent: PNode, child: PNode, rng: random.Random) -> None:
    if parent.kind == "ind":
        parent.add_edge(child, Fraction(rng.randint(0, 4), 4))
    elif parent.kind == "mux":
        parent.add_edge(child, Fraction(1, 4))
    else:  # ord or exp
        if parent.kind == "exp":
            parent.add_exp_child(child)
        else:
            parent._attach(child)


def _random_exp_distribution(node: PNode, rng: random.Random) -> None:
    indices = list(range(len(node.children)))
    subsets: list[tuple[tuple[int, ...], Fraction]] = []
    remaining = Fraction(1)
    seen: set[frozenset[int]] = set()
    for _ in range(rng.randint(1, 3)):
        subset = frozenset(i for i in indices if rng.random() < 0.6)
        if subset in seen:
            continue
        seen.add(subset)
        weight = remaining * Fraction(rng.randint(1, 3), 4)
        subsets.append((tuple(sorted(subset)), weight))
        remaining -= weight
    fallback = frozenset()
    if fallback in seen:
        subsets = [(s, w) for s, w in subsets]
        subsets[0] = (subsets[0][0], subsets[0][1] + remaining)
    else:
        subsets.append(((), remaining))
    node.set_exp_distribution(subsets)


def random_selector(
    rng: random.Random, labels: tuple = DEFAULT_LABELS, numeric: bool = False
) -> SFormula:
    """A random small selector (twig with child/descendant edges)."""

    def node_predicate():
        if rng.random() < 0.4:
            return ANY
        return LabelEquals(rng.choice(labels))

    def grow(depth: int) -> PatternNode:
        node = PatternNode(node_predicate(), rng.choice([CHILD, DESC]))
        if depth < 2:
            for _ in range(rng.randint(0, 2 - depth)):
                node.add_child(grow(depth + 1))
        return node

    root = grow(0)
    root.axis = CHILD
    pattern = Pattern(root)
    projected = rng.choice(list(pattern.nodes()))
    return SFormula(pattern, projected)


def random_formula(
    rng: random.Random,
    depth: int = 0,
    labels: tuple = DEFAULT_LABELS,
    allow_minmax: bool = False,
    allow_ratio: bool = True,
) -> CFormula:
    """A random c-formula (or a-formula) over small selectors, with nested
    attachments, negation, conjunction and disjunction."""
    roll = rng.random()
    ops_pool = ("=", "!=", "<", "<=", ">", ">=")
    if roll < 0.45 or depth >= 2:
        selectors = [random_selector(rng, labels, numeric=allow_minmax)
                     for _ in range(rng.randint(1, 2))]
        if depth < 2 and rng.random() < 0.4:
            target = selectors[0]
            node = rng.choice(list(target.pattern.nodes()))
            selectors[0] = target.with_alpha(
                node, random_formula(rng, depth + 2, labels, allow_minmax, allow_ratio)
            )
        if allow_minmax and rng.random() < 0.4:
            cls = MaxAtom if rng.random() < 0.5 else MinAtom
            return cls(selectors, rng.choice(ops_pool), Fraction(rng.randint(0, 4)))
        return CountAtom(selectors, rng.choice(ops_pool), rng.randint(0, 3))
    if roll < 0.6:
        return conjunction(
            [random_formula(rng, depth + 1, labels, allow_minmax, allow_ratio)
             for _ in range(2)]
        )
    if roll < 0.75:
        return disjunction(
            [random_formula(rng, depth + 1, labels, allow_minmax, allow_ratio)
             for _ in range(2)]
        )
    if roll < 0.9 or not allow_ratio:
        return negation(random_formula(rng, depth + 1, labels, allow_minmax, allow_ratio))
    return RatioAtom(
        [random_selector(rng, labels)],
        random_formula(rng, depth + 2, labels, allow_minmax, allow_ratio),
        rng.choice(("<", ">=", ">")),
        Fraction(rng.randint(0, 4), 4),
    )
