"""Textual aggregate events for the approximation tier.

The constraint grammar (:mod:`repro.core.constraint_parser`) deliberately
stops at count constraints — the paper's Definition 2.2.  The Monte-Carlo
tier answers *arbitrary* aggregate events, including the NP-hard SUM/AVG
atoms of Section 7.2, so the CLI (``repro approx``) and the service
(``/approx``) need a textual surface for them::

    sum(all) > 10
    avg(items/$*) >= 5/2 and count(*//$member) <= 4
    min('ph.d. st.'//$salary or professor//$salary) < 1000

Grammar (one conjunction of aggregate atoms):

    event     :=  atom (" and " atom)*
    atom      :=  AGG "(" selectors ")" OP number
    AGG       :=  sum | avg | min | max | count | cnt     (case-insensitive)
    selectors :=  "all" | selector (" or " selector)*
    OP        :=  = | != | < | <= | > | >=                (and unicode aliases)

Each selector is a pattern with exactly one ``$``-marked node
(:func:`repro.xmltree.parser.parse_selector`); ``all`` is sugar for the
every-node pair ``$* or *//$*`` (the root plus every descendant — the
shape the aggregate benchmarks use).  Numbers are exact: integers,
fractions (``5/2``) or decimal strings, parsed by ``Fraction``.
"""

from __future__ import annotations

import re
from fractions import Fraction

from .. import ops
from ..core.formulas import (
    AvgAtom,
    CFormula,
    CountAtom,
    MaxAtom,
    MinAtom,
    SFormula,
    SumAtom,
    conjunction,
)
from ..xmltree.parser import parse_selector

_ATOMS = {
    "sum": SumAtom,
    "avg": AvgAtom,
    "min": MinAtom,
    "max": MaxAtom,
    "count": CountAtom,
    "cnt": CountAtom,
}

_HEAD_RE = re.compile(r"^\s*([a-zA-Z]+)\s*\(")
_TAIL_RE = re.compile(r"^\s*(<=|>=|!=|<>|==|≤|≥|≠|[=<>])\s*(\S+)\s*$")

#: The ``all`` sugar: the root node plus every proper descendant.
ALL_SELECTORS = ("$*", "*//$*")


def parse_event(text: str) -> CFormula:
    """Parse an aggregate event into a c-formula (``ValueError`` on any
    syntax problem, with the offending fragment in the message)."""
    if not text or not text.strip():
        raise ValueError("empty aggregate event")
    atoms = [_parse_atom(part) for part in _split_words(text, "and")]
    return conjunction(atoms)


def _parse_atom(text: str) -> CFormula:
    head = _HEAD_RE.match(text)
    if head is None:
        raise ValueError(
            f"expected an aggregate atom like 'sum(all) > 10', got {text!r}"
        )
    cls = _ATOMS.get(head.group(1).lower())
    if cls is None:
        raise ValueError(
            f"unknown aggregate {head.group(1)!r} "
            f"(choose from {', '.join(sorted(set(_ATOMS)))})"
        )
    body_start = head.end()
    body_end = _matching_paren(text, body_start - 1)
    tail = _TAIL_RE.match(text[body_end + 1:])
    if tail is None:
        raise ValueError(
            f"expected a comparison after the selector list in {text!r}"
        )
    op = ops.normalize(tail.group(1))
    try:
        bound = Fraction(tail.group(2))
    except (ValueError, ZeroDivisionError) as error:
        raise ValueError(
            f"invalid bound {tail.group(2)!r} in {text!r}: {error}"
        ) from None
    if cls is CountAtom:
        if bound.denominator != 1:
            raise ValueError(f"count bound must be an integer, got {bound}")
        bound = int(bound)
    return cls(_parse_selectors(text[body_start:body_end]), op, bound)


def _parse_selectors(body: str) -> list[SFormula]:
    if body.strip().lower() == "all":
        texts: tuple[str, ...] = ALL_SELECTORS
    else:
        texts = tuple(_split_words(body, "or"))
    selectors = []
    for text in texts:
        pattern, node = parse_selector(text.strip())
        selectors.append(SFormula(pattern, node))
    return selectors


def _matching_paren(text: str, open_index: int) -> int:
    depth = 0
    for index in range(open_index, len(text)):
        char = text[index]
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth == 0:
                return index
    raise ValueError(f"unbalanced parentheses in {text!r}")


def _split_words(text: str, word: str) -> list[str]:
    """Split on the keyword ``word`` at parenthesis depth 0 (the keyword
    must stand alone between spaces, so label text like ``band`` or a
    selector ``origin`` never splits)."""
    parts: list[str] = []
    depth = 0
    start = 0
    tokens = re.finditer(r"\S+", text)
    for match in tokens:
        token = match.group(0)
        if depth == 0 and token.lower() == word:
            parts.append(text[start:match.start()])
            start = match.end()
            continue
        depth += token.count("(") - token.count(")")
    parts.append(text[start:])
    cleaned = [part.strip() for part in parts]
    if any(not part for part in cleaned):
        raise ValueError(f"dangling {word!r} in {text!r}")
    return cleaned
