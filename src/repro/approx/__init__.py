"""The guaranteed-accuracy approximation tier for NP-hard aggregates.

Exact evaluation of SUM/AVG events under constraints is NP-hard
(Proposition 7.2), but the paper's polynomial conditioned sampler makes
an unbiased Monte-Carlo estimator with *certified* additive error the
natural serving tier:

* :mod:`repro.approx.bounds` — Hoeffding and empirical-Bernstein
  stopping rules (fixed-n and adaptive/anytime), each certifying
  ``estimate ± ε`` at confidence 1 − δ;
* :mod:`repro.approx.estimator` — batched, seedable, span-instrumented
  estimation of arbitrary c-formula events over the warm sampler;
* :mod:`repro.approx.events` — the textual aggregate-event grammar the
  CLI (``repro approx``) and the service (``/approx``) accept.

Wired as ``backend="approx"`` through :class:`~repro.core.pxdb.PXDB`
(``approx_probability`` / ``approx_query``), the service routes and the
CLI.  See docs/ALGORITHM.md §10 for the derivation.
"""

from .bounds import (
    DEFAULT_RULE,
    RULES,
    AnytimeHoeffding,
    BoundedEstimate,
    EmpiricalBernstein,
    FixedHoeffding,
    StoppingRule,
    bernstein_halfwidth,
    hoeffding_halfwidth,
    hoeffding_sample_size,
    make_rule,
)
from .estimator import (
    DEFAULT_DELTA,
    DEFAULT_EPSILON,
    DEFAULT_MAX_SAMPLES,
    ApproxEstimator,
    ApproxResult,
)
from .events import parse_event

__all__ = [
    "DEFAULT_RULE",
    "RULES",
    "AnytimeHoeffding",
    "ApproxEstimator",
    "ApproxResult",
    "BoundedEstimate",
    "DEFAULT_DELTA",
    "DEFAULT_EPSILON",
    "DEFAULT_MAX_SAMPLES",
    "EmpiricalBernstein",
    "FixedHoeffding",
    "StoppingRule",
    "bernstein_halfwidth",
    "hoeffding_halfwidth",
    "hoeffding_sample_size",
    "make_rule",
    "parse_event",
]
