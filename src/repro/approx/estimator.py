"""The Monte-Carlo estimator over the conditioned sampler.

Proposition 7.2 makes Pr(D ⊨ γ) NP-hard once γ contains SUM or AVG atoms
— but the paper's own SAMPLE⟨C⟩ algorithm (Figure 3) draws from the
*conditioned* distribution in polynomial time, and every c-formula
(aggregates included) is polynomial to evaluate on a *concrete* document
(:class:`~repro.core.formulas.DocumentEvaluator`).  The composition is an
unbiased estimator with rigorous additive error:

    X_i = [d_i ⊨ γ],  d_i ~ Pr(D = ·)      ⇒      E[X̄] = Pr(D ⊨ γ),

certified to ±ε at confidence 1 − δ by a :mod:`repro.approx.bounds`
stopping rule.  Because the proposal *is* the target distribution there
is no rejection blow-up — the cost per draw is the sampler's, independent
of Pr(P ⊨ C), unlike :mod:`repro.baseline.rejection` whose expected
attempts are 1 / Pr(P ⊨ C).

Draws run on the PXDB's warm engines (``backend="auto"`` by default:
float-fast, decisions bit-identical to exact — see docs/NUMERIC.md), are
batched between stopping-rule decision points, seedable, and traced as
``approx.estimate`` spans carrying n/ε/δ attributes.

:meth:`ApproxEstimator.estimate_many` evaluates several events against
the *same* draws — the estimator analogue of the exact evaluator's joint
DP batching, and what makes approximate EVAL⟨Q, C⟩ (one event per
candidate answer) affordable.  Each event keeps its own stopping rule;
an event that certifies early stops observing while the rest continue.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..core.formulas import CFormula, DocumentEvaluator
from ..obs.spans import TRACER
from ..pdoc.generate import random_instance
from .bounds import StoppingRule, make_rule
from .events import parse_event

DEFAULT_EPSILON = 0.05
DEFAULT_DELTA = 0.05
DEFAULT_MAX_SAMPLES = 200_000
#: Upper bound on draws between stopping-rule consultations.
MAX_BATCH = 256


@dataclass(frozen=True)
class ApproxResult:
    """One certified estimate: Pr(event) ∈ [lo, hi] with confidence
    1 − δ, from ``n`` draws.  ``stopped`` records why sampling ended —
    ``"target"`` (the rule certified ±ε) or ``"max_samples"`` (the cap
    hit first; the interval is still valid, just wider than ε)."""

    estimate: float
    lo: float
    hi: float
    n: int
    epsilon: float
    delta: float
    rule: str
    seed: int | None
    stopped: str

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def __contains__(self, value) -> bool:
        return self.lo <= value <= self.hi

    def as_dict(self) -> dict:
        """JSON-ready rendering (the service payload shape)."""
        return {
            "estimate": self.estimate,
            "interval": [self.lo, self.hi],
            "n_samples": self.n,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "rule": self.rule,
            "seed": self.seed,
            "stopped": self.stopped,
        }


class ApproxEstimator:
    """The reusable estimator bound to one PXDB.

    Holding one per PXDB (the store holds one per entry) keeps the
    sampler engines warm across calls and accumulates the observability
    counters (:meth:`stats`)."""

    def __init__(self, pxdb, backend: str = "auto"):
        self.pxdb = pxdb
        self.backend = backend
        self.calls = 0
        self.samples_drawn = 0

    def stats(self) -> dict:
        return {
            "backend": self.backend,
            "calls": self.calls,
            "samples_drawn": self.samples_drawn,
        }

    # -- estimation ------------------------------------------------------------
    def estimate(
        self,
        event: CFormula | str,
        *,
        epsilon: float = DEFAULT_EPSILON,
        delta: float = DEFAULT_DELTA,
        rule: str | None = None,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        seed: int | None = None,
        rng: random.Random | None = None,
        conditioned: bool = True,
    ) -> ApproxResult:
        """Certified estimate of Pr(D ⊨ event) (``conditioned=True``) or
        of the unconditioned Pr(P ⊨ event) (``conditioned=False`` — draws
        come from :func:`~repro.pdoc.generate.random_instance` instead of
        the conditioned sampler; this is how ``/sat backend=approx``
        estimates the denominator Pr(P ⊨ C) itself)."""
        return self.estimate_many(
            [event],
            epsilon=epsilon,
            delta=delta,
            rule=rule,
            max_samples=max_samples,
            seed=seed,
            rng=rng,
            conditioned=conditioned,
        )[0]

    def estimate_many(
        self,
        events: Sequence[CFormula | str],
        *,
        epsilon: float = DEFAULT_EPSILON,
        delta: float = DEFAULT_DELTA,
        rule: str | None = None,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        seed: int | None = None,
        rng: random.Random | None = None,
        conditioned: bool = True,
    ) -> list[ApproxResult]:
        """All events evaluated against shared draws (one sampler pass
        serves every event); each event gets its own stopping rule, so
        every returned interval carries the full 1 − δ guarantee.

        Each event is a :class:`CFormula` or an event-grammar string
        (:func:`repro.approx.events.parse_event`)."""
        events = [
            parse_event(event) if isinstance(event, str) else event
            for event in events
        ]
        if not events:
            return []
        if max_samples < 1:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        rules = [make_rule(rule, epsilon, delta) for _ in events]
        if rng is None:
            rng = random.Random(seed)
        if not TRACER.enabled:
            return self._run(events, rules, rng, max_samples, seed, conditioned)
        with TRACER.span(
            "approx.estimate",
            events=len(events),
            epsilon=epsilon,
            delta=delta,
            rule=rules[0].name,
            backend=self.backend,
            conditioned=conditioned,
        ) as span:
            results = self._run(
                events, rules, rng, max_samples, seed, conditioned
            )
            span.set(
                n=max(result.n for result in results),
                certified=all(r.stopped == "target" for r in results),
            )
            return results

    # -- internals -------------------------------------------------------------
    def _run(
        self,
        events: list[CFormula],
        rules: list[StoppingRule],
        rng: random.Random,
        max_samples: int,
        seed: int | None,
        conditioned: bool,
    ) -> list[ApproxResult]:
        active = list(range(len(events)))
        drawn = 0
        while active and drawn < max_samples:
            batch = min(
                MAX_BATCH,
                max_samples - drawn,
                min(rules[i].suggest_batch(MAX_BATCH) for i in active),
            )
            for _ in range(batch):
                document = self._draw(rng, conditioned)
                evaluator = DocumentEvaluator()
                for index in active:
                    rules[index].observe(
                        1.0
                        if evaluator.satisfies(document.root, events[index])
                        else 0.0
                    )
            drawn += batch
            active = [i for i in active if not rules[i].done]
        self.calls += 1
        self.samples_drawn += drawn
        results = []
        for stopping_rule in rules:
            certified = stopping_rule.done
            estimate, lo, hi, n_used = stopping_rule.finalize()
            results.append(
                ApproxResult(
                    estimate=estimate,
                    lo=lo,
                    hi=hi,
                    n=n_used,
                    epsilon=stopping_rule.epsilon,
                    delta=stopping_rule.delta,
                    rule=stopping_rule.name,
                    seed=seed,
                    stopped="target" if certified else "max_samples",
                )
            )
        return results

    def _draw(self, rng: random.Random, conditioned: bool):
        if conditioned:
            return self.pxdb.sample(
                rng, backend=None if self.backend == "exact" else self.backend
            )
        return random_instance(self.pxdb.pdoc, rng)
