"""Concentration bounds and adaptive stopping rules for the Monte-Carlo tier.

Every estimator in :mod:`repro.approx` averages i.i.d. indicator draws
X₁, …, Xₙ ∈ [0, 1] from the conditioned sampler and must certify

    Pr(|X̄ₙ − μ| ≤ ε) ≥ 1 − δ

for a *user-chosen* additive error ε at confidence 1 − δ.  Three rules:

* :class:`FixedHoeffding` — the classical bound.  The sample size
  n = ⌈ln(2/δ) / (2ε²)⌉ is fixed *before* any data is seen, so the plain
  Hoeffding inequality applies at the stopping time (which is therefore
  deterministic — stopping early at a data-independent cap stays valid).
* :class:`AnytimeHoeffding` — a sequential variant whose interval is
  simultaneously valid at *every* checkpoint (union bound over
  checkpoints k with budgets δₖ = δ/(k(k+1)), which sum to δ).  Pays a
  slightly larger final n than the fixed rule for the right to stop —
  and report a sound interval — at any point, e.g. a ``max_samples`` cap.
* :class:`EmpiricalBernstein` — the adaptive rule (EBStop family:
  Audibert, Munos & Szepesvári 2007; Mnih, Szepesvári & Audibert 2008).
  Its half-width

      h = √(2 Vₙ ln(3/δₖ) / n) + 3 ln(3/δₖ) / n

  replaces the worst-case range with the *empirical* variance Vₙ, so on
  low-variance streams (probabilities near 0 or 1 — exactly where the
  NP-hard SUM/AVG events of Proposition 7.2 usually land) it stops with
  a fraction of Hoeffding's samples; the additive 3 ln(3/δₖ)/n term
  keeps it valid even when Vₙ underestimates the true variance.

Checkpoint scheduling is *adaptive*: after each checkpoint the rule
solves its own half-width formula for the smallest n that would reach ε
at the current variance estimate and jumps (growth-capped) straight
there, so the harmonic δₖ budget is spent on a handful of checkpoints
instead of leaking on every draw.

Sequential intervals are reported as the *intersection* of all
checkpoint intervals — the union bound makes them simultaneously valid,
and intersecting can only tighten the result.
"""

from __future__ import annotations

import math
from typing import Iterable, NamedTuple


class BoundedEstimate(NamedTuple):
    """``(estimate, lo, hi, n)``: X̄ₙ with its certified confidence
    interval, clipped to [0, 1] (probabilities cannot leave the unit
    interval, and clipping an interval that contains μ keeps μ)."""

    estimate: float
    lo: float
    hi: float
    n: int


def hoeffding_sample_size(epsilon: float, delta: float = 0.05) -> int:
    """Samples for additive error ``epsilon`` at confidence 1 − ``delta``:
    n = ⌈ln(2/δ) / (2ε²)⌉ (Hoeffding's inequality for [0, 1] variables)."""
    _validate(epsilon, delta)
    return math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))


def hoeffding_halfwidth(n: int, delta: float) -> float:
    """The half-width √(ln(2/δ) / 2n) certified by n fixed-size samples."""
    return math.sqrt(math.log(2.0 / delta) / (2.0 * n))


def bernstein_halfwidth(variance: float, n: int, delta: float) -> float:
    """The empirical-Bernstein half-width at sample variance ``variance``."""
    log_term = math.log(3.0 / delta)
    return math.sqrt(2.0 * variance * log_term / n) + 3.0 * log_term / n


def _validate(epsilon: float, delta: float) -> None:
    if not 0.0 < epsilon < 1.0 or not 0.0 < delta < 1.0:
        raise ValueError("epsilon and delta must lie in (0, 1)")


class StoppingRule:
    """Base: Welford-accumulated mean/variance plus the certification API.

    Subclasses decide *when* the certified half-width reaches ε.  Usage::

        rule = EmpiricalBernstein(epsilon=0.02, delta=0.05)
        while not rule.done and n < cap:
            rule.observe(draw())
        estimate, lo, hi, n_used = rule.finalize()
    """

    name = "?"

    def __init__(self, epsilon: float, delta: float = 0.05):
        _validate(epsilon, delta)
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        # Running certified interval (intersection over checkpoints for
        # the sequential rules); [0, 1] is trivially valid at n = 0.
        self._lo = 0.0
        self._hi = 1.0
        self._done = False

    # -- data -----------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Fold one draw in (must lie in [0, 1]); O(1)."""
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"observations must lie in [0, 1], got {value!r}")
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        self._advance()

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    # -- state ----------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        """The (biased, 1/n) sample variance — the Vₙ of the EB bound."""
        return self._m2 / self._n if self._n else 0.0

    @property
    def done(self) -> bool:
        """Whether the certified half-width has reached ε."""
        return self._done

    @property
    def interval(self) -> tuple[float, float]:
        return self._lo, self._hi

    def result(self) -> BoundedEstimate:
        """The current estimate with its certified interval."""
        lo, hi = self._lo, self._hi
        estimate = min(max(self._mean, lo), hi)
        return BoundedEstimate(estimate, lo, hi, self._n)

    def finalize(self) -> BoundedEstimate:
        """Certify at the *current* n (sequential rules spend one final
        checkpoint if draws arrived past the last one — the way to get
        the tightest sound interval after a ``max_samples`` truncation),
        then report."""
        return self.result()

    def suggest_batch(self, cap: int = 256) -> int:
        """How many further draws to take before the next decision point
        (a batching hint, not a contract — overshooting a checkpoint is
        always sound, the checkpoint simply fires at a larger n)."""
        raise NotImplementedError

    # -- subclass hook ---------------------------------------------------------
    def _advance(self) -> None:
        raise NotImplementedError

    def _intersect(self, halfwidth: float) -> None:
        self._lo = max(self._lo, self._mean - halfwidth)
        self._hi = min(self._hi, self._mean + halfwidth)
        if halfwidth <= self.epsilon:
            self._done = True


class FixedHoeffding(StoppingRule):
    """The fixed-n rule: draw exactly ⌈ln(2/δ)/(2ε²)⌉ samples, report
    X̄ ± ε.  Data-independent by construction — its only legitimate early
    exit is a *predetermined* cap, where the bound still holds at the
    capped n (the stopping time never looked at the data)."""

    name = "hoeffding"

    def __init__(self, epsilon: float, delta: float = 0.05):
        super().__init__(epsilon, delta)
        self.n_target = hoeffding_sample_size(epsilon, delta)

    def _advance(self) -> None:
        if self._n >= self.n_target:
            self._intersect(hoeffding_halfwidth(self._n, self.delta))

    def finalize(self) -> BoundedEstimate:
        if not self._done and self._n:
            # Truncated below n_target: n was capped a priori, so the
            # plain (wider-than-ε) Hoeffding interval at this n is valid.
            self._intersect(hoeffding_halfwidth(self._n, self.delta))
            self._done = False
        return self.result()

    def suggest_batch(self, cap: int = 256) -> int:
        return max(1, min(cap, self.n_target - self._n))


class _Sequential(StoppingRule):
    """Shared checkpoint machinery: harmonic δ budget + adaptive jumps."""

    #: First checkpoint — below this the variance estimate is noise.
    FIRST_CHECKPOINT = 32
    #: Per-checkpoint growth cap on the adaptive jump.  Jumping straight
    #: to the projected target trusts a possibly-low variance estimate;
    #: capping at 4× bounds the overshoot to one re-plan per quadrupling.
    GROWTH = 4

    def __init__(self, epsilon: float, delta: float = 0.05):
        super().__init__(epsilon, delta)
        self._k = 0
        self._checked_at = 0
        self._next_checkpoint = self.FIRST_CHECKPOINT

    def _delta_k(self, k: int) -> float:
        # Σ_{k≥1} δ/(k(k+1)) = δ — the union bound over all checkpoints.
        return self.delta / (k * (k + 1))

    def _advance(self) -> None:
        if self._done or self._n < self._next_checkpoint:
            return
        self._checkpoint()

    def _checkpoint(self) -> None:
        self._k += 1
        self._checked_at = self._n
        self._intersect(self._halfwidth(self._delta_k(self._k)))
        if self._done:
            return
        target = self._target_n(self._delta_k(self._k + 1))
        self._next_checkpoint = max(
            self._n + 16, min(target, self.GROWTH * self._n)
        )

    def finalize(self) -> BoundedEstimate:
        if not self._done and self._n > self._checked_at:
            # Spend one more checkpoint at the truncation point so the
            # reported interval reflects every draw actually taken.
            self._checkpoint()
        return self.result()

    def suggest_batch(self, cap: int = 256) -> int:
        return max(1, min(cap, self._next_checkpoint - self._n))

    # -- subclass hooks --------------------------------------------------------
    def _halfwidth(self, delta_k: float) -> float:
        raise NotImplementedError

    def _target_n(self, delta_k: float) -> int:
        """Smallest n projected to certify ε at budget ``delta_k``."""
        raise NotImplementedError


class AnytimeHoeffding(_Sequential):
    """The sequential Hoeffding rule: √(ln(2/δₖ) / 2n) at checkpoint k.

    Variance-blind, so its target n is computable in closed form and the
    schedule needs only a few checkpoints; strictly more samples than
    :class:`FixedHoeffding` at full term (δₖ < δ), but sound at any
    truncation point."""

    name = "anytime"

    def _halfwidth(self, delta_k: float) -> float:
        return hoeffding_halfwidth(self._n, delta_k)

    def _target_n(self, delta_k: float) -> int:
        return math.ceil(
            math.log(2.0 / delta_k) / (2.0 * self.epsilon * self.epsilon)
        )


class EmpiricalBernstein(_Sequential):
    """The adaptive rule: variance-sensitive half-width, anytime valid.

    Solving  √(2 Vₙ L / n) + 3 L / n = ε  for n (L = ln(3/δₖ)) is a
    quadratic in √n, giving the adaptive jump target

        √n = (√(2 Vₙ L) + √(2 Vₙ L + 12 ε L)) / (2ε).

    The 3L/n term floors the stopping n at ≈ 3 ln(3/δₖ)/ε even at zero
    variance — still far below Hoeffding's ln(2/δ)/(2ε²) for small ε."""

    name = "bernstein"

    def _halfwidth(self, delta_k: float) -> float:
        return bernstein_halfwidth(self.variance, self._n, delta_k)

    def _target_n(self, delta_k: float) -> int:
        log_term = math.log(3.0 / delta_k)
        a = math.sqrt(2.0 * self.variance * log_term)
        root = (a + math.sqrt(a * a + 12.0 * self.epsilon * log_term)) / (
            2.0 * self.epsilon
        )
        return math.ceil(root * root)


RULES: dict[str, type[StoppingRule]] = {
    FixedHoeffding.name: FixedHoeffding,
    AnytimeHoeffding.name: AnytimeHoeffding,
    EmpiricalBernstein.name: EmpiricalBernstein,
}

DEFAULT_RULE = EmpiricalBernstein.name


def make_rule(
    name: str | None, epsilon: float, delta: float = 0.05
) -> StoppingRule:
    """A fresh stopping rule by name (None → the adaptive default)."""
    cls = RULES.get(DEFAULT_RULE if name is None else name)
    if cls is None:
        raise ValueError(
            f"unknown stopping rule {name!r} (choose from {', '.join(RULES)})"
        )
    return cls(epsilon, delta)
