"""Command-line interface: ``python -m repro <command> …``.

Operates on p-documents serialized in the ProTDB-style XML of
``repro.pdoc.serialize`` and constraint files in the textual syntax of
``repro.core.constraint_parser``.

Commands
--------

* ``validate  PDOC``                       — well-formedness check (Section 3.1);
* ``worlds    PDOC [--limit K]``           — the K most probable worlds;
* ``sat       PDOC -c CONSTRAINTS``        — CONSTRAINT-SAT⟨C⟩: Pr(P ⊨ C);
* ``query     PDOC -q QUERY [-c FILE]``    — EVAL⟨Q, C⟩: per-answer probabilities;
* ``sample    PDOC [-c FILE] [-n N] [--stats] [--no-incremental]``
                                           — SAMPLE⟨C⟩: conditioned samples (Fig. 3);
* ``check     PDOC DOCUMENT -c FILE``      — explain a document's violations;
* ``skeleton  PDOC``                       — print the skeleton document.

Example::

    python -m repro sat university.pxml -c constraints.txt
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path

from .core.constraint_parser import parse_constraints
from .core.constraints import constraints_formula
from .core.evaluator import probability
from .core.explain import explain_violations
from .core.pxdb import PXDB
from .core.query import Query
from .pdoc.enumerate import world_documents
from .pdoc.serialize import pdocument_from_xml
from .xmltree.serialize import document_from_xml, document_to_xml


def _load_pdocument(path: str):
    return pdocument_from_xml(Path(path).read_text())


def _load_constraints(path: str | None):
    if path is None:
        return []
    return parse_constraints(Path(path).read_text())


def _cmd_validate(args) -> int:
    pdoc = _load_pdocument(args.pdocument)
    pdoc.validate()
    print(
        f"ok: {pdoc.ordinary_size()} ordinary nodes, "
        f"{len(pdoc.dist_edges())} distributional edges"
    )
    return 0


def _cmd_worlds(args) -> int:
    pdoc = _load_pdocument(args.pdocument)
    edges = len(pdoc.dist_edges())
    if edges > args.max_edges:
        print(
            f"refusing: {edges} distributional edges means up to 2^{edges} "
            f"worlds (raise --max-edges to force)",
            file=sys.stderr,
        )
        return 1
    for document, prob in world_documents(pdoc)[: args.limit]:
        print(f"Pr = {prob}  ≈ {float(prob):.6f}")
        print(document_to_xml(document, style="tags"))
        print()
    return 0


def _cmd_sat(args) -> int:
    pdoc = _load_pdocument(args.pdocument)
    constraints = _load_constraints(args.constraints)
    value = probability(pdoc, constraints_formula(constraints))
    print(f"Pr(P |= C) = {value}  ≈ {float(value):.6f}")
    print(f"well-defined PXDB: {value > 0}")
    return 0


def _cmd_query(args) -> int:
    pdoc = _load_pdocument(args.pdocument)
    constraints = _load_constraints(args.constraints)
    db = PXDB(pdoc, constraints)
    table = db.query_labels(args.query)
    for labels, prob in sorted(table.items(), key=lambda kv: (-kv[1], str(kv[0]))):
        rendered = ", ".join(str(v) for v in labels)
        print(f"({rendered})  Pr = {prob}  ≈ {float(prob):.6f}")
    return 0


def _cmd_sample(args) -> int:
    pdoc = _load_pdocument(args.pdocument)
    constraints = _load_constraints(args.constraints)
    db = PXDB(pdoc, constraints)
    rng = random.Random(args.seed)
    incremental = not args.no_incremental
    for _ in range(args.count):
        print(document_to_xml(db.sample(rng, incremental=incremental), style="tags"))
        print()
    if args.stats:
        stats = db.sample_engine.stats()
        print(f"samples:               {args.count}", file=sys.stderr)
        print(f"evaluator runs:        {stats['runs']}", file=sys.stderr)
        per_sample = stats["runs"] / args.count if args.count else 0.0
        print(f"evaluations/sample:    {per_sample:.1f}", file=sys.stderr)
        print(f"subtree dists computed: {stats['nodes_computed']}", file=sys.stderr)
        print(
            f"cache hits/misses:     {stats['cache_hits']}/{stats['cache_misses']} "
            f"(hit rate {stats['hit_rate']:.1%})",
            file=sys.stderr,
        )
        print(f"cache entries:         {stats['cache_entries']}", file=sys.stderr)
    return 0


def _cmd_check(args) -> int:
    document = document_from_xml(Path(args.document).read_text())
    constraints = _load_constraints(args.constraints)
    violations = explain_violations(document, constraints)
    if not violations:
        print("document satisfies all constraints")
        return 0
    for violation in violations:
        print(violation.describe())
    return 1


def _cmd_skeleton(args) -> int:
    pdoc = _load_pdocument(args.pdocument)
    print(document_to_xml(pdoc.skeleton(), style="tags"))
    return 0


def _cmd_stats(args) -> int:
    from .pdoc.stats import summary

    pdoc = _load_pdocument(args.pdocument)
    report = summary(pdoc)
    for key, value in report.items():
        if key == "expected_size":
            print(f"{key:>22}: {value} ≈ {float(value):.3f}")
        elif key == "process_entropy_bits":
            print(f"{key:>22}: {value:.3f}")
        else:
            print(f"{key:>22}: {value}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PXDB: probabilistic XML with constraints (PODS 2008)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("validate", help="check p-document well-formedness")
    p.add_argument("pdocument")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("worlds", help="enumerate the most probable worlds")
    p.add_argument("pdocument")
    p.add_argument("--limit", type=int, default=5)
    p.add_argument("--max-edges", type=int, default=16)
    p.set_defaults(func=_cmd_worlds)

    p = sub.add_parser("sat", help="CONSTRAINT-SAT: compute Pr(P |= C)")
    p.add_argument("pdocument")
    p.add_argument("-c", "--constraints", required=True)
    p.set_defaults(func=_cmd_sat)

    p = sub.add_parser("query", help="EVAL<Q,C>: per-answer probabilities")
    p.add_argument("pdocument")
    p.add_argument("-q", "--query", required=True, help="pattern with $ markers")
    p.add_argument("-c", "--constraints")
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("sample", help="SAMPLE<C>: conditioned samples (Figure 3)")
    p.add_argument("pdocument")
    p.add_argument("-c", "--constraints")
    p.add_argument("-n", "--count", type=int, default=1)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument(
        "--stats",
        action="store_true",
        help="print incremental-engine counters (evaluations per sample, "
        "cache hit rate, subtree distributions recomputed) to stderr",
    )
    p.add_argument(
        "--no-incremental",
        action="store_true",
        help="disable the cross-run signature cache (from-scratch "
        "evaluation per edge, the pre-engine behavior; for comparison)",
    )
    p.set_defaults(func=_cmd_sample)

    p = sub.add_parser("check", help="explain a document's constraint violations")
    p.add_argument("document")
    p.add_argument("-c", "--constraints", required=True)
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser("skeleton", help="print the all-nodes skeleton document")
    p.add_argument("pdocument")
    p.set_defaults(func=_cmd_skeleton)

    p = sub.add_parser("stats", help="structural/distributional statistics")
    p.add_argument("pdocument")
    p.set_defaults(func=_cmd_stats)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
