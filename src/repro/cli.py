"""Command-line interface: ``python -m repro <command> …``.

Operates on p-documents serialized in the ProTDB-style XML of
``repro.pdoc.serialize`` and constraint files in the textual syntax of
``repro.core.constraint_parser``.

Commands
--------

* ``validate  PDOC``                       — well-formedness check (Section 3.1);
* ``worlds    PDOC [--limit K]``           — the K most probable worlds;
* ``sat       PDOC -c CONSTRAINTS``        — CONSTRAINT-SAT⟨C⟩: Pr(P ⊨ C);
* ``query     PDOC -q QUERY [-c FILE]``    — EVAL⟨Q, C⟩: per-answer probabilities;
* ``sample    PDOC [-c FILE] [-n N] [--stats] [--no-incremental]``
                                           — SAMPLE⟨C⟩: conditioned samples (Fig. 3);
* ``approx    PDOC [-c FILE] -e EVENT [--epsilon E] [--delta D] [--seed S]``
                                           — certified Monte-Carlo estimate of an
                                             NP-hard aggregate event (repro.approx);
* ``check     PDOC DOCUMENT -c FILE``      — explain a document's violations;
* ``skeleton  PDOC``                       — print the skeleton document;
* ``circuit   {compile,eval,grad,stats,sweep} PDOC [-c FILE] [-q PATTERN]``
                                           — arithmetic-circuit compilation
                                             (docs/CIRCUIT.md): compile the
                                             c-formula DP, evaluate it (optionally
                                             after ``--rebind``-ing another
                                             p-document's probabilities), or rank
                                             parameters by sensitivity;
* ``serve     --db NAME=PDOC[:FILE] …``    — the JSON/HTTP service (docs/SERVICE.md);
* ``trace     {top,show,export} [--url U]``— span traces of a running service
                                             (docs/OBSERVABILITY.md).

Example::

    python -m repro sat university.pxml -c constraints.txt

Every load failure (missing file, malformed XML, bad constraint syntax)
prints a one-line ``error: …`` to stderr and exits with status 2.
"""

from __future__ import annotations

import argparse
import random
import sys
from fractions import Fraction

from .approx import DEFAULT_DELTA as APPROX_DELTA
from .approx import DEFAULT_EPSILON as APPROX_EPSILON
from .approx import DEFAULT_MAX_SAMPLES as APPROX_MAX_SAMPLES
from .approx import RULES as APPROX_RULES
from .core.constraints import constraints_formula
from .core.evaluator import probability
from .core.explain import explain_violations
from .core.pxdb import PXDB
from .numeric import BACKEND_NAMES, Interval, maybe_positive, value_fields
from .obs import package_version
from .pdoc.enumerate import world_documents
from .service.store import read_constraints, read_document, read_pdocument
from .xmltree.serialize import document_to_xml


def _load_pdocument(path: str):
    return read_pdocument(path)


def _load_constraints(path: str | None):
    return read_constraints(path)


def _cmd_validate(args) -> int:
    pdoc = _load_pdocument(args.pdocument)
    pdoc.validate()
    print(
        f"ok: {pdoc.ordinary_size()} ordinary nodes, "
        f"{len(pdoc.dist_edges())} distributional edges"
    )
    return 0


def _cmd_worlds(args) -> int:
    pdoc = _load_pdocument(args.pdocument)
    edges = len(pdoc.dist_edges())
    if edges > args.max_edges:
        print(
            f"refusing: {edges} distributional edges means up to 2^{edges} "
            f"worlds (raise --max-edges to force)",
            file=sys.stderr,
        )
        return 1
    for document, prob in world_documents(pdoc)[: args.limit]:
        print(f"Pr = {prob}  ≈ {float(prob):.6f}")
        print(document_to_xml(document, style="tags"))
        print()
    return 0


def _rank(value):
    """Descending-sort key across backends (interval → midpoint)."""
    return value.mid if isinstance(value, Interval) else value


def _cmd_sat(args) -> int:
    pdoc = _load_pdocument(args.pdocument)
    constraints = _load_constraints(args.constraints)
    value = probability(pdoc, constraints_formula(constraints), backend=args.backend)
    text, approx = value_fields(value)
    print(f"Pr(P |= C) = {text}  ≈ {approx:.6f}")
    print(f"well-defined PXDB: {maybe_positive(value)}")
    return 0


def _cmd_query(args) -> int:
    pdoc = _load_pdocument(args.pdocument)
    constraints = _load_constraints(args.constraints)
    db = PXDB(pdoc, constraints)
    table = db.query_labels(args.query, backend=args.backend)
    for labels, prob in sorted(
        table.items(), key=lambda kv: (-_rank(kv[1]), str(kv[0]))
    ):
        rendered = ", ".join(str(v) for v in labels)
        text, approx = value_fields(prob)
        print(f"({rendered})  Pr = {text}  ≈ {approx:.6f}")
    return 0


def _cmd_sample(args) -> int:
    pdoc = _load_pdocument(args.pdocument)
    constraints = _load_constraints(args.constraints)
    db = PXDB(pdoc, constraints)
    rng = random.Random(args.seed)
    incremental = not args.no_incremental
    for _ in range(args.count):
        print(
            document_to_xml(
                db.sample(rng, incremental=incremental, backend=args.backend),
                style="tags",
            )
        )
        print()
    if args.stats:
        stats = db.sample_engine.stats()
        print(f"samples:               {args.count}", file=sys.stderr)
        print(f"evaluator runs:        {stats['runs']}", file=sys.stderr)
        per_sample = stats["runs"] / args.count if args.count else 0.0
        print(f"evaluations/sample:    {per_sample:.1f}", file=sys.stderr)
        print(f"subtree dists computed: {stats['nodes_computed']}", file=sys.stderr)
        if incremental:
            print(
                f"cache hits/misses:     {stats['cache_hits']}/{stats['cache_misses']} "
                f"(hit rate {stats['hit_rate']:.1%})",
                file=sys.stderr,
            )
            print(f"cache entries:         {stats['cache_entries']}", file=sys.stderr)
        else:
            # The engine still drives the evaluations, but its cache is
            # cleared before each one — hit/miss counters would describe
            # intra-run sharing only, not the cross-run cache the flag
            # disabled, so they are suppressed rather than misreported.
            print(
                "incremental engine bypassed (--no-incremental): the counts "
                "above are from-scratch evaluation work; cross-run cache "
                "statistics do not apply",
                file=sys.stderr,
            )
    return 0


def _cmd_approx(args) -> int:
    pdoc = _load_pdocument(args.pdocument)
    constraints = _load_constraints(args.constraints)
    db = PXDB(pdoc, constraints)
    result = db.approx_probability(
        args.event,
        epsilon=args.epsilon,
        delta=args.delta,
        max_samples=args.max_samples,
        rule=args.rule,
        seed=args.seed,
        backend=args.backend or "auto",
    )
    print(f"Pr(event | C) ~= {result.estimate:.6f}")
    print(f"interval      = [{result.lo:.6f}, {result.hi:.6f}]  "
          f"(eps={result.epsilon:g}, delta={result.delta:g})")
    print(f"samples       = {result.n}  (rule={result.rule}, "
          f"stopped={result.stopped})")
    if result.seed is not None:
        print(f"seed          = {result.seed}")
    if result.stopped == "max_samples":
        print(
            "warning: sample budget exhausted before the +/-epsilon target; "
            "the interval above is the certified width at the budget",
            file=sys.stderr,
        )
    return 0


def _cmd_check(args) -> int:
    document = read_document(args.document)
    constraints = _load_constraints(args.constraints)
    violations = explain_violations(document, constraints)
    if not violations:
        print("document satisfies all constraints")
        return 0
    for violation in violations:
        print(violation.describe())
    return 1


def _cmd_skeleton(args) -> int:
    pdoc = _load_pdocument(args.pdocument)
    print(document_to_xml(pdoc.skeleton(), style="tags"))
    return 0


def _cmd_circuit(args) -> int:
    from .core.formulas import exists
    from .xmltree.parser import parse_boolean_pattern

    pdoc = _load_pdocument(args.pdocument)
    constraints = _load_constraints(args.constraints)
    db = PXDB(pdoc, constraints, check=False)
    events = []
    labels = []
    if args.query:
        events.append(exists(parse_boolean_pattern(args.query)))
        labels.append(f"Pr(P |= {args.query} AND C)")
    labels.append("Pr(P |= C)")
    circuit = db.compile_circuit(events)

    if args.action == "stats":
        for key, value in circuit.stats().items():
            print(f"{key:>8}: {value}")
        return 0

    if args.action == "compile":
        stats = circuit.stats()
        print(
            f"compiled: {stats['nodes']} nodes "
            f"({stats['adds']} add, {stats['muls']} mul, {stats['edges']} edges), "
            f"{stats['params']} parameters, {stats['outputs']} outputs"
        )
        for label, value in zip(labels, circuit.forward()):
            print(f"{label} = {value}  ≈ {float(value):.6f}")
        return 0

    if args.action == "eval":
        if args.rebind:
            circuit.rebind(_load_pdocument(args.rebind))
            print(f"re-bound to the probabilities of {args.rebind}")
        values = circuit.forward()
        for label, value in zip(labels, values):
            print(f"{label} = {value}  ≈ {float(value):.6f}")
        if args.query:
            denominator = values[-1]
            if denominator == 0:
                print("Pr(D |= event) undefined: Pr(P |= C) = 0")
                return 1
            conditional = values[0] / denominator
            print(
                f"Pr(D |= {args.query}) = {conditional}  ≈ {float(conditional):.6f}"
            )
        return 0

    if args.action == "sweep":
        return _circuit_sweep(args, db, circuit, labels)

    # grad: one backward sweep ranks every parameter by |d output / d theta|.
    rows = circuit.sensitivities(0)
    if args.top is not None:
        rows = rows[: args.top]
    print(f"d {labels[0]} / d theta, most influential first:")
    for row in rows:
        print(
            f"  {row['parameter']:<44} value={row['value']}  "
            f"d={row['derivative']}  ≈ {float(row['derivative']):+.6f}"
        )
    return 0


def _circuit_sweep(args, db, circuit, labels) -> int:
    """``repro circuit sweep``: evaluate the compiled circuit at many
    parameter bindings in one batched numpy pass (docs/CIRCUIT.md)."""
    import json as _json

    from .circuit.batch import require_numpy
    from .pdoc.parameters import scaled_edge_bindings

    require_numpy()
    factors = None
    if args.bindings:
        with open(args.bindings) as handle:
            raw = _json.load(handle)
        if not isinstance(raw, list) or not raw:
            raise ValueError(
                f"{args.bindings}: expected a non-empty JSON list of "
                "parameter vectors"
            )
        rows = [[Fraction(value) for value in row] for row in raw]
    else:
        if args.points < 1:
            raise ValueError("--points must be at least 1")
        lo_text, _, hi_text = args.scale.partition(":")
        try:
            lo, hi = Fraction(lo_text), Fraction(hi_text or lo_text)
        except (ValueError, ZeroDivisionError) as error:
            raise ValueError(f"invalid --scale {args.scale!r}: {error}") from error
        steps = max(args.points - 1, 1)
        factors = [
            lo + (hi - lo) * k / steps for k in range(args.points)
        ]
        rows = scaled_edge_bindings(db.pdoc, factors)
    outputs = circuit.forward_batch(rows)
    denominators = outputs[-1]
    print(
        f"sweep: {len(rows)} bindings x {circuit.num_params} parameters, "
        f"{len(circuit)} circuit nodes"
    )
    for index in range(len(rows)):
        prefix = f"[{index}]"
        if factors is not None:
            prefix += f" scale={float(factors[index]):.6f}"
        parts = [
            f"{label} = {outputs[j][index]:.6f}"
            for j, label in enumerate(labels)
        ]
        denominator = denominators[index]
        if args.query:
            if denominator > 0.0:
                parts.append(
                    f"Pr(D |= {args.query}) = {outputs[0][index] / denominator:.6f}"
                )
            else:
                parts.append(f"Pr(D |= {args.query}) undefined (Pr(P |= C) = 0)")
        print(f"{prefix}  " + "  ".join(parts))
    return 0


def _parse_db_spec(spec: str) -> tuple[str, str, str | None]:
    """``NAME=PDOC[:CONSTRAINTS]`` → (name, pdocument_path, constraints_path)."""
    if "=" not in spec:
        raise ValueError(
            f"invalid --db spec {spec!r}: expected NAME=PDOC[:CONSTRAINTS]"
        )
    name, _, paths = spec.partition("=")
    if not name:
        raise ValueError(f"invalid --db spec {spec!r}: empty name")
    pdocument_path, _, constraints_path = paths.partition(":")
    if not pdocument_path:
        raise ValueError(f"invalid --db spec {spec!r}: empty p-document path")
    return name, pdocument_path, constraints_path or None


def _cmd_serve(args) -> int:
    from .obs import configure_logging
    from .obs.spans import TRACER
    from .service.metrics import Metrics
    from .service.pool import EvaluationPool
    from .service.server import PXDBService, serve_forever
    from .service.store import DocumentStore

    configure_logging(args.log_level, json_mode=args.log_json)
    TRACER.configure(
        enabled=args.trace,
        ring_size=args.trace_ring,
        jsonl_path=args.trace_jsonl,
        jsonl_max_bytes=args.trace_jsonl_max_bytes,
        tail_sample=args.trace_tail,
        tail_slow_ms=args.trace_tail_slow_ms,
        tail_rate=args.trace_tail_rate,
    )
    slos = None
    if args.slo:
        from .obs.slo import default_slos, parse_slo

        slos = default_slos()
        for spec in args.slo:
            parsed = parse_slo(spec)
            slos[parsed["route"]] = parsed
            print(
                f"SLO {parsed['route']}: p{parsed['quantile'] * 100:g} "
                f"<= {parsed['threshold_ms']:g}ms, errors <= "
                f"{parsed['error_budget'] * 100:g}%",
                file=sys.stderr,
            )
    store = DocumentStore(
        max_entries=args.max_entries,
        coalesce_window=args.coalesce_window,
    )
    for spec in args.db:
        name, pdocument_path, constraints_path = _parse_db_spec(spec)
        entry = store.register(name, pdocument_path, constraints_path)
        probability = entry.pxdb.constraint_probability()
        print(
            f"registered {name!r}: {pdocument_path}"
            + (f" + {constraints_path}" if constraints_path else "")
            + f"  Pr(P |= C) = {probability} ~= {float(probability):.6f}",
            file=sys.stderr,
        )
    if args.trace:
        print(
            f"tracing on: ring={args.trace_ring}"
            + (f", jsonl={args.trace_jsonl}" if args.trace_jsonl else "")
            + (
                f", tail sampling (slow>={args.trace_tail_slow_ms:g}ms, "
                f"rate={args.trace_tail_rate:g})"
                if args.trace_tail
                else ""
            ),
            file=sys.stderr,
        )
    if args.backend != "exact":
        print(f"default numeric backend: {args.backend}", file=sys.stderr)

    def _announce(address) -> None:
        print(f"serving PXDBs on http://{address[0]}:{address[1]}", file=sys.stderr)

    if args.frontend == "async":
        from .service.frontend import build_sharded_service
        from .service.frontend.aserver import serve_async

        service = build_sharded_service(
            store,
            shards=args.shards,
            workers_per_shard=args.pool if args.pool > 0 else 1,
            window=args.scheduler_window,
            max_batch=args.scheduler_max_batch,
            metrics=Metrics(),
            slow_ms=args.slow_ms,
            default_backend=args.backend,
            pool_timeout=args.pool_timeout,
            slos=slos,
        )
        for shard, names in service.pool.shard_assignment().items():
            print(
                f"shard {shard}: {', '.join(names) or '(no file-backed PXDBs)'}",
                file=sys.stderr,
            )
        try:
            serve_async(
                service, args.host, args.port, verbose=args.verbose,
                drain_timeout=args.drain_timeout, on_bound=_announce,
            )
        finally:
            service.scheduler.close(args.drain_timeout)
            service.pool.shutdown()
        print("shutting down", file=sys.stderr)
        return 0

    pool = None
    if args.pool > 0:
        pool = EvaluationPool(
            store.specs(), workers=args.pool, timeout=args.pool_timeout
        )
        print(
            f"process pool: {args.pool} workers, "
            f"{args.pool_timeout:g}s timeout (in-process fallback)",
            file=sys.stderr,
        )
    service = PXDBService(
        store, metrics=Metrics(), pool=pool, slow_ms=args.slow_ms,
        default_backend=args.backend, slos=slos,
    )
    try:
        serve_forever(
            service, args.host, args.port, verbose=args.verbose,
            drain_timeout=args.drain_timeout, on_bound=_announce,
        )
    finally:
        if pool is not None:
            pool.shutdown()
    print("shutting down", file=sys.stderr)
    return 0


def _render_span_tree(node: dict, indent: int = 0) -> None:
    pad = "  " * indent
    attrs = node.get("attributes") or {}
    rendered = " ".join(f"{key}={value}" for key, value in sorted(attrs.items()))
    status = "" if node["status"] == "ok" else f"  [{node['status']}]"
    print(
        f"{pad}{node['name']}  {node['duration_ms']:.3f} ms"
        f"  (pid {node['pid']}){status}"
        + (f"  {rendered}" if rendered else "")
    )
    for child in node.get("children", ()):
        _render_span_tree(child, indent + 1)


def _cmd_trace(args) -> int:
    import json as _json

    from .service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.action == "show":
            if not args.trace_id:
                print("error: trace show requires a trace id", file=sys.stderr)
                return 2
            body = client.trace(args.trace_id)
            print(f"trace {body['trace_id']}: {len(body['spans'])} spans")
            for root in body["tree"]:
                _render_span_tree(root)
            return 0
        summaries = client.traces(slow_ms=args.slow_ms, limit=args.limit)
        if args.action == "top":
            if not summaries:
                print("no recorded traces (is the server running with --trace?)")
                return 0
            for row in summaries:
                print(
                    f"{row['trace_id']}  {row['duration_ms']:>10.3f} ms  "
                    f"{row['spans']:>3} spans  {row['name']}"
                    + ("" if row["status"] == "ok" else f"  [{row['status']}]")
                )
            return 0
        # export: each summary expanded to its full flat span list.
        dump = [client.trace(row["trace_id"]) for row in summaries]
        text = _json.dumps(dump, indent=2, default=str)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote {len(dump)} traces to {args.output}", file=sys.stderr)
        else:
            print(text)
        return 0
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _cmd_obs(args) -> int:
    import json as _json

    from .service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.action == "profile":
            if (args.format or "collapsed") == "collapsed":
                text = client.profile("collapsed", source=args.source)
                if not text:
                    print(
                        "empty profile (no traces folded yet; is the server "
                        "running with --trace and taking requests?)",
                        file=sys.stderr,
                    )
            else:
                body = client.profile("json", source=args.source)
                text = _json.dumps(body.get("profile", body), indent=2)
            if args.output:
                with open(args.output, "w", encoding="utf-8") as handle:
                    handle.write(text + ("\n" if text else ""))
                print(f"wrote profile to {args.output}", file=sys.stderr)
            elif text:
                print(text)
            return 0
        if args.action == "costs":
            body = client.costs()
            if args.format == "json":
                print(_json.dumps(body, indent=2, default=str))
                return 0
            entries = body.get("entries", [])
            if not entries:
                print(
                    "no cost records (is the server running with --trace?)"
                )
                return 0
            print(
                f"{'route':<10} {'db':<16} {'shard':<6} {'requests':>8} "
                f"{'cost units':>12} {'ms':>10}"
            )
            for row in entries:
                print(
                    f"{row['route']:<10} {row['db']:<16} {row['shard']:<6} "
                    f"{row['requests']:>8} {row['cost_units']:>12} "
                    f"{row['duration_ms']:>10.3f}"
                )
            return 0
        # slo
        body = client.slo()
        if args.format == "json":
            print(_json.dumps(body, indent=2, default=str))
            return 0
        print(f"overall state: {body.get('state', 'ok')}")
        for row in body.get("slos", []):
            burns = row.get("burn", {})
            burn_text = "  ".join(
                f"{window}={value:.2f}" for window, value in burns.items()
            )
            print(
                f"{row['route']:<10} {row['objective']:<8} "
                f"{row['state']:<5} {burn_text}"
            )
        return 0
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _cmd_stats(args) -> int:
    from .pdoc.stats import summary

    pdoc = _load_pdocument(args.pdocument)
    report = summary(pdoc)
    for key, value in report.items():
        if key == "expected_size":
            print(f"{key:>22}: {value} ≈ {float(value):.3f}")
        elif key == "process_entropy_bits":
            print(f"{key:>22}: {value:.3f}")
        else:
            print(f"{key:>22}: {value}")
    return 0


def _cmd_fuzz(args) -> int:
    import json as _json
    from pathlib import Path

    from .service.metrics import Metrics
    from .workloads.fuzz import FuzzConfig, load_spec_file, run_fuzz
    from .workloads.scenarios import CoverageLedger, standard_matrix

    if args.list:
        matrix = standard_matrix()
        ledger = CoverageLedger()
        for spec in matrix:
            ledger.record(spec.features, tag=spec.name)
        for spec in matrix:
            print(spec.name)
        print(
            f"{len(matrix)} specs, pairwise coverage "
            f"{ledger.coverage():.1%} ({len(ledger.hit)}/"
            f"{len(ledger.universe)} pairs)"
        )
        return 0

    seed = args.seed
    if args.spec and args.spec != "standard":
        specs, artifact_seed = load_spec_file(args.spec)
        if seed is None:
            seed = artifact_seed
    else:
        specs = None
    if seed is None:
        seed = 0

    config = FuzzConfig.from_backends(
        args.backends.split(",") if args.backends else None,
        max_enum_edges=args.max_enum_edges,
    )
    metrics = Metrics()

    def progress(index: int, report) -> None:
        if (index + 1) % 25 == 0:
            print(
                f"  {report.instances} instances, "
                f"{report.disagreements} disagreements, "
                f"coverage {report.ledger.coverage():.1%}"
            )

    report = run_fuzz(
        specs=specs,
        seed=seed,
        budget=args.budget,
        config=config,
        artifact_dir=args.artifacts,
        metrics=metrics,
        time_budget=args.time_budget,
        progress=progress if args.budget >= 25 else None,
    )
    if args.ledger:
        path = Path(args.ledger)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            _json.dumps(report.as_dict(), indent=2) + "\n", encoding="utf-8"
        )
        print(f"ledger written to {path}")
    print(
        f"fuzz: {report.instances} instances (seed {seed}), "
        f"{report.disagreements} disagreements, "
        f"pairwise coverage {report.ledger.coverage():.1%}"
        + (", TRUNCATED by time budget" if report.truncated else "")
    )
    for stage, count in report.checks.items():
        skipped = report.skipped.get(stage, 0)
        note = f" ({skipped} skipped)" if skipped else ""
        print(f"  {stage:>9}: {count} checks{note}")
    for failure in report.failures:
        print(
            f"  DISAGREEMENT [{failure.stage}] spec {failure.spec.name} "
            f"seed {failure.seed} -> {failure.artifact_path}"
        )
    if args.metrics:
        print(metrics.render_prometheus(), end="")
    return 1 if report.failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PXDB: probabilistic XML with constraints (PODS 2008)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {package_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("validate", help="check p-document well-formedness")
    p.add_argument("pdocument")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("worlds", help="enumerate the most probable worlds")
    p.add_argument("pdocument")
    p.add_argument("--limit", type=int, default=5)
    p.add_argument("--max-edges", type=int, default=16)
    p.set_defaults(func=_cmd_worlds)

    p = sub.add_parser("sat", help="CONSTRAINT-SAT: compute Pr(P |= C)")
    p.add_argument("pdocument")
    p.add_argument("-c", "--constraints", required=True)
    p.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default=None,
        help="numeric backend (docs/NUMERIC.md): exact Fractions (default), "
        "float64, interval enclosures, or the guarded auto policy",
    )
    p.set_defaults(func=_cmd_sat)

    p = sub.add_parser("query", help="EVAL<Q,C>: per-answer probabilities")
    p.add_argument("pdocument")
    p.add_argument("-q", "--query", required=True, help="pattern with $ markers")
    p.add_argument("-c", "--constraints")
    p.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default=None,
        help="numeric backend for the joint DP pass (docs/NUMERIC.md)",
    )
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("sample", help="SAMPLE<C>: conditioned samples (Figure 3)")
    p.add_argument("pdocument")
    p.add_argument("-c", "--constraints")
    p.add_argument("-n", "--count", type=int, default=1)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument(
        "--stats",
        action="store_true",
        help="print incremental-engine counters (evaluations per sample, "
        "cache hit rate, subtree distributions recomputed) to stderr",
    )
    p.add_argument(
        "--no-incremental",
        action="store_true",
        help="disable the cross-run signature cache (from-scratch "
        "evaluation per edge, the pre-engine behavior; for comparison)",
    )
    p.add_argument(
        "--backend",
        choices=["exact", "float64", "auto"],
        default=None,
        help="sampler arithmetic (docs/NUMERIC.md): exact (default), "
        "float64 (fast, unguarded), or auto (interval-guarded draws "
        "with exact fallback; bit-identical to exact)",
    )
    p.set_defaults(func=_cmd_sample)

    p = sub.add_parser(
        "approx",
        help="Monte-Carlo estimate of an NP-hard aggregate event with a "
        "certified +/-epsilon interval (docs/ALGORITHM.md section 10)",
    )
    p.add_argument("pdocument")
    p.add_argument("-c", "--constraints")
    p.add_argument(
        "-e",
        "--event",
        required=True,
        help="aggregate event over conditioned documents, e.g. "
        "\"sum(*//$*) > 20 and count($*) >= 2\" (see repro.approx.events)",
    )
    p.add_argument("--epsilon", type=float, default=APPROX_EPSILON,
                   help="additive error target (default %(default)s)")
    p.add_argument("--delta", type=float, default=APPROX_DELTA,
                   help="failure probability (default %(default)s)")
    p.add_argument("--max-samples", type=int, default=APPROX_MAX_SAMPLES,
                   help="hard sample budget (default %(default)s)")
    p.add_argument("--seed", type=int, default=None,
                   help="RNG seed; the same seed reproduces the estimate exactly")
    p.add_argument(
        "--rule",
        choices=sorted(APPROX_RULES),
        default=None,
        help="stopping rule: empirical-Bernstein (default; adaptive, stops "
        "early on low variance), fixed-n Hoeffding, or anytime Hoeffding",
    )
    p.add_argument(
        "--backend",
        choices=["exact", "float64", "auto"],
        default=None,
        help="sampler arithmetic for the conditioned draws (docs/NUMERIC.md)",
    )
    p.set_defaults(func=_cmd_approx)

    p = sub.add_parser("check", help="explain a document's constraint violations")
    p.add_argument("document")
    p.add_argument("-c", "--constraints", required=True)
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser("skeleton", help="print the all-nodes skeleton document")
    p.add_argument("pdocument")
    p.set_defaults(func=_cmd_skeleton)

    p = sub.add_parser("stats", help="structural/distributional statistics")
    p.add_argument("pdocument")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser(
        "circuit",
        help="compile the c-formula DP into an arithmetic circuit "
        "(docs/CIRCUIT.md)",
    )
    p.add_argument(
        "action",
        choices=["compile", "eval", "grad", "stats", "sweep"],
        help="compile: build + report + evaluate; eval: evaluate (after an "
        "optional --rebind); grad: parameter sensitivities; stats: sizes "
        "only; sweep: batched numpy evaluation over many parameter bindings",
    )
    p.add_argument("pdocument")
    p.add_argument("-c", "--constraints")
    p.add_argument(
        "-q", "--query",
        help="also compile this Boolean pattern event (no $ markers): the "
        "circuit outputs Pr(P |= event AND C) alongside Pr(P |= C)",
    )
    p.add_argument(
        "--rebind",
        metavar="PDOC",
        help="(eval) re-bind to this structurally identical p-document's "
        "probabilities before evaluating — no recompilation",
    )
    p.add_argument(
        "--top",
        type=int,
        default=10,
        help="(grad) how many parameters to print (default 10)",
    )
    p.add_argument(
        "--points",
        type=int,
        default=8,
        help="(sweep) how many scaled bindings to generate (default 8)",
    )
    p.add_argument(
        "--scale",
        default="0.5:1.0",
        metavar="LO:HI",
        help="(sweep) scale every edge probability by factors spaced evenly "
        "over [LO, HI] (default 0.5:1.0)",
    )
    p.add_argument(
        "--bindings",
        metavar="FILE",
        help="(sweep) JSON file with explicit bindings (a list of parameter "
        "vectors in canonical slot order) instead of --points/--scale",
    )
    p.set_defaults(func=_cmd_circuit)

    p = sub.add_parser(
        "serve",
        help="serve stored PXDBs over JSON/HTTP (see docs/SERVICE.md)",
    )
    p.add_argument(
        "--db",
        action="append",
        default=[],
        metavar="NAME=PDOC[:CONSTRAINTS]",
        help="register a PXDB at startup (repeatable); more can be added "
        "at runtime via POST /register",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=8642,
        help="TCP port (0 picks an ephemeral port, printed at startup)",
    )
    p.add_argument(
        "--frontend",
        choices=["threaded", "async"],
        default="threaded",
        help="HTTP front end: 'threaded' (stdlib thread-per-request) or "
        "'async' (event loop + consistent-hash sharded workers + "
        "heterogeneous batch scheduler; docs/SERVICE.md)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=2,
        metavar="N",
        help="[async] pin PXDBs to N worker shards by consistent hashing; "
        "each shard's workers warm only its own entries",
    )
    p.add_argument(
        "--scheduler-window",
        type=float,
        default=0.002,
        metavar="S",
        help="[async] batching window: pending sat/query/topk requests "
        "against one PXDB within the window share one joint DP pass "
        "(a lone request waits only window/8)",
    )
    p.add_argument(
        "--scheduler-max-batch",
        type=int,
        default=64,
        metavar="N",
        help="[async] drain a batch immediately once N requests pend",
    )
    p.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        metavar="S",
        help="seconds to drain in-flight work on SIGTERM/Ctrl-C before "
        "closing the socket",
    )
    p.add_argument(
        "--pool",
        type=int,
        default=0,
        metavar="N",
        help="dispatch sat/query/sample to N worker processes with warm "
        "stores (0 = in-process execution only; with --frontend async "
        "this is workers per shard, minimum 1)",
    )
    p.add_argument(
        "--pool-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="seconds before a pooled request falls back in-process",
    )
    p.add_argument(
        "--coalesce-window",
        type=float,
        default=0.002,
        metavar="S",
        help="how long a query leader waits to merge concurrent requests "
        "into one joint DP pass (0 disables the wait)",
    )
    p.add_argument(
        "--max-entries",
        type=int,
        default=64,
        help="LRU bound on simultaneously loaded PXDBs",
    )
    p.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default="exact",
        help="default numeric backend for sat/query/sample requests that "
        "do not name one (per-request 'backend' field overrides; "
        "docs/NUMERIC.md)",
    )
    p.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    p.add_argument(
        "--trace",
        action="store_true",
        help="record per-request span traces, browsable at /trace/<id> and "
        "/traces (docs/OBSERVABILITY.md)",
    )
    p.add_argument(
        "--trace-ring",
        type=int,
        default=4096,
        metavar="N",
        help="in-memory span ring size (oldest spans evicted first)",
    )
    p.add_argument(
        "--trace-jsonl",
        metavar="FILE",
        help="also append every finished span to FILE as JSON lines",
    )
    p.add_argument(
        "--trace-jsonl-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="rotate the JSONL export to FILE.1 when it would exceed "
        "BYTES (rotation never drops a span)",
    )
    p.add_argument(
        "--trace-tail",
        action="store_true",
        help="tail-based trace retention: keep slow/error traces whole, "
        "sample the rest at --trace-tail-rate (cost attribution still "
        "sees every trace)",
    )
    p.add_argument(
        "--trace-tail-slow-ms",
        type=float,
        default=25.0,
        metavar="MS",
        help="(with --trace-tail) always keep traces at least MS long "
        "(default 25)",
    )
    p.add_argument(
        "--trace-tail-rate",
        type=float,
        default=0.1,
        metavar="R",
        help="(with --trace-tail) keep fast, healthy traces with "
        "probability R (default 0.1)",
    )
    p.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="SPEC",
        help="add/override an SLO, e.g. query=p99:50ms:0.1%% — burn-rate "
        "state at /slo, /health and pxdb_slo_* metrics (repeatable; "
        "stock routes keep loose defaults)",
    )
    p.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="log requests slower than MS milliseconds and keep them in "
        "the /traces?slow_ms= slow-query ring",
    )
    p.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default="info",
        help="stdlib logging level for the 'repro' logger tree",
    )
    p.add_argument(
        "--log-json",
        action="store_true",
        help="emit one JSON object per log line instead of plain text",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "trace",
        help="inspect span traces of a running service "
        "(docs/OBSERVABILITY.md)",
    )
    p.add_argument(
        "action",
        choices=["top", "show", "export"],
        help="top: slowest recent root spans; show: one trace as a tree; "
        "export: dump recent traces (flat spans) as JSON",
    )
    p.add_argument(
        "trace_id",
        nargs="?",
        help="(show) the trace id, e.g. from 'repro trace top' or a "
        "/metrics exemplar",
    )
    p.add_argument(
        "--url",
        default="http://127.0.0.1:8642",
        help="service base URL (default http://127.0.0.1:8642)",
    )
    p.add_argument(
        "--slow-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="(top/export) only traces at least MS milliseconds long",
    )
    p.add_argument(
        "--limit",
        type=int,
        default=20,
        help="(top/export) at most this many traces (default 20)",
    )
    p.add_argument(
        "-o", "--output",
        metavar="FILE",
        help="(export) write JSON here instead of stdout",
    )
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "obs",
        help="cost/profile/SLO views of a running service "
        "(docs/OBSERVABILITY.md)",
    )
    p.add_argument(
        "action",
        choices=["profile", "costs", "slo"],
        help="profile: cumulative collapsed-stack profile; costs: "
        "per-(route, db, shard) cost attribution; slo: burn-rate state",
    )
    p.add_argument(
        "--url",
        default="http://127.0.0.1:8642",
        help="service base URL (default http://127.0.0.1:8642)",
    )
    p.add_argument(
        "--format",
        choices=["collapsed", "json", "table"],
        default=None,
        help="profile: collapsed (default, flamegraph-compatible) or "
        "json; costs/slo: table (default) or json",
    )
    p.add_argument(
        "--source",
        choices=["spans", "stacks"],
        default=None,
        help="(profile) force the span-folded or thread-stack source",
    )
    p.add_argument(
        "-o", "--output",
        metavar="FILE",
        help="(profile) write the profile here instead of stdout",
    )
    p.set_defaults(func=_cmd_obs)

    p = sub.add_parser(
        "fuzz",
        help="coverage-guided differential fuzzing over the scenario "
        "matrix (docs/WORKLOADS.md)",
    )
    p.add_argument(
        "--spec",
        metavar="FILE",
        help="scenario spec source: 'standard' (default) for the shipped "
        "matrix, or a JSON file (a spec object, a list of specs, or a "
        "fuzz failure artifact — artifacts carry their seed)",
    )
    p.add_argument(
        "--seed",
        type=int,
        default=None,
        help="run seed; instance i is generated at seed+i "
        "(default 0, or the artifact's seed with --spec <artifact>)",
    )
    p.add_argument(
        "--budget",
        type=int,
        default=200,
        help="number of instances to generate and check (default 200)",
    )
    p.add_argument(
        "--backends",
        metavar="LIST",
        help="comma-separated stages to enable: float64,interval,auto,"
        "circuit,batch,approx or 'all' (default all)",
    )
    p.add_argument(
        "--max-enum-edges",
        type=int,
        default=10,
        metavar="N",
        help="run the possible-worlds baseline only on instances with at "
        "most N distributional edges (default 10)",
    )
    p.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop generating new instances after this many seconds",
    )
    p.add_argument(
        "--artifacts",
        default="tests/artifacts",
        metavar="DIR",
        help="where shrunk failure artifacts go (default tests/artifacts)",
    )
    p.add_argument(
        "--ledger",
        metavar="FILE",
        help="write the full JSON report (coverage ledger included) here",
    )
    p.add_argument(
        "--list",
        action="store_true",
        help="print the standard scenario matrix and its pairwise "
        "coverage, then exit",
    )
    p.add_argument(
        "--metrics",
        action="store_true",
        help="dump pxdb_fuzz_* counters in Prometheus format after the run",
    )
    p.set_defaults(func=_cmd_fuzz)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
