"""repro — PXDB: Probabilistic XML Databases with Constraints.

A from-scratch Python implementation of *Incorporating Constraints in
Probabilistic XML* (Cohen, Kimelfeld & Sagiv, PODS 2008): p-documents
(PrXML^{ind,mux,exp}), the constraint/c-formula language, polynomial-time
constraint satisfaction and query evaluation, exact conditional sampling,
aggregate extensions (MIN/MAX/RATIO tractable; SUM/AVG NP-hard), and
probabilistic constraints under SNC/WNC semantics.

Quickstart::

    from fractions import Fraction
    from repro import PXDB, parse_constraint, pdocument

    pd, root = pdocument("library")
    shelf = root.ind()
    shelf.add_edge("book", Fraction(9, 10))
    shelf.add_edge("book", Fraction(3, 4))
    pd.validate()

    c = parse_constraint("forall $library : count(*/$book) >= 1")
    db = PXDB(pd, [c])
    print(db.constraint_probability())   # Pr(P |= C)
    print(db.sample())                   # a random document of the PXDB

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced result.
"""

from .core import (
    FALSE,
    TRUE,
    AvgAtom,
    CAnd,
    CFormula,
    Constraint,
    CountAtom,
    DocumentEvaluator,
    MaxAtom,
    MinAtom,
    PXDB,
    ProbabilisticConstraint,
    ProbabilisticPXDB,
    Query,
    RatioAtom,
    SFormula,
    SNC,
    SumAtom,
    WNC,
    always,
    boolean_query_probability,
    conjunction,
    constraints_formula,
    disjunction,
    evaluate_query,
    exists,
    implies,
    negation,
    not_exists,
    parse_constraint,
    parse_constraints,
    probabilities,
    probability,
    sample,
    satisfies,
    satisfies_all,
    select,
    selector,
)
from .core.explain import Violation, explain_violations, why_inconsistent
from .core.topk import top_k_worlds
from .core import templates
from .core.statistics import (
    count_distribution,
    count_variance,
    expected_count,
    expected_sum,
    membership_probabilities,
)
from .pdoc import (
    PDocument,
    PNode,
    node_probability,
    pdocument,
    pdocument_from_xml,
    pdocument_to_xml,
    random_instance,
    world_distribution,
    world_documents,
    world_probability,
)
from .xmltree import (
    DocNode,
    Document,
    Pattern,
    PatternNode,
    doc,
    document_from_xml,
    document_to_xml,
    parse_boolean_pattern,
    parse_pattern,
    parse_selector,
)

__version__ = "1.0.0"

__all__ = [
    "AvgAtom",
    "CAnd",
    "CFormula",
    "Constraint",
    "CountAtom",
    "DocNode",
    "Document",
    "DocumentEvaluator",
    "FALSE",
    "MaxAtom",
    "MinAtom",
    "PDocument",
    "PNode",
    "PXDB",
    "Pattern",
    "PatternNode",
    "ProbabilisticConstraint",
    "ProbabilisticPXDB",
    "Query",
    "RatioAtom",
    "SFormula",
    "SNC",
    "SumAtom",
    "TRUE",
    "WNC",
    "Violation",
    "always",
    "count_distribution",
    "count_variance",
    "expected_count",
    "expected_sum",
    "explain_violations",
    "membership_probabilities",
    "why_inconsistent",
    "templates",
    "top_k_worlds",
    "boolean_query_probability",
    "conjunction",
    "constraints_formula",
    "disjunction",
    "doc",
    "document_from_xml",
    "document_to_xml",
    "evaluate_query",
    "exists",
    "implies",
    "negation",
    "node_probability",
    "not_exists",
    "parse_boolean_pattern",
    "parse_constraint",
    "parse_constraints",
    "parse_pattern",
    "parse_selector",
    "pdocument",
    "pdocument_from_xml",
    "pdocument_to_xml",
    "probabilities",
    "probability",
    "random_instance",
    "sample",
    "satisfies",
    "satisfies_all",
    "select",
    "selector",
    "world_distribution",
    "world_documents",
    "world_probability",
]
