"""Pluggable numeric backends for the DP, circuits and sampler.

``exact`` (Fractions, the default), ``float64`` (fast, unguarded) and
``interval`` (directed-rounding float64 enclosures) implement one
protocol (:class:`~repro.numeric.backends.NumericBackend`); ``auto`` is
the guarded policy of :mod:`repro.numeric.guard`: interval evaluation
with exact fallback for decisions the bounds cannot certify.

See ``docs/NUMERIC.md`` for the guarantees table and fallback semantics.
"""

from .backends import (
    BACKEND_NAMES,
    EXACT,
    FLOAT64,
    INTERVAL,
    Interval,
    NumericBackend,
    get_backend,
    maybe_positive,
    surely_positive,
    surely_zero,
    value_bounds,
    value_fields,
)
from .guard import (
    GUARD,
    GuardStats,
    exact_bernoulli,
    guarded_bernoulli,
    guarded_positive,
)

__all__ = [
    "BACKEND_NAMES",
    "EXACT",
    "FLOAT64",
    "GUARD",
    "GuardStats",
    "INTERVAL",
    "Interval",
    "NumericBackend",
    "exact_bernoulli",
    "get_backend",
    "guarded_bernoulli",
    "guarded_positive",
    "maybe_positive",
    "surely_positive",
    "surely_zero",
    "value_bounds",
    "value_fields",
]
