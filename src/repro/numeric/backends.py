"""Numeric backends: exact rationals, raw float64 and directed-rounding
interval arithmetic behind one tiny protocol.

Every probability the stack computes — signature-distribution weights in
the Theorem 5.3 DP, circuit gate values, sampler posteriors — flows
through a :class:`NumericBackend`.  The protocol is deliberately minimal
(binary ``add``/``mul``/``sub``/``div``, the constants ``zero``/``one``,
``lift`` from the p-document's exact ``Fraction`` annotations, and a
handful of *decision* helpers), so the hot loops can bind the operations
to locals and stay backend-generic without a dispatch per scalar.

Guarantees per backend (see ``docs/NUMERIC.md`` for the full table):

* ``exact``    — today's behavior: every value is the exact rational.
* ``float64``  — one IEEE-754 round-to-nearest double per operation; fast
  and *unguarded* (zero/positivity tests may misfire near ties or after
  underflow).
* ``interval`` — a pair ``(lo, hi)`` of doubles with every operation
  outward-rounded by one ulp (``math.nextafter``), so the exact value is
  **always contained** in the interval.  ``lift`` keeps exactly
  representable rationals as point intervals, which is what makes the
  common dyadic probabilities cost nothing in width.

``interval`` is also the evaluation layer of the guarded ``auto`` mode
(:mod:`repro.numeric.guard`): a decision whose interval straddles its
threshold is re-resolved exactly, every other decision is certified by
the bounds alone.
"""

from __future__ import annotations

import math
import operator
from fractions import Fraction
from typing import Callable, NamedTuple

__all__ = [
    "BACKEND_NAMES",
    "Interval",
    "NumericBackend",
    "EXACT",
    "FLOAT64",
    "INTERVAL",
    "get_backend",
    "maybe_positive",
    "surely_positive",
    "surely_zero",
    "value_bounds",
]

_INF = math.inf
_nextafter = math.nextafter


def _down(x: float) -> float:
    return _nextafter(x, -_INF)


def _up(x: float) -> float:
    return _nextafter(x, _INF)


class Interval(NamedTuple):
    """A directed-rounding enclosure: the exact value lies in [lo, hi]."""

    lo: float
    hi: float

    @property
    def mid(self) -> float:
        """A representative point (clamped to the enclosure)."""
        if self.lo == self.hi:
            return self.lo
        mid = (max(self.lo, 0.0) + min(self.hi, 1.0)) / 2.0
        return min(max(mid, self.lo), self.hi)

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def __add__(self, other):  # type: ignore[override]
        other = _as_interval(other)
        return Interval(*_iadd(self, other))

    __radd__ = __add__

    def __mul__(self, other):  # type: ignore[override]
        other = _as_interval(other)
        return Interval(*_imul(self, other))

    __rmul__ = __mul__

    def __sub__(self, other):
        return Interval(*_isub(self, _as_interval(other)))

    def __rsub__(self, other):
        return Interval(*_isub(_as_interval(other), self))

    def __truediv__(self, other):
        return Interval(*_idiv(self, _as_interval(other)))

    def __rtruediv__(self, other):
        return Interval(*_idiv(_as_interval(other), self))

    def __repr__(self) -> str:
        return f"[{self.lo!r}, {self.hi!r}]"

    def contains(self, value) -> bool:
        """Whether the exact ``value`` (Fraction/int/float) is enclosed."""
        return Fraction(self.lo) <= Fraction(value) <= Fraction(self.hi)


def _as_interval(value) -> tuple[float, float]:
    if isinstance(value, tuple):  # Interval or raw (lo, hi) pair
        return value
    return _lift_interval(Fraction(value))


def _lift_interval(value: Fraction) -> tuple[float, float]:
    f = float(value)
    if Fraction(f) == value:
        return (f, f)
    return (_down(f), _up(f))


def _iadd(a: tuple[float, float], b: tuple[float, float]) -> tuple[float, float]:
    # Adding an exact 0.0 endpoint is exact — skipping the widening there
    # keeps certainly-zero values as [0, 0] point intervals, which is what
    # lets the guard *certify* impossible events instead of falling back.
    alo, ahi = a
    blo, bhi = b
    lo = alo + blo
    hi = ahi + bhi
    if alo != 0.0 and blo != 0.0:
        lo = _down(lo)
    if ahi != 0.0 and bhi != 0.0:
        hi = _up(hi)
    return (lo, hi)


def _isub(a: tuple[float, float], b: tuple[float, float]) -> tuple[float, float]:
    # x - 0 and 0 - y are exact (negation never rounds): skip the widening.
    alo, ahi = a
    blo, bhi = b
    lo = alo - bhi
    hi = ahi - blo
    if alo != 0.0 and bhi != 0.0:
        lo = _down(lo)
    if ahi != 0.0 and blo != 0.0:
        hi = _up(hi)
    return (lo, hi)


def _imul(a: tuple[float, float], b: tuple[float, float]) -> tuple[float, float]:
    alo, ahi = a
    blo, bhi = b
    if alo >= 0.0 and blo >= 0.0:  # the common all-nonnegative case
        # A 0.0 lower bound needs no widening: the true product is >= 0.
        # The upper bound is exact when a factor is exactly zero; a 0.0
        # from *underflow* of two nonzero factors must still widen up.
        lo = alo * blo
        if lo != 0.0:
            lo = _down(lo)
        hi = ahi * bhi
        if ahi != 0.0 and bhi != 0.0:
            hi = _up(hi)
        return (lo, hi)
    p1 = alo * blo
    p2 = alo * bhi
    p3 = ahi * blo
    p4 = ahi * bhi
    return (_down(min(p1, p2, p3, p4)), _up(max(p1, p2, p3, p4)))


def _idiv(a: tuple[float, float], b: tuple[float, float]) -> tuple[float, float]:
    """a / b for a nonnegative-denominator interval (probabilities; small
    negative lower bounds are rounding slack and are clamped to 0)."""
    alo, ahi = a
    blo, bhi = b
    if blo < 0.0:
        blo = 0.0
    if bhi <= 0.0:
        raise ZeroDivisionError("interval division by an exactly-zero interval")
    if alo >= 0.0:
        lo = alo / bhi
        if lo != 0.0:  # a 0.0 needs no widening: the true quotient is >= 0
            lo = _down(lo)
    elif blo > 0.0:
        lo = _down(alo / blo)
    else:
        lo = -_INF
    if blo > 0.0:
        hi = ahi / blo
        if ahi != 0.0:  # 0 / x is exactly 0
            hi = _up(hi)
    else:
        hi = _INF if ahi > 0.0 else 0.0
    return (lo, hi)


class NumericBackend:
    """One arithmetic implementation: constants, binary ops, decisions.

    ``add``/``mul``/``sub`` are plain binary callables so hot loops can
    bind them to locals; values are whatever the backend works in
    (``Fraction``, ``float`` or ``(lo, hi)`` tuples).
    """

    __slots__ = ("name", "exact", "zero", "one", "add", "mul", "sub", "div", "lift")

    def __init__(
        self,
        name: str,
        exact: bool,
        zero,
        one,
        add: Callable,
        mul: Callable,
        sub: Callable,
        div: Callable,
        lift: Callable[[Fraction], object],
    ):
        self.name = name
        self.exact = exact
        self.zero = zero
        self.one = one
        self.add = add
        self.mul = mul
        self.sub = sub
        self.div = div
        self.lift = lift

    # -- decisions ------------------------------------------------------------
    def is_zero(self, value) -> bool:
        """Whether ``value`` is *certainly* the exact 0 — the only license
        to prune it.  ``float64`` never certifies: a 0.0 there may be the
        underflow of a positive rational (underflow ≠ impossible)."""
        if self.name == "interval":
            return value[1] == 0.0
        if self.name == "float64":
            return False
        return value == 0

    def bounds(self, value) -> tuple:
        """Enclosing (lo, hi) for decision tests; degenerate when exact."""
        if self.name == "interval":
            return (value[0], value[1])
        return (value, value)

    def finalize(self, value):
        """The user-facing form of an internal value (tuples → Interval)."""
        if self.name == "interval" and not isinstance(value, Interval):
            return Interval(*value)
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NumericBackend({self.name!r})"


def _exact_lift(value: Fraction) -> Fraction:
    return value if isinstance(value, Fraction) else Fraction(value)


EXACT = NumericBackend(
    "exact", True, Fraction(0), Fraction(1),
    operator.add, operator.mul, operator.sub, operator.truediv, _exact_lift,
)

FLOAT64 = NumericBackend(
    "float64", False, 0.0, 1.0,
    operator.add, operator.mul, operator.sub, operator.truediv, float,
)

INTERVAL = NumericBackend(
    "interval", False, (0.0, 0.0), (1.0, 1.0),
    _iadd, _imul, _isub, _idiv, _lift_interval,
)

_BACKENDS = {"exact": EXACT, "float64": FLOAT64, "interval": INTERVAL}

#: All accepted ``backend=`` spellings (``auto`` is the guarded policy on
#: top of ``interval``, resolved by the call sites, not an arithmetic).
BACKEND_NAMES = ("exact", "float64", "interval", "auto")


def get_backend(spec=None) -> NumericBackend:
    """Resolve a backend spec (name, backend instance or None → exact)."""
    if spec is None:
        return EXACT
    if isinstance(spec, NumericBackend):
        return spec
    backend = _BACKENDS.get(spec)
    if backend is None:
        if spec == "auto":
            raise ValueError(
                "'auto' is a guarded evaluation policy, not an arithmetic; "
                "this call path does not support it"
            )
        if spec == "batch":
            raise ValueError(
                "'batch' is the vectorized circuit sweep mode, not a scalar "
                "arithmetic; use Circuit.forward_batch or "
                "PXDB.event_probabilities(via='circuit', backend='batch', "
                "bindings=...)"
            )
        raise ValueError(f"unknown numeric backend {spec!r} (expected one of "
                         f"{', '.join(BACKEND_NAMES)})")
    return backend


# -- type-dispatched decision helpers (work on finalized outputs) --------------

def surely_zero(value) -> bool:
    """Certainly the exact 0: safe to treat as impossible / to reject."""
    if isinstance(value, Interval):
        return value.hi == 0.0
    return value == 0


def surely_positive(value) -> bool:
    """Certainly > 0 (an interval certifies via its lower bound)."""
    if isinstance(value, Interval):
        return value.lo > 0.0
    return value > 0


def maybe_positive(value) -> bool:
    """Possibly > 0 — the sound keep-test for answer tuples."""
    if isinstance(value, Interval):
        return value.hi > 0.0
    return value > 0


def value_bounds(value) -> tuple:
    """Enclosing (lo, hi) of any finalized backend value."""
    if isinstance(value, Interval):
        return (value.lo, value.hi)
    return (value, value)


def value_fields(value) -> tuple:
    """(string form, float form) of a value from any backend: exact
    ``Fraction``s render as ratios, floats as their shortest repr, and
    intervals as ``[lo, hi]`` with the midpoint as the float view."""
    if isinstance(value, Interval):
        return f"[{value.lo!r}, {value.hi!r}]", value.mid
    if isinstance(value, float):
        return repr(value), value
    return str(value), float(value)
