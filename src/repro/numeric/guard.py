"""The guarded ``auto`` mode: interval evaluation with exact fallback.

Every *decision* the stack takes — CONSTRAINT-SAT positivity, dropping a
zero-probability answer tuple, pruning a top-k branch, a sampler branch
coin — only needs numbers **separated** from a threshold, never their
exact magnitudes.  ``auto`` therefore evaluates in interval arithmetic
(:data:`repro.numeric.backends.INTERVAL`) and re-resolves *exactly* only
the decisions whose interval straddles the threshold.  Decisions are then
identical to the exact backend's by construction: a certified bound and
the exact value can never disagree on which side of the threshold the
true value lies.

:data:`GUARD` counts both kinds of outcomes (certified decisions and
exact fallbacks); the service layer surfaces the counters in ``/metrics``
and ``repro.obs`` attaches the backend name to every ``dp.run`` span.

The Bernoulli coin
------------------

The sampler's branch decisions consume randomness, so "identical
decisions" must also mean "identical RNG consumption" — otherwise one
resolved coin would shift every later draw.  :func:`exact_bernoulli`
implements Bernoulli(p) by lazy bisection: draw a 64-bit chunk ``r``,
which pins the uniform u into the cell [r/2⁶⁴, (r+1)/2⁶⁴); if the cell
lies entirely below p the coin is heads, entirely at/above p it is tails,
otherwise (probability 2⁻⁶⁴ per round) append another chunk.  The
protocol never looks at p before drawing, so its consumption depends only
on *where the cell falls relative to p* — and :func:`guarded_bernoulli`
can run the identical protocol knowing only lo ≤ p ≤ hi: a cell clear of
[lo, hi] is also clear of p (same answer, same chunk count), and a cell
overlapping [lo, hi] triggers the exact fallback *within the same round*,
after which the two protocols are literally the same code path.
"""

from __future__ import annotations

import random
import threading
from fractions import Fraction
from typing import Callable

__all__ = ["GUARD", "GuardStats", "exact_bernoulli", "guarded_bernoulli",
           "guarded_positive"]


class GuardStats:
    """Process-global counters for the guarded mode (thread-safe)."""

    __slots__ = ("_lock", "decisions", "fallbacks")

    def __init__(self):
        self._lock = threading.Lock()
        self.decisions = 0
        self.fallbacks = 0

    def decided(self, n: int = 1) -> None:
        with self._lock:
            self.decisions += n

    def fell_back(self, n: int = 1) -> None:
        with self._lock:
            self.decisions += n
            self.fallbacks += n

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {"decisions": self.decisions, "fallbacks": self.fallbacks}

    def reset(self) -> None:
        with self._lock:
            self.decisions = 0
            self.fallbacks = 0


GUARD = GuardStats()


def guarded_positive(lo, hi, resolve: Callable[[], Fraction]) -> bool:
    """Is the exactly-nonnegative value with enclosure [lo, hi] positive?

    Certified by the bounds when possible (hi == 0 ⟹ the value *is* 0,
    lo > 0 ⟹ positive); otherwise ``resolve()`` supplies the exact value.
    """
    if hi <= 0:
        GUARD.decided()
        return False
    if lo > 0:
        GUARD.decided()
        return True
    GUARD.fell_back()
    return resolve() > 0


def exact_bernoulli(p: Fraction, rng: random.Random) -> bool:
    """An exact Bernoulli(p) coin for rational p (no float rounding).

    Lazy bisection: each 64-bit chunk narrows the uniform's cell until it
    falls entirely on one side of p; the expected number of chunks is
    1 + O(2⁻⁶⁴).  The p ≤ 0 / p ≥ 1 shortcuts consume no randomness.
    """
    if p <= 0:
        return False
    if p >= 1:
        return True
    num = p.numerator
    den = p.denominator
    r = 0
    scale = 1
    while True:
        r = (r << 64) | rng.getrandbits(64)
        scale <<= 64
        threshold = num * scale
        if (r + 1) * den <= threshold:  # cell entirely below p
            return True
        if r * den >= threshold:  # cell entirely at/above p
            return False


def guarded_bernoulli(
    lo, hi, resolve: Callable[[], Fraction], rng: random.Random
) -> bool:
    """Bernoulli(p) knowing only lo ≤ p ≤ hi, with exact fallback.

    Returns the same outcome *and consumes the same randomness* as
    ``exact_bernoulli(p, rng)`` for the true p.  ``resolve()`` is invoked
    (and counted as a fallback) only when the bounds cannot separate the
    current uniform cell from p — including when they straddle the 0/1
    shortcut thresholds, which the exact coin tests before drawing.
    """
    if hi <= 0:
        GUARD.decided()
        return False
    if lo >= 1:
        GUARD.decided()
        return True
    if lo <= 0 or hi >= 1:
        # The exact coin's no-consumption shortcut may or may not trigger:
        # resolve *before* drawing so consumption stays identical.
        GUARD.fell_back()
        return exact_bernoulli(resolve(), rng)
    # Now 0 < lo <= p <= hi < 1: the exact coin would draw, so we draw.
    plo = Fraction(lo)
    phi = Fraction(hi)
    p: Fraction | None = None
    r = 0
    scale = 1
    while True:
        r = (r << 64) | rng.getrandbits(64)
        scale <<= 64
        if p is None:
            if Fraction(r + 1, scale) <= plo:  # cell below lo ≤ p
                GUARD.decided()
                return True
            if Fraction(r, scale) >= phi:  # cell at/above hi ≥ p
                GUARD.decided()
                return False
            GUARD.fell_back()
            p = resolve()
        # Exact protocol on the same cell (identical to exact_bernoulli).
        if Fraction(r + 1, scale) <= p:
            return True
        if Fraction(r, scale) >= p:
            return False
