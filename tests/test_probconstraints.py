"""Tests for probabilistic constraints under SNC and WNC (Section 7.4)."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.core.evaluator import probability
from repro.core.formulas import (
    CountAtom,
    DocumentEvaluator,
    SFormula,
    conjunction,
    negation,
)
from repro.core.probconstraints import (
    SNC,
    WNC,
    ProbabilisticConstraint,
    ProbabilisticPXDB,
)
from repro.pdoc.pdocument import pdocument
from repro.xmltree.parser import parse_selector


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


def student_pdoc(width: int = 3):
    """root with `width` optional 'student' leaves (prob 1/2 each)."""
    pd, root = pdocument("professor")
    ind = root.ind()
    for _ in range(width):
        ind.add_edge("student", Fraction(1, 2))
    pd.validate()
    return pd


def count_students(op: str, bound: int) -> CountAtom:
    return CountAtom([sel("professor/$student")], op, bound)


def test_components_weights_sum_to_one():
    pd = student_pdoc()
    prob_constraints = [
        ProbabilisticConstraint(count_students(">=", 1), Fraction(7, 10)),
        ProbabilisticConstraint(count_students("<=", 2), Fraction(9, 10)),
    ]
    for semantics in (SNC, WNC):
        space = ProbabilisticPXDB(pd, prob_constraints, semantics)
        assert sum(w for w, _ in space.components()) == 1


def test_paper_example_snc_ill_defined():
    """The paper's Section 7.4 example: "≥ 1 Ph.D. student" w.p. 0.7 and
    "≤ N students" w.p. 0.9.  Under SNC, with probability 0.03 both
    negations are imposed — unsatisfiable — so the space is ill-defined;
    under WNC it is fine."""
    pd = student_pdoc(width=3)
    prob_constraints = [
        ProbabilisticConstraint(count_students(">=", 1), Fraction(7, 10)),
        ProbabilisticConstraint(count_students("<=", 3), Fraction(9, 10)),
    ]
    snc = ProbabilisticPXDB(pd, prob_constraints, SNC)
    assert not snc.is_well_defined()
    wnc = ProbabilisticPXDB(pd, prob_constraints, WNC)
    assert wnc.is_well_defined()


def test_snc_needs_all_four_combinations():
    """With two threshold constraints on the *same* count, the combination
    ¬C1 ∧ ¬C2 (x < a and x > b with a ≤ b) is always unsatisfiable, so SNC
    is never well-defined — the general form of the paper's observation."""
    pd = student_pdoc(width=3)
    prob_constraints = [
        ProbabilisticConstraint(count_students(">=", 1), Fraction(7, 10)),
        ProbabilisticConstraint(count_students("<=", 2), Fraction(9, 10)),
    ]
    snc = ProbabilisticPXDB(pd, prob_constraints, SNC)
    assert not snc.is_well_defined()


def test_snc_well_defined_when_negations_satisfiable():
    """Constraints over independent selectors: all four SNC combinations
    are satisfiable, so the space is well-defined."""
    pd, root = pdocument("professor")
    ind = root.ind()
    ind.add_edge("student", Fraction(1, 2))
    ind.add_edge("grant", Fraction(1, 2))
    pd.validate()
    prob_constraints = [
        ProbabilisticConstraint(count_students(">=", 1), Fraction(7, 10)),
        ProbabilisticConstraint(
            CountAtom([sel("professor/$grant")], ">=", 1), Fraction(9, 10)
        ),
    ]
    snc = ProbabilisticPXDB(pd, prob_constraints, SNC)
    assert snc.is_well_defined()


def test_wnc_event_probability_by_hand():
    """One constraint (≥1 student) imposed w.p. p: the mixture is
    p · Pr(γ | C) + (1-p) · Pr(γ)."""
    pd = student_pdoc(width=2)
    c = count_students(">=", 1)
    p = Fraction(3, 4)
    space = ProbabilisticPXDB(pd, [ProbabilisticConstraint(c, p)], WNC)
    event = count_students("=", 2)
    p_event = probability(pd, event)
    p_c = probability(pd, c)
    p_joint = probability(pd, conjunction([c, event]))
    expected = p * p_joint / p_c + (1 - p) * p_event
    assert space.event_probability(event) == expected


def test_snc_event_probability_by_hand():
    pd = student_pdoc(width=2)
    c = count_students(">=", 1)
    p = Fraction(3, 4)
    space = ProbabilisticPXDB(pd, [ProbabilisticConstraint(c, p)], SNC)
    event = count_students("=", 2)
    not_c = negation(c)
    expected = p * probability(pd, conjunction([c, event])) / probability(pd, c) + (
        1 - p
    ) * probability(pd, conjunction([not_c, event])) / probability(pd, not_c)
    assert space.event_probability(event) == expected


def test_ill_defined_event_probability_raises():
    pd = student_pdoc(width=1)
    prob_constraints = [
        ProbabilisticConstraint(count_students(">=", 1), Fraction(1, 2)),
        ProbabilisticConstraint(count_students("=", 0), Fraction(1, 2)),
    ]
    snc = ProbabilisticPXDB(pd, prob_constraints, SNC)
    with pytest.raises(ValueError):
        snc.event_probability(count_students(">=", 0))


def test_sampling_respects_mixture():
    """Sampled worlds must satisfy the sampled component; empirically the
    event frequency must approach the mixture probability."""
    pd = student_pdoc(width=2)
    c = count_students(">=", 1)
    space = ProbabilisticPXDB(pd, [ProbabilisticConstraint(c, Fraction(3, 4))], WNC)
    event = count_students(">=", 1)
    target = float(space.event_probability(event))
    rng = random.Random(21)
    n = 1500
    hits = 0
    for _ in range(n):
        document = space.sample(rng)
        if DocumentEvaluator().satisfies(document.root, event):
            hits += 1
    assert abs(hits / n - target) < 0.05


def test_degenerate_probabilities():
    pd = student_pdoc(width=1)
    c = count_students(">=", 1)
    sure = ProbabilisticPXDB(pd, [ProbabilisticConstraint(c, 1)], SNC)
    assert len(sure.components()) == 1
    assert sure.event_probability(c) == 1
    never = ProbabilisticPXDB(pd, [ProbabilisticConstraint(c, 0)], WNC)
    assert never.event_probability(c) == probability(pd, c)


def test_probability_validation():
    with pytest.raises(ValueError):
        ProbabilisticConstraint(count_students(">=", 1), Fraction(3, 2))
    with pytest.raises(ValueError):
        ProbabilisticPXDB(student_pdoc(), [], semantics="sncc")
